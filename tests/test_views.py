"""Scale independence using views (Section 6): definition validation,
materialization and incremental maintenance, homomorphism rewriting,
engine wiring, and differential correctness of view-assisted plans."""

import pytest

from repro import (
    Atom,
    Engine,
    NotControlledError,
    RewritingError,
    SchemaError,
    Variable,
    parse_query,
)
from repro.core.executor import (
    ExecutionContext,
    ViewProbeOp,
    ViewScanOp,
    execute_per_tuple,
    execute_plan,
    pipeline_for,
)
from repro.logic.homomorphism import body_homomorphisms
from repro.views import ViewDef, implied_view_atoms
from repro.workloads import (
    DEFAULT_VIEW_BOUND,
    VIEW_QUERIES,
    generate_churn,
    generate_social_network,
    max_in_degree,
    register_workload_views,
    sample_urls,
    social_engine,
    workload_views,
)

SCHEMA_TEXT = "person(pid, name, city); friend(pid1, pid2); visits(pid, url)"
ACCESS_TEXT = "person(pid -> 1); friend(pid1 -> 32); visits(pid -> 8)"
DATA = {
    "person": [
        (1, "ann", "NYC"),
        (2, "bob", "SF"),
        (3, "cat", "NYC"),
        (4, "dan", "NYC"),
    ],
    "friend": [(2, 1), (3, 1), (1, 2), (4, 3)],
    "visits": [(1, "url1"), (2, "url1"), (3, "url2")],
}
FOLLOWERS_NYC = "Q(x) :- friend(x, p), person(x, n, 'NYC')"


@pytest.fixture
def engine():
    return Engine(SCHEMA_TEXT, ACCESS_TEXT, data=DATA)


def v1_def(bound=64):
    return ViewDef(
        "V1", "V1(pid, follower) :- friend(follower, pid)", f"V1(pid -> {bound})"
    )


# -- definition-time validation -------------------------------------------


class TestViewDefValidation:
    def test_repeated_head_variable_rejected(self):
        with pytest.raises(RewritingError, match="repeats head variable"):
            ViewDef("V", "V(x, x) :- friend(x, y)")

    def test_empty_body_rejected(self):
        with pytest.raises(RewritingError, match="at least one body atom"):
            ViewDef("V", parse_query("Q()"))

    def test_bad_name_rejected(self):
        with pytest.raises(SchemaError, match="identifier"):
            ViewDef("not a name", "V(x) :- friend(x, y)")

    def test_union_rejected(self):
        with pytest.raises(RewritingError, match="single conjunctive query"):
            ViewDef("V", "V(x) :- friend(x, y) ; V(x) :- friend(y, x)")

    def test_embedded_rule_rejected(self):
        with pytest.raises(SchemaError, match="embedded"):
            ViewDef(
                "V", "V(a, b) :- friend(a, b)", "V(a -> b, 5)"
            )

    def test_rule_on_other_relation_rejected(self):
        from repro import AccessRule

        with pytest.raises(SchemaError):
            ViewDef("V", "V(a, b) :- friend(a, b)", [AccessRule("W", ["a"], 5)])

    def test_rule_attribute_must_be_a_head_name(self):
        from repro import ParseError

        with pytest.raises(ParseError):
            ViewDef("V", "V(a, b) :- friend(a, b)", "V(zzz -> 5)")


class TestViewSetRegistration:
    def test_unknown_body_relation_fails_at_register(self, engine):
        with pytest.raises(SchemaError, match="not definable over the base"):
            engine.views.register("V", "V(x) :- enemies(x, y)")

    def test_wrong_arity_fails_at_register(self, engine):
        with pytest.raises(SchemaError, match="not definable over the base"):
            engine.views.register("V", "V(x) :- friend(x, y, z)")

    def test_name_collision_with_base_relation(self, engine):
        with pytest.raises(SchemaError, match="collides with a base relation"):
            engine.views.register("friend", "friend(a, b) :- visits(a, b)")

    def test_duplicate_registration_rejected(self, engine):
        engine.views.register(v1_def())
        with pytest.raises(SchemaError, match="already registered"):
            engine.views.register(v1_def())

    def test_views_over_views_rejected(self, engine):
        engine.views.register(v1_def())
        with pytest.raises(SchemaError, match="not definable over the base"):
            engine.views.register("V9", "V9(a) :- V1(a, b)")

    def test_register_pieces_and_def_are_exclusive(self, engine):
        with pytest.raises(SchemaError, match="not both"):
            engine.views.register(v1_def(), "V1(a, b) :- friend(a, b)")
        with pytest.raises(SchemaError, match="needs a ViewDef"):
            engine.views.register("V1")

    def test_drop_unknown_view(self, engine):
        with pytest.raises(SchemaError, match="unknown view"):
            engine.views.drop("V1")

    def test_version_bumps_on_register_and_drop(self, engine):
        v0 = engine.views.version
        engine.views.register(v1_def())
        assert engine.views.version == v0 + 1
        engine.views.drop("V1")
        assert engine.views.version == v0 + 2
        assert len(engine.views) == 0

    def test_registry_protocol(self, engine):
        view = engine.views.register(v1_def())
        assert "V1" in engine.views
        assert engine.views.get("V1") is view
        assert engine.views.names() == ("V1",)
        assert [v.name for v in engine.views] == ["V1"]
        with pytest.raises(SchemaError, match="unknown view"):
            engine.views.get("V7")


# -- materialization and maintenance --------------------------------------


class TestViewState:
    def test_materialization_matches_naive_evaluation(self, engine):
        view = v1_def()
        engine.views.register(view)
        db = engine.require_database()
        state = engine.views.prepare(db, ["V1"])["V1"]
        naive = set(view.query.evaluate(db))
        assert set(state.rows) == naive == {(1, 2), (1, 3), (2, 1), (3, 4)}

    def test_lookup_contains_and_accounting(self, engine):
        from repro import AccessStats

        engine.views.register(v1_def())
        db = engine.require_database()
        state = engine.views.prepare(db, ["V1"])["V1"]
        stats = AccessStats()
        rows = state.lookup({0: 1}, stats)
        assert set(rows) == {(1, 2), (1, 3)}
        assert (stats.tuples_accessed, stats.indexed_lookups) == (2, 1)
        assert state.contains((1, 2), stats)
        assert not state.contains((9, 9), stats)
        groups = state.lookup_many([{0: 1}, {0: 1}, {0: 9}], stats)
        assert [set(g) for g in groups] == [{(1, 2), (1, 3)}, {(1, 2), (1, 3)}, set()]
        # distinct-key accounting: the repeated key is charged once
        assert stats.indexed_lookups == 1 + 2 + 2

    def test_full_view_scan_is_counted_as_scan(self, engine):
        from repro import AccessStats

        engine.views.register(v1_def())
        state = engine.views.prepare(engine.require_database(), ["V1"])["V1"]
        stats = AccessStats()
        rows = state.lookup({}, stats)
        assert len(rows) == 4
        assert stats.full_scans == 1

    def test_single_atom_refresh_touches_zero_stored_tuples(self, engine):
        engine.views.register(v1_def())
        db = engine.require_database()
        state = engine.views.prepare(db, ["V1"])["V1"]
        db.insert_many("friend", [(4, 1), (2, 3)])
        db.delete_many("friend", [(2, 1)])
        before = db.stats.snapshot()
        net = state.refresh()
        assert db.stats.since(before).tuples_accessed == 0
        assert net == {(1, 4): 1, (3, 2): 1, (1, 2): -1}
        assert set(state.rows) == set(v1_def().query.evaluate(db))

    def test_refresh_maintains_built_indexes(self, engine):
        engine.views.register(v1_def())
        db = engine.require_database()
        state = engine.views.prepare(db, ["V1"])["V1"]
        assert set(state.lookup({0: 1})) == {(1, 2), (1, 3)}  # builds the index
        db.insert_many("friend", [(4, 1)])
        db.delete_many("friend", [(2, 1)])
        state.refresh()
        assert set(state.lookup({0: 1})) == {(1, 3), (1, 4)}

    def test_multi_atom_view_materializes_and_refreshes(self, engine):
        view = ViewDef(
            "NYCF",
            "NYCF(a, b) :- friend(a, b), person(b, n, 'NYC')",
            "NYCF(a -> 32)",
        )
        engine.views.register(view)
        db = engine.require_database()
        state = engine.views.prepare(db, ["NYCF"])["NYCF"]
        assert set(state.rows) == set(view.query.evaluate(db))
        # Churn both relations, including a person delete that kills
        # derivations sideways.
        db.insert_many("friend", [(2, 3), (2, 4)])
        db.delete_many("person", [(3, "cat", "NYC")])
        db.insert_many("person", [(5, "eli", "NYC")])
        db.insert_many("friend", [(1, 5)])
        state.refresh()
        assert set(state.rows) == set(view.query.evaluate(db))

    def test_ledger_changes_since(self, engine):
        engine.views.register(v1_def())
        db = engine.require_database()
        state = engine.views.prepare(db, ["V1"])["V1"]
        w0 = state.watermark
        db.insert_many("friend", [(4, 1)])
        state.refresh()
        w1 = state.watermark
        db.delete_many("friend", [(4, 1)])
        db.insert_many("friend", [(3, 2)])
        state.refresh()
        assert state.changes_since(state.watermark) == {}
        assert state.changes_since(w1) == {(1, 4): -1, (2, 3): 1}
        # Merging across both refreshes: the (1, 4) add/remove cancels.
        assert state.changes_since(w0) == {(2, 3): 1}
        # Watermarks the ledger cannot answer for: recompute.
        assert state.changes_since(w0 + 1) is None or w0 + 1 in (w1,)

    def test_unsatisfiable_view_is_empty(self, engine):
        view = ViewDef("EMPTY", "EMPTY(a) :- friend(a, b), b = 1, b = 2")
        engine.views.register(view)
        state = engine.views.prepare(engine.require_database(), ["EMPTY"])["EMPTY"]
        assert state.rows == ()


# -- rewriting -------------------------------------------------------------


class TestRewriting:
    def test_body_homomorphisms_enumerates_all_mappings(self):
        source = parse_query("Q(a, b) :- friend(a, b)").body
        target = parse_query("Q(x) :- friend(x, y), friend(y, x)").body
        homs = list(body_homomorphisms(source, target))
        assert len(homs) == 2
        a, b = Variable("a"), Variable("b")
        mapped = {(h[a], h[b]) for h in homs}
        assert mapped == {
            (Variable("x"), Variable("y")),
            (Variable("y"), Variable("x")),
        }

    def test_body_homomorphisms_match_constants_by_value(self):
        source = parse_query("Q(x) :- person(x, n, 'NYC')").body
        target_hit = parse_query("Q(y) :- person(y, m, 'NYC')").body
        target_miss = parse_query("Q(y) :- person(y, m, 'SF')").body
        assert list(body_homomorphisms(source, target_hit))
        assert not list(body_homomorphisms(source, target_miss))

    def test_implied_view_atoms(self, engine):
        query = parse_query(FOLLOWERS_NYC, schema=engine.schema)
        implied = implied_view_atoms(query, workload_views())
        assert implied == (
            (Atom("V1", (Variable("p"), Variable("x"))), "V1"),
        )

    def test_no_mapping_no_atoms(self, engine):
        query = parse_query("Q(u) :- visits(p, u)", schema=engine.schema)
        implied = implied_view_atoms(query, (v1_def(),))
        assert implied == ()


# -- engine wiring ---------------------------------------------------------


class TestEngineViews:
    def test_uncontrolled_query_executes_once_view_registered(self, engine):
        q = engine.query(FOLLOWERS_NYC)
        with pytest.raises(NotControlledError):
            q.execute(p=1)
        engine.views.register(v1_def())
        result = q.execute(p=1)
        assert set(result.rows) == {(3,)}  # followers of 1: {2, 3}; NYC: 3
        assert result.stats.tuples_accessed <= result.fanout_bound
        assert result.stats.full_scans == 0

    def test_controlled_query_never_uses_views(self, engine):
        engine.views.register(v1_def())
        q = engine.query("Q(y) :- friend(p, y), person(y, n, 'NYC')")
        plan = q.plan(["p"])
        assert plan.view_relations == frozenset()

    def test_unhelpful_views_still_raise_not_controlled(self, engine):
        engine.views.register(v1_def())
        with pytest.raises(NotControlledError, match="view"):
            engine.execute("Q(y) :- visits(y, u)", u="url1")

    def test_no_views_message_unchanged(self, engine):
        with pytest.raises(NotControlledError):
            engine.execute("Q(y) :- visits(y, u)", u="url1")

    def test_combined_error_carries_the_base_diagnostic(self, engine):
        # With views registered but unhelpful, the error names both the
        # missing rewriting and the base compile's own diagnostic
        # (unreachable variables / uncovered atoms).
        engine.views.register(v1_def())
        with pytest.raises(NotControlledError, match="unreachable|uncovered"):
            engine.execute("Q(y) :- visits(y, u)", u="url1")

    def test_snapshot_is_immutable_under_registry_churn(self, engine):
        engine.views.register(v1_def())
        catalog = engine.views.snapshot()
        assert catalog.names() == ("V1",)
        engine.views.drop("V1")
        # The catalog still describes the population it was taken from;
        # the live registry has moved on (and bumped its version).
        assert catalog.names() == ("V1",)
        assert "V1" in catalog.extended_schema()
        assert engine.views.snapshot().names() == ()
        assert engine.views.snapshot().version == catalog.version + 1

    def test_drop_restores_not_controlled(self, engine):
        engine.views.register(v1_def())
        q = engine.query(FOLLOWERS_NYC)
        assert q.execute(p=1)
        engine.views.drop("V1")
        with pytest.raises(NotControlledError):
            q.execute(p=1)

    def test_register_strands_cached_plans(self, engine):
        # A plan cached before a view registration must not be served
        # after it: the views version is part of the cache key.
        q = engine.query("Q(y) :- friend(p, y)")
        q.execute(p=1)
        misses = engine.cache_stats().misses
        engine.views.register(v1_def())
        q.execute(p=1)
        assert engine.cache_stats().misses == misses + 1  # recompiled

    def test_view_plans_lower_to_view_operators(self, engine):
        engine.views.register(v1_def())
        plan = engine.query(FOLLOWERS_NYC).plan(["p"])
        ops = pipeline_for(plan)
        assert any(isinstance(op, ViewScanOp) for op in ops)
        assert "V1" in plan.view_relations
        explained = engine.explain(FOLLOWERS_NYC, ["p"])
        assert "V1" in explained

    def test_view_reads_do_not_inflate_database_stats(self, engine):
        engine.views.register(v1_def())
        q = engine.query(FOLLOWERS_NYC)
        q.execute(p=1)  # warm: materialization scans are charged to db
        db = engine.require_database()
        before = db.stats.snapshot()
        result = q.execute(p=1)
        base_delta = db.stats.since(before)
        # The execution's own stats include the view reads, so they
        # exceed the database's base-table-only delta.
        assert result.stats.tuples_accessed > base_delta.tuples_accessed
        assert base_delta.full_scans == 0

    def test_views_refresh_lazily_before_execution(self, engine):
        engine.views.register(v1_def())
        q = engine.query(FOLLOWERS_NYC)
        assert set(q.execute(p=1).rows) == {(3,)}
        engine.database.insert_many("friend", [(4, 1)])  # 4 follows 1; dan is NYC
        assert set(q.execute(p=1).rows) == {(3,), (4,)}
        engine.database.delete_many("friend", [(3, 1)])
        assert set(q.execute(p=1).rows) == {(4,)}

    def test_union_with_view_needing_disjunct(self, engine):
        engine.views.register(v1_def())
        u = engine.query(
            "Q(x) :- friend(p, x) ; Q(x) :- friend(x, p)"
        )
        result = u.execute(p=1)
        assert set(result.rows) == {(2,), (3,)}  # 1 follows 2; 2 and 3 follow 1

    def test_explain_analyze_on_view_plan(self, engine):
        engine.views.register(v1_def())
        analyzed = engine.explain_analyze(FOLLOWERS_NYC, p=1)
        assert set(analyzed.result.rows) == {(3,)}
        assert "view scan" in str(analyzed)

    def test_executing_view_plan_without_states_is_a_clear_error(self, engine):
        engine.views.register(v1_def())
        plan = engine.query(FOLLOWERS_NYC).plan(["p"])
        with pytest.raises(SchemaError, match="no state"):
            execute_plan(plan, engine.require_database(), {"p": 1})

    def test_replacing_database_rematerializes(self, engine):
        from repro import Database

        engine.views.register(v1_def())
        q = engine.query(FOLLOWERS_NYC)
        assert set(q.execute(p=1).rows) == {(3,)}
        engine.database = Database(
            engine.schema,
            {
                "person": [(1, "ann", "NYC"), (7, "gil", "NYC")],
                "friend": [(7, 1)],
                "visits": [],
            },
        )
        assert set(q.execute(p=1).rows) == {(7,)}


# -- incremental execution over view-assisted plans ------------------------


class TestIncrementalViewPlans:
    def test_refresh_matches_recompute_after_mixed_churn(self, engine):
        engine.views.register(v1_def())
        q = engine.query(FOLLOWERS_NYC)
        live = q.execute_incremental(p=1)
        db = engine.require_database()
        db.insert_many("friend", [(4, 1)])
        db.insert_many("person", [(6, "fay", "NYC")])
        db.insert_many("friend", [(6, 1)])
        db.delete_many("friend", [(3, 1)])
        live.refresh()
        assert live.last_mode == "delta"
        assert set(live.rows) == set(q.execute(p=1).rows) == {(4,), (6,)}

    def test_refresh_is_delta_bounded(self, engine):
        engine.views.register(v1_def())
        live = engine.execute_incremental(FOLLOWERS_NYC, p=1)
        db = engine.require_database()
        db.insert_many("friend", [(4, 1)])
        live.refresh()
        assert live.delta_bound is not None
        assert live.stats.tuples_accessed <= live.delta_bound
        assert live.stats.full_scans == 0

    def test_view_register_or_drop_rebases(self, engine):
        engine.views.register(v1_def())
        live = engine.execute_incremental(FOLLOWERS_NYC, p=1)
        engine.views.register(
            ViewDef("V2", "V2(url, visitor) :- visits(visitor, url)", "V2(url -> 8)")
        )
        live.refresh()
        assert live.last_mode == "rebase"
        assert set(live.rows) == {(3,)}

    def test_no_op_refresh_is_free(self, engine):
        engine.views.register(v1_def())
        live = engine.execute_incremental(FOLLOWERS_NYC, p=1)
        live.refresh()
        assert live.last_mode == "delta"
        assert live.stats.tuples_accessed == 0


# -- differential tests on seeded workloads --------------------------------


SIZES_AND_SEEDS = [(30, 0), (30, 5), (90, 2)]


def _view_engines():
    for persons, seed in SIZES_AND_SEEDS:
        engine = social_engine(persons, seed=seed)
        register_workload_views(engine)
        yield persons, seed, engine


def _parameter_values(bundle, persons, seed):
    if bundle.name == "Q5":
        data = generate_social_network(persons, seed=seed)
        return [{"u": url} for url in sorted({r[1] for r in data["visits"]})]
    return [{"p": pid} for pid in range(persons)]


@pytest.mark.parametrize("bundle", VIEW_QUERIES, ids=lambda b: b.name)
def test_view_assisted_matches_per_tuple_and_naive(bundle):
    for persons, seed, engine in _view_engines():
        prepared = bundle.prepare(engine)
        plan = prepared.plan(bundle.parameters)
        db = engine.require_database()
        states = engine.views.prepare(db, plan.view_relations)
        query = parse_query(bundle.query, schema=engine.schema)
        for values in _parameter_values(bundle, persons, seed):
            facade = set(prepared.execute(values).rows)
            ctx = ExecutionContext(db, views=states)
            batched = set(execute_plan(plan, ctx, values))
            per_tuple = set(
                execute_per_tuple(plan, ExecutionContext(db, views=states), values)
            )
            naive = set(query.evaluate(db, values))
            assert facade == batched == per_tuple == naive, (
                f"{bundle.name} disagrees at persons={persons} seed={seed} "
                f"values={values}"
            )


@pytest.mark.parametrize("bundle", VIEW_QUERIES, ids=lambda b: b.name)
def test_view_assisted_matches_naive_after_churn(bundle):
    for persons, seed, engine in _view_engines():
        prepared = bundle.prepare(engine)
        db = engine.require_database()
        data = generate_social_network(persons, seed=seed)
        query = parse_query(bundle.query, schema=engine.schema)
        for batch in generate_churn(data, batches=3, batch_size=12, seed=seed + 9):
            batch.apply(db)
            for values in _parameter_values(bundle, persons, seed)[::7]:
                result = prepared.execute(values)  # views refresh lazily
                naive = set(query.evaluate(db, values))
                assert set(result.rows) == naive, (
                    f"{bundle.name} diverged after churn at persons={persons} "
                    f"seed={seed} values={values}"
                )
                assert result.stats.tuples_accessed <= result.fanout_bound


@pytest.mark.parametrize("bundle", VIEW_QUERIES, ids=lambda b: b.name)
def test_view_assisted_access_is_bounded_independent_of_size(bundle):
    """The acceptance claim: the same constant fanout bound covers every
    execution at every database size -- the bound is a function of the
    declared rules only, and measured accesses stay within it."""
    bounds = set()
    for persons in (50, 500):
        engine = social_engine(persons)
        register_workload_views(engine)
        prepared = bundle.prepare(engine)
        data = generate_social_network(persons)
        values_stream = (
            [{"u": u} for u in sample_urls(data, 6)]
            if bundle.name == "Q5"
            else [{"p": p} for p in range(0, persons, persons // 6)]
        )
        for values in values_stream:
            result = prepared.execute(values)
            bounds.add(result.fanout_bound)
            assert result.stats.tuples_accessed <= result.fanout_bound
            assert result.stats.full_scans == 0
    assert len(bounds) == 1  # one database-size-independent bound


def test_incremental_view_queries_refresh_correctly_on_seeded_churn():
    for persons, seed, engine in _view_engines():
        db = engine.require_database()
        data = generate_social_network(persons, seed=seed)
        prepared = {b.name: b.prepare(engine) for b in VIEW_QUERIES}
        live = {
            name: p.execute_incremental(_parameter_values_one(name, persons, seed))
            for name, p in prepared.items()
        }
        for batch in generate_churn(data, batches=3, batch_size=10, seed=seed + 3):
            batch.apply(db)
            for name, result in live.items():
                result.refresh()
                assert result.last_mode == "delta"
                fresh = prepared[name].execute(
                    _parameter_values_one(name, persons, seed)
                )
                assert set(result.rows) == set(fresh.rows), (
                    f"{name} incremental diverged at persons={persons} "
                    f"seed={seed}"
                )


def _parameter_values_one(name, persons, seed):
    if name == "Q5":
        data = generate_social_network(persons, seed=seed)
        return {"u": sample_urls(data, 1, seed=seed)[0]}
    return {"p": persons // 2}


def test_workload_view_bounds_are_truthful_on_generated_instances():
    for persons, seed in SIZES_AND_SEEDS + [(400, 0)]:
        data = generate_social_network(persons, seed=seed)
        assert max_in_degree(data, "friend") <= DEFAULT_VIEW_BOUND
        assert max_in_degree(data, "visits") <= DEFAULT_VIEW_BOUND


def test_view_probe_operator_appears_for_fully_bound_view_atoms():
    # With both views registered, "who visited ?u AND follows ?p" binds
    # the visitor through V2 and then has the implied V1 atom fully
    # bound, so the pipeline carries a view *probe* next to the view scan.
    engine = Engine(SCHEMA_TEXT, ACCESS_TEXT, data=DATA)
    register_workload_views(engine, bound=8)
    text = "Q(y) :- visits(y, u), friend(y, p)"
    q = engine.query(text)
    plan = q.plan(["u", "p"])
    ops = pipeline_for(plan)
    assert any(isinstance(op, ViewScanOp) for op in ops)
    assert any(isinstance(op, ViewProbeOp) for op in ops)
    result = q.execute(u="url1", p=1)
    naive = parse_query(text, schema=engine.schema).evaluate(
        engine.require_database(), {"u": "url1", "p": 1}
    )
    assert set(result.rows) == set(naive) == {(2,)}

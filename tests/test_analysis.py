"""repro.analysis: the diagnostic framework, every pass family (one
triggering and one clean case per code), the API surfaces and the CLI."""

import pathlib

import pytest

from repro import (
    AccessSchema,
    Atom,
    DatabaseSchema,
    Engine,
    Span,
    UnionOfConjunctiveQueries,
    ViewDef,
    parse_query,
)
from repro.analysis import (
    ABSURD_BOUND,
    BLOWUP_THRESHOLD,
    CODES,
    Diagnostic,
    Report,
    Severity,
    advise_covering_view,
    analyze_access,
    analyze_plan,
    analyze_query,
    analyze_views,
    diagnostic,
    register_code,
    workload_report,
)
from repro.analysis.__main__ import main
from repro.core.plans import compile_plan

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

SCHEMA_TEXT = "person(pid, name, city); friend(pid1, pid2); visits(pid, url)"
ACCESS_TEXT = "person(pid -> 1); friend(pid1 -> 32); visits(pid -> 8)"

SCHEMA = DatabaseSchema.parse(SCHEMA_TEXT)


def access(text=ACCESS_TEXT):
    return AccessSchema.parse(SCHEMA, text)


def cq(text):
    return parse_query(text, schema=SCHEMA)


# -- the framework --------------------------------------------------------


def test_severity_orders_and_parses():
    assert Severity.HINT < Severity.WARNING < Severity.ERROR
    assert str(Severity.WARNING) == "warning"
    assert Severity.parse(" Error ") is Severity.ERROR
    with pytest.raises(ValueError, match="unknown severity"):
        Severity.parse("fatal")


def test_register_code_rejects_bad_shapes_and_duplicates():
    for bad in ("QRY1", "qry001", "QRYXXX", "001QRY", "QRY0001"):
        with pytest.raises(ValueError, match="three uppercase letters"):
            register_code(bad, Severity.HINT, "nope")
    with pytest.raises(ValueError, match="already registered"):
        register_code("QRY001", Severity.HINT, "again")


def test_diagnostic_requires_registered_code():
    with pytest.raises(ValueError, match="unregistered"):
        diagnostic("ZZZ999", "no such code")


def test_diagnostic_rendering_variants():
    span = Span(3, 7, 3, 12)
    full = diagnostic("QRY004", "dup", span=span, source="q.dl")
    assert str(full) == "q.dl:3:7: QRY004 warning: dup"
    assert str(diagnostic("QRY004", "dup", source="q.dl")) == (
        "q.dl: QRY004 warning: dup"
    )
    assert str(diagnostic("QRY004", "dup", span=span)) == (
        "3:7: QRY004 warning: dup"
    )
    assert str(diagnostic("QRY004", "dup")) == "QRY004 warning: dup"
    # Severity override (the registry only sets the default).
    assert diagnostic("QRY004", "dup", severity=Severity.HINT).severity is (
        Severity.HINT
    )


def test_diagnostic_shifted_moves_the_span_only():
    d = diagnostic("QRY004", "dup", span=Span(1, 5, 1, 9), source="q.dl")
    moved = d.shifted(4)
    assert moved.span == Span(5, 5, 5, 9)
    assert (moved.code, moved.message, moved.source) == ("QRY004", "dup", "q.dl")
    assert d.shifted(0) is d
    assert diagnostic("QRY004", "dup").shifted(4).span is None


def test_report_rollups_and_floors():
    report = Report()
    assert not report and len(report) == 0
    assert report.max_severity is None
    assert report.summary() == "no diagnostics"
    assert report.ok() and report.ok(Severity.HINT)

    report.add(diagnostic("QRY001", "once"))
    report.extend(
        [diagnostic("QRY004", "dup"), diagnostic("SYN001", "broken")]
    )
    assert len(report) == 3
    assert [d.code for d in report] == ["QRY001", "QRY004", "SYN001"]
    assert report.by_code("QRY004") == (report.diagnostics[1],)
    assert report.hints == (report.diagnostics[0],)
    assert report.warnings == (report.diagnostics[1],)
    assert report.errors == (report.diagnostics[2],)
    assert report.at_least(Severity.WARNING) == report.diagnostics[1:]
    assert report.max_severity is Severity.ERROR
    assert not report.ok()  # an error breaches every floor
    assert report.summary() == "1 error, 1 warning, 1 hint"
    assert str(report.diagnostics[1]) in report.render()


def test_report_add_rejects_non_diagnostics():
    with pytest.raises(TypeError):
        Report().add("QRY001: not a Diagnostic")


# -- satellite: spans ride from the parser through the AST ----------------


def test_parsed_atoms_and_equalities_carry_spans():
    q = cq("Q(y) :- friend(p, y), person(y, n, 'NYC'), p = 7")
    spans = [atom.span for atom in q.body]
    assert all(isinstance(s, Span) for s in spans)
    assert spans[0].line == 1 and spans[0].column == 9
    assert spans[1].column > spans[0].column
    assert q.equalities[0].span is not None


def test_programmatic_atoms_have_no_span_and_spans_do_not_affect_eq():
    assert Atom("friend", ["?p", "?x"]).span is None
    parsed = cq("Q(y) :- friend(p, y), person(y, n, 'NYC')")
    assert parse_query(str(parsed), schema=SCHEMA) == parsed  # spans differ


# -- QRY ------------------------------------------------------------------


def test_qry001_single_use_variable():
    report = analyze_query(
        cq("Q(y) :- friend(p, y), person(y, n, 'NYC')"), parameters=["p"]
    )
    (d,) = report.by_code("QRY001")
    assert "?n" in d.message and d.span is not None
    # Returned, parameter and joined variables never fire.
    clean = analyze_query(
        cq("Q(y, n) :- friend(p, y), person(y, n, 'NYC')"), parameters=["p"]
    )
    assert not clean.by_code("QRY001")


def test_qry002_cartesian_product():
    report = analyze_query(cq("Q(x, y) :- person(x, n, c), person(y, m, d)"))
    (d,) = report.by_code("QRY002")
    assert "2 disconnected join components" in d.message
    assert not analyze_query(
        cq("Q(u) :- friend(p, y), visits(y, u)")
    ).by_code("QRY002")
    # An equality connects components: x = y joins them.
    bridged = cq("Q(x, y) :- friend(x, a), friend(y, b), a = b")
    assert not analyze_query(bridged).by_code("QRY002")


def test_qry003_parameter_equated_away():
    report = analyze_query(
        cq("Q(y) :- friend(p, y), p = 7"), parameters=["p"]
    )
    (d,) = report.by_code("QRY003")
    assert "?p" in d.message and "7" in d.message
    # The same query without declaring p a parameter is fine.
    assert not analyze_query(cq("Q(y) :- friend(p, y), p = 7")).by_code(
        "QRY003"
    )


def test_qry004_duplicate_atom():
    report = analyze_query(
        cq("Q(y) :- friend(p, y), friend(p, y), person(y, n, 'NYC')")
    )
    (d,) = report.by_code("QRY004")
    assert "friend(?p, ?y)" in d.message
    assert not analyze_query(
        cq("Q(z) :- friend(p, y), friend(y, z)")
    ).by_code("QRY004")


def test_qry005_union_selectivity_needs_access():
    cheap = cq("Q(y) :- friend(p, y)")
    costly = cq("Q(z) :- friend(p, x), friend(x, y), friend(y, z)")
    union = UnionOfConjunctiveQueries([cheap, costly])
    report = analyze_query(union, access(), parameters=["p"])
    (d,) = report.by_code("QRY005")
    assert "disjunct 2" in d.message
    # Without the access schema the check is skipped entirely.
    assert not analyze_query(union, parameters=["p"]).by_code("QRY005")
    # Comparable branches stay quiet.
    balanced = UnionOfConjunctiveQueries(
        [cheap, cq("Q(u) :- visits(p, u)")]
    )
    assert not analyze_query(
        balanced, access(), parameters=["p"]
    ).by_code("QRY005")


def test_qry006_unsatisfiable():
    report = analyze_query(cq("Q(y) :- friend(p, y), p = 'NYC', p = 'SF'"))
    (d,) = report.by_code("QRY006")
    assert "unsatisfiable" in d.message
    assert not analyze_query(
        cq("Q(y) :- friend(p, y), p = 'NYC'")
    ).by_code("QRY006")


# -- ACC ------------------------------------------------------------------


def test_acc001_relation_without_rules():
    report = analyze_access(access("person(pid -> 1); friend(pid1 -> 32)"))
    (d,) = report.by_code("ACC001")
    assert "'visits'" in d.message
    assert not analyze_access(access()).by_code("ACC001")


def test_acc002_shadowed_rule():
    report = analyze_access(
        access("person(pid -> 1); friend(pid1 -> 32); "
               "friend(pid1 -> 64); visits(pid -> 8)")
    )
    (d,) = report.by_code("ACC002")
    assert "friend(pid1 -> 64)" in d.message  # the worse rule is flagged
    assert "friend(pid1 -> 32)" in d.message  # ... naming its shadow
    # Different inputs: neither shadows the other.
    assert not analyze_access(
        access("person(pid -> 1); person(name -> 40); "
               "friend(pid1 -> 32); visits(pid -> 8)")
    ).by_code("ACC002")


def test_acc003_absurd_bound():
    report = analyze_access(
        access(f"person(pid -> {ABSURD_BOUND}); friend(pid1 -> 32); "
               "visits(pid -> 8)")
    )
    (d,) = report.by_code("ACC003")
    assert str(ABSURD_BOUND) in d.message
    assert not analyze_access(access()).by_code("ACC003")


def test_acc004_duplicate_rule():
    report = analyze_access(
        access("person(pid -> 1); friend(pid1 -> 32); "
               "visits(pid -> 8); visits(pid -> 8)")
    )
    (d,) = report.by_code("ACC004")
    assert "visits(pid -> 8)" in d.message
    # Exact duplicates are ACC004's business, not ACC002's.
    assert not report.by_code("ACC002")
    assert not analyze_access(access()).by_code("ACC004")


def test_acc_clean_schema_is_clean():
    assert not analyze_access(access())


# -- PLN ------------------------------------------------------------------


def test_pln001_fanout_blowup_with_breakdown():
    wide = access("person(pid -> 1); friend(pid1 -> 1000); visits(pid -> 8)")
    plan = compile_plan(
        cq("Q(z) :- friend(p, y), friend(y, z), person(z, n, 'NYC')"),
        wide,
        ["p"],
    )
    assert plan.fanout_bound > BLOWUP_THRESHOLD
    (d,) = analyze_plan(plan).by_code("PLN001")
    assert "1 x 1000 (friend) x 1000 (friend)" in d.message
    # The workload-sized bound stays quiet.
    small = compile_plan(
        cq("Q(z) :- friend(p, y), friend(y, z), person(z, n, 'NYC')"),
        access(),
        ["p"],
    )
    assert not analyze_plan(small).by_code("PLN001")


def test_pln002_probe_after_embedded_fetch():
    embedded = access(
        "person(pid -> 1); friend(pid1 -> 32); visits(pid -> url, 8)"
    )
    # The embedded fetch binds ?u but does not verify the atom, so the
    # planner emits a probe on the same atom right after it.
    plan = compile_plan(
        cq("Q(u) :- friend(p, y), visits(y, u)"), embedded, ["p"]
    )
    (d,) = analyze_plan(plan).by_code("PLN002")
    assert "visits(pid -> url, 8)" in d.message
    assert "256 probe accesses" in d.message
    plain = compile_plan(
        cq("Q(u) :- friend(p, y), visits(y, u)"), access(), ["p"]
    )
    assert not analyze_plan(plain).by_code("PLN002")


def test_pln003_dominant_step():
    skewed = access(
        "person(pid -> 1); friend(pid1 -> 2); visits(pid -> 1000)"
    )
    plan = compile_plan(
        cq("Q(u) :- friend(p, y), visits(y, u)"), skewed, ["p"]
    )
    (d,) = analyze_plan(plan).by_code("PLN003")
    assert "99%" in d.message and "'visits'" in d.message
    balanced = compile_plan(
        cq("Q(u) :- friend(p, y), visits(y, u)"), access(), ["p"]
    )
    assert not analyze_plan(balanced).by_code("PLN003")


def test_step_costs_sum_to_the_fanout_bound():
    plan = compile_plan(
        cq("Q(z) :- friend(p, y), friend(y, z), person(z, n, 'NYC')"),
        access(),
        ["p"],
    )
    costs = plan.step_costs()
    assert sum(c.accesses for c in costs) == plan.fanout_bound
    assert all(c.branches_in >= 1 for c in costs)


# -- VIW ------------------------------------------------------------------


def test_viw001_view_matching_no_query():
    dead = ViewDef("V_dead", "V_dead(p, u) :- visits(p, u)")
    used = ViewDef("V_used", "V_used(p, y) :- friend(y, p)")
    queries = (cq("Q(y) :- friend(p, y)"),)
    report = analyze_views([dead, used], queries)
    (d,) = report.by_code("VIW001")
    assert "'V_dead'" in d.message
    # Without workload queries the pass cannot judge usefulness.
    assert not analyze_views([dead]).by_code("VIW001")


def test_viw002_equivalent_view_bodies():
    v1 = ViewDef("V1", "V1(p, y) :- friend(y, p)")
    v2 = ViewDef("V2", "V2(a, b) :- friend(b, a)")  # renamed copy
    report = analyze_views([v1, v2])
    (d,) = report.by_code("VIW002")
    assert "'V1'" in d.message and "'V2'" in d.message
    other = ViewDef("V3", "V3(p, u) :- visits(p, u)")
    assert not analyze_views([v1, other]).by_code("VIW002")


def test_viw003_covering_view_advice():
    # friend(f, p) with p given needs the *inverted* index: exactly V1.
    report = advise_covering_view(cq("Q(f) :- friend(f, p)"), access(), ["p"])
    (d,) = report.by_code("VIW003")
    assert 'V_friend(?p, ?f) :- friend(?f, ?p)' in d.message
    assert 'V_friend(p -> 64)' in d.message
    # A controlled query gets no advice.
    assert not advise_covering_view(
        cq("Q(y) :- friend(p, y)"), access(), ["p"]
    )


# -- the API surfaces -----------------------------------------------------


def engine():
    return Engine(SCHEMA, access())


def test_prepared_diagnostics():
    q = engine().query("Q(y) :- friend(p, y), person(y, n, 'NYC')")
    report = q.diagnostics(["p"])
    assert [d.code for d in report] == ["QRY001"]
    assert report.ok(Severity.WARNING)


def test_engine_analyze_advises_views_for_uncontrolled_queries():
    report = engine().analyze([("Q(f) :- friend(f, p)", ("p",))])
    assert report.by_code("VIW003")


def test_engine_analyze_flags_dead_views():
    eng = engine()
    eng.views.register("V_dead", "V_dead(p, u) :- visits(p, u)", "V_dead(p -> 8)")
    report = eng.analyze(["Q(y) :- friend(p, y)"])
    assert report.by_code("VIW001")


def test_workload_is_warning_clean_with_exactly_the_known_hints():
    report = workload_report()
    assert report.ok(Severity.WARNING)
    assert {d.code for d in report} == {"QRY001", "QRY007", "ACC005"}
    # 3 deliberate ?n placeholders, plus the Q4/Q5 base-access
    # uncontrollability traces and their missing-rule proposals (both
    # queries execute via views, hence hints, not warnings).
    assert len(report.hints) == 7
    assert len(report.by_code("QRY007")) == 2
    assert len(report.by_code("ACC005")) == 2


def test_workload_certifies_clean():
    assert workload_report(certify=True).ok(Severity.WARNING)


# -- the CLI --------------------------------------------------------------


def test_cli_flags_the_bad_fixture(capsys):
    exit_code = main(
        [str(FIXTURES / "bad_queries.dl"), "--schema", SCHEMA_TEXT]
    )
    out = capsys.readouterr().out
    assert exit_code == 1  # SYN001 is an error even without --strict
    for code in ("QRY002", "QRY004", "QRY006", "SYN001"):
        assert code in out
    # Spans are shifted to *file* coordinates.
    assert "bad_queries.dl:3:23: QRY004" in out
    assert "1 error, 3 warnings" in out


def test_cli_passes_the_clean_fixture_even_strict(capsys):
    path = str(FIXTURES / "clean_queries.dl")
    assert main([path, "--schema", SCHEMA_TEXT]) == 0
    assert (
        main([path, "--schema", SCHEMA_TEXT, "--access", ACCESS_TEXT,
              "--params", "p", "--strict"])
        == 0
    )
    out = capsys.readouterr().out
    assert "QRY001" in out  # hints print but stay below the strict floor


def test_cli_workload_gate_is_strict_clean(capsys):
    assert main(["--workload", "--strict", "--certify"]) == 0
    assert "7 hints" in capsys.readouterr().out


def test_cli_strict_fails_on_warnings(tmp_path, capsys):
    f = tmp_path / "warn.dl"
    f.write_text("Q(y) :- friend(p, y), friend(p, y)\n")
    assert main([str(f), "--schema", SCHEMA_TEXT]) == 0
    assert main([str(f), "--schema", SCHEMA_TEXT, "--strict"]) == 1
    capsys.readouterr()


def test_cli_advises_views_for_uncontrolled_file_queries(tmp_path, capsys):
    f = tmp_path / "uncontrolled.dl"
    f.write_text("Q(f) :- friend(f, p)\n")
    main([str(f), "--schema", SCHEMA_TEXT, "--access", ACCESS_TEXT,
          "--params", "p"])
    assert "VIW003" in capsys.readouterr().out


def test_cli_codes_table_lists_every_code(capsys):
    assert main(["--codes"]) == 0
    out = capsys.readouterr().out
    for code in CODES:
        assert code in out
    assert len(CODES) == 33  # QRY 7, ACC 5, PLN 3, VIW 5, CRT 7, CST 3, INC 2, SYN 1


def test_cli_missing_file_is_a_syntax_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope.dl")]) == 1
    assert "SYN001" in capsys.readouterr().out


def test_cli_argument_validation():
    with pytest.raises(SystemExit):
        main(["--access", ACCESS_TEXT])  # --access requires --schema
    with pytest.raises(SystemExit):
        main([])  # nothing to analyze


def test_cli_bad_schema_text_is_reported(capsys):
    assert main(["--workload", "--schema", "person(pid"]) == 1
    out = capsys.readouterr().out
    assert "--schema: SYN001" in out

"""Tests for the synthetic social-network workload generator and the
ready-made Q1/Q2/Q3 query bundles."""

import pytest

from repro.workloads import (
    CITIES,
    Q1,
    Q2,
    Q3,
    RUNNING_QUERIES,
    QueryBundle,
    generate_social_network,
    sample_pids,
    social_access_text,
    social_engine,
)


class TestGenerator:
    def test_deterministic_for_same_seed(self):
        assert generate_social_network(40, seed=5) == generate_social_network(
            40, seed=5
        )

    def test_different_seeds_differ(self):
        assert generate_social_network(40, seed=5) != generate_social_network(
            40, seed=6
        )

    def test_size_scales_person_count(self):
        for persons in (1, 10, 250):
            data = generate_social_network(persons, seed=0)
            assert len(data["person"]) == persons

    def test_caps_are_enforced(self):
        data = generate_social_network(200, seed=2, max_friends=3, max_visits=2)
        degrees: dict[object, int] = {}
        for pid1, _ in data["friend"]:
            degrees[pid1] = degrees.get(pid1, 0) + 1
        assert max(degrees.values()) <= 3
        visits: dict[object, int] = {}
        for pid, _ in data["visits"]:
            visits[pid] = visits.get(pid, 0) + 1
        assert max(visits.values()) <= 2

    def test_skew_produces_hubs_and_leaves(self):
        data = generate_social_network(500, seed=0, skew=1.1)
        degrees: dict[object, int] = {}
        for pid1, _ in data["friend"]:
            degrees[pid1] = degrees.get(pid1, 0) + 1
        assert max(degrees.values()) > min(degrees.values())

    def test_cities_come_from_the_pool(self):
        data = generate_social_network(50, seed=0)
        assert {row[2] for row in data["person"]} <= set(CITIES)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            generate_social_network(0)
        with pytest.raises(ValueError):
            generate_social_network(10, max_friends=0)
        with pytest.raises(ValueError):
            generate_social_network(10, skew=0)

    def test_single_person_has_no_friends(self):
        data = generate_social_network(1, seed=0)
        assert data["friend"] == []


class TestBundles:
    def test_all_bundles_are_controlled_by_their_parameters(self):
        engine = social_engine(30, seed=0)
        for bundle in RUNNING_QUERIES:
            prepared = bundle.prepare(engine)
            assert prepared.is_controlled(bundle.parameters), bundle.name

    def test_bundle_engine_is_self_contained(self):
        engine = Q1.engine(generate_social_network(30, seed=0))
        result = engine.query(Q1.query).execute(p=0)
        assert result.stats.full_scans == 0

    def test_bundles_render(self):
        for bundle in RUNNING_QUERIES:
            assert bundle.name in str(bundle)

    def test_bundles_are_distinct_named_queries(self):
        assert {Q1.name, Q2.name, Q3.name} == {"Q1", "Q2", "Q3"}
        assert isinstance(Q1, QueryBundle)

    def test_access_text_embeds_caps(self):
        text = social_access_text(max_friends=7, max_visits=3)
        assert "friend(pid1 -> 7)" in text
        assert "visits(pid -> 3)" in text


def test_sample_pids_in_range_and_deterministic():
    pids = sample_pids(50, 10, seed=1)
    assert pids == sample_pids(50, 10, seed=1)
    assert len(pids) == 10
    assert all(0 <= pid < 50 for pid in pids)


class TestChurn:
    """The seeded churn stream: deterministic, cap-honoring, cleanly
    applicable in bulk."""

    def _stream(self, persons=60, seed=3, **kwargs):
        from repro.workloads import generate_churn, generate_social_network

        data = generate_social_network(persons, seed=seed)
        return data, generate_churn(data, batches=5, batch_size=12, seed=seed, **kwargs)

    def test_deterministic_for_same_seed(self):
        _, first = self._stream()
        _, second = self._stream()
        assert first == second

    def test_different_seeds_differ(self):
        from repro.workloads import generate_churn, generate_social_network

        data = generate_social_network(60, seed=3)
        a = generate_churn(data, batches=5, batch_size=12, seed=1)
        b = generate_churn(data, batches=5, batch_size=12, seed=2)
        assert a != b

    def test_batches_have_the_requested_size(self):
        _, stream = self._stream()
        assert len(stream) == 5
        assert all(batch.size == 12 for batch in stream)

    def test_strict_apply_passes_and_degree_caps_hold(self):
        from repro.workloads import (
            DEFAULT_MAX_FRIENDS,
            DEFAULT_MAX_VISITS,
            social_engine,
        )

        engine = social_engine(60, seed=3)
        db = engine.require_database()
        _, stream = self._stream()
        for batch in stream:
            deleted, inserted = batch.apply(db, strict=True)
            assert deleted + inserted == batch.size
            for relation, cap in (
                ("friend", DEFAULT_MAX_FRIENDS),
                ("visits", DEFAULT_MAX_VISITS),
            ):
                degrees: dict[object, int] = {}
                for source, _target in db.scan(relation):
                    degrees[source] = degrees.get(source, 0) + 1
                assert all(n <= cap for n in degrees.values()), relation

    def test_no_tuple_both_inserted_and_deleted_in_one_batch(self):
        _, stream = self._stream()
        for batch in stream:
            for relation, deleted in batch.deletes.items():
                inserted = set(batch.inserts.get(relation, ()))
                assert not inserted & set(deleted)

    def test_delete_only_stream(self):
        _, stream = self._stream(delete_fraction=1.0)
        assert all(not batch.inserts for batch in stream)
        assert any(batch.deletes for batch in stream)

    def test_insert_only_stream(self):
        _, stream = self._stream(delete_fraction=0.0)
        assert all(not batch.deletes for batch in stream)

    def test_churn_only_touches_edge_relations(self):
        from repro.workloads import CHURN_RELATIONS

        _, stream = self._stream()
        for batch in stream:
            touched = set(batch.deletes) | set(batch.inserts)
            assert touched <= set(CHURN_RELATIONS)

    def test_rejects_bad_arguments(self):
        import pytest
        from repro.workloads import generate_churn, generate_social_network

        data = generate_social_network(10, seed=0)
        with pytest.raises(ValueError):
            generate_churn(data, batches=-1, batch_size=5)
        with pytest.raises(ValueError):
            generate_churn(data, batches=1, batch_size=0)
        with pytest.raises(ValueError):
            generate_churn(data, batches=1, batch_size=5, delete_fraction=1.5)
        with pytest.raises(ValueError):
            generate_churn({"person": []}, batches=1, batch_size=5)

    def test_batch_renders(self):
        _, stream = self._stream()
        assert str(stream[0]).startswith("churn(")


def test_churn_disjointness_holds_across_many_seeds():
    """The documented invariant -- a batch never both deletes and inserts
    one tuple -- must hold for arbitrary seeds, not just the fixture's."""
    from repro.workloads import generate_churn, generate_social_network

    for seed in range(30):
        data = generate_social_network(40, seed=seed)
        for batch in generate_churn(data, batches=4, batch_size=14, seed=seed):
            for relation, deleted in batch.deletes.items():
                assert not set(deleted) & set(batch.inserts.get(relation, ()))

"""Tests for the synthetic social-network workload generator and the
ready-made Q1/Q2/Q3 query bundles."""

import pytest

from repro.workloads import (
    CITIES,
    Q1,
    Q2,
    Q3,
    RUNNING_QUERIES,
    QueryBundle,
    generate_social_network,
    sample_pids,
    social_access_text,
    social_engine,
)


class TestGenerator:
    def test_deterministic_for_same_seed(self):
        assert generate_social_network(40, seed=5) == generate_social_network(
            40, seed=5
        )

    def test_different_seeds_differ(self):
        assert generate_social_network(40, seed=5) != generate_social_network(
            40, seed=6
        )

    def test_size_scales_person_count(self):
        for persons in (1, 10, 250):
            data = generate_social_network(persons, seed=0)
            assert len(data["person"]) == persons

    def test_caps_are_enforced(self):
        data = generate_social_network(200, seed=2, max_friends=3, max_visits=2)
        degrees: dict[object, int] = {}
        for pid1, _ in data["friend"]:
            degrees[pid1] = degrees.get(pid1, 0) + 1
        assert max(degrees.values()) <= 3
        visits: dict[object, int] = {}
        for pid, _ in data["visits"]:
            visits[pid] = visits.get(pid, 0) + 1
        assert max(visits.values()) <= 2

    def test_skew_produces_hubs_and_leaves(self):
        data = generate_social_network(500, seed=0, skew=1.1)
        degrees: dict[object, int] = {}
        for pid1, _ in data["friend"]:
            degrees[pid1] = degrees.get(pid1, 0) + 1
        assert max(degrees.values()) > min(degrees.values())

    def test_cities_come_from_the_pool(self):
        data = generate_social_network(50, seed=0)
        assert {row[2] for row in data["person"]} <= set(CITIES)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            generate_social_network(0)
        with pytest.raises(ValueError):
            generate_social_network(10, max_friends=0)
        with pytest.raises(ValueError):
            generate_social_network(10, skew=0)

    def test_single_person_has_no_friends(self):
        data = generate_social_network(1, seed=0)
        assert data["friend"] == []


class TestBundles:
    def test_all_bundles_are_controlled_by_their_parameters(self):
        engine = social_engine(30, seed=0)
        for bundle in RUNNING_QUERIES:
            prepared = bundle.prepare(engine)
            assert prepared.is_controlled(bundle.parameters), bundle.name

    def test_bundle_engine_is_self_contained(self):
        engine = Q1.engine(generate_social_network(30, seed=0))
        result = engine.query(Q1.query).execute(p=0)
        assert result.stats.full_scans == 0

    def test_bundles_render(self):
        for bundle in RUNNING_QUERIES:
            assert bundle.name in str(bundle)

    def test_bundles_are_distinct_named_queries(self):
        assert {Q1.name, Q2.name, Q3.name} == {"Q1", "Q2", "Q3"}
        assert isinstance(Q1, QueryBundle)

    def test_access_text_embeds_caps(self):
        text = social_access_text(max_friends=7, max_visits=3)
        assert "friend(pid1 -> 7)" in text
        assert "visits(pid -> 3)" in text


def test_sample_pids_in_range_and_deterministic():
    pids = sample_pids(50, 10, seed=1)
    assert pids == sample_pids(50, 10, seed=1)
    assert len(pids) == 10
    assert all(0 <= pid < 50 for pid in pids)

"""Tests for incremental scale independence (repro.incremental).

The heart is differential: after every churn batch, ``refresh()`` must
agree exactly with a from-scratch execution on the mutated database --
through the batched pipeline, the per-tuple reference path and naive
active-domain evaluation -- for mixed, delete-only and insert-only
streams.  Around that: derivation counting under shared answers,
watermark/no-op semantics, the delta access bound, unions, embedded-rule
rejection and the access-schema-change rebase.
"""

import pytest

from repro import IncrementalError, IncrementalResult, delta_fanout_bound
from repro.core.executor import execute_per_tuple, execute_plan
from repro.logic.parser import parse_query
from repro.workloads import (
    RUNNING_QUERIES,
    generate_churn,
    generate_social_network,
    social_engine,
)

CHURN_CASES = [
    ("mixed", 0.5),
    ("delete_only", 1.0),
    ("insert_only", 0.0),
]


@pytest.mark.parametrize("bundle", RUNNING_QUERIES, ids=lambda b: b.name)
@pytest.mark.parametrize("label, delete_fraction", CHURN_CASES, ids=lambda c: str(c))
def test_refresh_matches_from_scratch_execution(bundle, label, delete_fraction):
    for persons, seed in ((40, 0), (90, 3)):
        engine = social_engine(persons, seed=seed)
        db = engine.require_database()
        prepared = bundle.prepare(engine)
        plan = prepared.plan(bundle.parameters)
        query = parse_query(bundle.query, schema=engine.schema)
        param = bundle.parameters[0]
        pids = range(0, persons, 5)
        live = {pid: prepared.execute_incremental({param: pid}) for pid in pids}
        stream = generate_churn(
            generate_social_network(persons, seed=seed),
            batches=4,
            batch_size=12,
            seed=seed + 1,
            delete_fraction=delete_fraction,
        )
        for batch in stream:
            batch.apply(db, strict=True)
            for pid in pids:
                result = live[pid].refresh()
                refreshed = set(result.rows)
                batched = set(execute_plan(plan, db, {param: pid}))
                per_tuple = set(execute_per_tuple(plan, db, {param: pid}))
                naive = set(query.evaluate(db, {param: pid}))
                assert refreshed == batched == per_tuple == naive, (
                    f"{bundle.name}/{label} diverges at persons={persons} "
                    f"seed={seed} pid={pid}"
                )


@pytest.mark.parametrize("bundle", RUNNING_QUERIES, ids=lambda b: b.name)
def test_refresh_stays_within_delta_bound_and_never_scans(bundle):
    persons, seed = 120, 1
    engine = social_engine(persons, seed=seed)
    db = engine.require_database()
    prepared = bundle.prepare(engine)
    plans = (prepared.plan(bundle.parameters),)
    param = bundle.parameters[0]
    live = {pid: prepared.execute_incremental({param: pid}) for pid in range(0, 40, 3)}
    stream = generate_churn(
        generate_social_network(persons, seed=seed), batches=3, batch_size=10, seed=9
    )
    for batch in stream:
        watermark = db.change_log.watermark
        batch.apply(db)
        delta = db.change_log.net_since(watermark)
        sizes = {relation: len(rows) for relation, rows in delta.items()}
        bound = sum(delta_fanout_bound(plan, sizes) for plan in plans)
        for result in live.values():
            result.refresh()
            assert result.stats.tuples_accessed <= bound
            assert result.stats.full_scans == 0
            assert result.delta_bound <= bound


def test_refresh_access_depends_on_slice_not_database_size():
    """The same churn batch against a 30x bigger database must not cost a
    single extra tuple: the delta bound is database-size independent and
    the measured accesses respect it at both scales."""
    bounds = {}
    for persons in (100, 3000):
        engine = social_engine(persons, seed=0)
        db = engine.require_database()
        prepared = RUNNING_QUERIES[2].prepare(engine)  # Q3, the deepest plan
        live = prepared.execute_incremental(p=1)
        db.insert_many("friend", [(1, 7), (7, 2)])
        db.delete_many("friend", db.lookup("friend", {0: 2})[:1])
        live.refresh()
        bounds[persons] = (live.delta_bound, live.stats.tuples_accessed)
    assert bounds[100][0] == bounds[3000][0]  # identical slice -> identical bound
    assert bounds[3000][1] <= bounds[3000][0]


def test_counting_keeps_answers_with_surviving_derivations():
    """An answer produced by two derivations must survive the deletion of
    one of them -- the counting semantics deletions require."""
    engine = social_engine(2, seed=0)  # tiny shell; we control the data
    db = engine.require_database()
    db.delete_many("friend", db.scan("friend"))
    db.delete_many("person", db.scan("person"))
    db.insert_many("person", [(0, "a", "NYC"), (1, "b", "NYC"), (2, "c", "NYC")])
    db.insert_many("friend", [(0, 1), (1, 2), (0, 2), (2, 2)])
    # Q3: friends-of-friends of 0 in NYC; answer 2 is derivable via
    # 0->1->2 and via 0->2->2.
    prepared = engine.query(RUNNING_QUERIES[2].query)
    live = prepared.execute_incremental(p=0)
    assert (2,) in live.rows
    db.delete_many("friend", [(1, 2)])
    live.refresh()
    assert (2,) in live.rows  # the 0->2->2 derivation survives
    db.delete_many("friend", [(2, 2)])
    live.refresh()
    assert (2,) not in live.rows  # the last derivation died
    assert set(live.rows) == set(prepared.execute(p=0).rows)


def test_noop_refresh_costs_zero_accesses_and_advances_nothing():
    engine = social_engine(50, seed=2)
    prepared = RUNNING_QUERIES[0].prepare(engine)
    live = prepared.execute_incremental(p=3)
    watermark = live.watermark
    rows = live.rows
    live.refresh()
    assert live.watermark == watermark
    assert live.rows == rows
    assert live.stats.tuples_accessed == 0
    assert live.stats.indexed_lookups == 0
    assert live.delta_bound == 0


def test_watermark_advances_past_applied_changes():
    engine = social_engine(50, seed=2)
    db = engine.require_database()
    prepared = RUNNING_QUERIES[0].prepare(engine)
    live = prepared.execute_incremental(p=3)
    before = live.watermark
    db.insert_many("friend", [(3, 49)])
    assert db.change_log.watermark == before + 1
    live.refresh()
    assert live.watermark == before + 1


def test_irrelevant_changes_refresh_for_free():
    """A slice that only touches relations outside the query costs zero
    accesses."""
    engine = social_engine(50, seed=2)
    db = engine.require_database()
    prepared = RUNNING_QUERIES[0].prepare(engine)  # Q1: friend + person only
    live = prepared.execute_incremental(p=3)
    db.insert_many("visits", [(3, "url999")])
    live.refresh()
    assert live.stats.tuples_accessed == 0
    assert set(live.rows) == set(prepared.execute(p=3).rows)


def test_union_query_refreshes_per_disjunct():
    engine = social_engine(80, seed=4)
    db = engine.require_database()
    prepared = engine.query(
        "Q(y) :- friend(p, y), person(y, n, 'NYC') ; "
        "Q(y) :- friend(p, y), person(y, n, 'SF')"
    )
    live = prepared.execute_incremental(p=1)
    stream = generate_churn(
        generate_social_network(80, seed=4), batches=3, batch_size=8, seed=5
    )
    for batch in stream:
        batch.apply(db)
        live.refresh()
        assert set(live.rows) == set(prepared.execute(p=1).rows)


def test_embedded_access_rule_is_rejected():
    engine = social_engine(20, seed=0)
    engine.access = (
        "person(pid -> 1); friend(pid1 -> pid2, 32); visits(pid -> 8)"
    )
    prepared = RUNNING_QUERIES[0].prepare(engine)
    with pytest.raises(IncrementalError) as excinfo:
        prepared.execute_incremental(p=1)
    # The message names the offending relation and rule, so the fix
    # (declare a plain rule) is actionable without reading the plan.
    message = str(excinfo.value)
    assert "'friend'" in message
    assert "friend(pid1 -> pid2, 32)" in message
    assert "plain rule" in message


def test_access_schema_change_rebases_on_refresh():
    engine = social_engine(60, seed=1)
    db = engine.require_database()
    prepared = RUNNING_QUERIES[0].prepare(engine)
    live = prepared.execute_incremental(p=2)
    db.insert_many("friend", [(2, 59)])
    engine.access = "person(pid -> 1); friend(pid1 -> 64); visits(pid -> 8)"
    live.refresh()
    assert live.last_mode == "rebase"
    assert set(live.rows) == set(prepared.execute(p=2).rows)
    # After the rebase, plain delta refreshes resume.
    db.insert_many("friend", [(2, 58)])
    live.refresh()
    assert live.last_mode == "delta"
    assert set(live.rows) == set(prepared.execute(p=2).rows)


def test_refresh_analyze_records_delta_pipeline_profiles():
    engine = social_engine(60, seed=1)
    db = engine.require_database()
    prepared = RUNNING_QUERIES[2].prepare(engine)
    live = prepared.execute_incremental(p=2)
    db.insert_many("friend", [(2, 59), (59, 3)])
    live.refresh(analyze=True)
    assert live.profiles  # one PlanProfile per plan
    operators = [op.operator for profile in live.profiles for op in profile.operators]
    assert any(op.startswith("Δ[") for op in operators)
    rendered = str(live.explain_analyze())
    assert "Δ[1]" in rendered
    assert "rows" in rendered
    # The default refresh skips profile bookkeeping (the hot path).
    db.insert_many("friend", [(2, 58)])
    live.refresh()
    assert live.profiles == ()


def test_engine_one_shot_and_refresh_sugar():
    engine = social_engine(40, seed=3)
    live = engine.execute_incremental("Q(y) :- friend(p, y)", p=1)
    assert isinstance(live, IncrementalResult)
    engine.database.insert_many("friend", [(1, 39)])
    assert engine.refresh(live) is live
    assert (39,) in live


def test_result_behaves_like_a_sequence():
    engine = social_engine(40, seed=3)
    live = engine.execute_incremental("Q(y) :- friend(p, y)", p=1)
    rows = live.rows
    assert len(live) == len(rows)
    assert list(live) == list(rows)
    assert all(row in live for row in rows)
    assert "nope" not in live
    assert bool(live) == bool(rows)
    assert live.columns == ("y",)
    assert live.to_dicts() == [{"y": row[0]} for row in rows]
    assert "IncrementalResult" in repr(live)


def test_gained_rows_append_and_lost_rows_drop_in_place():
    engine = social_engine(2, seed=0)
    db = engine.require_database()
    db.delete_many("friend", db.scan("friend"))
    db.insert_many("friend", [(0, 10), (0, 11)])
    live = engine.execute_incremental("Q(y) :- friend(p, y)", p=0)
    assert live.rows == ((10,), (11,))
    db.delete_many("friend", [(0, 10)])
    db.insert_many("friend", [(0, 12)])
    live.refresh()
    assert live.rows == ((11,), (12,))


def test_constant_wrapped_parameter_values_refresh_correctly():
    """Regression: parameter values arriving as Constant wrappers must be
    unwrapped once at the entry point, so the in-memory delta joins see
    the same plain values the database stores."""
    from repro import Constant

    engine = social_engine(30, seed=0)
    db = engine.require_database()
    prepared = engine.query("Q(y) :- friend(p, y)")
    live = prepared.execute_incremental(p=Constant(1))
    assert set(live.rows) == set(prepared.execute(p=1).rows)
    db.insert_many("friend", [(1, 29)])
    live.refresh()
    assert (29,) in live.rows
    assert set(live.rows) == set(prepared.execute(p=Constant(1)).rows)

"""Tests for the QSI and QDSI deciders."""

import pytest

from repro import (
    AccessSchema,
    Atom,
    ConjunctiveQuery,
    FirstOrderQuery,
    Not,
    UndecidableError,
    UnionOfConjunctiveQueries,
    decide_qdsi,
    decide_qsi,
)

Q1 = ConjunctiveQuery(
    ["x"],
    [Atom("friend", ["?p", "?x"]), Atom("person", ["?x", "?n", "NYC"])],
)


class TestQSI:
    def test_controlled_cq_is_scale_independent(self, social_access):
        result = decide_qsi(Q1, social_access, ["p"])
        assert result
        assert all(c.controlled for c in result.coverages)

    def test_uncontrolled_cq_is_not(self, social_access):
        result = decide_qsi(Q1, social_access)
        assert not result
        assert "not controlled" in result.reason

    def test_ucq_needs_every_disjunct_controlled(self, social_access):
        good = ConjunctiveQuery(["x"], [Atom("friend", ["?p", "?x"])])
        bad = ConjunctiveQuery(["x"], [Atom("person", ["?x", "?n", "?c"])])
        assert decide_qsi(
            UnionOfConjunctiveQueries([good]), social_access, ["p"]
        )
        assert not decide_qsi(
            UnionOfConjunctiveQueries([good, bad]), social_access, ["p"]
        )

    def test_fo_is_undecidable(self, social_access):
        q = FirstOrderQuery(["x"], Not(Atom("friend", ["?x", 1])))
        with pytest.raises(UndecidableError):
            decide_qsi(q, social_access)


class TestQDSI:
    def test_plan_within_budget(self, social_db, social_access):
        q = ConjunctiveQuery(["x"], [Atom("friend", [1, "?x"])])
        result = decide_qdsi(q, social_db, social_access, budget=10)
        assert result
        assert result.plan is not None
        assert set(result.answers) == {(2,), (3,)}
        assert result.tuples_accessed <= 10

    def test_budget_exceeded(self, social_db, social_access):
        q = ConjunctiveQuery(["x"], [Atom("friend", [1, "?x"])])
        result = decide_qdsi(q, social_db, social_access, budget=1)
        assert not result
        assert "over budget" in result.reason

    def test_uncontrolled_query_on_small_database(self, social_db, social_access):
        # Not controlled, but the concrete database is tiny: direct
        # evaluation fits the budget, which is what makes QDSI data-specific.
        q = ConjunctiveQuery(["x", "y"], [Atom("friend", ["?x", "?y"])])
        result = decide_qdsi(q, social_db, social_access, budget=1000)
        assert result
        assert result.plan is None

    def test_negative_budget_rejected(self, social_db, social_access):
        q = ConjunctiveQuery(["x"], [Atom("friend", [1, "?x"])])
        with pytest.raises(ValueError):
            decide_qdsi(q, social_db, social_access, budget=-1)

"""Tests for the relational substrate: schema validation, hash indexes
and access accounting."""

import pytest

from repro import Database, DatabaseSchema, RelationSchema, SchemaError
from repro.logic.ast import Atom


class TestSchemas:
    def test_relation_schema_basics(self, social_schema):
        person = social_schema.relation("person")
        assert person.arity == 3
        assert person.position("city") == 2
        assert person.positions(["city", "pid"]) == (2, 0)

    def test_unknown_relation_raises(self, social_schema):
        with pytest.raises(SchemaError, match="unknown relation"):
            social_schema.relation("enemy")

    def test_unknown_attribute_raises(self, social_schema):
        with pytest.raises(SchemaError, match="no attribute"):
            social_schema.relation("person").position("age")

    def test_duplicate_attributes_raise(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", ["a", "a"])

    def test_duplicate_relations_raise(self):
        r = RelationSchema("r", ["a"])
        with pytest.raises(SchemaError):
            DatabaseSchema([r, r])

    def test_arity_validation(self, social_schema):
        with pytest.raises(SchemaError, match="arity"):
            social_schema.relation("friend").validate_tuple((1, 2, 3))
        with pytest.raises(SchemaError, match="arity"):
            social_schema.validate_atom(Atom("friend", ["?x"]))


class TestDatabase:
    def test_add_validates(self, social_db):
        with pytest.raises(SchemaError):
            social_db.add("friend", (1, 2, 3))
        with pytest.raises(SchemaError):
            social_db.add("enemy", (1, 2))

    def test_set_semantics(self, social_db):
        before = social_db.size("friend")
        assert social_db.add("friend", (1, 2)) is False
        assert social_db.size("friend") == before
        assert social_db.add("friend", (2, 1)) is True

    def test_lookup_uses_index_and_counts(self, social_db):
        social_db.reset_stats()
        rows = social_db.lookup("friend", {0: 1})
        assert set(rows) == {(1, 2), (1, 3)}
        assert social_db.stats.indexed_lookups == 1
        assert social_db.stats.tuples_accessed == 2
        assert social_db.stats.full_scans == 0

    def test_empty_pattern_is_a_scan(self, social_db):
        social_db.reset_stats()
        rows = social_db.lookup("friend", {})
        assert len(rows) == social_db.size("friend")
        assert social_db.stats.full_scans == 1

    def test_index_is_maintained_on_insert(self, social_db):
        assert social_db.lookup("friend", {0: 4}) == ((4, 5),)
        social_db.add("friend", (4, 1))
        assert set(social_db.lookup("friend", {0: 4})) == {(4, 5), (4, 1)}

    def test_out_of_range_position_raises(self, social_db):
        with pytest.raises(SchemaError, match="out of range"):
            social_db.lookup("friend", {5: 1})

    def test_contains_probe(self, social_db):
        social_db.reset_stats()
        assert social_db.contains("friend", (1, 2))
        assert not social_db.contains("friend", (2, 1))
        assert social_db.stats.tuples_accessed == 1
        assert social_db.stats.full_scans == 0

    def test_active_domain(self, social_schema):
        db = Database(social_schema, {"friend": [(1, 2), (2, 3)]})
        assert db.active_domain() == (1, 2, 3)

    def test_stats_snapshot_delta(self, social_db):
        before = social_db.stats.snapshot()
        social_db.lookup("friend", {0: 1})
        delta = social_db.stats.since(before)
        assert delta.indexed_lookups == 1
        assert delta.tuples_accessed == 2


class TestHashEqContract:
    def test_schema_hash_is_order_insensitive_like_eq(self):
        a = RelationSchema("a", ["x"])
        b = RelationSchema("b", ["y"])
        s1, s2 = DatabaseSchema([a, b]), DatabaseSchema([b, a])
        assert s1 == s2
        assert hash(s1) == hash(s2)
        assert len({s1, s2}) == 1


class TestValidateQueryShapes:
    def test_bare_quantified_formula(self, social_schema):
        from repro import Atom, Exists

        social_schema.validate_query(Exists("x", Atom("friend", ["?x", "?y"])))
        with pytest.raises(SchemaError):
            social_schema.validate_query(Exists("x", Atom("friend", ["?x"])))


class TestMutations:
    """insert_many / delete_many: index maintenance, set semantics, strict
    Section 5 well-formedness, and the change log they feed."""

    def test_insert_many_skips_duplicates_and_counts_effective(self, social_db):
        inserted = social_db.insert_many("friend", [(1, 2), (9, 9), (9, 9)])
        assert inserted == 1
        assert social_db.contains("friend", (9, 9))

    def test_delete_many_skips_absent_and_counts_effective(self, social_db):
        deleted = social_db.delete_many("friend", [(1, 2), (7, 7)])
        assert deleted == 1
        assert not social_db.contains("friend", (1, 2))

    def test_strict_insert_of_present_tuple_raises(self, social_db):
        from repro import UpdateError

        with pytest.raises(UpdateError, match="already present"):
            social_db.insert_many("friend", [(1, 2)], strict=True)

    def test_strict_delete_of_absent_tuple_raises(self, social_db):
        from repro import UpdateError

        with pytest.raises(UpdateError, match="not present"):
            social_db.delete_many("friend", [(7, 7)], strict=True)

    def test_mutations_validate_against_schema(self, social_db):
        with pytest.raises(SchemaError):
            social_db.insert_many("friend", [(1, 2, 3)])
        with pytest.raises(SchemaError):
            social_db.delete_many("nope", [(1,)])

    def test_lazy_indexes_are_maintained_across_mutations(self, social_db):
        """Regression: query (building the index), mutate, re-query -- the
        lazily built per-position index must see the mutation."""
        assert social_db.lookup("friend", {0: 1}) == ((1, 2), (1, 3))
        social_db.insert_many("friend", [(1, 4)])
        social_db.delete_many("friend", [(1, 2)])
        assert social_db.lookup("friend", {0: 1}) == ((1, 3), (1, 4))
        # A second index on another position set, built after the fact,
        # agrees too.
        assert social_db.lookup("friend", {1: 4}) == ((2, 4), (3, 4), (1, 4))
        social_db.delete_many("friend", [(3, 4)])
        assert social_db.lookup("friend", {1: 4}) == ((2, 4), (1, 4))

    def test_delete_drops_empty_index_groups(self, social_db):
        social_db.lookup("friend", {0: 5})  # build the index
        social_db.delete_many("friend", [(5, 1)])
        assert social_db.lookup("friend", {0: 5}) == ()

    def test_delete_single_convenience(self, social_db):
        assert social_db.delete("friend", (1, 2)) is True
        assert social_db.delete("friend", (1, 2)) is False

    def test_constants_are_unwrapped_like_add(self, social_db):
        from repro import Constant

        social_db.insert_many("friend", [(Constant(8), Constant(9))])
        assert social_db.contains("friend", (8, 9))
        social_db.delete_many("friend", [(Constant(8), Constant(9))])
        assert not social_db.contains("friend", (8, 9))


class TestChangeLog:
    def test_every_effective_mutation_is_logged_in_order(self, social_schema):
        db = Database(social_schema)
        base = db.change_log.watermark
        db.insert_many("friend", [(1, 2), (1, 2), (3, 4)])
        db.delete_many("friend", [(3, 4), (9, 9)])
        entries = db.change_log.entries_since(base)
        assert [(e.op, e.relation, e.row) for e in entries] == [
            ("+", "friend", (1, 2)),
            ("+", "friend", (3, 4)),
            ("-", "friend", (3, 4)),
        ]
        assert [e.tid for e in entries] == [base, base + 1, base + 2]

    def test_initial_load_is_logged(self, social_db):
        assert social_db.size() == social_db.change_log.watermark

    def test_net_since_cancels_out(self, social_schema):
        db = Database(social_schema)
        mark = db.change_log.watermark
        db.insert_many("friend", [(1, 2), (3, 4)])
        db.delete_many("friend", [(1, 2)])
        db.insert_many("friend", [(5, 6)])
        db.delete_many("friend", [(5, 6)])
        net = db.change_log.net_since(mark)
        assert net == {"friend": {(3, 4): 1}}

    def test_net_since_delete_then_reinsert_cancels(self, social_db):
        mark = social_db.change_log.watermark
        social_db.delete_many("friend", [(1, 2)])
        social_db.insert_many("friend", [(1, 2)])
        assert social_db.change_log.net_since(mark) == {}

    def test_net_since_signs(self, social_db):
        mark = social_db.change_log.watermark
        social_db.insert_many("friend", [(7, 8)])
        social_db.delete_many("friend", [(1, 2)])
        net = social_db.change_log.net_since(mark)
        assert net == {"friend": {(7, 8): 1, (1, 2): -1}}

    def test_watermark_and_sequence_protocol(self, social_schema):
        db = Database(social_schema)
        assert db.change_log.watermark == len(db.change_log) == 0
        db.add("friend", (1, 2))
        assert db.change_log.watermark == 1
        assert db.change_log[0].op == "+"
        assert list(db.change_log)[0].relation == "friend"
        assert "1 entries" in repr(db.change_log)

    def test_bad_watermark_and_op_rejected(self, social_schema):
        db = Database(social_schema)
        with pytest.raises(ValueError):
            db.change_log.net_since(-1)
        with pytest.raises(ValueError):
            db.change_log.entries_since(-1)
        with pytest.raises(ValueError):
            db.change_log.append("x", "friend", (1, 2))

    def test_net_since_evicts_lru_not_wholesale(self, social_schema):
        # A hot slice (re-read between cold probes) must survive however
        # many cold watermarks other readers touch: eviction is LRU, not
        # a wholesale clear() of every shared memo.
        from repro.relational.instance import SLICE_CACHE_SIZE

        db = Database(social_schema)
        for i in range(SLICE_CACHE_SIZE * 3):
            db.add("friend", (i, i + 1))
        log = db.change_log
        hot = log.net_since(0)
        for cold in range(1, 2 * SLICE_CACHE_SIZE):
            log.net_since(cold)  # cold watermarks, each a distinct slice
            assert log.net_since(0) is hot  # the hot memo survived

    def test_net_since_cache_is_bounded(self, social_schema):
        from repro.relational.instance import SLICE_CACHE_SIZE

        db = Database(social_schema)
        for i in range(SLICE_CACHE_SIZE * 3):
            db.add("friend", (i, i + 1))
        log = db.change_log
        for w in range(SLICE_CACHE_SIZE * 2):
            log.net_since(w)
        assert len(log._net_cache) == SLICE_CACHE_SIZE

    def test_slice_caches_evict_lru_not_wholesale(self, social_schema):
        from repro.relational.instance import SLICE_CACHE_SIZE

        db = Database(social_schema)
        for i in range(SLICE_CACHE_SIZE * 3):
            db.add("friend", (i, i + 1))
        log = db.change_log
        hot = log.slice_caches(0)
        for cold in range(1, 2 * SLICE_CACHE_SIZE):
            log.slice_caches(cold)
            assert log.slice_caches(0) is hot
        assert len(log._slice_caches) <= SLICE_CACHE_SIZE

"""Tests for the relational substrate: schema validation, hash indexes
and access accounting."""

import pytest

from repro import Database, DatabaseSchema, RelationSchema, SchemaError
from repro.logic.ast import Atom


class TestSchemas:
    def test_relation_schema_basics(self, social_schema):
        person = social_schema.relation("person")
        assert person.arity == 3
        assert person.position("city") == 2
        assert person.positions(["city", "pid"]) == (2, 0)

    def test_unknown_relation_raises(self, social_schema):
        with pytest.raises(SchemaError, match="unknown relation"):
            social_schema.relation("enemy")

    def test_unknown_attribute_raises(self, social_schema):
        with pytest.raises(SchemaError, match="no attribute"):
            social_schema.relation("person").position("age")

    def test_duplicate_attributes_raise(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", ["a", "a"])

    def test_duplicate_relations_raise(self):
        r = RelationSchema("r", ["a"])
        with pytest.raises(SchemaError):
            DatabaseSchema([r, r])

    def test_arity_validation(self, social_schema):
        with pytest.raises(SchemaError, match="arity"):
            social_schema.relation("friend").validate_tuple((1, 2, 3))
        with pytest.raises(SchemaError, match="arity"):
            social_schema.validate_atom(Atom("friend", ["?x"]))


class TestDatabase:
    def test_add_validates(self, social_db):
        with pytest.raises(SchemaError):
            social_db.add("friend", (1, 2, 3))
        with pytest.raises(SchemaError):
            social_db.add("enemy", (1, 2))

    def test_set_semantics(self, social_db):
        before = social_db.size("friend")
        assert social_db.add("friend", (1, 2)) is False
        assert social_db.size("friend") == before
        assert social_db.add("friend", (2, 1)) is True

    def test_lookup_uses_index_and_counts(self, social_db):
        social_db.reset_stats()
        rows = social_db.lookup("friend", {0: 1})
        assert set(rows) == {(1, 2), (1, 3)}
        assert social_db.stats.indexed_lookups == 1
        assert social_db.stats.tuples_accessed == 2
        assert social_db.stats.full_scans == 0

    def test_empty_pattern_is_a_scan(self, social_db):
        social_db.reset_stats()
        rows = social_db.lookup("friend", {})
        assert len(rows) == social_db.size("friend")
        assert social_db.stats.full_scans == 1

    def test_index_is_maintained_on_insert(self, social_db):
        assert social_db.lookup("friend", {0: 4}) == ((4, 5),)
        social_db.add("friend", (4, 1))
        assert set(social_db.lookup("friend", {0: 4})) == {(4, 5), (4, 1)}

    def test_out_of_range_position_raises(self, social_db):
        with pytest.raises(SchemaError, match="out of range"):
            social_db.lookup("friend", {5: 1})

    def test_contains_probe(self, social_db):
        social_db.reset_stats()
        assert social_db.contains("friend", (1, 2))
        assert not social_db.contains("friend", (2, 1))
        assert social_db.stats.tuples_accessed == 1
        assert social_db.stats.full_scans == 0

    def test_active_domain(self, social_schema):
        db = Database(social_schema, {"friend": [(1, 2), (2, 3)]})
        assert db.active_domain() == (1, 2, 3)

    def test_stats_snapshot_delta(self, social_db):
        before = social_db.stats.snapshot()
        social_db.lookup("friend", {0: 1})
        delta = social_db.stats.since(before)
        assert delta.indexed_lookups == 1
        assert delta.tuples_accessed == 2


class TestHashEqContract:
    def test_schema_hash_is_order_insensitive_like_eq(self):
        a = RelationSchema("a", ["x"])
        b = RelationSchema("b", ["y"])
        s1, s2 = DatabaseSchema([a, b]), DatabaseSchema([b, a])
        assert s1 == s2
        assert hash(s1) == hash(s2)
        assert len({s1, s2}) == 1


class TestValidateQueryShapes:
    def test_bare_quantified_formula(self, social_schema):
        from repro import Atom, Exists

        social_schema.validate_query(Exists("x", Atom("friend", ["?x", "?y"])))
        with pytest.raises(SchemaError):
            social_schema.validate_query(Exists("x", Atom("friend", ["?x"])))

"""Tests for the columnar executor layer (repro.core.columnar and the
compiled pipeline built on it).

Covers the five pillars of the PR-8 representation change: slot-table
compilation (variable -> column index, fixed per plan), constant
interning identity, fused-vs-unfused equivalence on seeded workloads,
delta-join vectorization under mixed churn, and the pipeline LRU cache's
eviction/stats discipline.
"""

from sys import intern as sys_intern

import pytest

from repro import (
    AccessRule,
    AccessSchema,
    Atom,
    ConjunctiveQuery,
    Database,
    DatabaseSchema,
    RelationSchema,
    compile_plan,
)
from repro.core.columnar import (
    ColumnarBatch,
    PipelineCache,
    PipelineCacheStats,
    SignedColumnarBatch,
    SlotTable,
)
from repro.core.executor import (
    ExecutionContext,
    FetchOp,
    ProjectDedupOp,
    _FusedFetchProject,
    build_pipeline,
    execute_per_tuple,
    execute_plan,
    merge_parameter_values,
    pipeline_cache_stats,
    pipeline_for,
)
from repro.logic.terms import Constant, Variable
from repro.relational.interning import intern_row, intern_value
from repro.workloads import (
    RUNNING_QUERIES,
    generate_churn,
    generate_social_network,
    social_engine,
)

P, X, N = Variable("p"), Variable("x"), Variable("n")


class TestSlotTable:
    def test_first_seen_order_and_dedup(self):
        table = SlotTable([P, X, P, N, X])
        assert table.variables == (P, X, N)
        assert [table.slot(v) for v in (P, X, N)] == [0, 1, 2]

    def test_container_protocol(self):
        table = SlotTable([P, X])
        assert len(table) == 2
        assert P in table and N not in table
        assert list(table) == [P, X]

    def test_extend_returns_self_when_nothing_new(self):
        table = SlotTable([P, X])
        assert table.extend([X, P]) is table

    def test_extend_appends_fresh_variables_stably(self):
        table = SlotTable([P, X])
        grown = table.extend([X, N])
        assert grown.variables == (P, X, N)
        assert grown.slot(P) == table.slot(P)  # existing slots unmoved


class TestSlotCompilation:
    """The per-plan slot table compiled at lowering time."""

    def q1_plan(self, social_access):
        q = ConjunctiveQuery(
            ["x"],
            [Atom("friend", ["?p", "?x"]), Atom("person", ["?x", "?n", "NYC"])],
        )
        return compile_plan(q, social_access, ["p"])

    def test_slots_cover_parameters_atoms_and_head(self, social_access):
        pipe = build_pipeline(self.q1_plan(social_access))
        assert set(pipe.slots.variables) == {P, X, N}
        assert pipe.slots.variables[0] == P  # parameters lead
        assert pipe.width == len(pipe.slots.variables)

    def test_seed_slots_are_the_declared_parameters(self, social_access):
        pipe = build_pipeline(self.q1_plan(social_access))
        assert [(slot, var) for slot, var in pipe.seed_slots] == [
            (pipe.slots.slot(P), P)
        ]
        assert pipe.params == frozenset([P])

    def test_unsatisfiable_plan_lowers_to_the_empty_pipeline(self, social_access):
        q = ConjunctiveQuery(
            ["x"],
            [Atom("friend", ["?p", "?x"])],
            [
                # ?p equated to two distinct constants: unsatisfiable.
                *(
                    __import__("repro").Equality(P, Constant(value))
                    for value in (1, 2)
                )
            ],
        )
        plan = compile_plan(q, social_access, ["p"])
        pipe = build_pipeline(plan)
        assert pipe == ()
        assert pipe.width == 0 and pipe.terminal is None


class TestColumnarBatch:
    def test_roundtrip_from_and_to_assignments(self):
        assignments = [{P: 1, X: 2}, {P: 1, X: 3}, {P: 4, X: 5}]
        batch = ColumnarBatch.from_assignments(assignments)
        assert batch.length == 3
        assert batch.to_assignments() == assignments

    def test_ragged_assignments_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            ColumnarBatch.from_assignments([{P: 1, X: 2}, {P: 3}])

    def test_seed_binds_parameters_only(self):
        slots = SlotTable([P, X, N])
        batch = ColumnarBatch.seed(slots, {P: 7})
        assert batch.length == 1
        assert batch.column(P) == [7]
        assert batch.column_or_none(X) is None
        with pytest.raises(KeyError):
            batch.column(X)

    def test_select_gathers_bound_columns(self):
        batch = ColumnarBatch.from_assignments(
            [{P: 1, X: 10}, {P: 2, X: 20}, {P: 3, X: 30}]
        )
        sub = batch.select([2, 0])
        assert sub.to_assignments() == [{P: 3, X: 30}, {P: 1, X: 10}]
        assert sub.slots is batch.slots

    def test_signed_batch_pairs_roundtrip(self):
        pairs = [({P: 1}, 1), ({P: 2}, -1)]
        signed = SignedColumnarBatch.from_pairs(pairs)
        assert len(signed) == 2
        assert signed.to_pairs() == pairs


class TestInterningIdentity:
    def test_merge_parameter_values_interns_exact_strings(self):
        # A runtime-built string is a distinct object pre-interning.
        city = "".join(["N", "Y", "C"])
        values = merge_parameter_values({"c": city}, {})
        assert values[Variable("c")] is sys_intern("NYC")

    def test_kwargs_and_constant_wrappers_intern_too(self):
        values = merge_parameter_values(
            {"a": Constant("".join(["S", "F"]))}, {"b": "".join(["L", "A"])}
        )
        assert values[Variable("a")] is sys_intern("SF")
        assert values[Variable("b")] is sys_intern("LA")

    def test_str_subclasses_and_non_strings_pass_through(self):
        class Label(str):
            pass

        label = Label("NYC")
        assert intern_value(label) is label  # sys.intern rejects subclasses
        assert intern_value(42) == 42

    def test_intern_row_returns_original_tuple_when_all_numeric(self):
        row = (1, 2.5, 3)
        assert intern_row(row) is row

    def test_stored_rows_share_the_parameter_string_object(self):
        schema = DatabaseSchema([RelationSchema("person", ["pid", "city"])])
        db = Database(schema, {"person": [(1, "".join(["N", "Y", "C"]))]})
        ((row,),) = db.lookup_keys("person", (0,), [(1,)])
        values = merge_parameter_values({"c": "".join(["N", "Y", "C"])}, {})
        # Both sides funneled through interning: identity, not just equality.
        assert row[1] is values[Variable("c")]


class TestFusion:
    def test_trailing_fetch_and_project_fuse(self, social_access):
        q = ConjunctiveQuery(
            ["x"],
            [Atom("friend", ["?p", "?x"]), Atom("person", ["?x", "?n", "NYC"])],
        )
        pipe = build_pipeline(compile_plan(q, social_access, ["p"]))
        # The unfused face keeps the addressable operators...
        assert isinstance(pipe[-2], FetchOp)
        assert isinstance(pipe[-1], ProjectDedupOp)
        # ...while the hot-path sequence collapses the pair.
        assert isinstance(pipe.fused[-1], _FusedFetchProject)
        assert pipe.fused[-1].fetch is pipe[-2]
        assert pipe.fused[-1].project is pipe[-1]

    @staticmethod
    def run_unfused(plan, db, values):
        """Execute via the unfused operator objects one batch at a time --
        the semantic reference for the compiled fused closures."""
        pipe = build_pipeline(plan)
        if pipe == ():
            return []
        ctx = ExecutionContext(db)
        merged = merge_parameter_values(values, {})
        batch = ColumnarBatch.seed(
            pipe.slots, {v: merged[v] for v in plan.parameters}
        )
        *body, terminal = list(pipe)
        for op in body:
            batch = op.run(ctx, batch)
        return terminal.run(ctx, batch)

    @pytest.mark.parametrize("bundle", RUNNING_QUERIES, ids=lambda b: b.name)
    def test_fused_equals_unfused_on_seeded_workload(self, bundle):
        engine = social_engine(60, seed=1)
        db = engine.require_database()
        prepared = bundle.prepare(engine)
        plan = prepared.plan(bundle.parameters)
        param = bundle.parameters[0]
        for pid in range(0, 60, 7):
            values = {param: pid}
            fused = set(execute_plan(plan, db, values))
            unfused = set(self.run_unfused(plan, db, values))
            reference = set(execute_per_tuple(plan, db, values))
            assert fused == unfused == reference, (
                f"{bundle.name} diverges at pid={pid}"
            )

    def test_fused_terminal_respects_consistency_checks(self, social_db):
        # Repeated variable in the terminal atom: the fused path must
        # apply the same fetched-row check the unfused FetchOp does.
        schema = social_db.schema
        access = AccessSchema(
            schema,
            [
                AccessRule("friend", ["pid1"], bound=10),
                AccessRule("person", ["pid"], bound=1),
            ],
        )
        q = ConjunctiveQuery(
            ["x", "m"],
            [
                Atom("friend", ["?p", "?x"]),
                Atom("person", ["?x", "?m", "?c"]),
            ],
        )
        plan = compile_plan(q, access, ["p", "c"])
        for city in ("NYC", "SF", "nowhere"):
            values = {"p": 1, "c": city}
            assert set(execute_plan(plan, social_db, values)) == set(
                execute_per_tuple(plan, social_db, values)
            )


class TestDeltaVectorization:
    """run_delta over a many-row signed batch must equal the row-at-a-time
    decomposition -- vectorization changes the batching, never the
    multiset of signed derivations."""

    def _delta_ctx(self, persons=50, seed=2):
        engine = social_engine(persons, seed=seed)
        db = engine.require_database()
        mark = db.change_log.watermark
        for batch in generate_churn(
            generate_social_network(persons, seed=seed),
            batches=3,
            batch_size=15,
            seed=seed + 1,
            delete_fraction=0.5,  # mixed churn: inserts and deletes
        ):
            batch.apply(db)
        delta = db.change_log.net_since(mark)
        assert any(sign > 0 for net in delta.values() for sign in net.values())
        assert any(sign < 0 for net in delta.values() for sign in net.values())
        return engine, db, delta

    @staticmethod
    def _signed_multiset(signed):
        return sorted(
            (tuple(sorted((str(v), val) for v, val in a.items())), s)
            for a, s in signed.to_pairs()
        )

    def test_batched_run_delta_equals_row_at_a_time(self):
        engine, db, delta = self._delta_ctx()
        q = ConjunctiveQuery(["x"], [Atom("friend", ["?p", "?x"])])
        plan = compile_plan(q, engine.access, ["p"])
        fetch = next(op for op in pipeline_for(plan) if isinstance(op, FetchOp))
        pairs = [({P: pid}, 1 if pid % 2 else -1) for pid in range(12)]

        ctx = ExecutionContext(db, delta=delta)
        vectorized = fetch.run_delta(ctx, SignedColumnarBatch.from_pairs(pairs))

        one_by_one = []
        for pair in pairs:
            ctx1 = ExecutionContext(db, delta=delta)
            out = fetch.run_delta(ctx1, SignedColumnarBatch.from_pairs([pair]))
            one_by_one.extend(out.to_pairs())
        combined = SignedColumnarBatch.from_pairs(one_by_one or [({}, 1)][:0])
        assert self._signed_multiset(vectorized) == sorted(
            (tuple(sorted((str(v), val) for v, val in a.items())), s)
            for a, s in one_by_one
        )

    def test_run_old_and_run_delta_telescope_to_the_new_state(self):
        """old + delta == new, as multisets of derivations, for a fetch
        over the mutated relation -- the telescoping identity the
        incremental driver relies on, checked at the operator level."""
        engine, db, delta = self._delta_ctx()
        q = ConjunctiveQuery(["x"], [Atom("friend", ["?p", "?x"])])
        plan = compile_plan(q, engine.access, ["p"])
        fetch = next(op for op in pipeline_for(plan) if isinstance(op, FetchOp))
        x = next(t for t in fetch.atom.terms if t == Variable("x"))

        for pid in range(0, 50, 11):
            seed = [({P: pid}, 1)]
            new_ctx = ExecutionContext(db)
            new_rows = sorted(
                a[x]
                for a in fetch.run(
                    new_ctx, ColumnarBatch.from_assignments([{P: pid}])
                ).to_assignments()
            )
            old_ctx = ExecutionContext(db, delta=delta)
            counts: dict = {}
            for a, s in fetch.run_old(
                old_ctx, SignedColumnarBatch.from_pairs(seed)
            ).to_pairs():
                counts[a[x]] = counts.get(a[x], 0) + s
            for a, s in fetch.run_delta(
                ExecutionContext(db, delta=delta),
                SignedColumnarBatch.from_pairs(seed),
            ).to_pairs():
                counts[a[x]] = counts.get(a[x], 0) + s
            telescoped = sorted(v for v, c in counts.items() for _ in range(c))
            assert telescoped == new_rows, f"telescoping fails at pid={pid}"


class TestPipelineCache:
    def test_lru_eviction_and_stats(self):
        cache = PipelineCache(maxsize=2)
        builds: list[object] = []

        def build(key):
            builds.append(key)
            return ("pipe", key)

        a, b, c = object(), object(), object()
        assert cache.get_or_build(a, build) == ("pipe", a)
        assert cache.get_or_build(b, build) == ("pipe", b)
        assert cache.get_or_build(a, build) == ("pipe", a)  # hit; a is MRU
        cache.get_or_build(c, build)  # evicts b (LRU), not a
        assert cache.get_or_build(a, build) == ("pipe", a)  # still cached
        cache.get_or_build(b, build)  # rebuilt after eviction
        assert builds == [a, b, c, b]
        stats = cache.stats()
        assert isinstance(stats, PipelineCacheStats)
        assert stats.misses == 4
        assert stats.hits == 2
        assert stats.evictions == 2  # b once, then a pushed out by b
        assert stats.size == 2 and stats.maxsize == 2

    def test_resize_shrink_evicts_immediately(self):
        cache = PipelineCache(maxsize=4)
        keys = [object() for _ in range(4)]
        for key in keys:
            cache.get_or_build(key, lambda k: k)
        cache.resize(1)
        stats = cache.stats()
        assert stats.size == 1 and stats.evictions == 3
        # The survivor is the most recently used entry.
        hit_before = stats.hits
        cache.get_or_build(keys[-1], lambda k: k)
        assert cache.stats().hits == hit_before + 1

    def test_unbounded_cache_never_evicts(self):
        cache = PipelineCache(maxsize=None)
        for _ in range(300):
            cache.get_or_build(object(), lambda k: k)
        stats = cache.stats()
        assert stats.evictions == 0 and stats.size == 300
        cache.clear()
        assert len(cache) == 0

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            PipelineCache(maxsize=0)
        cache = PipelineCache(maxsize=2)
        with pytest.raises(ValueError):
            cache.resize(-1)

    def test_pipeline_for_is_cached_with_observable_stats(self, social_access):
        q = ConjunctiveQuery(["x"], [Atom("friend", ["?p", "?x"])])
        plan = compile_plan(q, social_access, ["p"])
        first = pipeline_for(plan)
        before = pipeline_cache_stats()
        assert pipeline_for(plan) is first
        after = pipeline_cache_stats()
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

"""Tests for query evaluation on the social-network instance: CQs with
equalities and parameters, UCQs, FO queries and CQ containment."""

import pytest

from repro import (
    Atom,
    ConjunctiveQuery,
    Equality,
    Exists,
    FirstOrderQuery,
    Forall,
    Implies,
    Not,
    UnionOfConjunctiveQueries,
)
from repro.logic import homomorphism


class TestConjunctiveQueries:
    def test_single_atom(self, social_db):
        q = ConjunctiveQuery(["x"], [Atom("friend", [1, "?x"])])
        assert set(q.evaluate(social_db)) == {(2,), (3,)}

    def test_join(self, social_db):
        # friends-of-friends of ann (pid 1)
        q = ConjunctiveQuery(
            ["z"], [Atom("friend", [1, "?y"]), Atom("friend", ["?y", "?z"])]
        )
        assert set(q.evaluate(social_db)) == {(4,)}

    def test_selection_via_constant(self, social_db):
        q = ConjunctiveQuery(
            ["n"],
            [Atom("friend", [1, "?x"]), Atom("person", ["?x", "?n", "SF"])],
        )
        assert q.evaluate(social_db) == (("cat",),)

    def test_parameters(self, social_db):
        q = ConjunctiveQuery(["x"], [Atom("friend", ["?p", "?x"])])
        assert set(q.evaluate(social_db, {"p": 4})) == {(5,)}
        assert q.evaluate(social_db, {"p": 99}) == ()
        with pytest.raises(ValueError, match="unknown parameter"):
            q.evaluate(social_db, {"nope": 1})

    def test_equalities_bind_and_filter(self, social_db):
        q = ConjunctiveQuery(
            ["x"],
            [Atom("friend", ["?p", "?x"])],
            [Equality("?p", 1)],
        )
        assert set(q.evaluate(social_db)) == {(2,), (3,)}

    def test_variable_to_variable_equality(self, social_db):
        # self-loops: friend(x, y) with x = y
        q = ConjunctiveQuery(
            ["x"], [Atom("friend", ["?x", "?y"])], [Equality("?x", "?y")]
        )
        assert q.evaluate(social_db) == ()
        social_db.add("friend", (2, 2))
        assert q.evaluate(social_db) == ((2,),)

    def test_unsatisfiable_equalities(self, social_db):
        q = ConjunctiveQuery(
            ["x"],
            [Atom("friend", ["?x", "?y"])],
            [Equality("?y", 1), Equality("?y", 2)],
        )
        assert q.evaluate(social_db) == ()

    def test_repeated_variable_in_atom(self, social_db):
        social_db.add("friend", (3, 3))
        q = ConjunctiveQuery(["x"], [Atom("friend", ["?x", "?x"])])
        assert q.evaluate(social_db) == ((3,),)

    def test_unsafe_head_rejected(self):
        with pytest.raises(ValueError, match="unsafe"):
            ConjunctiveQuery(["x"], [Atom("friend", [1, "?y"])])

    def test_to_formula(self):
        q = ConjunctiveQuery(
            ["x"], [Atom("friend", ["?x", "?y"]), Atom("person", ["?y", "?n", "NYC"])]
        )
        f = q.to_formula()
        assert isinstance(f, Exists)
        assert f.free_variables() == (q.head[0],)


class TestUnions:
    def test_union_deduplicates(self, social_db):
        q = UnionOfConjunctiveQueries(
            [
                ConjunctiveQuery(["x"], [Atom("friend", [1, "?x"])]),
                ConjunctiveQuery(["x"], [Atom("friend", ["?y", "?x"])]),
            ]
        )
        assert set(q.evaluate(social_db)) == {(1,), (2,), (3,), (4,), (5,)}

    def test_mismatched_arities_rejected(self):
        with pytest.raises(ValueError, match="arities"):
            UnionOfConjunctiveQueries(
                [
                    ConjunctiveQuery(["x"], [Atom("friend", ["?x", "?y"])]),
                    ConjunctiveQuery(
                        ["x", "y"], [Atom("friend", ["?x", "?y"])]
                    ),
                ]
            )


class TestFirstOrder:
    def test_negation(self, social_db):
        # people with no outgoing friend edge to 4
        q = FirstOrderQuery(
            ["x"],
            Exists("n", Atom("person", ["?x", "?n", "NYC"]))
            & Not(Atom("friend", ["?x", 4])),
        )
        assert set(q.evaluate(social_db)) == {(1,), (4,)}

    def test_universal(self, social_db):
        # is every friend edge between known people? (vacuously checks pairs)
        closed = FirstOrderQuery(
            [],
            Forall(
                ["x", "y"],
                Implies(
                    Atom("friend", ["?x", "?y"]),
                    Exists(["n", "c"], Atom("person", ["?x", "?n", "?c"])),
                ),
            ),
        )
        assert closed.evaluate(social_db) == ((),)

    def test_uncovered_free_variables_rejected(self, social_db):
        q = FirstOrderQuery([], Atom("friend", ["?x", "?y"]))
        with pytest.raises(ValueError, match="not covered"):
            q.evaluate(social_db)


class TestHomomorphisms:
    def test_containment(self):
        # Q1: x has a friend who has a friend; Q2: x has a friend.
        q1 = ConjunctiveQuery(
            ["x"], [Atom("friend", ["?x", "?y"]), Atom("friend", ["?y", "?z"])]
        )
        q2 = ConjunctiveQuery(["x"], [Atom("friend", ["?x", "?y"])])
        assert homomorphism.is_contained_in(q1, q2)
        assert not homomorphism.is_contained_in(q2, q1)

    def test_equivalence_and_minimization(self):
        redundant = ConjunctiveQuery(
            ["x"],
            [Atom("friend", ["?x", "?y"]), Atom("friend", ["?x", "?z"])],
        )
        minimal = homomorphism.minimize(redundant)
        assert len(minimal.body) == 1
        assert homomorphism.are_equivalent(redundant, minimal)


def test_union_rejects_parameter_missing_from_a_disjunct(social_db):
    q = UnionOfConjunctiveQueries(
        [
            ConjunctiveQuery(["x"], [Atom("friend", ["?p", "?x"])]),
            ConjunctiveQuery(["y"], [Atom("friend", ["?y", "?z"])]),
        ]
    )
    with pytest.raises(ValueError, match="does not occur in disjunct"):
        q.evaluate(social_db, {"p": 1})
    shared = UnionOfConjunctiveQueries(
        [
            ConjunctiveQuery(["x"], [Atom("friend", ["?p", "?x"])]),
            ConjunctiveQuery(["x"], [Atom("friend", ["?x", "?p"])]),
        ]
    )
    assert set(shared.evaluate(social_db, {"p": 1})) == {(2,), (3,), (5,)}


def test_cross_type_equal_value_equalities_are_satisfiable(social_db):
    # Constants are typed for sorting, but equality resolution follows the
    # database's value semantics: 1 == 1.0.
    q = ConjunctiveQuery(
        ["x"],
        [Atom("friend", ["?p", "?x"])],
        [Equality("?p", 1), Equality("?p", 1.0)],
    )
    assert set(q.evaluate(social_db)) == {(2,), (3,)}


def test_head_variable_grounded_only_by_equalities_rejected():
    with pytest.raises(ValueError, match="unsafe"):
        ConjunctiveQuery(
            ["x"], [Atom("friend", ["?z", "?w"])], [Equality("?x", "?y")]
        )


def test_homomorphism_constants_match_on_value():
    q1 = ConjunctiveQuery(["x"], [Atom("friend", [1, "?x"])])
    q2 = ConjunctiveQuery(["x"], [Atom("friend", [1.0, "?x"])])
    assert homomorphism.are_equivalent(q1, q2)


def test_homomorphism_rebinding_matches_constants_on_value():
    # ?x first binds to 1, then must also cover 1.0: value semantics say yes.
    q_pair = ConjunctiveQuery([], [Atom("r", [1, 1.0])])
    q_diag = ConjunctiveQuery([], [Atom("r", ["?x", "?x"])])
    assert homomorphism.is_contained_in(q_pair, q_diag)

"""Plan certification (translation validation), binding-pattern
dataflow and the lint autofix.

The certifier removes the planner from the trusted base: every plan the
workload engines compile -- base, view-augmented and post-churn rebased
-- must certify clean, and every hand-mutated plan must fail with the
specific CRT code its corruption deserves.
"""

import dataclasses
import json

import pytest

from repro import (
    AccessRule,
    AccessSchema,
    CertificationError,
    Engine,
    FetchStep,
    Plan,
    ProbeStep,
    Severity,
    compile_plan,
    parse_cq,
)
from repro.analysis import (
    ADVISED_RULE_BOUND,
    Report,
    advise_missing_rule,
    analyze_query,
    binding_flow,
    certify_plan,
    certify_plans,
    check_plan,
    diagnostic,
    explain_uncontrolled,
    fix_query,
    workload_report,
)
from repro.analysis.__main__ import main
from repro.errors import NotControlledError
from repro.logic.ast import Span
from repro.logic.homomorphism import are_equivalent
from repro.logic.parser import parse_query
from repro.workloads import (
    RUNNING_QUERIES,
    VIEW_QUERIES,
    generate_churn,
    generate_social_network,
    register_workload_views,
    social_engine,
)


def codes(report: Report) -> set[str]:
    return {d.code for d in report}


@pytest.fixture
def q1_plan(social_schema, social_access):
    query = parse_cq(
        "Q(y) :- friend(p, y), person(y, n, 'NYC')", schema=social_schema
    )
    return compile_plan(query, social_access, ("p",)), social_access


def clone(plan: Plan, **overrides) -> Plan:
    """A structural copy of ``plan`` with some fields forged."""
    fields = {
        "query": plan.query,
        "parameters": plan.parameters,
        "steps": plan.steps,
        "head_terms": plan.head_terms,
        "satisfiable": plan.satisfiable,
        "view_relations": plan.view_relations,
    }
    fields.update(overrides)
    return Plan(**fields)


# --------------------------------------------------------------------------
# The positive direction: everything the engine compiles certifies clean.


def test_running_query_plans_certify_clean():
    data = generate_social_network(40, seed=3)
    for bundle in RUNNING_QUERIES:
        engine = bundle.engine(data)
        plan = bundle.prepare(engine).plan(bundle.parameters)
        report = certify_plan(plan, engine.access, engine.views.definitions())
        assert report.ok(Severity.ERROR), f"{bundle.name}: {report.render()}"
        assert not list(report)


def test_view_augmented_plans_certify_clean():
    data = generate_social_network(40, seed=3)
    for bundle in VIEW_QUERIES:
        engine = bundle.engine(data)
        register_workload_views(engine)
        plan = bundle.prepare(engine).plan(bundle.parameters)
        assert plan.view_relations  # the rewrite actually used a view
        report = certify_plan(plan, engine.access, engine.views.definitions())
        assert report.ok(Severity.ERROR), f"{bundle.name}: {report.render()}"


def test_view_plan_fails_without_its_view_registered():
    """The same plan, certified against an empty view catalog, is caught:
    CRT005 is precisely the check that a view plan cannot outlive its
    view."""
    data = generate_social_network(40, seed=3)
    bundle = VIEW_QUERIES[0]
    engine = bundle.engine(data)
    register_workload_views(engine)
    plan = bundle.prepare(engine).plan(bundle.parameters)
    report = certify_plan(plan, engine.access, views=())
    assert "CRT005" in codes(report)


def test_rebased_plans_after_churn_certify(monkeypatch):
    """Incremental refresh after churn plus an access-schema bump forces
    a rebase through ``_plans_for``; with certification on (the conftest
    fixture), every rebased plan passes through ``check_plan``."""
    import repro.analysis.certify as certify_mod

    calls = []
    real = certify_mod.check_plan
    monkeypatch.setattr(
        certify_mod, "check_plan", lambda *a, **k: calls.append(a) or real(*a, **k)
    )
    engine = social_engine(50, seed=5)
    assert engine.certify  # REPRO_CERTIFY=1 via conftest
    result = engine.execute_incremental("Q(u) :- friend(p, y), visits(y, u)", {"p": 3})
    data = generate_social_network(50, seed=5)
    for batch in generate_churn(data, batches=3, batch_size=8, seed=7):
        batch.apply(engine.require_database())
    compiled_before = len(calls)
    assert compiled_before > 0
    engine.access = engine.access  # version bump strands the cached plans
    refreshed = engine.refresh(result)
    assert len(calls) > compiled_before  # the rebase was certified too
    fresh = engine.execute("Q(u) :- friend(p, y), visits(y, u)", {"p": 3})
    assert set(refreshed.rows) == set(fresh)


def test_workload_report_with_certification_stays_hint_only():
    report = workload_report(certify=True)
    assert report.ok(Severity.WARNING)
    assert not any(d.code.startswith("CRT") for d in report)


# --------------------------------------------------------------------------
# The negative direction: hand-mutated plans fail with the right code.


def test_swapped_steps_fail_crt001(q1_plan):
    plan, access = q1_plan
    mutated = clone(plan, steps=tuple(reversed(plan.steps)))
    report = certify_plan(mutated, access)
    assert "CRT001" in codes(report)
    assert not report.ok(Severity.ERROR)


def test_forged_rule_bound_fails_crt003(q1_plan):
    plan, access = q1_plan
    step = plan.steps[0]
    assert isinstance(step, FetchStep)
    forged = dataclasses.replace(
        step, rule=AccessRule("friend", ["pid1"], bound=999)
    )
    mutated = clone(plan, steps=(forged,) + plan.steps[1:])
    assert "CRT003" in codes(certify_plan(mutated, access))


def test_unregistered_view_relation_fails_crt005(q1_plan):
    plan, access = q1_plan
    mutated = clone(plan, view_relations=frozenset({"V9"}))
    assert "CRT005" in codes(certify_plan(mutated, access))


def test_premature_probe_fails_crt002(social_schema, social_access):
    query = parse_cq("Q(y) :- friend(p, y)", schema=social_schema)
    plan = compile_plan(query, social_access, ("p",))
    mutated = clone(plan, steps=(ProbeStep(plan.steps[0].atom),))
    report = certify_plan(mutated, social_access)
    assert "CRT002" in codes(report)


def test_forged_head_terms_fail_crt004(q1_plan):
    plan, access = q1_plan
    mutated = clone(plan, head_terms=plan.head_terms + plan.head_terms)
    assert "CRT004" in codes(certify_plan(mutated, access))


def test_dropped_step_fails_crt007(q1_plan):
    plan, access = q1_plan
    mutated = clone(plan, steps=plan.steps[:1])
    assert "CRT007" in codes(certify_plan(mutated, access))


def test_forged_satisfiability_fails_crt007(q1_plan):
    plan, access = q1_plan
    mutated = clone(plan, satisfiable=False)
    assert "CRT007" in codes(certify_plan(mutated, access))


def test_forged_fanout_bound_fails_crt006(q1_plan):
    plan, access = q1_plan

    class ForgedPlan(Plan):
        @property
        def fanout_bound(self) -> int:
            return 1  # "scale independent, trust me"

    mutated = ForgedPlan(
        plan.query,
        plan.parameters,
        plan.steps,
        plan.head_terms,
        plan.satisfiable,
        plan.view_relations,
    )
    assert "CRT006" in codes(certify_plan(mutated, access))


def test_check_plan_gates_and_passes_through(q1_plan):
    plan, access = q1_plan
    assert check_plan(plan, access) is plan
    mutated = clone(plan, steps=tuple(reversed(plan.steps)))
    with pytest.raises(CertificationError) as exc_info:
        check_plan(mutated, access)
    assert "failed certification" in str(exc_info.value)
    assert exc_info.value.report is not None
    assert not exc_info.value.report.ok(Severity.ERROR)


def test_certify_plans_merges_reports(q1_plan):
    plan, access = q1_plan
    mutated = clone(plan, view_relations=frozenset({"V9"}))
    report = certify_plans([plan, mutated], access)
    assert "CRT005" in codes(report)


def test_engine_gates_compilation_on_certification(monkeypatch, social_db):
    """A planner that emits an unsound plan cannot get it past a
    certifying engine -- and the bad plan never lands in the cache."""
    import repro.api.engine as engine_mod

    real = engine_mod.compile_plan

    def corrupt(query, access, params):
        plan = real(query, access, params)
        return clone(plan, head_terms=plan.head_terms + plan.head_terms)

    monkeypatch.setattr(engine_mod, "compile_plan", corrupt)
    engine = Engine(social_db.schema, "friend(pid1 -> 5)", certify=True)
    engine.database = social_db
    with pytest.raises(CertificationError):
        engine.execute("Q(y) :- friend(p, y)", {"p": 1})
    assert engine.cache_stats().size == 0
    monkeypatch.setattr(engine_mod, "compile_plan", real)
    assert set(engine.execute("Q(y) :- friend(p, y)", {"p": 1})) == {(2,), (3,)}


def test_engine_certify_flag_follows_env(monkeypatch):
    monkeypatch.setenv("REPRO_CERTIFY", "0")
    assert not Engine("person(pid)", "person(pid -> 1)").certify
    monkeypatch.setenv("REPRO_CERTIFY", "1")
    assert Engine("person(pid)", "person(pid -> 1)").certify
    # An explicit argument beats the environment in both directions.
    assert not Engine("person(pid)", "person(pid -> 1)", certify=False).certify
    monkeypatch.setenv("REPRO_CERTIFY", "0")
    assert Engine("person(pid)", "person(pid -> 1)", certify=True).certify


# --------------------------------------------------------------------------
# Binding-pattern dataflow: adornments, traces and advised rules.


def test_binding_flow_controlled_query(social_schema, social_access):
    query = parse_cq(
        "Q(y) :- friend(p, y), person(y, n, 'NYC')", schema=social_schema
    )
    flow = binding_flow(query, social_access, ("p",))
    assert flow.controlled
    assert not flow.uncovered
    patterns = {a.atom.relation: a.pattern for a in flow.adornments}
    assert patterns == {"friend": "bb", "person": "bbb"}
    assert explain_uncontrolled(query, social_access, ("p",)) is None


def test_binding_flow_uncontrolled_inverted_lookup(social_schema, social_access):
    # Q4's shape: keyed on the *second* friend position, which no base
    # rule accepts as input.
    query = parse_cq(
        "Q(f) :- friend(f, p), person(f, n, 'NYC')", schema=social_schema
    )
    flow = binding_flow(query, social_access, ("p",))
    assert not flow.controlled
    uncovered = {v.name for v in flow.uncovered}
    assert "f" in uncovered
    trace = flow.explain()
    assert "?f" in trace and "can never become bound" in trace
    assert explain_uncontrolled(query, social_access, ("p",)) == trace


def test_advise_missing_rule_proposes_minimal_key(social_schema, social_access):
    query = parse_cq("Q(f) :- friend(f, p)", schema=social_schema)
    rule = advise_missing_rule(query, social_access, ("p",))
    assert rule is not None
    assert rule.relation == "friend"
    assert tuple(rule.inputs) == ("pid2",)
    assert rule.bound == ADVISED_RULE_BOUND
    # The advice is verified: the extended schema really controls it.
    extended = AccessSchema(
        social_access.schema, tuple(social_access) + (rule,)
    )
    compile_plan(query, extended, ("p",))  # does not raise


def test_advise_missing_rule_none_when_controlled(social_schema, social_access):
    query = parse_cq("Q(y) :- friend(p, y)", schema=social_schema)
    assert advise_missing_rule(query, social_access, ("p",)) is None


def test_analyze_query_emits_qry007_and_acc005(social_schema, social_access):
    query = parse_cq("Q(f) :- friend(f, p)", schema=social_schema)
    report = Report(analyze_query(query, social_access, ("p",)))
    assert {"QRY007", "ACC005"} <= codes(report)
    assert all(
        d.severity is Severity.HINT
        for d in report
        if d.code in ("QRY007", "ACC005")
    )
    assert any("friend(pid2 -> 64)" in d.message for d in report)


def test_not_controlled_error_carries_dataflow_trace(social_schema, social_access):
    query = parse_cq("Q(f) :- friend(f, p)", schema=social_schema)
    with pytest.raises(NotControlledError) as exc_info:
        compile_plan(query, social_access, ("p",))
    assert "can never become bound" in str(exc_info.value)


# --------------------------------------------------------------------------
# The autofix: certified QRY003/QRY004 rewrites.


def test_fix_query_drops_duplicates_and_inlines_constants(social_schema):
    query = parse_cq(
        "Q(y) :- friend(p, y), friend(p, y), p = 7", schema=social_schema
    )
    result = fix_query(query, ("p",), schema=social_schema)
    assert result.changed and result.verified
    assert {f.code for f in result.fixes} == {"QRY003", "QRY004"}
    expected = parse_cq("Q(y) :- friend(7, y)", schema=social_schema)
    assert are_equivalent(result.fixed, expected)
    # Round trip: the rendered fix re-parses to an equivalent query.
    reparsed = parse_query(str(result.fixed), schema=social_schema)
    assert are_equivalent(reparsed, query)


def test_fix_query_leaves_clean_queries_alone(social_schema):
    query = parse_cq("Q(y) :- friend(p, y)", schema=social_schema)
    result = fix_query(query, ("p",), schema=social_schema)
    assert not result.changed
    assert result.fixes == ()
    assert result.fixed is query


def test_fix_query_never_inlines_into_the_head(social_schema):
    # Inlining ?p would put a constant in the head, which a CQ forbids.
    query = parse_cq("Q(p, y) :- friend(p, y), p = 7", schema=social_schema)
    result = fix_query(query, ("p",), schema=social_schema)
    assert "QRY003" not in {f.code for f in result.fixes}


def test_cli_fix_rewrites_file(tmp_path, capsys):
    target = tmp_path / "queries.dl"
    target.write_text(
        "# workload\n"
        "Q(y) :- friend(p, y), friend(p, y), p = 7\n"
        "Q(y) :- friend(p, y)\n"
    )
    schema = "person(pid, name, city); friend(pid1, pid2)"
    code = main([str(target), "--schema", schema, "--params", "p", "--fix"])
    assert code == 0
    out = capsys.readouterr().out
    assert "fixes written" in out
    lines = target.read_text().splitlines()
    assert lines[0] == "# workload"  # comments untouched
    assert lines[2] == "Q(y) :- friend(p, y)"  # clean line untouched
    fixed = parse_query(lines[1], schema=None)
    original = parse_query(
        "Q(y) :- friend(p, y), friend(p, y), p = 7", schema=None
    )
    assert are_equivalent(fixed, original)


def test_cli_fix_dry_run_prints_diff_without_writing(tmp_path, capsys):
    target = tmp_path / "queries.dl"
    before = "Q(y) :- friend(p, y), friend(p, y)\n"
    target.write_text(before)
    code = main([str(target), "--params", "p", "--fix", "--dry-run"])
    assert code == 0
    out = capsys.readouterr().out
    assert "--- " in out and "+++ " in out  # a unified diff
    assert "dry run" in out
    assert target.read_text() == before


# --------------------------------------------------------------------------
# Report ordering and the JSON surface.


def test_report_renders_in_deterministic_source_order():
    report = Report()
    report.add(diagnostic("QRY002", "late", span=Span(9, 1, 9, 2), source="b.dl"))
    report.add(diagnostic("QRY004", "tie-break by code", span=Span(2, 5, 2, 6), source="a.dl"))
    report.add(diagnostic("QRY001", "first", span=Span(2, 5, 2, 6), source="a.dl"))
    report.add(diagnostic("SYN001", "no span sorts first", source="a.dl"))
    rendered = report.render().splitlines()
    assert [line.split()[1] for line in rendered] == [
        "SYN001",  # a.dl, no span, sorts before spanned lines
        "QRY001",  # a.dl:2:5 -- span tie broken by code
        "QRY004",  # a.dl:2:5
        "QRY002",  # b.dl:9:1 -- source is the major key
    ]
    # Insertion order is irrelevant: the same diagnostics added in any
    # order render identically.
    shuffled = Report()
    for diag in reversed(list(report)):
        shuffled.add(diag)
    assert shuffled.render() == report.render()


def test_report_to_json_round_trips():
    report = Report()
    report.add(
        diagnostic("QRY001", "unused ?x", span=Span(3, 7, 3, 9), source="q.dl")
    )
    payload = json.loads(report.to_json())
    assert payload["summary"] == {
        "errors": 0,
        "warnings": 0,
        "hints": 1,
        "total": 1,
    }
    (entry,) = payload["diagnostics"]
    assert entry["code"] == "QRY001"
    assert entry["severity"] == "hint"
    assert entry["source"] == "q.dl"
    assert entry["span"] == {
        "line": 3,
        "column": 7,
        "end_line": 3,
        "end_column": 9,
    }


def test_cli_json_format(capsys):
    code = main(["--workload", "--format", "json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["errors"] == 0
    assert {d["code"] for d in payload["diagnostics"]} == {
        "QRY001",
        "QRY007",
        "ACC005",
    }


def test_cli_certify_flag_on_files(tmp_path, capsys):
    target = tmp_path / "queries.dl"
    target.write_text("Q(y) :- friend(p, y)\n")
    schema = "person(pid, name, city); friend(pid1, pid2)"
    code = main(
        [
            str(target),
            "--schema",
            schema,
            "--access",
            "friend(pid1 -> 8)",
            "--params",
            "p",
            "--certify",
            "--strict",
        ]
    )
    assert code == 0  # certification found nothing, hints pass --strict
    assert "CRT" not in capsys.readouterr().out

"""Differential testing: the operator pipeline vs naive evaluation.

Every workload query (Q1/Q2/Q3) runs on small seeded social networks
through three executors -- the batched pipeline, the per-tuple reference
path, and naive active-domain join evaluation -- and must produce the
identical answer set for every parameter value.  Separately, every
controlled execution must stay within the plan's a-priori fanout bound.

Both differential tests are additionally parametrized over every storage
backend (via the ``backend_factory`` fixture): the executor is
backend-agnostic, so the answer sets and the bound compliance must be
identical whether the tuples live in dict indexes, SQLite, or shards.
"""

import pytest

from repro.core.executor import execute_per_tuple, execute_plan
from repro.logic.parser import parse_query
from repro.workloads import RUNNING_QUERIES, generate_social_network, social_engine

SIZES_AND_SEEDS = [(20, 0), (20, 7), (60, 1), (120, 3)]


def _engines(backend_factory):
    for persons, seed in SIZES_AND_SEEDS:
        yield persons, seed, social_engine(
            persons, seed=seed, backend=backend_factory()
        )


@pytest.mark.parametrize("bundle", RUNNING_QUERIES, ids=lambda b: b.name)
def test_pipeline_matches_naive_evaluation_on_all_parameters(
    bundle, backend_factory
):
    for persons, seed, engine in _engines(backend_factory):
        prepared = bundle.prepare(engine)
        plan = prepared.plan(bundle.parameters)
        db = engine.require_database()
        query = parse_query(bundle.query, schema=engine.schema)
        param = bundle.parameters[0]
        for pid in range(persons):
            batched = set(execute_plan(plan, db, {param: pid}))
            per_tuple = set(execute_per_tuple(plan, db, {param: pid}))
            naive = set(query.evaluate(db, {param: pid}))
            assert batched == per_tuple == naive, (
                f"{bundle.name} disagrees at persons={persons} seed={seed} "
                f"pid={pid}"
            )


@pytest.mark.parametrize("bundle", RUNNING_QUERIES, ids=lambda b: b.name)
def test_every_controlled_execution_stays_within_fanout_bound(
    bundle, backend_factory
):
    for persons, seed, engine in _engines(backend_factory):
        prepared = bundle.prepare(engine)
        db = engine.require_database()
        param = bundle.parameters[0]
        for pid in range(persons):
            result = prepared.execute({param: pid})
            assert result.fanout_bound is not None
            assert result.stats.tuples_accessed <= result.fanout_bound, (
                f"{bundle.name} over bound at persons={persons} seed={seed} "
                f"pid={pid}: {result.stats.tuples_accessed} > "
                f"{result.fanout_bound}"
            )
            assert result.stats.full_scans == 0


def test_generated_instances_respect_declared_bounds():
    """The generator must keep the access schema truthful: the per-key
    group sizes can never exceed the declared rule bounds."""
    from repro.workloads import DEFAULT_MAX_FRIENDS, DEFAULT_MAX_VISITS

    for persons, seed in SIZES_AND_SEEDS:
        data = generate_social_network(persons, seed=seed)
        by_pid1: dict[object, int] = {}
        for pid1, _pid2 in data["friend"]:
            by_pid1[pid1] = by_pid1.get(pid1, 0) + 1
        assert all(n <= DEFAULT_MAX_FRIENDS for n in by_pid1.values())
        by_visitor: dict[object, int] = {}
        for pid, _url in data["visits"]:
            by_visitor[pid] = by_visitor.get(pid, 0) + 1
        assert all(n <= DEFAULT_MAX_VISITS for n in by_visitor.values())
        pids = [row[0] for row in data["person"]]
        assert len(set(pids)) == len(pids) == persons  # pid is a key

"""Tests for the controllability fixpoint and controlling-set search."""

import pytest

from repro import (
    AccessRule,
    AccessSchema,
    Atom,
    ConjunctiveQuery,
    EmbeddedAccessRule,
    Equality,
    FullAccessRule,
    SchemaError,
    controlling_sets,
    is_controlled,
)
from repro.core.controllability import coverage
from repro.logic.terms import Variable

Q1 = ConjunctiveQuery(
    ["x"],
    [Atom("friend", ["?p", "?x"]), Atom("person", ["?x", "?n", "NYC"])],
)


def test_controlled_with_parameter(social_access):
    assert is_controlled(Q1, social_access, ["p"])


def test_not_controlled_without_parameter(social_access):
    assert not is_controlled(Q1, social_access)


def test_constants_are_always_bound(social_access):
    q = ConjunctiveQuery(["x"], [Atom("friend", [1, "?x"])])
    assert is_controlled(q, social_access)


def test_coverage_reports_uncovered_variables(social_access):
    cov = coverage(Q1, social_access)
    assert not cov.controlled
    assert set(cov.uncovered) == {Variable("x"), Variable("p"), Variable("n")}


def test_coverage_records_derivation(social_access):
    cov = coverage(Q1, social_access, ["p"])
    assert cov.controlled
    assert [step.atom.relation for step in cov.steps] == ["friend", "person"]


def test_propagation_chains_through_joins(social_schema):
    # p bound -> friend fetch binds x -> friend fetch binds y
    access = AccessSchema(social_schema, [AccessRule("friend", ["pid1"], bound=100)])
    q = ConjunctiveQuery(
        ["y"], [Atom("friend", ["?p", "?x"]), Atom("friend", ["?x", "?y"])]
    )
    assert is_controlled(q, access, ["p"])
    assert not is_controlled(q, access, ["y"])  # rules only go forwards


def test_full_access_rule_controls_small_relations(social_schema):
    access = AccessSchema(
        social_schema,
        [FullAccessRule("person", bound=50), AccessRule("friend", ["pid1"], bound=100)],
    )
    q = ConjunctiveQuery(
        ["x"], [Atom("person", ["?x", "?n", "?c"]), Atom("friend", ["?x", "?y"])]
    )
    assert is_controlled(q, access)


def test_embedded_rule_binds_only_outputs(social_schema):
    # friend(pid1 -> pid2, N) binds pid2; person has no rule, so ?n stays
    # unreachable.
    access = AccessSchema(
        social_schema,
        [EmbeddedAccessRule("friend", ["pid1"], ["pid2"], bound=100)],
    )
    q_reachable = ConjunctiveQuery(["x"], [Atom("friend", ["?p", "?x"])])
    assert is_controlled(q_reachable, access, ["p"])
    assert not is_controlled(Q1, access, ["p"])


def test_equalities_transfer_bindings(social_access):
    q = ConjunctiveQuery(
        ["x"],
        [Atom("friend", ["?q", "?x"])],
        [Equality("?p", "?q")],
    )
    assert is_controlled(q, social_access, ["p"])


def test_controlling_sets_minimal(social_access):
    q = ConjunctiveQuery(
        ["p", "x"],
        [Atom("friend", ["?p", "?x"]), Atom("person", ["?x", "?n", "NYC"])],
    )
    sets = controlling_sets(q, social_access)
    assert sets == ((Variable("p"),),)


def test_controlling_sets_all(social_access):
    q = ConjunctiveQuery(["p", "x"], [Atom("friend", ["?p", "?x"])])
    all_sets = controlling_sets(q, social_access, minimal_only=False)
    assert (Variable("p"),) in all_sets
    assert (Variable("p"), Variable("x")) in all_sets


def test_controlling_sets_empty_when_uncontrollable(social_schema):
    access = AccessSchema(social_schema, [])
    assert controlling_sets(Q1, access) == ()


def test_access_rule_validation(social_schema):
    with pytest.raises(SchemaError):
        AccessSchema(social_schema, [AccessRule("enemy", ["pid1"], bound=1)])
    with pytest.raises(SchemaError):
        AccessSchema(social_schema, [AccessRule("friend", ["nope"], bound=1)])
    with pytest.raises(SchemaError):
        AccessRule("friend", ["pid1"], bound=0)
    with pytest.raises(SchemaError):
        EmbeddedAccessRule("friend", ["pid1"], ["pid1"], bound=1)


def test_bound_is_mandatory_and_positive():
    with pytest.raises(TypeError):
        AccessRule("friend", ["pid1"])  # no bound: cannot certify anything
    with pytest.raises(SchemaError, match="positive integer"):
        AccessRule("friend", ["pid1"], bound=None)
    with pytest.raises(SchemaError, match="positive integer"):
        AccessRule("friend", ["pid1"], bound=True)

"""The Engine facade: end-to-end workflow, plan caching, invalidation."""

import pytest

from repro import (
    AccessSchema,
    Atom,
    ConjunctiveQuery,
    Database,
    Engine,
    NotControlledError,
    ParseError,
    Plan,
    PreparedQuery,
    ResultSet,
    SchemaError,
)
import repro.api.engine as engine_module

SCHEMA_TEXT = "person(pid, name, city); friend(pid1, pid2)"
ACCESS_TEXT = "friend(pid1 -> 5000); friend(pid2 -> 5000); person(pid -> 1)"
DATA = {
    "person": [
        (1, "ann", "NYC"),
        (2, "bob", "NYC"),
        (3, "cat", "SF"),
        (4, "dan", "NYC"),
        (5, "eve", "SF"),
    ],
    "friend": [(1, 2), (1, 3), (2, 4), (3, 4), (4, 5), (5, 1)],
}
NYC_FRIENDS = "Q(y) :- friend(p, y), person(y, n, 'NYC')"


@pytest.fixture
def engine():
    return Engine(SCHEMA_TEXT, ACCESS_TEXT, data=DATA)


# -- construction ----------------------------------------------------------


def test_engine_from_objects(social_schema, social_access, social_db):
    eng = Engine(social_schema, social_access, data=social_db)
    assert eng.schema is social_schema
    assert eng.access is social_access
    assert eng.database is social_db


def test_engine_from_text_builds_equivalent_components(engine, social_schema):
    assert engine.schema == social_schema
    assert engine.database.size("friend") == 6


def test_mismatched_access_schema_rejected(social_access):
    with pytest.raises(SchemaError, match="different database schema"):
        Engine("other(a)", social_access)


def test_mismatched_database_rejected(social_schema):
    other = Database(Engine("other(a)").schema)
    with pytest.raises(SchemaError, match="does not match"):
        Engine(social_schema, data=other)


def test_default_access_schema_is_empty(social_schema):
    eng = Engine(social_schema)
    assert len(eng.access) == 0
    assert not eng.query("Q(x) :- person(x, n, c)").is_controlled(["x"])


# -- the end-to-end one-liner ----------------------------------------------


def test_end_to_end_workflow(engine):
    q = engine.query(NYC_FRIENDS)
    assert isinstance(q, PreparedQuery)
    assert q.columns == ("y",)

    assert q.is_controlled(["p"])
    assert not q.is_controlled()

    plan = q.plan(["p"])
    assert isinstance(plan, Plan)
    explanation = q.explain(["p"])
    assert "fetch" in explanation and "access bound" in explanation

    result = q.execute(p=1)
    assert isinstance(result, ResultSet)
    assert result == [(2,)]
    assert result.stats.full_scans == 0
    assert result.stats.tuples_accessed <= result.fanout_bound

    qsi = q.decide_qsi(["p"])
    assert qsi.scale_independent
    qdsi = q.decide_qdsi(budget=10)
    assert qdsi.scale_independent
    assert qdsi.tuples_accessed <= 10


def test_uncontrolled_query_rejected(engine):
    q = engine.query(NYC_FRIENDS)
    with pytest.raises(NotControlledError):
        q.plan()
    with pytest.raises(NotControlledError):
        q.execute()


def test_execute_via_parameter_mapping(engine):
    q = engine.query(NYC_FRIENDS)
    assert q.execute({"p": 1}) == q.execute(p=1)
    assert q.execute({"?p": 1}) == q.execute(p=1)


def test_engine_one_shot_execute_and_explain(engine):
    assert engine.execute(NYC_FRIENDS, p=1) == [(2,)]
    assert "fetch" in engine.explain(NYC_FRIENDS, ["p"])


def test_prebuilt_query_accepted(engine):
    q = ConjunctiveQuery(
        ["y"], [Atom("friend", ["?p", "?y"]), Atom("person", ["?y", "?n", "NYC"])]
    )
    assert engine.query(q).execute(p=1) == [(2,)]


def test_query_text_validated_against_schema(engine):
    with pytest.raises(ParseError, match="unknown relation 'enemy'"):
        engine.query("Q(x) :- enemy(p, x)")
    with pytest.raises(ParseError, match="arity"):
        engine.query("Q(x) :- person(x)")


def test_prebuilt_query_validated_against_schema(engine):
    with pytest.raises(SchemaError):
        engine.query(ConjunctiveQuery(["x"], [Atom("person", ["?x"])]))
    with pytest.raises(TypeError):
        engine.query(42)


def test_execute_without_database(social_schema):
    eng = Engine(social_schema, ACCESS_TEXT)
    q = eng.query(NYC_FRIENDS)
    assert q.is_controlled(["p"])  # planning works without data
    with pytest.raises(SchemaError, match="no database is bound"):
        q.execute(p=1)


def test_load_and_add(social_schema):
    eng = Engine(social_schema, ACCESS_TEXT).load(DATA)
    assert eng.execute(NYC_FRIENDS, p=1) == [(2,)]
    assert eng.add("friend", (1, 4))
    assert eng.execute(NYC_FRIENDS, p=1) == [(2,), (4,)]


def test_union_query_execution(engine):
    u = engine.query("Q(y) :- friend(p, y) ; Q(y) :- friend(y, p)")
    result = u.execute(p=1)
    assert set(result.rows) == {(2,), (3,), (5,)}
    plans = u.plan(["p"])
    assert isinstance(plans, tuple) and len(plans) == 2
    explanation = u.explain(["p"])
    assert "disjunct 1" in explanation and "total access bound" in explanation


def test_union_parameters_must_occur_in_every_disjunct(engine):
    u = engine.query("Q(y) :- friend(p, y) ; Q(y) :- friend(y, q)")
    # The verdict and the plan-producing methods agree: a parameter set
    # that misses a disjunct is a ValueError everywhere, never True-then-raise.
    with pytest.raises(ValueError, match="not occurring"):
        u.is_controlled(["p", "q"])
    with pytest.raises(ValueError, match="not occurring"):
        u.plan(["p", "q"])
    with pytest.raises(ValueError, match="not occurring"):
        u.execute(p=1, q=1)


def test_unknown_parameter_rejected_consistently(engine):
    q = engine.query(NYC_FRIENDS)
    with pytest.raises(ValueError, match=r"not occurring.*\?zzz"):
        q.is_controlled(["zzz"])
    with pytest.raises(ValueError, match=r"not occurring.*\?zzz"):
        q.execute(zzz=1)


def test_one_shot_parameter_iterables(engine):
    # Generators must not be silently exhausted between the occurrence
    # check and the verdict, nor between UCQ disjuncts.
    q = engine.query(NYC_FRIENDS)
    assert q.is_controlled(iter(["p"]))
    u = engine.query("Q(y) :- friend(p, y) ; Q(y) :- friend(y, p)")
    assert u.decide_qsi(iter(["p"])).scale_independent
    from repro import decide_qsi as core_decide_qsi

    assert core_decide_qsi(u.query, engine.access, iter(["p"])).scale_independent


def test_result_set_is_unhashable(engine):
    result = engine.execute(NYC_FRIENDS, p=1)
    with pytest.raises(TypeError):
        hash(result)
    assert isinstance(hash(result.rows), int)  # the rows tuple is the key


def test_result_set_behaviour(engine):
    result = engine.execute("Q(y, n) :- friend(p, y), person(y, n, c)", p=1)
    assert len(result) == 2
    assert sorted(result) == [(2, "bob"), (3, "cat")]
    assert (2, "bob") in result
    assert result[0] in {(2, "bob"), (3, "cat")}
    assert result.columns == ("y", "n")
    assert {"y": 2, "n": "bob"} in result.to_dicts()
    assert result == {(2, "bob"), (3, "cat")}
    assert bool(result)
    assert "2 rows" in repr(result)


def test_result_set_contains_does_not_coerce_strings(engine):
    result = engine.execute("Q(c) :- person(p, n, c)", p=1)
    assert result.rows == (("NYC",),)
    assert ("NYC",) in result
    assert [  # lists coerce to row tuples
        "NYC"
    ] in result
    assert "NYC" not in result  # a bare string is not a row
    assert 42 not in result


# -- plan caching ----------------------------------------------------------


def counting_compile(monkeypatch):
    calls = []
    real = engine_module.compile_plan

    def wrapper(*args, **kwargs):
        calls.append(args)
        return real(*args, **kwargs)

    monkeypatch.setattr(engine_module, "compile_plan", wrapper)
    return calls


def test_repeated_execute_hits_the_cache(engine, monkeypatch):
    calls = counting_compile(monkeypatch)
    q = engine.query(NYC_FRIENDS)

    q.execute(p=1)
    assert len(calls) == 1
    stats = engine.cache_stats()
    assert (stats.hits, stats.misses, stats.size) == (0, 1, 1)

    # Same parameter set, different value: zero recompilation.
    q.execute(p=2)
    q.execute(p=3)
    assert len(calls) == 1
    stats = engine.cache_stats()
    assert (stats.hits, stats.misses) == (2, 1)
    assert stats.compilations == 1


def test_equal_query_text_shares_cache_entry(engine, monkeypatch):
    calls = counting_compile(monkeypatch)
    engine.query(NYC_FRIENDS).execute(p=1)
    # A separately prepared but equal query maps to the same cache key.
    engine.query(NYC_FRIENDS).execute(p=9)
    assert len(calls) == 1
    assert engine.cache_stats().hits == 1


def test_different_parameter_set_compiles_again(engine, monkeypatch):
    calls = counting_compile(monkeypatch)
    q = engine.query("Q(y) :- friend(p, y), person(y, n, c)")
    q.execute(p=1)
    q.execute(p=1, y=2)
    assert len(calls) == 2
    assert engine.cache_stats().misses == 2


def test_plan_and_explain_share_the_cache(engine, monkeypatch):
    calls = counting_compile(monkeypatch)
    q = engine.query(NYC_FRIENDS)
    q.plan(["p"])
    q.explain(["p"])
    q.execute(p=1)
    assert len(calls) == 1
    assert engine.cache_stats().hits == 2


def test_access_schema_change_invalidates_cache(engine, monkeypatch):
    calls = counting_compile(monkeypatch)
    q = engine.query(NYC_FRIENDS)
    q.execute(p=1)
    assert len(calls) == 1

    engine.access = AccessSchema.parse(engine.schema, ACCESS_TEXT)
    stats = engine.cache_stats()
    assert stats.size == 0
    assert stats.invalidations == 1

    q.execute(p=1)
    assert len(calls) == 2  # recompiled against the new rules


def test_access_schema_change_affects_verdict(engine):
    q = engine.query(NYC_FRIENDS)
    assert q.is_controlled(["p"])
    engine.access = "person(pid -> 1)"  # drop the friend rule
    assert not q.is_controlled(["p"])
    with pytest.raises(NotControlledError):
        q.execute(p=1)


def test_clear_plan_cache(engine):
    q = engine.query(NYC_FRIENDS)
    q.execute(p=1)
    engine.clear_plan_cache()
    assert engine.cache_stats().size == 0


def test_lru_eviction():
    eng = Engine(SCHEMA_TEXT, ACCESS_TEXT, data=DATA, plan_cache_size=2)
    queries = [
        "Q(y) :- friend(p, y)",
        "Q(y) :- friend(y, p)",
        "Q(n) :- person(p, n, c)",
    ]
    for text in queries:
        eng.execute(text, p=1)
    stats = eng.cache_stats()
    assert stats.size == 2
    assert stats.evictions == 1
    # The least recently used entry (the first query) was evicted.
    eng.execute(queries[0], p=1)
    assert eng.cache_stats().misses == 4


def test_cache_disabled():
    eng = Engine(SCHEMA_TEXT, ACCESS_TEXT, data=DATA, plan_cache_size=0)
    q = eng.query("Q(y) :- friend(p, y)")
    q.execute(p=1)
    q.execute(p=1)
    stats = eng.cache_stats()
    assert (stats.hits, stats.misses, stats.size) == (0, 2, 0)


def test_union_compiles_one_plan_per_disjunct(engine, monkeypatch):
    calls = counting_compile(monkeypatch)
    u = engine.query("Q(y) :- friend(p, y) ; Q(y) :- friend(y, p)")
    u.execute(p=1)
    assert len(calls) == 2
    u.execute(p=2)
    assert len(calls) == 2  # one cache entry covers both plans
    assert engine.cache_stats().hits == 1


# -- explain_analyze -------------------------------------------------------


def test_explain_analyze_reports_per_operator_rows(engine):
    report = engine.explain_analyze(NYC_FRIENDS, p=1)
    assert set(report.result) == {(2,)}
    assert len(report.profiles) == 1
    operators = report.profiles[0].operators
    assert operators[0].rows_in == 1
    assert all(op.rows_in >= 0 for op in operators)
    text = str(report)
    assert "fetch" in text and "rows" in text and "total" in text


def test_explain_analyze_union_has_one_profile_per_disjunct(engine):
    report = engine.query(
        "Q(y) :- friend(p, y) ; Q(y) :- friend(y, p)"
    ).explain_analyze(p=1)
    assert len(report.profiles) == 2
    assert "disjunct" in str(report)


def test_explain_analyze_matches_execute(engine):
    q = engine.query(NYC_FRIENDS)
    assert set(q.explain_analyze(p=1).result) == set(q.execute(p=1))


def test_explain_analyze_accounting_matches_result_stats(engine):
    report = engine.query(NYC_FRIENDS).explain_analyze(p=1)
    per_operator = sum(p.tuples_accessed for p in report.profiles)
    assert per_operator == report.result.stats.tuples_accessed


# -- satellite hardening ---------------------------------------------------


def test_union_disjuncts_must_agree_on_head_names(engine):
    with pytest.raises(ValueError, match="head variable names"):
        engine.query("Q(y) :- friend(p, y) ; Q(z) :- friend(z, p)")


def test_union_with_agreeing_heads_still_prepares(engine):
    q = engine.query("Q(y) :- friend(p, y) ; Q(y) :- friend(y, p)")
    assert q.columns == ("y",)


def test_decide_qdsi_rejects_non_integer_budget(engine):
    q = engine.query(NYC_FRIENDS)
    for bad in (1.5, "10", True, None):
        with pytest.raises(ValueError, match="budget"):
            q.decide_qdsi(budget=bad)


def test_decide_qdsi_rejects_negative_budget(engine):
    with pytest.raises(ValueError, match="non-negative"):
        engine.query(NYC_FRIENDS).decide_qdsi(budget=-3)


def test_plan_cache_is_thread_safe_under_concurrent_traffic(engine):
    import threading

    errors = []
    barrier = threading.Barrier(8)

    def hammer(worker: int):
        barrier.wait()
        try:
            for i in range(100):
                result = engine.execute(NYC_FRIENDS, p=(i % 5) + 1)
                assert result.fanout_bound is not None
                if worker == 0 and i % 25 == 0:
                    engine.clear_plan_cache()
        except Exception as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    stats = engine.cache_stats()
    assert stats.invalidations >= 4
    assert stats.hits + stats.misses >= 800


def test_concurrent_cold_start_compiles_once(engine, monkeypatch):
    # Single-flight: N threads cold-starting the same (query, parameter
    # set) must trigger exactly one compile_plan; the rest wait on the
    # in-flight marker and are served the leader's plans as hits.
    import threading
    import time

    real = engine_module.compile_plan
    calls = []

    def slow_counted_compile(*args, **kwargs):
        calls.append(args)
        time.sleep(0.05)  # hold the flight open so every thread piles up
        return real(*args, **kwargs)

    monkeypatch.setattr(engine_module, "compile_plan", slow_counted_compile)

    workers = 8
    barrier = threading.Barrier(workers)
    results, errors = [], []

    def hammer():
        barrier.wait()
        try:
            results.append(engine.execute(NYC_FRIENDS, p=1).rows)
        except Exception as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert len(calls) == 1  # one compilation, not eight
    stats = engine.cache_stats()
    assert stats.misses == 1
    assert stats.compilations == 1
    assert stats.hits == workers - 1
    assert len(set(results)) == 1  # every thread saw the same answers


def test_concurrent_cold_start_shares_compile_failure(engine):
    # A failing leader propagates its NotControlledError to every waiter
    # instead of each of them re-running the doomed fixpoint.
    import threading

    workers = 6
    barrier = threading.Barrier(workers)
    outcomes = []

    def hammer_uncontrolled():
        barrier.wait()
        try:
            engine.execute("Q(y, z) :- friend(y, z)")
        except NotControlledError:
            outcomes.append("not-controlled")
        except Exception:  # pragma: no cover - only on regression
            outcomes.append("other")

    threads = [
        threading.Thread(target=hammer_uncontrolled) for _ in range(workers)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert outcomes == ["not-controlled"] * workers
    # The failed flight left no entry behind: a later probe retries.
    assert engine.cache_stats().size <= 1


def test_cache_stats_count_invalidations(engine):
    engine.execute(NYC_FRIENDS, p=1)
    engine.access = ACCESS_TEXT  # replacing the access schema invalidates
    engine.clear_plan_cache()
    assert engine.cache_stats().invalidations == 2


def test_stale_plans_cached_in_flight_are_never_served_after_access_change(engine):
    # Simulate a compile that raced an access replacement: it stored its
    # plans under the access-schema version it compiled against. After
    # the replacement bumps the version, that key must be unreachable --
    # so replay the losing side of the race by hand: grab the plans and
    # key from before the change, swap the access schema, then re-insert
    # the stale entry behind the engine's back.
    from repro.logic.terms import Variable

    q = engine.query(NYC_FRIENDS)
    params = frozenset({Variable("p")})
    old_version, _ = engine._access_state
    views_version = engine.views.version
    stale_plans = engine._plans_for(q.query, params)
    engine.access = "friend(pid1 -> 7); friend(pid2 -> 7); person(pid -> 1)"
    engine._cache.put((old_version, views_version, q.query, params), stale_plans)
    assert q.execute(p=1).fanout_bound == 7 + 7 * 1  # not the stale 5005


class TestPerExecutionStatsIsolation:
    """ResultSet.stats are charged through a per-execution
    ExecutionContext: concurrent executes against one engine must never
    contaminate each other's deltas, while Database.stats stays the
    cumulative engine-wide view."""

    def test_concurrent_executes_see_their_own_deltas(self):
        import threading

        from repro.workloads import social_engine

        engine = social_engine(300, seed=5)
        q1 = engine.query("Q(y) :- friend(p, y), person(y, n, 'NYC')")
        q3 = engine.query(
            "Q(z) :- friend(p, y), friend(y, z), person(z, n, 'NYC')"
        )
        # Solo baselines: each (query, pid)'s exact access counts.
        jobs = [(q1, pid) for pid in range(40)] + [(q3, pid) for pid in range(40)]
        expected = {}
        for i, (query, pid) in enumerate(jobs):
            result = query.execute(p=pid)
            expected[i] = (
                result.stats.tuples_accessed,
                result.stats.indexed_lookups,
                set(result.rows),
            )

        observed: dict[int, tuple] = {}
        barrier = threading.Barrier(8)
        errors = []

        def worker(worker_id: int):
            try:
                barrier.wait()
                for i in range(worker_id, len(jobs), 8):
                    query, pid = jobs[i]
                    result = query.execute(p=pid)
                    observed[i, worker_id] = (
                        i,
                        result.stats.tuples_accessed,
                        result.stats.indexed_lookups,
                        set(result.rows),
                    )
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(observed) == len(jobs)
        for i, tuples, lookups, rows in observed.values():
            assert (tuples, lookups, rows) == expected[i], f"job {i} contaminated"

    def test_database_stats_stay_cumulative(self):
        from repro.workloads import social_engine

        engine = social_engine(50, seed=0)
        db = engine.require_database()
        db.reset_stats()
        first = engine.execute("Q(y) :- friend(p, y)", p=1)
        second = engine.execute("Q(y) :- friend(p, y)", p=2)
        assert (
            db.stats.tuples_accessed
            == first.stats.tuples_accessed + second.stats.tuples_accessed
        )

    def test_explain_analyze_stats_are_per_execution(self):
        from repro.workloads import social_engine

        engine = social_engine(50, seed=0)
        analyzed = engine.explain_analyze("Q(y) :- friend(p, y)", p=1)
        again = engine.explain_analyze("Q(y) :- friend(p, y)", p=1)
        assert (
            analyzed.result.stats.tuples_accessed
            == again.result.stats.tuples_accessed
        )
        assert analyzed.result.stats.tuples_accessed == sum(
            op.tuples_accessed
            for profile in analyzed.profiles
            for op in profile.operators
        )

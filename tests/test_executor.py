"""Tests for the batched physical-operator pipeline (repro.core.executor)
and the bulk access API it runs on (lookup_many / contains_many).

The pipeline must agree with the per-tuple reference path on every query
shape the planner can emit, touch no more tuples than it, and expose
per-operator row counts through profile_plan.
"""

import pytest

from repro import (
    AccessRule,
    AccessSchema,
    Atom,
    ConjunctiveQuery,
    Database,
    DatabaseSchema,
    EmbeddedAccessRule,
    Equality,
    RelationSchema,
    compile_plan,
)
from repro.core.executor import (
    FetchOp,
    FilterOp,
    ProbeOp,
    ProjectDedupOp,
    build_pipeline,
    execute_per_tuple,
    execute_plan,
    pipeline_for,
    profile_plan,
)
from repro.errors import SchemaError

Q1 = ConjunctiveQuery(
    ["x"],
    [Atom("friend", ["?p", "?x"]), Atom("person", ["?x", "?n", "NYC"])],
)


class TestBulkAccess:
    def test_lookup_many_aligns_groups_with_patterns(self, social_db):
        groups = social_db.lookup_many("friend", [{0: 1}, {0: 2}, {0: 99}])
        assert groups == (((1, 2), (1, 3)), ((2, 4),), ())

    def test_lookup_many_counts_distinct_keys_once(self, social_db):
        social_db.reset_stats()
        social_db.lookup_many("friend", [{0: 1}, {0: 1}, {0: 1}])
        assert social_db.stats.indexed_lookups == 1
        assert social_db.stats.tuples_accessed == 2

    def test_lookup_many_matches_lookup_semantics(self, social_db):
        patterns = [{0: 1}, {1: 4}, {0: 1, 1: 2}, {}]
        bulk = social_db.lookup_many("friend", patterns)
        for pattern, group in zip(patterns, bulk):
            assert group == social_db.lookup("friend", pattern)

    def test_lookup_many_empty_pattern_scans_once(self, social_db):
        social_db.reset_stats()
        social_db.lookup_many("friend", [{}, {}])
        assert social_db.stats.full_scans == 1

    def test_lookup_many_rejects_bad_positions(self, social_db):
        with pytest.raises(SchemaError, match="out of range"):
            social_db.lookup_many("friend", [{7: 1}])

    def test_lookup_many_empty_batch(self, social_db):
        assert social_db.lookup_many("friend", []) == ()

    def test_contains_many_aligns_and_dedups(self, social_db):
        social_db.reset_stats()
        verdicts = social_db.contains_many(
            "friend", [(1, 2), (9, 9), (1, 2), (2, 4)]
        )
        assert verdicts == (True, False, True, True)
        assert social_db.stats.indexed_lookups == 3  # (1, 2) probed once
        assert social_db.stats.tuples_accessed == 2

    def test_contains_many_validates_rows(self, social_db):
        with pytest.raises(SchemaError):
            social_db.contains_many("friend", [(1, 2, 3)])


class TestPipelineShape:
    def test_q1_pipeline_operators(self, social_access):
        plan = compile_plan(Q1, social_access, ["p"])
        ops = build_pipeline(plan)
        assert [type(op) for op in ops] == [FetchOp, FetchOp, ProjectDedupOp]

    def test_embedded_rule_produces_probe(self, social_schema):
        access = AccessSchema(
            social_schema,
            [
                EmbeddedAccessRule("friend", ["pid1"], ["pid2"], bound=100),
                AccessRule("person", ["pid"], bound=1),
            ],
        )
        plan = compile_plan(Q1, access, ["p"])
        ops = build_pipeline(plan)
        assert ProbeOp in {type(op) for op in ops}
        fetch = next(op for op in ops if isinstance(op, FetchOp))
        assert fetch.dedup_positions is not None

    def test_unsatisfiable_plan_has_empty_pipeline(self, social_access):
        q = ConjunctiveQuery(
            ["x"],
            [Atom("friend", ["?p", "?x"])],
            [Equality("?p", 1), Equality("?p", 2)],
        )
        plan = compile_plan(q, social_access)
        assert build_pipeline(plan) == ()

    def test_pipeline_is_memoized_per_plan(self, social_access):
        plan = compile_plan(Q1, social_access, ["p"])
        assert pipeline_for(plan) is pipeline_for(plan)

    def test_operators_render(self, social_access):
        plan = compile_plan(Q1, social_access, ["p"])
        rendered = [str(op) for op in build_pipeline(plan)]
        assert any("fetch" in line for line in rendered)
        assert any("project/dedup" in line for line in rendered)


class TestBatchedMatchesPerTuple:
    def test_q1_every_parameter(self, social_db, social_access):
        plan = compile_plan(Q1, social_access, ["p"])
        for pid in range(1, 7):
            batched = execute_plan(plan, social_db, p=pid)
            reference = execute_per_tuple(plan, social_db, p=pid)
            assert set(batched) == set(reference)
            assert set(batched) == set(Q1.evaluate(social_db, {"p": pid}))

    def test_batched_touches_no_more_tuples(self, social_db, social_access):
        plan = compile_plan(Q1, social_access, ["p"])
        social_db.reset_stats()
        execute_plan(plan, social_db, p=1)
        batched = social_db.stats.snapshot()
        social_db.reset_stats()
        execute_per_tuple(plan, social_db, p=1)
        per_tuple = social_db.stats.snapshot()
        assert batched.tuples_accessed <= per_tuple.tuples_accessed
        assert batched.tuples_accessed <= plan.fanout_bound
        assert batched.full_scans == 0

    def test_repeated_variable_atom(self, social_db, social_access):
        # friend(x, x): the same new variable at two positions must bind
        # consistently.
        q = ConjunctiveQuery(["x"], [Atom("friend", ["?x", "?x"])])
        access = AccessSchema(
            social_db.schema, [AccessRule("friend", [], bound=100)]
        )
        plan = compile_plan(q, access)
        social_db.add("friend", (7, 7))
        assert set(execute_plan(plan, social_db)) == {(7,)}
        assert set(execute_per_tuple(plan, social_db)) == {(7,)}

    def test_embedded_rule_matches_reference(self, social_schema, social_db):
        access = AccessSchema(
            social_schema,
            [
                EmbeddedAccessRule("friend", ["pid1"], ["pid2"], bound=100),
                AccessRule("person", ["pid"], bound=1),
            ],
        )
        plan = compile_plan(Q1, access, ["p"])
        for pid in range(1, 7):
            assert set(execute_plan(plan, social_db, p=pid)) == set(
                execute_per_tuple(plan, social_db, p=pid)
            ) == set(Q1.evaluate(social_db, {"p": pid}))

    def test_constants_used_as_keys(self, social_db, social_access):
        q = ConjunctiveQuery(["x"], [Atom("friend", [4, "?x"])])
        plan = compile_plan(q, social_access)
        social_db.reset_stats()
        assert execute_plan(plan, social_db) == ((5,),)
        assert social_db.stats.full_scans == 0


class TestParameterEqualities:
    """Equalities that involve plan parameters become FilterOp work."""

    def _friend_setup(self):
        schema = DatabaseSchema([RelationSchema("friend", ["a", "b"])])
        access = AccessSchema(schema, [AccessRule("friend", ["a"], bound=10)])
        db = Database(schema, {"friend": [(1, 2), (1, 3), (2, 4)]})
        return access, db

    def test_parameter_equated_to_variable_either_orientation(self):
        access, db = self._friend_setup()
        for left, right in (("?p", "?x"), ("?x", "?p")):
            q = ConjunctiveQuery(
                ["y"], [Atom("friend", ["?x", "?y"])], [Equality(left, right)]
            )
            plan = compile_plan(q, access, ["p"])
            db.reset_stats()
            assert set(execute_plan(plan, db, p=1)) == {(2,), (3,)}
            assert db.stats.full_scans == 0
            assert set(execute_per_tuple(plan, db, p=1)) == {(2,), (3,)}

    def test_parameter_equated_to_constant_filters_values(self):
        access, db = self._friend_setup()
        q = ConjunctiveQuery(
            ["y"], [Atom("friend", ["?p", "?y"])], [Equality("?p", 1)]
        )
        plan = compile_plan(q, access, ["p"])
        ops = build_pipeline(plan)
        assert isinstance(ops[0], FilterOp)
        assert set(execute_plan(plan, db, p=1)) == {(2,), (3,)}
        assert execute_plan(plan, db, p=2) == ()  # contradicts ?p = 1
        assert execute_per_tuple(plan, db, p=2) == ()

    def test_two_parameters_in_same_class_must_agree(self):
        access, db = self._friend_setup()
        q = ConjunctiveQuery(
            ["y"],
            [Atom("friend", ["?p", "?y"])],
            [Equality("?p", "?q")],
        )
        plan = compile_plan(q, access, ["p", "q"])
        assert set(execute_plan(plan, db, p=1, q=1)) == {(2,), (3,)}
        assert execute_plan(plan, db, p=1, q=2) == ()
        assert execute_per_tuple(plan, db, p=1, q=2) == ()


class TestEntryPointValidation:
    def test_missing_parameter_rejected(self, social_db, social_access):
        plan = compile_plan(Q1, social_access, ["p"])
        with pytest.raises(ValueError, match="missing plan parameters"):
            execute_plan(plan, social_db)

    def test_extra_binding_rejected(self, social_db, social_access):
        plan = compile_plan(Q1, social_access, ["p"])
        with pytest.raises(ValueError, match="not plan parameters"):
            execute_plan(plan, social_db, p=1, zzz=9)

    def test_unsatisfiable_returns_empty(self, social_db, social_access):
        q = ConjunctiveQuery(
            ["x"],
            [Atom("friend", ["?p", "?x"])],
            [Equality("?p", 1), Equality("?p", 2)],
        )
        plan = compile_plan(q, social_access)
        assert execute_plan(plan, social_db) == ()
        assert execute_per_tuple(plan, social_db) == ()


class TestProfile:
    def test_profile_reports_per_operator_rows(self, social_db, social_access):
        plan = compile_plan(Q1, social_access, ["p"])
        profile = profile_plan(plan, social_db, p=1)
        assert set(profile.rows) == set(execute_plan(plan, social_db, p=1))
        assert len(profile.operators) == 3
        first = profile.operators[0]
        assert first.rows_in == 1  # the seed assignment
        assert first.rows_out == 2  # person 1 has two friends
        assert profile.tuples_accessed <= plan.fanout_bound
        assert "fetch" in str(profile)

    def test_profile_row_counts_chain(self, social_db, social_access):
        plan = compile_plan(Q1, social_access, ["p"])
        profile = profile_plan(plan, social_db, p=1)
        for prev, nxt in zip(profile.operators, profile.operators[1:]):
            assert nxt.rows_in == prev.rows_out


class TestExecutionContext:
    """The per-execution context: double-entry accounting and the old-state
    (pre-delta) read adjustments the delta pipeline runs on."""

    def _ctx(self, social_db, delta=None):
        from repro.core.executor import ExecutionContext

        return ExecutionContext(social_db, delta=delta)

    def test_reads_charge_context_and_database(self, social_db):
        social_db.reset_stats()
        ctx = self._ctx(social_db)
        ctx.lookup_many("friend", [{0: 1}])
        ctx.contains("friend", (1, 2))
        assert ctx.stats.tuples_accessed == social_db.stats.tuples_accessed == 3
        assert ctx.stats.indexed_lookups == social_db.stats.indexed_lookups == 2

    def test_two_contexts_do_not_share_stats(self, social_db):
        a, b = self._ctx(social_db), self._ctx(social_db)
        a.lookup("friend", {0: 1})
        assert b.stats.tuples_accessed == 0
        assert a.stats.tuples_accessed == 2

    def test_watermark_defaults_to_the_log(self, social_db):
        assert self._ctx(social_db).watermark == social_db.change_log.watermark

    def test_lookup_many_old_drops_inserts_and_restores_deletes(self, social_db):
        mark = social_db.change_log.watermark
        social_db.insert_many("friend", [(1, 9)])
        social_db.delete_many("friend", [(1, 2)])
        delta = social_db.change_log.net_since(mark)
        ctx = self._ctx(social_db, delta=delta)
        (old,) = ctx.lookup_many_old("friend", [{0: 1}])
        assert set(old) == {(1, 3), (1, 2)}  # no (1, 9); (1, 2) restored
        (new,) = ctx.lookup_many("friend", [{0: 1}])
        assert set(new) == {(1, 3), (1, 9)}

    def test_contains_many_old_answers_from_the_slice(self, social_db):
        mark = social_db.change_log.watermark
        social_db.insert_many("friend", [(1, 9)])
        social_db.delete_many("friend", [(1, 2)])
        delta = social_db.change_log.net_since(mark)
        ctx = self._ctx(social_db, delta=delta)
        social_db.reset_stats()
        verdicts = ctx.contains_many_old("friend", [(1, 9), (1, 2), (2, 4), (7, 7)])
        assert verdicts == (False, True, True, False)
        # Only the two slice-unknown rows were probed.
        assert ctx.stats.indexed_lookups == 2

    def test_delta_index_groups_by_positions(self, social_db):
        delta = {"friend": {(1, 9): 1, (1, 8): -1, (2, 9): 1}}
        ctx = self._ctx(social_db, delta=delta)
        index = ctx.delta_index("friend", (0,))
        assert set(index) == {(1,), (2,)}
        assert set(index[(1,)]) == {((1, 9), 1), ((1, 8), -1)}
        assert ctx.delta_index("friend", (0,)) is index  # memoized

    def test_empty_slice_reads_pass_through(self, social_db):
        ctx = self._ctx(social_db)
        assert ctx.lookup_many_old("friend", [{0: 1}]) == ctx.lookup_many(
            "friend", [{0: 1}]
        )
        assert ctx.delta_net("friend") == {}
        assert ctx.delta_rows("friend") == ()
        assert "ExecutionContext" in repr(ctx)


class TestDeltaOperatorFaces:
    def test_keyless_fetch_run_delta_joins_every_row(self, social_db):
        from repro import AccessRule, AccessSchema, ConjunctiveQuery
        from repro.core.columnar import SignedColumnarBatch
        from repro.core.executor import ExecutionContext, FetchOp, pipeline_for

        q = ConjunctiveQuery(["x", "y"], [Atom("friend", ["?x", "?y"])])
        access = AccessSchema(social_db.schema, [AccessRule("friend", [], bound=100)])
        plan = compile_plan(q, access)
        fetch = next(op for op in pipeline_for(plan) if isinstance(op, FetchOp))
        assert fetch.key_positions == ()
        ctx = ExecutionContext(social_db, delta={"friend": {(8, 9): 1, (1, 2): -1}})
        signed = fetch.run_delta(ctx, SignedColumnarBatch.from_pairs([({}, 1)]))
        x, y = fetch.atom.terms
        assert {((a[x], a[y]), s) for a, s in signed.to_pairs()} == {
            ((8, 9), 1),
            ((1, 2), -1),
        }

    def test_embedded_fetch_delta_faces_raise(self, social_schema, social_db):
        from repro import IncrementalError
        from repro.core.columnar import SignedColumnarBatch
        from repro.core.executor import ExecutionContext, FetchOp, pipeline_for

        access = AccessSchema(
            social_schema,
            [
                EmbeddedAccessRule("friend", ["pid1"], ["pid2"], bound=100),
                AccessRule("person", ["pid"], bound=1),
            ],
        )
        plan = compile_plan(Q1, access, ["p"])
        fetch = next(op for op in pipeline_for(plan) if isinstance(op, FetchOp))
        ctx = ExecutionContext(social_db, delta={"friend": {(1, 9): 1}})
        seed = SignedColumnarBatch.from_pairs([({}, 1)])
        with pytest.raises(IncrementalError):
            fetch.run_delta(ctx, seed)
        with pytest.raises(IncrementalError):
            fetch.run_old(ctx, seed)

    def test_probe_run_delta_multiplies_signs(self, social_db, social_access):
        from repro.core.columnar import SignedColumnarBatch
        from repro.core.executor import ExecutionContext, ProbeOp
        from repro.logic.terms import Variable

        probe = ProbeOp(Atom("friend", ["?a", "?b"]))
        a, b = Variable("a"), Variable("b")
        ctx = ExecutionContext(social_db, delta={"friend": {(1, 9): 1, (2, 8): -1}})
        signed = probe.run_delta(
            ctx,
            SignedColumnarBatch.from_pairs(
                [({a: 1, b: 9}, -1), ({a: 2, b: 8}, 1), ({a: 1, b: 2}, 1)]
            ),
        )
        assert signed.to_pairs() == [({a: 1, b: 9}, -1), ({a: 2, b: 8}, -1)]

"""The package imports and exports everything it promises."""

import importlib

# Names the top level is documented to export; test_all_is_complete keeps
# __all__ and this list in sync.
EXPECTED_EXPORTS = {
    # errors
    "ReproError",
    "SchemaError",
    "UpdateError",
    "UndecidableError",
    "NotControlledError",
    "RewritingError",
    "ParseError",
    "IncrementalError",
    "CertificationError",
    # terms and formulas
    "Variable",
    "Constant",
    "Atom",
    "Equality",
    "And",
    "Or",
    "Not",
    "Exists",
    "Forall",
    "Implies",
    "Span",
    # queries and parsing
    "ConjunctiveQuery",
    "UnionOfConjunctiveQueries",
    "FirstOrderQuery",
    "parse_query",
    "parse_cq",
    # relational substrate
    "RelationSchema",
    "DatabaseSchema",
    "parse_schema",
    "Database",
    "AccessStats",
    "ChangeEntry",
    "ChangeLog",
    # storage backends
    "StorageBackend",
    "MemoryBackend",
    "SqliteBackend",
    "ShardedBackend",
    # access schemas
    "AccessRule",
    "EmbeddedAccessRule",
    "FullAccessRule",
    "AccessSchema",
    "parse_access_schema",
    # controllability and plans
    "Coverage",
    "CoverageStep",
    "coverage",
    "controlling_sets",
    "is_controlled",
    "Plan",
    "FetchStep",
    "ProbeStep",
    "StepCost",
    "compile_plan",
    # the physical executor
    "ExecutionContext",
    "FetchOp",
    "ProbeOp",
    "FilterOp",
    "ProjectDedupOp",
    "OperatorProfile",
    "PlanProfile",
    "build_pipeline",
    "execute_plan",
    "profile_plan",
    # incremental execution
    "IncrementalResult",
    "execute_plan_counting",
    "execute_plan_delta",
    "delta_fanout_bound",
    # materialized views (Section 6)
    "ViewDef",
    "ViewSet",
    "ViewState",
    "ViewScanOp",
    "ViewProbeOp",
    # deciders
    "QDSIResult",
    "decide_qdsi",
    "QSIResult",
    "decide_qsi",
    # the Engine facade
    "Engine",
    "PreparedQuery",
    "ResultSet",
    "ExplainAnalyze",
    "CacheStats",
    # static analysis
    "Severity",
    "Diagnostic",
    "Report",
}


def test_every_exported_name_resolves():
    repro = importlib.import_module("repro")
    missing = [name for name in repro.__all__ if not hasattr(repro, name)]
    assert not missing


def test_all_is_complete():
    repro = importlib.import_module("repro")
    assert set(repro.__all__) == EXPECTED_EXPORTS


def test_all_has_no_duplicates():
    repro = importlib.import_module("repro")
    assert len(repro.__all__) == len(set(repro.__all__))


def test_core_names_reexported_at_top_level():
    repro = importlib.import_module("repro")
    core = importlib.import_module("repro.core")
    for name in ("Plan", "FetchStep", "ProbeStep", "QSIResult", "QDSIResult", "Coverage", "coverage"):
        assert getattr(repro, name) is getattr(core, name)


def test_rewriting_error_is_exported():
    from repro import ReproError, RewritingError

    assert "RewritingError" in importlib.import_module("repro").__all__
    assert issubclass(RewritingError, ReproError)


def test_star_import_is_clean():
    namespace = {}
    exec("from repro import *", namespace)
    assert EXPECTED_EXPORTS <= set(namespace)


def test_subpackages_import():
    for mod in (
        "repro.logic",
        "repro.logic.evaluation",
        "repro.logic.homomorphism",
        "repro.logic.parser",
        "repro.relational",
        "repro.relational.backends",
        "repro.relational.backends.base",
        "repro.relational.backends.memory",
        "repro.relational.backends.sqlite",
        "repro.relational.backends.sharded",
        "repro.core",
        "repro.core.executor",
        "repro.api",
        "repro.api.cache",
        "repro.api.engine",
        "repro.incremental",
        "repro.views",
        "repro.views.definition",
        "repro.views.rewrite",
        "repro.workloads",
        "repro.workloads.churn",
        "repro.bench",
        "repro.analysis",
        "repro.analysis.diagnostics",
        "repro.analysis.queries",
        "repro.analysis.access",
        "repro.analysis.plans",
        "repro.analysis.views",
        "repro.analysis.certify",
        "repro.analysis.dataflow",
        "repro.analysis.fixes",
        "repro.analysis.__main__",
    ):
        importlib.import_module(mod)


def test_docstring_promises_match_implementation():
    """The package docstring documents repro.views as implemented (the
    'planned' note is gone), and ROADMAP agrees -- the two are kept in
    sync by contract."""
    import pathlib

    import repro

    assert "repro.views" in repro.__doc__
    assert "repro.analysis" in repro.__doc__
    assert "planned" not in repro.__doc__.lower()
    roadmap = pathlib.Path(__file__).resolve().parent.parent / "ROADMAP.md"
    if roadmap.exists():  # the repo checkout; absent in an installed wheel
        text = roadmap.read_text()
        assert "## Done" in text
        done = text.split("## Done", 1)[-1]
        assert "repro.views" in done
        assert "repro.analysis" in done


def test_subpackage_alls_resolve():
    for mod_name in (
        "repro.logic",
        "repro.relational",
        "repro.relational.backends",
        "repro.core",
        "repro.api",
        "repro.views",
        "repro.analysis",
    ):
        mod = importlib.import_module(mod_name)
        missing = [name for name in mod.__all__ if not hasattr(mod, name)]
        assert not missing, f"{mod_name}: {missing}"

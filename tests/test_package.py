"""The package imports and exports everything it promises."""

import importlib


def test_every_exported_name_resolves():
    repro = importlib.import_module("repro")
    missing = [name for name in repro.__all__ if not hasattr(repro, name)]
    assert not missing


def test_rewriting_error_is_exported():
    from repro import ReproError, RewritingError

    assert "RewritingError" in importlib.import_module("repro").__all__
    assert issubclass(RewritingError, ReproError)


def test_subpackages_import():
    for mod in (
        "repro.logic",
        "repro.logic.evaluation",
        "repro.logic.homomorphism",
        "repro.relational",
        "repro.core",
    ):
        importlib.import_module(mod)

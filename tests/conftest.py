"""Shared fixtures: the paper's running social-network example.

A ``person(pid, name, city)`` / ``friend(pid1, pid2)`` schema with a small
instance, and an access schema declaring the indexes a production
deployment would have: friends are fetchable by follower id with bounded
fan-out, and people are keyed by id.
"""

import pytest

from repro import (
    AccessRule,
    AccessSchema,
    Database,
    DatabaseSchema,
    MemoryBackend,
    RelationSchema,
    ShardedBackend,
    SqliteBackend,
)

# The storage-backend axis for conformance testing: every parametrized
# test runs on the in-memory hash-index store, the out-of-core SQLite
# store (kept in-memory here -- same code path, no tmp files), and the
# hash-sharded composite with a child count that forces real partitioning.
BACKEND_KINDS = ("memory", "sqlite", "sharded")


def make_backend(kind: str):
    """A fresh, unattached backend of the requested kind."""
    if kind == "memory":
        return MemoryBackend()
    if kind == "sqlite":
        return SqliteBackend()
    if kind == "sharded":
        return ShardedBackend(3)
    raise ValueError(f"unknown backend kind {kind!r}")


@pytest.fixture(params=BACKEND_KINDS)
def backend_factory(request):
    """A zero-argument factory of fresh backends; parametrizes the test
    over all three storage implementations."""
    kind = request.param
    return lambda: make_backend(kind)


@pytest.fixture(autouse=True)
def _certify_all_plans(monkeypatch):
    """Certification is always-on in the test suite: every Engine built
    by any test follows REPRO_CERTIFY and gates each compiled plan --
    base, view-augmented and incremental-rebase alike -- on the
    independent certifier (repro.analysis.certify).  A planner bug that
    produces an unsound plan fails the suite even if no assertion would
    have caught the wrong answer."""
    monkeypatch.setenv("REPRO_CERTIFY", "1")


@pytest.fixture
def social_schema():
    return DatabaseSchema(
        [
            RelationSchema("person", ["pid", "name", "city"]),
            RelationSchema("friend", ["pid1", "pid2"]),
        ]
    )


@pytest.fixture
def social_db(social_schema):
    return Database(
        social_schema,
        {
            "person": [
                (1, "ann", "NYC"),
                (2, "bob", "NYC"),
                (3, "cat", "SF"),
                (4, "dan", "NYC"),
                (5, "eve", "SF"),
            ],
            "friend": [
                (1, 2),
                (1, 3),
                (2, 4),
                (3, 4),
                (4, 5),
                (5, 1),
            ],
        },
    )


@pytest.fixture
def social_access(social_schema):
    return AccessSchema(
        social_schema,
        [
            AccessRule("friend", ["pid1"], bound=5000),
            AccessRule("person", ["pid"], bound=1),
        ],
    )

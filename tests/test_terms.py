"""Unit tests for terms, including the three seed bugfixes:

* ``make_term("?")`` / ``Variable("")`` raise ValueError;
* ``Constant`` ordering is a total order for mixed-type values;
* ``variables_of`` / ``constants_of`` deduplicate in linear time.
"""

import pytest

from repro.logic.terms import (
    Constant,
    Variable,
    constants_of,
    is_constant,
    is_variable,
    make_term,
    variables_of,
)


class TestMakeTerm:
    def test_question_mark_prefix_makes_variable(self):
        assert make_term("?x") == Variable("x")

    def test_plain_values_make_constants(self):
        assert make_term("x") == Constant("x")
        assert make_term(42) == Constant(42)

    def test_terms_pass_through(self):
        v, c = Variable("x"), Constant(1)
        assert make_term(v) is v
        assert make_term(c) is c

    def test_bare_question_mark_raises(self):
        with pytest.raises(ValueError):
            make_term("?")

    def test_empty_variable_name_raises(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_predicates(self):
        assert is_variable(Variable("x")) and not is_variable(Constant(1))
        assert is_constant(Constant(1)) and not is_constant(Variable("x"))


class TestConstantOrdering:
    def test_mixed_type_comparison_is_consistent(self):
        a, b = Constant(1), Constant("a")
        assert (a < b) != (b < a)
        # int sorts before str because "int" < "str"
        assert a < b
        assert not (b < a)

    def test_total_ordering_operators(self):
        assert Constant(1) <= Constant(1)
        assert Constant(2) > Constant(1)
        assert Constant("b") >= Constant("a")

    def test_sorting_mixed_values_is_deterministic(self):
        values = [Constant("b"), Constant(2), Constant(1.5), Constant("a"), Constant(1)]
        assert sorted(values) == sorted(reversed(values))

    def test_same_type_orders_by_value(self):
        assert Constant(1) < Constant(2)
        assert Constant("a") < Constant("b")

    def test_not_implemented_for_non_constants(self):
        with pytest.raises(TypeError):
            Constant(1) < 1


class TestDeduplication:
    def test_variables_of_preserves_first_occurrence_order(self):
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        assert variables_of([x, Constant(1), y, x, z, y]) == (x, y, z)

    def test_constants_of_preserves_first_occurrence_order(self):
        terms = [Constant(2), Variable("x"), Constant(1), Constant(2)]
        assert constants_of(terms) == (Constant(2), Constant(1))

    def test_empty(self):
        assert variables_of([]) == ()
        assert constants_of([]) == ()

    def test_large_input_is_fast(self):
        # ~0.2s even on slow machines with the linear dedup; minutes with
        # the old quadratic list-membership scan.
        terms = [Variable(f"v{i % 1000}") for i in range(200_000)]
        assert len(variables_of(terms)) == 1000


class TestConstantEqLtConsistency:
    def test_constants_are_typed_literals(self):
        # Python conflates 1 == 1.0 == True, but as typed literals these
        # are distinct terms -- the ordering by type name can then be a
        # total order consistent with equality.
        assert Constant(True) != Constant(1)
        assert Constant(1.0) != Constant(1)
        assert Constant(1) == Constant(1)
        assert hash(Constant(1)) == hash(Constant(1))

    def test_cross_type_equal_numerics_sort_deterministically(self):
        # The review scenario: 2 == 2.0 must not make sort output depend
        # on input order.
        a = [Constant(3), Constant(2.0), Constant(2), Constant(1)]
        b = [Constant(1), Constant(2), Constant(2.0), Constant(3)]
        assert sorted(a) == sorted(b)
        assert sorted(a) == [Constant(2.0), Constant(1), Constant(2), Constant(3)]

    def test_same_type_incomparable_values_fall_back_to_str(self):
        # set.__lt__ is the subset test (False both ways for {1,2} vs {3}),
        # so the string fallback must kick in for unequal values.
        s1, s2 = Constant(frozenset([1, 2])), Constant(frozenset([3]))
        assert (s1 < s2) != (s2 < s1)
        assert sorted([s1, s2]) == sorted([s2, s1])

    def test_unhashable_value_rejected_at_construction(self):
        with pytest.raises(TypeError, match="hashable"):
            Constant([1, 2])


def test_nan_constants_keep_comparisons_antisymmetric():
    a, b = Constant(float("nan")), Constant(float("nan"))
    assert a == a  # identity-or-equality
    assert a != b
    assert (a < b) != (b < a)
    assert sorted([a, b]) == sorted([b, a])


def test_partially_ordered_same_type_values_sort_transitively():
    # frozenset's native < is the subset test (a partial order); mixing it
    # with a per-pair fallback used to create cycles like {2} < {1,2} <
    # {10} < {2}.  Uniform string ordering keeps the sort deterministic.
    x = Constant(frozenset({2}))
    y = Constant(frozenset({1, 2}))
    z = Constant(frozenset({10}))
    orders = [sorted(p) for p in ([x, y, z], [y, z, x], [z, x, y], [z, y, x])]
    assert all(o == orders[0] for o in orders)

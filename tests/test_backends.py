"""The storage-backend conformance suite.

Every :class:`~repro.relational.backends.base.StorageBackend`
implementation must be observationally identical through the narrow
waist: same answers, same *exact* access accounting (each distinct key
of a batch charged once, scans counted once however many groups share
them), same mutation-flag alignment, and indexes that stay current
under churn.  The memory backend additionally promises that the live
index buckets it hands out are never mutated by any caller; the SQLite
and sharded backends promise the opposite -- returned groups are owned
and never alias internal storage.
"""

import pytest

from conftest import BACKEND_KINDS, make_backend
from repro import (
    AccessStats,
    Database,
    DatabaseSchema,
    MemoryBackend,
    RelationSchema,
    SchemaError,
    ShardedBackend,
    SqliteBackend,
    UpdateError,
)
from repro.logic.parser import parse_query
from repro.workloads import (
    RUNNING_QUERIES,
    VIEW_QUERIES,
    generate_churn,
    generate_social_network,
    register_workload_views,
    sample_urls,
    social_engine,
)

SCHEMA = DatabaseSchema([RelationSchema("friend", ["a", "b"])])
DATA = {"friend": [(1, 2), (1, 3), (2, 4)]}


# -- exact accounting through the narrow waist ----------------------------


def test_lookup_keys_charges_each_distinct_key_once(backend_factory):
    db = Database(SCHEMA, DATA, backend=backend_factory())
    db.reset_stats()
    extra = AccessStats()
    groups = db.lookup_keys("friend", (0,), [(1,), (1,), (2,), (9,)], extra)
    assert [sorted(g) for g in groups] == [
        [(1, 2), (1, 3)],
        [(1, 2), (1, 3)],
        [(2, 4)],
        [],
    ]
    # 3 distinct keys -> 3 lookups; their groups hold 2 + 1 + 0 tuples.
    assert (
        db.stats.tuples_accessed,
        db.stats.indexed_lookups,
        db.stats.full_scans,
    ) == (3, 3, 0)
    assert extra == db.stats  # the extra stats mirror the cumulative charge


def test_empty_positions_share_one_counted_scan(backend_factory):
    db = Database(SCHEMA, DATA, backend=backend_factory())
    db.reset_stats()
    groups = db.lookup_keys("friend", (), [(), ()])
    assert [set(g) for g in groups] == [set(DATA["friend"])] * 2
    assert (
        db.stats.tuples_accessed,
        db.stats.indexed_lookups,
        db.stats.full_scans,
    ) == (3, 0, 1)


def test_contains_rows_dedups_and_charges_hits_only(backend_factory):
    db = Database(SCHEMA, DATA, backend=backend_factory())
    db.reset_stats()
    verdicts = db.contains_rows("friend", [(1, 2), (1, 2), (9, 9)])
    assert verdicts == (True, True, False)
    assert (
        db.stats.tuples_accessed,
        db.stats.indexed_lookups,
        db.stats.full_scans,
    ) == (1, 2, 0)


def test_invalid_accesses_raise_schema_errors(backend_factory):
    db = Database(SCHEMA, DATA, backend=backend_factory())
    with pytest.raises(SchemaError, match="out of range"):
        db.lookup_keys("friend", (5,), [(1,)])
    with pytest.raises(SchemaError):
        db.lookup_keys("nope", (0,), [(1,)])


# -- index maintenance under mutation -------------------------------------


def test_indexes_stay_current_after_delete_and_reinsert(backend_factory):
    db = Database(SCHEMA, DATA, backend=backend_factory())
    assert sorted(db.lookup("friend", {0: 1})) == [(1, 2), (1, 3)]
    assert db.delete_many("friend", [(1, 2), (7, 7)]) == 1
    assert sorted(db.lookup("friend", {0: 1})) == [(1, 3)]
    db.add("friend", (1, 5))
    assert sorted(db.lookup("friend", {0: 1})) == [(1, 3), (1, 5)]
    assert db.size("friend") == 3


def test_mutation_flags_align_with_input_order(backend_factory):
    backend = backend_factory()
    Database(SCHEMA, DATA, backend=backend)
    # First occurrence wins within a batch; flags stay input-aligned.
    assert backend.insert_rows("friend", [(8, 9), (1, 2), (8, 9), (9, 9)]) == [
        True,
        False,
        False,
        True,
    ]
    assert backend.delete_rows("friend", [(8, 9), (8, 9), (0, 0), (9, 9)]) == [
        True,
        False,
        False,
        True,
    ]


def test_bulk_load_streams_unlogged_and_is_guarded(backend_factory):
    db = Database(SCHEMA, backend=backend_factory())
    assert db.bulk_load("friend", [(1, 2), (2, 3), (1, 2)]) == 2
    assert db.size() == 2
    assert len(db.change_log) == 0  # loads are not replayable history
    db.add("friend", (5, 6))
    with pytest.raises(UpdateError, match="change log"):
        db.bulk_load("friend", [(7, 8)])


# -- lifecycle ------------------------------------------------------------


def test_attach_is_one_shot(backend_factory):
    backend = backend_factory()
    with pytest.raises(SchemaError, match="not attached"):
        backend.schema
    Database(SCHEMA, DATA, backend=backend)
    with pytest.raises(SchemaError, match="already attached"):
        backend.attach(SCHEMA, AccessStats())
    with pytest.raises(SchemaError, match="already attached"):
        Database(SCHEMA, backend=backend)


# -- the aliasing contract ------------------------------------------------


def test_live_group_flags_match_implementations():
    assert MemoryBackend.returns_live_groups is True
    assert SqliteBackend.returns_live_groups is False
    assert ShardedBackend.returns_live_groups is False


def test_owned_groups_never_alias_storage(backend_factory):
    backend = backend_factory()
    db = Database(SCHEMA, DATA, backend=backend)
    first = db.lookup_keys("friend", (0,), [(1,)])[0]
    second = db.lookup_keys("friend", (0,), [(1,)])[0]
    assert tuple(first) == tuple(second)
    if backend.returns_live_groups:
        # The memory backend returns the live bucket itself, both times.
        assert first is second
    else:
        # Owned groups are immutable or fresh per call -- a caller cannot
        # corrupt storage through them even by trying.
        assert isinstance(first, tuple) or first is not second


def _exercise_workload(engine, persons, seed):
    """Drive everything that reads through the narrow waist: Q1-Q3 over
    every pid, incremental refresh under churn, and view-assisted Q4/Q5."""
    db = engine.require_database()
    data = generate_social_network(persons, seed=seed)
    register_workload_views(engine)
    prepared = {b.name: b.prepare(engine) for b in RUNNING_QUERIES}
    for bundle in RUNNING_QUERIES:
        for pid in range(persons):
            prepared[bundle.name].execute({bundle.parameters[0]: pid})
    live = prepared["Q2"].execute_incremental({"p": 3})
    for batch in generate_churn(data, batches=2, batch_size=8, seed=seed):
        batch.apply(db, strict=True)
        live.refresh()
    url = sample_urls({"visits": data["visits"]}, 1, seed=seed)[0]
    for bundle in VIEW_QUERIES:
        value = 3 if bundle.name == "Q4" else url
        bundle.prepare(engine).execute({bundle.parameters[0]: value})
    return db


def test_memory_live_buckets_survive_full_workload_unmutated():
    """No caller anywhere in the stack may mutate a live index bucket:
    after the whole workload (queries, churn, incremental refresh,
    views) every built index must equal one rebuilt from scratch."""
    persons, seed = 60, 2
    engine = social_engine(persons, seed=seed)  # default MemoryBackend
    db = _exercise_workload(engine, persons, seed)
    backend = db.backend
    assert isinstance(backend, MemoryBackend)
    for relation, by_positions in backend._indexes.items():
        rows = list(backend._rows[relation])
        assert by_positions, relation  # the workload built indexes
        for positions, index in by_positions.items():
            rebuilt: dict = {}
            for row in rows:
                key = tuple(row[p] for p in positions)
                rebuilt.setdefault(key, []).append(row)
            assert index == rebuilt, (relation, positions)


# -- cross-backend conformance --------------------------------------------


def test_workload_answers_and_stats_identical_across_backends():
    for persons, seed in [(30, 0), (75, 5)]:
        reference = None
        for kind in BACKEND_KINDS:
            engine = social_engine(persons, seed=seed, backend=make_backend(kind))
            db = engine.require_database()
            answers = {}
            for bundle in RUNNING_QUERIES:
                prepared = bundle.prepare(engine)
                for pid in range(persons):
                    result = prepared.execute({bundle.parameters[0]: pid})
                    answers[bundle.name, pid] = frozenset(result.rows)
            snapshot = (
                db.stats.tuples_accessed,
                db.stats.indexed_lookups,
                db.stats.full_scans,
            )
            if reference is None:
                reference = (answers, snapshot)
            else:
                assert answers == reference[0], kind
                # Accounting is part of the contract: the *numbers* the
                # paper's claims are stated in must not depend on the
                # storage engine.
                assert snapshot == reference[1], kind


def test_refresh_and_views_stay_correct_under_churn(backend_factory):
    persons, seed = 40, 1
    engine = social_engine(persons, seed=seed, backend=backend_factory())
    db = engine.require_database()
    data = generate_social_network(persons, seed=seed)
    register_workload_views(engine)
    q2 = [b for b in RUNNING_QUERIES if b.name == "Q2"][0]
    prepared = q2.prepare(engine)
    live = prepared.execute_incremental({"p": 3})
    for batch in generate_churn(data, batches=3, batch_size=8, seed=seed):
        batch.apply(db, strict=True)
        live.refresh()
        assert set(live.rows) == set(prepared.execute({"p": 3}).rows)
    url = sample_urls({"visits": data["visits"]}, 1, seed=seed)[0]
    for bundle in VIEW_QUERIES:
        value = 3 if bundle.name == "Q4" else url
        prepared = bundle.prepare(engine)
        result = prepared.execute({bundle.parameters[0]: value})
        assert result.stats.tuples_accessed <= result.fanout_bound
        assert result.stats.full_scans == 0
        naive = parse_query(bundle.query, schema=engine.schema).evaluate(
            db, {bundle.parameters[0]: value}
        )
        assert set(result.rows) == set(naive)


def test_sharded_merge_preserves_derivation_counts():
    persons, seed = 80, 3
    mem = social_engine(persons, seed=seed).require_database()
    sharded = social_engine(
        persons, seed=seed, backend=ShardedBackend(3)
    ).require_database()
    mem.reset_stats()
    sharded.reset_stats()

    # Routed: friend lookups keyed on the shard-key position.
    keys = [(pid,) for pid in range(persons)] + [(0,), (1,)]
    for a, b in zip(
        mem.lookup_keys("friend", (0,), keys),
        sharded.lookup_keys("friend", (0,), keys),
    ):
        assert len(a) == len(b) and set(a) == set(b)

    # Broadcast: visits keyed on url (not the shard key) -- groups are
    # concatenated across children, and the multiplicity (the delta
    # rule's derivation count) must survive the merge exactly.
    urls = list(dict.fromkeys(row[1] for row in sharded.backend.iter_rows("visits")))
    url_keys = [(u,) for u in urls[:12]]
    for a, b in zip(
        mem.lookup_keys("visits", (1,), url_keys),
        sharded.lookup_keys("visits", (1,), url_keys),
    ):
        assert len(a) == len(b) and set(a) == set(b)

    # Global accounting agrees with the memory reference; the per-child
    # work lives only in the scratch stats, spread over >= 2 shards.
    assert sharded.stats == mem.stats
    scratch = sharded.backend.shard_stats()
    assert sum(s.indexed_lookups for s in scratch) > 0
    assert sum(1 for s in scratch if s.indexed_lookups) >= 2


def test_sharded_rejects_degenerate_configuration():
    with pytest.raises(SchemaError, match="shards"):
        ShardedBackend(0)
    with pytest.raises(SchemaError, match="out of range"):
        Database(SCHEMA, backend=ShardedBackend(2, key_positions={"friend": (9,)}))


def test_sqlite_reopens_by_path(tmp_path):
    path = str(tmp_path / "store.sqlite3")
    db = Database(SCHEMA, DATA, backend=SqliteBackend(path))
    db.backend.close()
    reopened = Database(SCHEMA, backend=SqliteBackend(path))
    assert set(reopened.backend.iter_rows("friend")) == set(DATA["friend"])
    reopened.backend.close()


# -- None (NULL) rows behave identically everywhere -----------------------


def test_none_rows_conform_across_backends(backend_factory):
    """SQL ``=`` never matches NULL and UNIQUE indexes treat NULLs as
    distinct -- the SQLite backend must paper over both, so every
    backend agrees row-for-row on None-bearing data."""
    db = Database(SCHEMA, backend=backend_factory())
    rows = [(1, None), (1, 2), (None, 2), (None, None)]
    assert db.insert_many("friend", rows) == 4
    # A duplicate None-bearing insert is a no-op, not a second copy.
    assert db.insert_many("friend", [(1, None), (None, None)]) == 0
    assert db.size("friend") == 4

    assert db.contains_rows("friend", [(1, None), (None, 2), (7, 7)]) == (
        True,
        True,
        False,
    )
    # Lookups keyed on a None value find their group.
    groups = db.lookup_keys("friend", (0,), [(1,), (None,), (9,)])
    assert sorted(groups[0], key=repr) == [(1, 2), (1, None)]
    assert sorted(groups[1], key=repr) == [(None, 2), (None, None)]
    assert groups[2] == ()
    # Composite (all-positions) lookups too.
    (exact,) = db.lookup_keys("friend", (0, 1), [(None, 2)])
    assert tuple(exact) == ((None, 2),)

    # Deletes remove exactly the None-bearing row they name.
    assert db.delete_many("friend", [(None, None), (5, 5)]) == 1
    assert set(db.backend.iter_rows("friend")) == {(1, None), (1, 2), (None, 2)}
    assert db.insert_many("friend", [(None, None)]) == 1


def test_bulk_load_dedupes_none_rows(backend_factory):
    db = Database(SCHEMA, backend=backend_factory())
    db.bulk_load("friend", [(1, None), (2, 3)])
    # Reloading the same None-bearing row must not create a second copy
    # (SQLite's INSERT OR IGNORE alone would: NULLs are distinct to the
    # unique index).
    db.bulk_load("friend", [(1, None), (1, None), (4, None)])
    assert db.size("friend") == 3
    assert set(db.backend.iter_rows("friend")) == {(1, None), (2, 3), (4, None)}


# -- deterministic shard routing ------------------------------------------


def test_shard_routing_is_processwide_stable():
    """Routing uses CRC-32 of the canonicalized key repr, not ``hash()``
    -- the same row lands on the same shard whatever PYTHONHASHSEED this
    process was started with."""
    from repro.relational.backends.sharded import stable_shard_hash

    import zlib

    assert stable_shard_hash((1,)) == zlib.crc32(b"(1,)")
    assert stable_shard_hash(("alice", 2)) == zlib.crc32(b"('alice', 2)")
    # Values that compare equal must route identically: True == 1 and
    # 1.0 == 1, but their reprs differ -- canonicalized before hashing.
    assert stable_shard_hash((True,)) == stable_shard_hash((1,))
    assert stable_shard_hash((1.0,)) == stable_shard_hash((1,))
    assert stable_shard_hash((1.5,)) != stable_shard_hash((1,))

    backend = ShardedBackend(3)
    Database(SCHEMA, DATA, backend=backend)
    for row in DATA["friend"]:
        expected = stable_shard_hash((row[0],)) % 3
        child = backend._children[expected]
        assert row in set(child.iter_rows("friend"))

"""The static cost model, cost-based plan selection, the
incremental-maintainability classifier and the multi-atom view advisor.

The cost model must agree with the certifier's fanout arithmetic at
unit costs, refine (never inflate) under observed statistics, and the
engine's selection between base and view-augmented plans must be
provably safe: same answers, tuples accessed no worse, CST001 if the
selector ever keeps a costlier plan.
"""

import json

import pytest

from repro import (
    AccessSchema,
    CertificationError,
    Engine,
    IncrementalError,
    Plan,
    compile_plan,
    parse_cq,
    parse_schema,
)
from repro.analysis import (
    CostStats,
    Report,
    advise_views,
    advice_report,
    certify_plan,
    certify_selection,
    check_selection,
    classify_incremental,
    estimate_plan,
    workload_advice,
)
from repro.analysis.__main__ import main
from repro.analysis.cost import CostEstimate

SCHEMA_TEXT = "person(pid, name, city); friend(pid1, pid2); visits(pid, url)"
ACCESS_TEXT = "person(pid -> 1); friend(pid1 -> 32); visits(pid -> 8)"
DATA = {
    "person": [(i, f"n{i}", "NYC" if i % 2 else "SF") for i in range(1, 8)],
    "friend": [(1, 2), (1, 3), (1, 4), (2, 3)],
    "visits": [(1, "a.com"), (2, "b.com")],
}
Q1 = "Q(y) :- friend(p, y), person(y, n, 'NYC')"
VIEW_DEF = "V(p, y) :- friend(p, y), person(y, n, 'NYC')"


def engine(**kwargs):
    return Engine(SCHEMA_TEXT, ACCESS_TEXT, DATA, **kwargs)


def one_plan(prepared, params=("p",)):
    plans = prepared.plan(params)
    return plans[0] if isinstance(plans, tuple) else plans


# -- the static model -----------------------------------------------------


def test_cost_estimate_matches_fanout_bound_at_unit_costs():
    schema = parse_schema(SCHEMA_TEXT)
    access = AccessSchema.parse(schema, ACCESS_TEXT)
    plan = compile_plan(parse_cq(Q1, schema=schema), access, ("p",))
    assert plan.cost_estimate == plan.fanout_bound == 64
    assert "cost estimate: 64" in plan.explain()
    # estimate_plan without stats re-derives the same number.
    estimate = estimate_plan(plan)
    assert isinstance(estimate, CostEstimate)
    assert estimate.total == plan.cost_estimate
    assert estimate.accesses == plan.fanout_bound
    assert not estimate.refined
    assert "64" in estimate.explain()


def test_stats_refine_but_never_inflate():
    eng = engine()
    stats = CostStats.from_database(eng.require_database())
    assert stats.size("friend") == 4
    # Observed max fanout of friend on pid1 is 3 (person 1 has 3 edges).
    assert stats.fanout("friend", (0,)) == 3
    plan = one_plan(eng.query(Q1))
    refined = estimate_plan(plan, stats)
    assert refined.refined
    assert refined.total < plan.cost_estimate
    # A bound tighter than the data stays at the declared bound.
    wide = CostStats(
        relation_sizes={"friend": 10**6},
        fanouts={("friend", (0,)): 10**6},
    )
    assert estimate_plan(plan, wide).total == plan.cost_estimate


def test_unsatisfiable_plan_costs_zero():
    schema = parse_schema(SCHEMA_TEXT)
    access = AccessSchema.parse(schema, ACCESS_TEXT)
    q = parse_cq("Q(y) :- friend(p, y), p = 1, p = 2", schema=schema)
    plan = compile_plan(q, access, ("p",))
    assert not plan.satisfiable
    assert plan.cost_estimate == 0.0
    assert estimate_plan(plan).total == 0.0


# -- cost-based selection -------------------------------------------------


def test_selection_switches_to_a_cheaper_certified_view_plan():
    """The regression the tentpole exists for: augmentation-only kept a
    costlier base plan; cost-based selection now picks the view plan --
    with bit-identical answers and tuples accessed no worse."""
    base_eng = engine()
    base_prep = base_eng.query(Q1)
    base_plan = one_plan(base_prep)
    assert base_plan.view_relations == frozenset()
    base_rows = base_prep.execute({"p": 1}).rows

    eng = engine(certify=True)  # the chosen plan still certifies
    eng.views.register("V", VIEW_DEF, "V(p -> 8)")
    prep = eng.query(Q1)
    plan = one_plan(prep)
    assert plan.view_relations == {"V"}
    assert plan.cost_estimate == 24 < base_plan.cost_estimate == 64
    result = prep.execute({"p": 1})
    assert result.rows == base_rows
    base_result = base_prep.execute({"p": 1})
    assert result.stats.tuples_accessed <= base_result.stats.tuples_accessed


def test_selection_keeps_the_base_plan_when_the_view_is_pricier():
    eng = engine()
    eng.views.register("VBIG", VIEW_DEF.replace("V(", "VBIG(", 1), "VBIG(p -> 64)")
    plan = one_plan(eng.query(Q1))
    assert plan.view_relations == frozenset()
    assert plan.cost_estimate == 64


def test_refreshed_stats_version_invalidates_plan_choices():
    eng = engine()
    eng.views.register("V", VIEW_DEF, "V(p -> 8)")
    before = one_plan(eng.query(Q1))
    stats = eng.refresh_cost_stats()
    assert eng.cost_stats is stats
    after = one_plan(eng.query(Q1))
    assert after is not before  # the cache key carries the stats version
    eng.clear_cost_stats()
    assert eng.cost_stats is None


def test_certify_selection_is_the_must_never_fire_self_check():
    eng = engine()
    plan = one_plan(eng.query(Q1))
    good = estimate_plan(plan)
    cheap = CostEstimate(plan, total=1.0, accesses=1)
    assert not certify_selection(good, [good]).by_code("CST001")
    report = certify_selection(good, [cheap])
    (d,) = report.by_code("CST001")
    assert "64" in d.message and "1" in d.message
    with pytest.raises(CertificationError, match="CST001"):
        check_selection(good, [cheap])
    assert check_selection(cheap, [good]) is cheap


def test_certifier_catches_a_forged_cost_estimate():
    schema = parse_schema(SCHEMA_TEXT)
    access = AccessSchema.parse(schema, ACCESS_TEXT)
    plan = compile_plan(parse_cq(Q1, schema=schema), access, ("p",))
    assert not {d.code for d in certify_plan(plan, access)} & {"CST002"}

    class ForgedPlan(Plan):
        @property
        def cost_estimate(self) -> float:
            return 1.0  # "cheap, trust me"

    forged = ForgedPlan(
        plan.query,
        plan.parameters,
        plan.steps,
        plan.head_terms,
        plan.satisfiable,
        plan.view_relations,
    )
    assert "CST002" in {d.code for d in certify_plan(forged, access)}


# -- the incremental-maintainability classifier ---------------------------


EMBEDDED_ACCESS = "person(pid -> 1); friend(pid1 -> pid2, 32); visits(pid -> 8)"


def test_classifier_accepts_plain_rule_plans():
    eng = engine()
    support = classify_incremental(one_plan(eng.query(Q1)))
    assert support.supported
    assert support.report().ok()
    assert support.explain() == ""


def test_classifier_traces_embedded_rule_blockers():
    eng = Engine(SCHEMA_TEXT, EMBEDDED_ACCESS, DATA)
    prep = eng.query(Q1)
    support = classify_incremental(one_plan(prep))
    assert not support.supported
    (blocker,) = support.blockers
    assert blocker.relation == "friend"
    trace = blocker.explain()
    assert "friend(pid1 -> pid2, 32)" in trace
    assert "dedup-aware counting scheme" in trace
    assert "(at 1:9)" in trace  # the offending atom's source span
    report = support.report(source="Q1")
    (d,) = report.by_code("INC001")
    assert d.span is not None and d.source == "Q1"
    # The same verdict surfaces in the prepared query's diagnostics --
    # at prepare time, not at execute_incremental time.
    assert "INC001" in {d.code for d in prep.diagnostics(("p",))}
    # And execute_incremental still raises, now with the full trace.
    with pytest.raises(IncrementalError) as exc_info:
        prep.execute_incremental({"p": 1})
    assert "dedup-aware counting scheme" in str(exc_info.value)
    assert "'friend'" in str(exc_info.value)


def test_partially_blocked_union_reports_inc002():
    eng = Engine(SCHEMA_TEXT, EMBEDDED_ACCESS, DATA)
    union = "Q(y) :- friend(p, y) ; Q(y) :- person(p, y, c)"
    plans = eng.query(union).plan(("p",))
    support = classify_incremental(plans)
    assert len(support.plans) == 2
    assert len(support.blocked_plans) == 1
    report = support.report()
    assert report.by_code("INC001")
    (d,) = report.by_code("INC002")
    assert "1 of 2 union disjuncts" in d.message


# -- the multi-atom view advisor ------------------------------------------


def test_advisor_proposes_a_multi_atom_view_for_an_uncontrolled_query():
    eng = engine()
    eng.refresh_cost_stats()
    # Q4's shape: keyed on ?p through friend's *second* position, which
    # no access rule reaches -- uncontrolled until a view inverts it.
    q4 = "Q(f) :- friend(f, p), person(f, n, 'NYC')"
    advices = eng.views.advise([(q4, ("p",))])
    assert advices, "the advisor found nothing for an uncontrolled query"
    assert all(a.controlled_after for a in advices)
    multi = [a for a in advices if a.atoms >= 2]
    assert multi, "no multi-atom proposal"
    advice = multi[0]
    assert advice.stats_derived  # bound sized from the observed data
    assert advice.key == ("p",)
    assert advice.projected_cost > 0
    # Adoption makes the query controlled, answers included.
    view = eng.views.adopt(advice)
    assert view.name == advice.name
    rows = eng.execute(q4, {"p": 3}).rows
    assert rows == ((1,),)  # friends of 3 living in NYC: person 1
    report = advice_report(advices, source="Q4")
    assert report.by_code("VIW004")
    assert report.ok()  # hints, not warnings


def test_advisor_prices_cost_cuts_for_expensive_controlled_queries():
    eng = engine()
    eng.refresh_cost_stats()
    q = "Q(z) :- friend(p, y), friend(y, z), person(z, n, 'NYC')"
    # Base cost 32 + 1024 + 1024 = 2080 at declared bounds: expensive.
    # The observed friend fanout is 3, so a chain view keyed on ?p gets
    # a stats-derived bound of 9 and cuts the certifiable cost.
    advices = advise_views(eng, [(q, ("p",))])
    assert advices
    advice = advices[0]
    assert not advice.controlled_after
    assert advice.base_cost == 2080
    assert advice.stats_derived
    assert advice.projected_cost < advice.base_cost
    assert advice.cost_delta > 0
    (d,) = advice_report([advice]).by_code("VIW005")
    assert "2080" in d.message


def test_advisor_skips_cheap_controlled_queries_and_registered_views():
    eng = engine()
    eng.refresh_cost_stats()
    assert advise_views(eng, [(Q1, ("p",))]) == ()  # cost 64 < 256
    q = "Q(z) :- friend(p, y), friend(y, z), person(z, n, 'NYC')"
    advices = advise_views(eng, [(q, ("p",))])
    assert advices
    eng.views.adopt(advices[0])
    # Re-advising proposes nothing equivalent to what is now registered.
    adopted_body = advices[0].definition.split(" :- ", 1)[1]
    second = advise_views(eng, [(q, ("p",))])
    assert all(
        a.definition.split(" :- ", 1)[1] != adopted_body for a in second
    )


def test_workload_advice_meets_the_acceptance_bar():
    advices, report = workload_advice(persons=120)
    q4_multi = [
        a
        for a in advices
        if a.source == "Q4" and a.atoms >= 2 and a.controlled_after
    ]
    assert q4_multi, "no multi-atom proposal for the uncontrolled Q4"
    assert q4_multi[0].stats_derived
    assert report.by_code("VIW004")
    assert report.ok()


def test_cli_advise_emits_the_json_advice_artifact(capsys):
    assert main(["--workload", "--advise", "--strict", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["advice"], "no advice in the JSON artifact"
    entry = payload["advice"][0]
    assert {"definition", "rule", "bound", "projected_cost"} <= set(entry)
    codes = {d["code"] for d in payload["diagnostics"]}
    assert "VIW004" in codes


def test_cli_advise_on_files_needs_access(tmp_path, capsys):
    queries = tmp_path / "q.dl"
    queries.write_text("Q(y) :- friend(p, y)\n")
    with pytest.raises(SystemExit):
        main([str(queries), "--advise", "--schema", SCHEMA_TEXT])
    capsys.readouterr()
    assert (
        main(
            [
                str(queries),
                "--advise",
                "--schema",
                SCHEMA_TEXT,
                "--access",
                ACCESS_TEXT,
                "--params",
                "p",
                "--format",
                "json",
            ]
        )
        == 0
    )
    json.loads(capsys.readouterr().out)


# -- the workload invariant stays put -------------------------------------


def test_workload_selection_never_regresses_the_known_hints():
    """Q1-Q3 keep their base plans (the views are pricier), so the gate's
    7-hint invariant is untouched by cost-based selection."""
    from repro.analysis import workload_report

    report = workload_report()
    assert {d.code for d in report} == {"QRY001", "QRY007", "ACC005"}
    assert len(report.hints) == 7
    assert not report.by_code("CST003")

"""Tests for the formula AST: free variables, substitution, atoms."""

import pytest

from repro.logic.ast import (
    And,
    Atom,
    Equality,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
)
from repro.logic.terms import Constant, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")


def test_atom_coerces_terms():
    atom = Atom("friend", ["?x", 7])
    assert atom.terms == (x, Constant(7))
    assert atom.free_variables() == (x,)
    assert atom.constants() == (Constant(7),)


def test_free_variables_are_ordered_and_deduplicated():
    f = And(Atom("r", ["?x", "?y"]), Atom("s", ["?y", "?z", "?x"]))
    assert f.free_variables() == (x, y, z)


def test_quantifier_hides_bound_variables():
    f = Exists("y", And(Atom("r", ["?x", "?y"]), Equality("?y", 1)))
    assert f.free_variables() == (x,)
    g = Forall(["x", "y"], Atom("r", ["?x", "?y"]))
    assert g.free_variables() == ()


def test_substitution_replaces_free_occurrences():
    f = And(Atom("r", ["?x", "?y"]), Not(Atom("s", ["?x"])))
    g = f.substitute({x: Constant(3)})
    assert g == And(Atom("r", [3, "?y"]), Not(Atom("s", [3])))
    assert g.free_variables() == (y,)


def test_substitution_skips_bound_variables():
    f = Exists("x", Atom("r", ["?x", "?y"]))
    assert f.substitute({x: Constant(1)}) == f
    assert f.substitute({y: Constant(2)}) == Exists("x", Atom("r", ["?x", 2]))


def test_substitution_detects_capture():
    f = Exists("x", Atom("r", ["?x", "?y"]))
    with pytest.raises(ValueError, match="captured"):
        f.substitute({y: x})


def test_atoms_iterates_the_whole_tree():
    f = Implies(Atom("a", ["?x"]), Or(Atom("b", ["?x"]), Exists("y", Atom("c", ["?y"]))))
    assert [a.relation for a in f.atoms()] == ["a", "b", "c"]


def test_operator_sugar():
    a, b = Atom("a", ["?x"]), Atom("b", ["?x"])
    assert a & b == And(a, b)
    assert a | b == Or(a, b)
    assert ~a == Not(a)


def test_equality_and_hash():
    assert Atom("r", ["?x"]) == Atom("r", [Variable("x")])
    assert hash(Atom("r", ["?x"])) == hash(Atom("r", ["?x"]))
    assert Atom("r", ["?x"]) != Atom("r", ["x"])  # variable vs constant
    assert And(Atom("r", ["?x"])) != Or(Atom("r", ["?x"]))


def test_str_rendering():
    f = Exists("y", And(Atom("friend", ["?x", "?y"]), Equality("?y", 1)))
    assert str(f) == "EXISTS ?y. (friend(?x, ?y) AND ?y = 1)"

"""Tests for the benchmark harness (tiny sizes -- these must stay fast)."""

import json

import pytest

from repro.bench import (
    BENCH_VERSION,
    default_output_path,
    run_bench,
    run_large_bench,
    summarize,
)


@pytest.fixture(scope="module")
def bench_doc(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_test.json"
    doc = run_bench(
        sizes=(20, 80), seed=0, repeats=1, params_per_size=3, output=out
    )
    return doc, out


def test_writes_json_document(bench_doc):
    doc, out = bench_doc
    assert out.exists()
    on_disk = json.loads(out.read_text())
    assert on_disk["bench_version"] == BENCH_VERSION
    assert on_disk["sizes"] == [20, 80]
    assert on_disk["records"] == doc["records"]
    assert on_disk["backend"] == "memory"
    for record in on_disk["records"]:
        assert record["backend"] == "memory"
        assert record["rows_loaded"] > 0


def test_records_cover_all_queries_sizes_and_modes(bench_doc):
    doc, _ = bench_doc
    keys = {(r["query"], r["size"], r["mode"]) for r in doc["records"]}
    assert keys == {
        (q, s, m)
        for q in ("Q1", "Q2", "Q3")
        for s in (20, 80)
        for m in ("batched", "per_tuple")
    }


def test_tuples_stay_within_fanout_bound_and_no_scans(bench_doc):
    doc, _ = bench_doc
    for record in doc["records"]:
        assert record["tuples_accessed_max"] <= record["fanout_bound"]
        assert record["full_scans"] == 0
    # Every entry with access-flatness evidence (Q1..Q3 and the
    # view-assisted Q4/Q5; the V1/V2 maintenance entries carry none).
    for name, entry in doc["summary"].items():
        if "tuples_accessed_by_size" in entry:
            assert entry["within_fanout_bound"] is True, name


def test_summary_has_speedup_and_flatness_evidence(bench_doc):
    doc, _ = bench_doc
    for name in ("Q1", "Q2", "Q3"):
        entry = doc["summary"][name]
        assert set(entry["tuples_accessed_by_size"]) == {"20", "80"}
        assert "speedup_at_largest" in entry


def test_plan_cache_sees_hits(bench_doc):
    doc, _ = bench_doc
    for cache in doc["plan_cache"].values():
        assert cache["hits"] > 0
        assert 0.0 < cache["hit_rate"] <= 1.0


def test_output_false_skips_writing(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    run_bench(sizes=(15,), repeats=1, params_per_size=2, output=False)
    assert not default_output_path(tmp_path).exists()


def test_rejects_degenerate_sizes():
    with pytest.raises(ValueError, match="sizes"):
        run_bench(sizes=(), output=False)
    with pytest.raises(ValueError, match="sizes"):
        run_bench(sizes=(1,), output=False)


def test_default_output_path_is_versioned(tmp_path):
    assert default_output_path(tmp_path).name == f"BENCH_{BENCH_VERSION}.json"


def test_summarize_groups_by_query(bench_doc):
    doc, _ = bench_doc
    from repro.bench import BenchRecord

    records = [BenchRecord(**r) for r in doc["records"]]
    assert set(summarize(records)) == {"Q1", "Q2", "Q3"}


def test_cli_runs_and_prints_table(tmp_path, capsys):
    from repro.bench.__main__ import main

    out = tmp_path / "BENCH_cli.json"
    assert (
        main(
            [
                "--sizes",
                "15,30",
                "--repeats",
                "1",
                "--params",
                "2",
                "--out",
                str(out),
            ]
        )
        == 0
    )
    assert out.exists()
    printed = capsys.readouterr().out
    assert "speedup" in printed
    assert "Q3" in printed


def test_churn_records_cover_all_queries_and_sizes(bench_doc):
    doc, _ = bench_doc
    churn = doc["churn"]
    assert churn["batches"] == 4
    assert churn["batch_size"] == 16
    keys = {(r["query"], r["size"]) for r in churn["records"]}
    assert keys == {(q, s) for q in ("Q1", "Q2", "Q3") for s in (20, 80)}


def test_churn_refreshes_stay_within_delta_bound_without_scans(bench_doc):
    doc, _ = bench_doc
    for record in doc["churn"]["records"]:
        assert record["refresh_tuples_max"] <= record["delta_bound_max"]
        assert record["full_scans"] == 0
        assert record["refreshes"] == record["batches"] * 3  # params_per_size
    for name in ("Q1", "Q2", "Q3"):
        assert doc["summary"][name]["refresh_within_delta_bound"] is True


def test_churn_summary_reports_refresh_speedup(bench_doc):
    doc, _ = bench_doc
    for name in ("Q1", "Q2", "Q3"):
        assert "refresh_speedup_at_largest" in doc["summary"][name]


def test_churn_can_be_disabled():
    doc = run_bench(
        sizes=(20,), repeats=1, params_per_size=2, churn_batches=0, output=False
    )
    assert doc["churn"]["records"] == []
    assert "refresh_speedup_at_largest" not in doc["summary"]["Q1"]


# -- the storage-backend axis and the out-of-core scale scenario ----------


def test_run_bench_on_alternate_backends():
    for backend in ("sqlite", "sharded"):
        doc = run_bench(
            sizes=(20,),
            repeats=1,
            params_per_size=2,
            churn_batches=1,
            view_batches=1,
            backend=backend,
            shards=3,
            output=False,
        )
        assert doc["backend"] == backend
        assert doc["shards"] == (3 if backend == "sharded" else None)
        for record in doc["records"]:
            assert record["backend"] == backend
            assert record["rows_loaded"] > 0
            assert record["tuples_accessed_max"] <= record["fanout_bound"]
            assert record["full_scans"] == 0


def test_run_bench_rejects_unknown_backend():
    with pytest.raises(ValueError, match="backend"):
        run_bench(sizes=(20,), backend="papyrus", output=False)


def test_run_large_bench_is_flat_by_construction(tmp_path):
    doc = run_large_bench(
        sizes=(50, 200),
        block=50,
        repeats=1,
        params_per_size=3,
        sqlite_dir=tmp_path,
    )
    assert doc["backend"] == "sqlite"
    assert doc["zero_full_scans"] is True
    assert doc["load"]["50"]["rows_loaded"] < doc["load"]["200"]["rows_loaded"]
    assert set(doc["summary"]) == {"Q1", "Q2", "Q3", "Q4", "Q5"}
    for name, entry in doc["summary"].items():
        # Parameters come from block 0, identical at both sizes, so the
        # tuple counts are equal -- not merely bounded.
        assert entry["flat_across_sizes"] is True, name
        assert entry["within_fanout_bound"] is True, name
    assert "skipped" in doc  # the infeasible baselines are declared, not run
    # Caller-owned sqlite_dir: the stores are left on disk.
    assert any(p.suffix == ".sqlite3" for p in tmp_path.iterdir())


def test_cli_runs_large_scenario(tmp_path, capsys):
    from repro.bench.__main__ import main

    out = tmp_path / "BENCH_large.json"
    assert (
        main(
            [
                "--sizes",
                "15",
                "--repeats",
                "1",
                "--params",
                "2",
                "--churn-batches",
                "1",
                "--view-batches",
                "1",
                "--backend",
                "sharded",
                "--shards",
                "2",
                "--large",
                "--large-sizes",
                "40,120",
                "--out",
                str(out),
            ]
        )
        == 0
    )
    doc = json.loads(out.read_text())
    assert doc["backend"] == "sharded"
    assert doc["large"]["backend"] == "sqlite"
    assert doc["large"]["zero_full_scans"] is True
    printed = capsys.readouterr().out
    assert "large scale scenario" in printed
    assert "zero full scans: True" in printed


# -- the view scenario (Section 6) ----------------------------------------


def test_view_records_cover_both_queries_sizes_and_modes(bench_doc):
    doc, _ = bench_doc
    views = doc["views"]
    assert views["enabled"] is True
    keys = {(r["query"], r["size"], r["mode"]) for r in views["records"]}
    assert keys == {
        (q, s, m)
        for q in ("Q4", "Q5")
        for s in (20, 80)
        for m in ("view_assisted", "base_naive")
    }


def test_view_assisted_is_bounded_and_base_rules_are_insufficient(bench_doc):
    doc, _ = bench_doc
    for record in doc["views"]["records"]:
        assert record["controlled_without_views"] is False
        if record["mode"] == "view_assisted":
            assert record["tuples_accessed_max"] <= record["fanout_bound"]
            assert record["full_scans"] == 0
    for name in ("Q4", "Q5"):
        entry = doc["summary"][name]
        assert entry["within_fanout_bound"] is True
        assert entry["controlled_without_views"] is False


def test_view_maintenance_refresh_beats_rebuild_touching_zero_tuples(bench_doc):
    doc, _ = bench_doc
    maintenance = doc["views"]["maintenance"]
    keys = {(r["view"], r["size"]) for r in maintenance}
    assert keys == {(v, s) for v in ("V1", "V2") for s in (20, 80)}
    for record in maintenance:
        # Single-atom views refresh purely from the in-memory slice.
        assert record["refresh_tuples_max"] == 0
        assert record["refreshes"] == record["batches"]
    for name in ("V1", "V2"):
        entry = doc["summary"][name]
        assert entry["refresh_touches_zero_tuples"] is True
        assert "view_refresh_speedup_at_largest" in entry


def test_view_scenario_can_be_disabled():
    doc = run_bench(
        sizes=(20,),
        repeats=1,
        params_per_size=2,
        churn_batches=0,
        views=False,
        output=False,
    )
    assert doc["views"]["enabled"] is False
    assert doc["views"]["records"] == []
    assert "Q4" not in doc["summary"]


def test_cli_prints_view_tables(tmp_path, capsys):
    from repro.bench.__main__ import main

    out = tmp_path / "BENCH_cli_views.json"
    assert (
        main(
            [
                "--sizes",
                "15,30",
                "--repeats",
                "1",
                "--params",
                "2",
                "--view-batches",
                "2",
                "--view-size",
                "6",
                "--out",
                str(out),
            ]
        )
        == 0
    )
    printed = capsys.readouterr().out
    assert "view maintenance" in printed
    assert "Q4" in printed and "V2" in printed

"""Tests for scale-independent plan compilation and execution.

The acceptance scenario from the paper: compiling Q1 over the
friend/person schema yields a plan that answers the query through hash
indexes only -- zero full scans of unindexed relations -- with an access
count bounded by the access-rule cardinalities, not the database size.
"""

import pytest

from repro import (
    AccessRule,
    AccessSchema,
    Atom,
    ConjunctiveQuery,
    Database,
    EmbeddedAccessRule,
    Equality,
    NotControlledError,
    compile_plan,
)
from repro.core.plans import FetchStep, ProbeStep

Q1 = ConjunctiveQuery(
    ["x"],
    [Atom("friend", ["?p", "?x"]), Atom("person", ["?x", "?n", "NYC"])],
)


class TestCompile:
    def test_happy_path(self, social_access):
        plan = compile_plan(Q1, social_access, ["p"])
        assert [type(s) for s in plan.steps] == [FetchStep, FetchStep]
        assert plan.fanout_bound == 5000 + 5000 * 1
        assert "fetch" in plan.explain()

    def test_not_controlled_raises(self, social_access):
        with pytest.raises(NotControlledError, match="not controlled"):
            compile_plan(Q1, social_access)

    def test_missing_rule_raises(self, social_schema):
        access = AccessSchema(social_schema, [AccessRule("friend", ["pid1"], bound=10)])
        with pytest.raises(NotControlledError, match="person"):
            compile_plan(Q1, access, ["p"])

    def test_unknown_parameter_rejected(self, social_access):
        with pytest.raises(ValueError, match="not occurring"):
            compile_plan(Q1, social_access, ["zzz"])

    def test_most_selective_rule_wins(self, social_schema):
        access = AccessSchema(
            social_schema,
            [
                AccessRule("friend", ["pid1"], bound=5000),
                AccessRule("friend", ["pid1"], bound=10),
                AccessRule("person", ["pid"], bound=1),
            ],
        )
        plan = compile_plan(Q1, access, ["p"])
        assert plan.steps[0].rule.bound == 10


class TestExecute:
    def test_q1_without_scans(self, social_db, social_access):
        plan = compile_plan(Q1, social_access, ["p"])
        social_db.reset_stats()
        assert set(plan.execute(social_db, p=1)) == {(2,)}
        assert social_db.stats.full_scans == 0
        assert social_db.stats.tuples_accessed <= plan.fanout_bound

    def test_matches_reference_evaluation(self, social_db, social_access):
        plan = compile_plan(Q1, social_access, ["p"])
        for pid in range(1, 6):
            assert set(plan.execute(social_db, p=pid)) == set(
                Q1.evaluate(social_db, {"p": pid})
            )

    def test_access_count_independent_of_database_size(
        self, social_schema, social_access
    ):
        # Grow the database 100x: the plan's access count must not move.
        def build(n):
            return Database(
                social_schema,
                {
                    "person": [(i, f"u{i}", "NYC") for i in range(n)],
                    "friend": [(0, 1), (0, 2)] + [(i, (i + 1) % n) for i in range(3, n)],
                },
            )

        counts = []
        for n in (100, 10_000):
            db = build(n)
            plan = compile_plan(Q1, social_access, ["p"])
            db.reset_stats()
            assert set(plan.execute(db, p=0)) == {(1,), (2,)}
            counts.append(db.stats.tuples_accessed)
            assert db.stats.full_scans == 0
        assert counts[0] == counts[1]

    def test_missing_parameter_value_rejected(self, social_db, social_access):
        plan = compile_plan(Q1, social_access, ["p"])
        with pytest.raises(ValueError, match="missing plan parameters"):
            plan.execute(social_db)

    def test_unsatisfiable_equalities_compile_to_empty_plan(
        self, social_db, social_access
    ):
        q = ConjunctiveQuery(
            ["x"],
            [Atom("friend", ["?p", "?x"])],
            [Equality("?p", 1), Equality("?p", 2)],
        )
        plan = compile_plan(q, social_access)
        assert not plan.satisfiable
        assert plan.fanout_bound == 0
        assert plan.execute(social_db) == ()

    def test_equality_constant_binds_parameterless_plan(
        self, social_db, social_access
    ):
        q = ConjunctiveQuery(
            ["x"], [Atom("friend", ["?p", "?x"])], [Equality("?p", 1)]
        )
        plan = compile_plan(q, social_access)
        assert set(plan.execute(social_db)) == {(2,), (3,)}

    def test_embedded_rule_fetch_then_probe(self, social_schema, social_db):
        access = AccessSchema(
            social_schema,
            [
                EmbeddedAccessRule("friend", ["pid1"], ["pid2"], bound=100),
                AccessRule("person", ["pid"], bound=1),
            ],
        )
        plan = compile_plan(Q1, access, ["p"])
        kinds = [type(s) for s in plan.steps]
        assert FetchStep in kinds and ProbeStep in kinds
        social_db.reset_stats()
        assert set(plan.execute(social_db, p=1)) == {(2,)}
        assert social_db.stats.full_scans == 0

    def test_constants_in_atoms_are_used_as_keys(self, social_db, social_access):
        q = ConjunctiveQuery(["x"], [Atom("friend", [4, "?x"])])
        plan = compile_plan(q, social_access)
        social_db.reset_stats()
        assert plan.execute(social_db) == ((5,),)
        assert social_db.stats.full_scans == 0


def test_execute_rejects_bindings_that_are_not_parameters(
    social_db, social_access
):
    plan = compile_plan(Q1, social_access, ["p"])
    with pytest.raises(ValueError, match="not plan parameters"):
        plan.execute(social_db, p=1, x=2)
    with pytest.raises(ValueError, match="not plan parameters"):
        plan.execute(social_db, p=1, zzz=99)

"""The Datalog-style parser: queries, schemas, access rules, round-trips."""

import pytest

from repro import (
    AccessRule,
    AccessSchema,
    Atom,
    ConjunctiveQuery,
    DatabaseSchema,
    EmbeddedAccessRule,
    Equality,
    FullAccessRule,
    ParseError,
    RelationSchema,
    ReproError,
    UnionOfConjunctiveQueries,
    parse_access_schema,
    parse_cq,
    parse_query,
    parse_schema,
)
from repro.logic.parser import tokenize


# -- queries ---------------------------------------------------------------


def test_parse_simple_cq():
    q = parse_query("Q(x, y) :- Person(x, 'NYC'), Friend(x, y)")
    assert q == ConjunctiveQuery(
        ["x", "y"],
        [Atom("Person", ["?x", "NYC"]), Atom("Friend", ["?x", "?y"])],
    )


def test_question_mark_and_bare_variables_are_the_same():
    assert parse_query("Q(?x) :- R(?x)") == parse_query("Q(x) :- R(x)")


def test_both_rule_arrows_accepted():
    assert parse_query("Q(x) :- R(x)") == parse_query("Q(x) <- R(x)")


def test_constant_literals():
    q = parse_cq("Q(x) :- R(x, 42, -1, 2.5, 1e-3, 'a', \"it's\", True, False, None)")
    values = [t.value for t in q.body[0].terms[1:]]
    assert values == [42, -1, 2.5, 1e-3, "a", "it's", True, False, None]
    assert all(type(v) is int for v in values[:2])
    assert all(type(v) is float for v in values[2:4])


def test_nonfinite_float_literals():
    q = parse_cq("Q(x) :- R(x, inf, -inf, nan)")
    pos_inf, neg_inf, nan = (t.value for t in q.body[0].terms[1:])
    assert pos_inf == float("inf") and neg_inf == float("-inf")
    assert nan != nan  # a genuine NaN
    finite = parse_cq("Q(x) :- R(x, inf)")
    assert parse_query(str(finite)) == finite


def test_string_escapes():
    q = parse_cq(r"Q(x) :- R(x, 'line\nbreak', '\'quoted\'')")
    assert q.body[0].terms[1].value == "line\nbreak"
    assert q.body[0].terms[2].value == "'quoted'"


def test_leading_zero_integers():
    q = parse_cq("Q(x) :- R(x, 007)")
    assert q.body[0].terms[1].value == 7


def test_string_line_continuation_keeps_positions():
    # The literal spans two source lines; the error after it must be
    # reported on the real (third) line.
    err = error_of("Q(x) :- R(x, 'a\\\n b'),\n @")
    assert "unexpected character '@'" in str(err)
    assert (err.line, err.column) == (3, 2)


def test_equalities():
    q = parse_cq("Q(x) :- R(x, y), y = 'NYC', x = z")
    assert q.equalities == (Equality("?y", "NYC"), Equality("?x", "?z"))


def test_wildcards_are_distinct_fresh_variables():
    q = parse_cq("Q(x) :- R(x, _, _)")
    _, w1, w2 = q.body[0].terms
    assert w1 != w2
    assert w1 not in q.head and w2 not in q.head


def test_wildcards_do_not_collide_with_user_variables():
    q = parse_cq("Q(_1) :- R(_1, _)")
    wildcard = q.body[0].terms[1]
    assert wildcard.name != "_1"


def test_empty_body_and_head():
    q = parse_query("Q()")
    assert q == ConjunctiveQuery([], [])
    assert str(q) == "Q()"


def test_union_with_semicolon_and_keyword():
    by_semi = parse_query("Q(x) :- A(x) ; Q(x) :- B(x)")
    by_kw = parse_query("Q(x) :- A(x) UNION Q(x) :- B(x)")
    assert isinstance(by_semi, UnionOfConjunctiveQueries)
    assert by_semi == by_kw
    assert len(by_semi.disjuncts) == 2


def test_single_rule_parses_to_plain_cq():
    assert isinstance(parse_query("Q(x) :- R(x)"), ConjunctiveQuery)


def test_parse_cq_rejects_unions():
    with pytest.raises(ParseError, match="union"):
        parse_cq("Q(x) :- A(x) ; Q(x) :- B(x)")


def test_comments_are_skipped():
    q = parse_query("Q(x) :- # the head\n  R(x)  # the body")
    assert q == parse_query("Q(x) :- R(x)")


# -- error reporting -------------------------------------------------------


def error_of(text, schema=None):
    with pytest.raises(ParseError) as excinfo:
        parse_query(text, schema)
    return excinfo.value


def test_unbalanced_parens_report_position():
    err = error_of("Q(x) :- R(x")
    assert "expected ')'" in str(err)
    assert (err.line, err.column) == (1, 12)


def test_error_position_counts_lines():
    err = error_of("Q(x) :-\n  R(x,, y)")
    assert (err.line, err.column) == (2, 7)
    assert "line 2, column 7" in str(err)


def test_unterminated_string():
    err = error_of("Q(x) :- R(x, 'oops)")
    assert "unterminated string" in str(err)
    assert err.column == 14


def test_bare_question_mark():
    assert "variable name after '?'" in str(error_of("Q(?) :- R(?)"))


def test_constant_in_head_rejected():
    err = error_of("Q(x, 'NYC') :- R(x)")
    assert "head terms must be named variables" in str(err)
    assert err.column == 6


def test_wildcard_in_head_rejected():
    assert "head terms must be named variables" in str(error_of("Q(_) :- R(_)"))


def test_unsafe_head_variable_reported_at_rule():
    err = error_of("Q(x) :- R(y)")
    assert "unsafe head variables" in str(err)
    assert (err.line, err.column) == (1, 1)


def test_mixed_arity_union_rejected():
    err = error_of("Q(x) :- A(x) ; Q(x, y) :- B(x, y)")
    assert "different arities" in str(err)


def test_trailing_garbage_rejected():
    assert "expected ';', 'UNION' or end of input" in str(error_of("Q(x) :- R(x) extra"))


def test_unexpected_character():
    err = error_of("Q(x) :- R(x) @")
    assert "unexpected character '@'" in str(err)


def test_unknown_relation_with_schema(social_schema):
    err = error_of("Q(x) :- nope(x)", social_schema)
    assert "unknown relation 'nope'" in str(err)
    assert err.column == 9


def test_wrong_arity_with_schema(social_schema):
    err = error_of("Q(x) :- person(x)", social_schema)
    assert "arity 3" in str(err) and "arity 1" in str(err)
    assert err.column == 9


def test_parse_error_is_a_repro_error():
    assert issubclass(ParseError, ReproError)


def test_parse_error_renders_partial_positions():
    assert str(ParseError("bad", 3, 7)) == "bad (line 3, column 7)"
    assert str(ParseError("bad", 3)) == "bad (line 3)"
    assert str(ParseError("bad")) == "bad"


# -- round-trips -----------------------------------------------------------

ROUND_TRIP_FIXTURES = [
    ConjunctiveQuery(["x"], [Atom("R", ["?x"])]),
    ConjunctiveQuery(
        ["x", "y"],
        [Atom("person", ["?x", "?n", "NYC"]), Atom("friend", ["?x", "?y"])],
    ),
    ConjunctiveQuery(
        ["x"],
        [Atom("R", ["?x", "?y"])],
        [Equality("?y", "NYC"), Equality("?x", "?z")],
    ),
    ConjunctiveQuery(["x"], [Atom("R", ["?x", 42, -1, 2.5, True, False, None])]),
    ConjunctiveQuery(["x"], [Atom("R", ["?x", "it's", 'she said "hi"'])]),
    ConjunctiveQuery([], [Atom("R", [1])]),
    ConjunctiveQuery([], []),
    UnionOfConjunctiveQueries(
        [
            ConjunctiveQuery(["x"], [Atom("A", ["?x"])]),
            ConjunctiveQuery(["x"], [Atom("B", ["?x", "?y"])]),
        ]
    ),
    UnionOfConjunctiveQueries(
        [
            ConjunctiveQuery(["x"], [Atom("A", ["?x"])], [Equality("?x", 1)]),
            ConjunctiveQuery(["x"], [Atom("B", ["?x"])]),
            ConjunctiveQuery(["x"], [Atom("C", ["?x", "c"])]),
        ]
    ),
]


@pytest.mark.parametrize("query", ROUND_TRIP_FIXTURES, ids=str)
def test_round_trip(query):
    assert parse_query(str(query)) == query


@pytest.mark.parametrize(
    "text",
    [
        "Q(x) :- R(x, _), S(_, x)",
        "Q(x) :- A(x) ; Q(x) :- B(x), x = 'v'",
        "Q(x, y) :- friend(x, y), person(y, n, 'NYC')",
    ],
)
def test_round_trip_from_text(text):
    parsed = parse_query(text)
    assert parse_query(str(parsed)) == parsed


# -- schema DSL ------------------------------------------------------------


def test_parse_schema_basic():
    schema = parse_schema("Person(pid, name, city); Friend(pid1, pid2)")
    assert schema == DatabaseSchema(
        [
            RelationSchema("Person", ["pid", "name", "city"]),
            RelationSchema("Friend", ["pid1", "pid2"]),
        ]
    )


def test_parse_schema_newlines_and_comments():
    schema = DatabaseSchema.parse(
        """
        # the running example
        Person(pid, name, city)
        Friend(pid1, pid2)
        """
    )
    assert schema.names == ("Person", "Friend")


def test_schema_round_trip(social_schema):
    assert parse_schema(str(social_schema)) == social_schema


def test_parse_schema_duplicate_relation():
    with pytest.raises(ParseError, match="duplicate relation 'R'"):
        parse_schema("R(a); R(b)")


def test_parse_schema_duplicate_attribute():
    with pytest.raises(ParseError, match="repeats attribute 'a'") as excinfo:
        parse_schema("R(a, b, a)")
    assert excinfo.value.column == 9


def test_parse_schema_empty_round_trip():
    empty = DatabaseSchema([])
    assert parse_schema(str(empty)) == empty
    assert parse_schema("  # nothing here\n") == empty


def test_parse_schema_malformed():
    with pytest.raises(ParseError, match="expected an attribute name"):
        parse_schema("R(a, 3)")


# -- access-schema DSL -----------------------------------------------------


def test_parse_access_attribute_forms(social_schema):
    access = AccessSchema.parse(
        social_schema,
        "friend(pid1 -> 5000); person(pid -> 1); person(city -> pid, 20)",
    )
    assert list(access) == [
        AccessRule("friend", ["pid1"], 5000),
        AccessRule("person", ["pid"], 1),
        EmbeddedAccessRule("person", ["city"], ["pid"], 20),
    ]


def test_parse_access_full_relation_form():
    schema = parse_schema("dict(word)")
    access = parse_access_schema(schema, "dict({} -> 100)")
    assert list(access) == [FullAccessRule("dict", 100)]


def test_parse_access_positional_form(social_schema):
    access = parse_access_schema(
        social_schema,
        "friend: (0) -> * bound 5000\nperson: (2) -> (0) bound 20\nperson: () -> * bound 9",
    )
    assert list(access) == [
        AccessRule("friend", ["pid1"], 5000),
        EmbeddedAccessRule("person", ["city"], ["pid"], 20),
        FullAccessRule("person", 9),
    ]


def test_parse_access_from_schema_text():
    access = parse_access_schema("R(a, b)", "R(a -> 7)")
    assert list(access) == [AccessRule("R", ["a"], 7)]


def test_access_schema_round_trip(social_access, social_schema):
    assert AccessSchema.parse(social_schema, str(social_access)) == social_access


def test_empty_input_access_rule_round_trip(social_schema):
    # A plain AccessRule with no inputs renders exactly like the
    # FullAccessRule it is equivalent to; the two compare equal, so the
    # schema-level round-trip holds for either spelling.
    access = AccessSchema(social_schema, [AccessRule("person", [], 9)])
    assert AccessRule("person", [], 9) == FullAccessRule("person", 9)
    assert AccessSchema.parse(social_schema, str(access)) == access


def test_empty_access_schema_round_trip(social_schema):
    empty = AccessSchema(social_schema, ())
    assert AccessSchema.parse(social_schema, str(empty)) == empty


@pytest.mark.parametrize(
    "text, match",
    [
        ("nope(a -> 1)", "unknown relation 'nope'"),
        ("person(zip -> 1)", "no attribute 'zip'"),
        ("friend(pid1 -> 0)", "positive integer"),
        ("friend(pid1 -> 2.5)", "positive integer"),
        ("friend: (7) -> * bound 5", "out of range"),
        ("friend: (0) -> * limit 5", "keyword 'bound'"),
        ("friend: (0) -> () bound 5", "at least one output position"),
        ("friend(pid1 -> 5", "expected"),
        ("person(pid -> pid, 3)", "overlap"),
    ],
)
def test_access_schema_errors(social_schema, text, match):
    with pytest.raises(ParseError, match=match):
        parse_access_schema(social_schema, text)


def test_access_error_positions(social_schema):
    with pytest.raises(ParseError) as excinfo:
        parse_access_schema(social_schema, "person(pid -> 1)\nperson(zip -> 1)")
    assert (excinfo.value.line, excinfo.value.column) == (2, 8)


def test_access_bad_bound_anchored_at_bound_token(social_schema):
    with pytest.raises(ParseError) as excinfo:
        parse_access_schema(social_schema, "friend(pid1 -> 2.5)")
    assert (excinfo.value.line, excinfo.value.column) == (1, 16)


# -- tokenizer details -----------------------------------------------------


def test_tokenize_positions():
    tokens = tokenize("Q(x)\n  :- R(x)")
    kinds = [(t.text, t.line, t.column) for t in tokens]
    assert kinds == [
        ("Q", 1, 1),
        ("(", 1, 2),
        ("x", 1, 3),
        (")", 1, 4),
        (":-", 2, 3),
        ("R", 2, 6),
        ("(", 2, 7),
        ("x", 2, 8),
        (")", 2, 9),
        ("", 2, 10),
    ]

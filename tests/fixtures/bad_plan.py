"""Seeded bad-plan fixture for the CI must-fail gate.

Builds a correct plan for the paper's Q1, forges its step order (the
fetch keyed on a variable no earlier step binds) and feeds it to the
certifier's gating form.  ``check_plan`` must raise
:class:`~repro.errors.CertificationError`, so this script exiting 0
means the certifier has gone blind -- CI runs it under ``!``::

    ! PYTHONPATH=src python tests/fixtures/bad_plan.py
"""

import sys

from repro import AccessRule, AccessSchema, Plan, compile_plan, parse_cq, parse_schema
from repro.analysis import check_plan

schema = parse_schema("person(pid, name, city); friend(pid1, pid2)")
access = AccessSchema(
    schema,
    [AccessRule("friend", ["pid1"], bound=32), AccessRule("person", ["pid"], bound=1)],
)
query = parse_cq("Q(y) :- friend(p, y), person(y, n, 'NYC')", schema=schema)
good = compile_plan(query, access, ("p",))

forged = Plan(
    good.query,
    good.parameters,
    tuple(reversed(good.steps)),
    good.head_terms,
    good.satisfiable,
    good.view_relations,
)

check_plan(forged, access)  # must raise CertificationError (exit != 0)
print("BUG: the forged plan certified clean", file=sys.stderr)
sys.exit(0)

"""Seeded bad-cost fixture for the CI must-fail gate.

Builds a correct plan for the paper's Q1, forges its memoized cost
annotation (``cost_estimate`` claims 1.0 -- far below what the step
arithmetic re-derives) and feeds it to the certifier's gating form.
``check_plan`` must raise :class:`~repro.errors.CertificationError`
with a CST002 finding, so this script exiting 0 means the cost model's
cross-check has gone blind -- CI runs it under ``!``::

    ! PYTHONPATH=src python tests/fixtures/bad_cost.py
"""

import sys

from repro import AccessRule, AccessSchema, Plan, compile_plan, parse_cq, parse_schema
from repro.analysis import check_plan

schema = parse_schema("person(pid, name, city); friend(pid1, pid2)")
access = AccessSchema(
    schema,
    [AccessRule("friend", ["pid1"], bound=32), AccessRule("person", ["pid"], bound=1)],
)
query = parse_cq("Q(y) :- friend(p, y), person(y, n, 'NYC')", schema=schema)
good = compile_plan(query, access, ("p",))


class CheapPlan(Plan):
    """A plan whose memoized cost claims 1.0 regardless of its steps."""

    @property
    def cost_estimate(self) -> float:
        return 1.0


forged = CheapPlan(
    good.query,
    good.parameters,
    good.steps,
    good.head_terms,
    good.satisfiable,
    good.view_relations,
)

check_plan(forged, access)  # must raise CertificationError (exit != 0)
print("BUG: the forged cost annotation certified clean", file=sys.stderr)
sys.exit(0)

"""Exception hierarchy shared across the package."""


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class SchemaError(ReproError):
    """A query, tuple or access rule refers to a relation or attribute that
    does not exist, or uses the wrong arity."""


class UpdateError(ReproError):
    """An update violates the well-formedness conditions of Section 5:
    deletions must be contained in the database and insertions must be
    disjoint from it."""


class UndecidableError(ReproError):
    """The requested decision problem is undecidable for the given input
    class (e.g. QSI or VQSI for full first-order logic)."""


class ParseError(ReproError):
    """The textual form of a query, schema or access schema is malformed.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    they are known; the rendered message always includes them.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None and column is not None:
            message = f"{message} (line {line}, column {column})"
        elif line is not None:
            message = f"{message} (line {line})"
        super().__init__(message)


class IncrementalError(ReproError):
    """Incremental (delta-based) execution was requested for a plan shape
    the delta pipeline does not support -- currently plans that fetch
    through an embedded access rule, whose per-assignment projection
    deduplication has no exact counting semantics."""


class NotControlledError(ReproError):
    """A scale-independent plan was requested for a query that is not
    controlled by the given variables under the given access schema."""


class RewritingError(ReproError):
    """No rewriting of the requested form exists (or the bounded search for
    one was exhausted)."""


class CertificationError(ReproError):
    """A compiled plan failed independent certification
    (:mod:`repro.analysis.certify`): re-deriving its binding coverage,
    rule membership, head projection or fanout arithmetic from the query
    and the access schema contradicted what the plan claims.

    Carries the certifier's ``report`` (a :class:`repro.analysis.Report`
    of ``CRT`` errors) when raised by
    :func:`repro.analysis.certify.check_plan`.
    """

    def __init__(self, message: str, report: object = None):
        super().__init__(message)
        self.report = report

"""Reproduction of "On Scale Independence for Querying Big Data" (PODS 2014).

The package is organised as follows:

* :mod:`repro.api` -- the documented front door: the :class:`Engine`
  facade binding a schema, an access schema and a database, with textual
  Datalog-style queries, an LRU cache of compiled plans, and bounded
  execution returning :class:`ResultSet` rows plus access statistics.
* :mod:`repro.logic` -- the query languages of the paper (CQ, UCQ, FO) with
  active-domain semantics, homomorphisms and containment, plus the
  Datalog-style parser (:mod:`repro.logic.parser`).
* :mod:`repro.relational` -- the relational substrate: schemas (with a
  textual DSL), instances with tuple-access accounting, and pluggable
  storage backends (:mod:`repro.relational.backends`): in-memory hash
  indexes, an out-of-core SQLite store, and a hash-sharded composite.
* :mod:`repro.core` -- the paper's primary contribution: access schemas
  (with a textual rule DSL), controllability, the scale-independent
  planner (:mod:`repro.core.plans`), the batched physical-operator
  executor (:mod:`repro.core.executor`) and the decision problems QDSI,
  QSI, QCntl and QCntlmin.
* :mod:`repro.incremental` -- incremental scale independence (Section 5):
  every database keeps a monotonic change log, every operator has a delta
  face, and :class:`IncrementalResult` (from ``execute_incremental``)
  re-answers a query after updates via ``refresh()`` -- the standard
  delta rule over the log slice, with access bounded by the slice and the
  rule bounds, never the database size.
* :mod:`repro.views` -- scale independence *using views* (Section 6):
  named materialized views (``engine.views.register``) with their own
  bounded access rules, kept fresh incrementally from the change log,
  and a homomorphism-based rewriting step that makes queries executable
  -- with boundedly many base accesses -- that no base access plan can
  control (e.g. inverted edge lookups through the workload views V1/V2).
* :mod:`repro.workloads` -- seeded synthetic workloads: the paper's
  social-network example with configurable size and degree skew, the
  running queries Q1/Q2/Q3 (and the view-unlocked Q4/Q5) as ready-made
  bundles, the workload views V1/V2, and seeded churn streams
  (insert/delete batches honoring the degree caps).
* :mod:`repro.analysis` -- compiler-style static diagnostics (also
  ``python -m repro.analysis``): stable codes with severities and
  1-based source spans threaded from the parser, pass families over
  queries (QRY), access schemas (ACC), compiled plans (PLN) and views
  (VIW), surfaced as ``prepared.diagnostics()`` / ``engine.analyze()``,
  a lint CLI with ``--strict`` and certified ``--fix`` rewrites, plan
  certification (CRT) -- translation validation of every compiled plan
  under ``Engine(certify=True)`` / ``REPRO_CERTIFY=1`` -- binding-
  pattern dataflow explanations, and the CI gate keeping the Q1-Q5
  workload bundles warning-clean and certified.
* :mod:`repro.bench` -- the experiment harness (also ``python -m
  repro.bench``): batched vs per-tuple wall time, tuples accessed vs the
  fanout bound, refresh-vs-recompute under churn, view-assisted vs
  base-only execution and view refresh-vs-rematerialize, and plan-cache
  hit rates, written to ``BENCH_<n>.json`` -- plus a ``--backend`` axis
  and an out-of-core scale scenario (``--large``) that streams
  million-row instances into the SQLite store and shows tuples accessed
  staying exactly flat.

The most frequently used names are re-exported here for convenience.
"""

from repro.errors import (
    CertificationError,
    IncrementalError,
    NotControlledError,
    ParseError,
    ReproError,
    RewritingError,
    SchemaError,
    UndecidableError,
    UpdateError,
)
from repro.logic.terms import Constant, Variable
from repro.logic.ast import (
    Atom,
    Equality,
    And,
    Or,
    Not,
    Exists,
    Forall,
    Implies,
    Span,
)
from repro.logic.cq import ConjunctiveQuery
from repro.logic.ucq import UnionOfConjunctiveQueries
from repro.logic.fo import FirstOrderQuery
from repro.logic.parser import parse_cq, parse_query
from repro.relational.schema import DatabaseSchema, RelationSchema, parse_schema
from repro.relational.instance import AccessStats, ChangeEntry, ChangeLog, Database
from repro.relational.backends import (
    MemoryBackend,
    ShardedBackend,
    SqliteBackend,
    StorageBackend,
)
from repro.core.access_schema import (
    AccessRule,
    AccessSchema,
    EmbeddedAccessRule,
    FullAccessRule,
    parse_access_schema,
)
from repro.core.controllability import (
    Coverage,
    CoverageStep,
    controlling_sets,
    coverage,
    is_controlled,
)
from repro.core.executor import (
    ExecutionContext,
    FetchOp,
    FilterOp,
    OperatorProfile,
    PlanProfile,
    ProbeOp,
    ProjectDedupOp,
    ViewProbeOp,
    ViewScanOp,
    build_pipeline,
    delta_fanout_bound,
    execute_plan,
    execute_plan_counting,
    execute_plan_delta,
    profile_plan,
)
from repro.core.plans import FetchStep, Plan, ProbeStep, StepCost, compile_plan
from repro.core.qdsi import QDSIResult, decide_qdsi
from repro.core.qsi import QSIResult, decide_qsi
from repro.views import ViewDef, ViewSet, ViewState
from repro.api import CacheStats, Engine, ExplainAnalyze, PreparedQuery, ResultSet
from repro.incremental import IncrementalResult
from repro.analysis import Diagnostic, Report, Severity

__all__ = [
    # errors
    "ReproError",
    "SchemaError",
    "UpdateError",
    "UndecidableError",
    "NotControlledError",
    "RewritingError",
    "ParseError",
    "IncrementalError",
    "CertificationError",
    # terms and formulas
    "Variable",
    "Constant",
    "Atom",
    "Equality",
    "And",
    "Or",
    "Not",
    "Exists",
    "Forall",
    "Implies",
    "Span",
    # queries and parsing
    "ConjunctiveQuery",
    "UnionOfConjunctiveQueries",
    "FirstOrderQuery",
    "parse_query",
    "parse_cq",
    # relational substrate
    "RelationSchema",
    "DatabaseSchema",
    "parse_schema",
    "Database",
    "AccessStats",
    "ChangeEntry",
    "ChangeLog",
    # storage backends
    "StorageBackend",
    "MemoryBackend",
    "SqliteBackend",
    "ShardedBackend",
    # access schemas
    "AccessRule",
    "EmbeddedAccessRule",
    "FullAccessRule",
    "AccessSchema",
    "parse_access_schema",
    # controllability and plans
    "Coverage",
    "CoverageStep",
    "coverage",
    "controlling_sets",
    "is_controlled",
    "Plan",
    "FetchStep",
    "ProbeStep",
    "StepCost",
    "compile_plan",
    # the physical executor
    "ExecutionContext",
    "FetchOp",
    "ProbeOp",
    "FilterOp",
    "ProjectDedupOp",
    "OperatorProfile",
    "PlanProfile",
    "build_pipeline",
    "execute_plan",
    "profile_plan",
    # incremental execution
    "IncrementalResult",
    "execute_plan_counting",
    "execute_plan_delta",
    "delta_fanout_bound",
    # materialized views (Section 6)
    "ViewDef",
    "ViewSet",
    "ViewState",
    "ViewScanOp",
    "ViewProbeOp",
    # deciders
    "QDSIResult",
    "decide_qdsi",
    "QSIResult",
    "decide_qsi",
    # the Engine facade
    "Engine",
    "PreparedQuery",
    "ResultSet",
    "ExplainAnalyze",
    "CacheStats",
    # static analysis
    "Severity",
    "Diagnostic",
    "Report",
]

__version__ = "1.8.0"

"""Reproduction of "On Scale Independence for Querying Big Data" (PODS 2014).

The package is organised as follows:

* :mod:`repro.logic` -- the query languages of the paper (CQ, UCQ, FO) with
  active-domain semantics, homomorphisms and containment.
* :mod:`repro.relational` -- the relational substrate: schemas, instances,
  hash indexes with tuple-access accounting, relational algebra.
* :mod:`repro.core` -- the paper's primary contribution: access schemas,
  controllability, scale-independent query plans and the decision problems
  QDSI, QSI, QCntl and QCntlmin.
* :mod:`repro.incremental` -- incremental scale independence (Section 5):
  change propagation, the ``RA_A`` rule system and the ``\\Delta QSI`` decider.
* :mod:`repro.views` -- scale independence using views (Section 6): CQ
  rewriting using views, constrained variables and the VQSI decider.
* :mod:`repro.workloads` -- synthetic social-network workloads and the
  paper's running queries Q1/Q2/Q3 and views V1/V2.
* :mod:`repro.bench` -- the experiment harness used by ``benchmarks/``.

The most frequently used names are re-exported here for convenience.
"""

from repro.errors import (
    NotControlledError,
    ReproError,
    RewritingError,
    SchemaError,
    UndecidableError,
    UpdateError,
)
from repro.logic.terms import Constant, Variable
from repro.logic.ast import Atom, Equality, And, Or, Not, Exists, Forall, Implies
from repro.logic.cq import ConjunctiveQuery
from repro.logic.ucq import UnionOfConjunctiveQueries
from repro.logic.fo import FirstOrderQuery
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.instance import Database
from repro.core.access_schema import AccessRule, AccessSchema, EmbeddedAccessRule, FullAccessRule
from repro.core.controllability import controlling_sets, is_controlled
from repro.core.plans import compile_plan
from repro.core.qdsi import decide_qdsi
from repro.core.qsi import decide_qsi

__all__ = [
    "ReproError",
    "SchemaError",
    "UpdateError",
    "UndecidableError",
    "NotControlledError",
    "RewritingError",
    "Variable",
    "Constant",
    "Atom",
    "Equality",
    "And",
    "Or",
    "Not",
    "Exists",
    "Forall",
    "Implies",
    "ConjunctiveQuery",
    "UnionOfConjunctiveQueries",
    "FirstOrderQuery",
    "RelationSchema",
    "DatabaseSchema",
    "Database",
    "AccessRule",
    "EmbeddedAccessRule",
    "FullAccessRule",
    "AccessSchema",
    "controlling_sets",
    "is_controlled",
    "compile_plan",
    "decide_qdsi",
    "decide_qsi",
]

__version__ = "1.0.0"

"""Controllability of conjunctive queries under an access schema.

Following Fan, Geerts & Libkin (2014, Section 4), a query ``Q`` is
*controlled* by a set of variables ``C`` under an access schema ``A`` if,
once values for ``C`` are fixed, every variable of ``Q`` can be bound by a
chain of bounded fetches through the rules of ``A`` -- which is exactly the
condition under which a scale-independent plan exists.

The decision procedure is a monotone fixpoint: starting from ``C`` (query
constants are always bound), a rule ``R(X -> N)`` on a body atom whose
``X``-positions are all bound extends the bound set with the atom's other
variables (for an embedded rule ``R(X -> Y, N)``, only the ``Y``
positions).  ``Q`` is controlled iff the fixpoint covers all of its
variables.

:func:`controlling_sets` solves the paper's QCntl/QCntlmin problems by
searching the subsets of the candidate variables for the minimal
controlling sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Sequence

from repro.core.access_schema import AccessRule, AccessSchema
from repro.logic.ast import Atom, _as_variable
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Constant, Variable


@dataclass(frozen=True)
class CoverageStep:
    """One fixpoint step: ``rule`` applied to ``atom`` bound ``binds``."""

    atom: Atom
    rule: AccessRule
    binds: tuple[Variable, ...]

    def __str__(self) -> str:
        binds = ", ".join(f"?{v}" for v in self.binds) or "nothing new"
        return f"fetch {self.atom} via {self.rule} binding {binds}"


@dataclass(frozen=True)
class Coverage:
    """The result of the fixpoint: which variables became bound and how."""

    bound: frozenset[Variable]
    steps: tuple[CoverageStep, ...]
    variables: tuple[Variable, ...]

    @property
    def uncovered(self) -> tuple[Variable, ...]:
        return tuple(v for v in self.variables if v not in self.bound)

    @property
    def controlled(self) -> bool:
        return not self.uncovered


def _normalize_vars(variables: Iterable[object]) -> tuple[Variable, ...]:
    return tuple(_as_variable(v) for v in variables)


def coverage(
    query: ConjunctiveQuery,
    access: AccessSchema,
    parameters: Iterable[object] = (),
) -> Coverage:
    """Run the fixpoint propagation for ``query`` under ``access`` with the
    variables in ``parameters`` initially bound."""
    access.schema.validate_query(query)
    params = _normalize_vars(parameters)
    subst = query.equality_substitution()
    if subst is None:
        # Unsatisfiable query: the empty plan answers it, everything is
        # trivially covered.
        all_vars = query.variables()
        return Coverage(frozenset(all_vars), (), all_vars)

    atoms = tuple(a.substitute(subst) for a in query.body)
    # Work on equality-class representatives; a parameter value for any
    # member of a class binds the representative.
    bound: set[Variable] = set()
    for v in params:
        rep = subst.get(v, v)
        if isinstance(rep, Variable):
            bound.add(rep)

    steps: list[CoverageStep] = []
    changed = True
    while changed:
        changed = False
        for atom in atoms:
            rel = access.schema.relation(atom.relation)
            for rule in access.rules_for(atom.relation):
                in_pos = rel.positions(rule.inputs)
                if not all(_is_bound(atom.terms[p], bound) for p in in_pos):
                    continue
                out_pos = rel.positions(rule.bound_attributes(rel))
                newly = tuple(
                    dict.fromkeys(
                        atom.terms[p]
                        for p in out_pos
                        if isinstance(atom.terms[p], Variable)
                        and atom.terms[p] not in bound
                    )
                )
                if newly:
                    bound.update(newly)
                    steps.append(CoverageStep(atom, rule, newly))
                    changed = True

    # Translate coverage of representatives back to the original variables.
    all_vars = query.variables()
    covered = frozenset(
        v
        for v in all_vars
        if isinstance(subst.get(v, v), Constant) or subst.get(v, v) in bound
    )
    return Coverage(covered, tuple(steps), all_vars)


def _is_bound(term, bound: set[Variable]) -> bool:
    return isinstance(term, Constant) or term in bound


def is_controlled(
    query: ConjunctiveQuery,
    access: AccessSchema,
    parameters: Iterable[object] = (),
) -> bool:
    """True iff fixing the variables in ``parameters`` makes every variable
    of ``query`` reachable through bounded fetches of ``access``."""
    return coverage(query, access, parameters).controlled


def controlling_sets(
    query: ConjunctiveQuery,
    access: AccessSchema,
    candidates: Sequence[object] | None = None,
    minimal_only: bool = True,
) -> tuple[tuple[Variable, ...], ...]:
    """The controlling sets of ``query`` drawn from ``candidates``
    (default: the head variables), smallest first.

    With ``minimal_only`` (the default) only inclusion-minimal sets are
    returned -- the paper's QCntlmin; otherwise every controlling subset is
    returned -- QCntl.
    """
    pool = _normalize_vars(candidates if candidates is not None else query.head)
    pool = tuple(dict.fromkeys(pool))
    found: list[tuple[Variable, ...]] = []
    minimal: list[frozenset[Variable]] = []
    for size in range(len(pool) + 1):
        for combo in combinations(pool, size):
            as_set = frozenset(combo)
            if minimal_only and any(m <= as_set for m in minimal):
                continue
            if is_controlled(query, access, combo):
                found.append(combo)
                minimal.append(as_set)
    return tuple(found)

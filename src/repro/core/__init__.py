"""The paper's primary contribution: access schemas, controllability,
scale-independent plans (the planner in :mod:`repro.core.plans`, the
batched physical-operator executor in :mod:`repro.core.executor`) and the
QSI/QDSI deciders."""

from repro.core.access_schema import (
    AccessRule,
    AccessSchema,
    EmbeddedAccessRule,
    FullAccessRule,
    parse_access_schema,
)
from repro.core.controllability import (
    Coverage,
    CoverageStep,
    controlling_sets,
    coverage,
    is_controlled,
)
from repro.core.executor import (
    FetchOp,
    FilterOp,
    OperatorProfile,
    PlanProfile,
    ProbeOp,
    ProjectDedupOp,
    build_pipeline,
    execute_per_tuple,
    execute_plan,
    profile_plan,
)
from repro.core.plans import FetchStep, Plan, ProbeStep, StepCost, compile_plan
from repro.core.qdsi import QDSIResult, decide_qdsi
from repro.core.qsi import QSIResult, decide_qsi

__all__ = [
    "AccessRule",
    "FullAccessRule",
    "EmbeddedAccessRule",
    "AccessSchema",
    "parse_access_schema",
    "Coverage",
    "CoverageStep",
    "coverage",
    "is_controlled",
    "controlling_sets",
    "Plan",
    "FetchStep",
    "ProbeStep",
    "StepCost",
    "compile_plan",
    "FetchOp",
    "ProbeOp",
    "FilterOp",
    "ProjectDedupOp",
    "OperatorProfile",
    "PlanProfile",
    "build_pipeline",
    "execute_plan",
    "execute_per_tuple",
    "profile_plan",
    "QDSIResult",
    "decide_qdsi",
    "QSIResult",
    "decide_qsi",
]

"""The paper's primary contribution: access schemas, controllability,
scale-independent plans (the planner in :mod:`repro.core.plans`, the
batched physical-operator executor in :mod:`repro.core.executor`) and the
QSI/QDSI deciders."""

from repro.core.access_schema import (
    AccessRule,
    AccessSchema,
    EmbeddedAccessRule,
    FullAccessRule,
    parse_access_schema,
)
from repro.core.controllability import (
    Coverage,
    CoverageStep,
    controlling_sets,
    coverage,
    is_controlled,
)
from repro.core.columnar import (
    ColumnarBatch,
    PipelineCache,
    PipelineCacheStats,
    SignedColumnarBatch,
    SlotTable,
)
from repro.core.executor import (
    FetchOp,
    FilterOp,
    OperatorProfile,
    Pipeline,
    PlanProfile,
    ProbeOp,
    ProjectDedupOp,
    build_pipeline,
    execute_per_tuple,
    execute_plan,
    pipeline_cache_stats,
    pipeline_for,
    profile_plan,
)
from repro.core.plans import FetchStep, Plan, ProbeStep, StepCost, compile_plan
from repro.core.qdsi import QDSIResult, decide_qdsi
from repro.core.qsi import QSIResult, decide_qsi

__all__ = [
    "AccessRule",
    "FullAccessRule",
    "EmbeddedAccessRule",
    "AccessSchema",
    "parse_access_schema",
    "Coverage",
    "CoverageStep",
    "coverage",
    "is_controlled",
    "controlling_sets",
    "Plan",
    "FetchStep",
    "ProbeStep",
    "StepCost",
    "compile_plan",
    "FetchOp",
    "ProbeOp",
    "FilterOp",
    "ProjectDedupOp",
    "OperatorProfile",
    "PlanProfile",
    "Pipeline",
    "SlotTable",
    "ColumnarBatch",
    "SignedColumnarBatch",
    "PipelineCache",
    "PipelineCacheStats",
    "build_pipeline",
    "pipeline_for",
    "pipeline_cache_stats",
    "execute_plan",
    "execute_per_tuple",
    "profile_plan",
    "QDSIResult",
    "decide_qdsi",
    "QSIResult",
    "decide_qsi",
]

"""The planner for scale-independent queries (Fan, Geerts & Libkin 2014,
Section 4).

:func:`compile_plan` turns a controlled conjunctive query into a
left-deep fetch/join plan: an ordered sequence of

* :class:`FetchStep` -- pull the (boundedly many) tuples of an atom's
  relation matching the currently bound positions, through a declared
  access rule, binding the atom's remaining variables; and
* :class:`ProbeStep` -- verify a fully-bound atom with a single indexed
  membership probe.

Each step joins with the bindings accumulated so far, so executing the
plan never scans a relation that is not covered by a
:class:`FullAccessRule`: every access is either an indexed lookup keyed on
an access rule's input attributes or a one-tuple membership probe.  The
number of tuples a plan touches is bounded by the product of its rules'
cardinality bounds -- independent of the database size, which is the whole
point.

This module only *plans*.  Physical execution lives in
:mod:`repro.core.executor`, which lowers the steps into a batched
operator pipeline; :meth:`Plan.execute` is a convenience wrapper around
:func:`repro.core.executor.execute_plan`.

If the query is not controlled by the given parameters,
:func:`compile_plan` raises :class:`repro.errors.NotControlledError`
naming the variables and atoms the fixpoint could not reach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.access_schema import AccessRule, AccessSchema
from repro.core.controllability import _is_bound
from repro.errors import NotControlledError
from repro.logic.ast import Atom, _as_variable
from repro.logic.cq import ConjunctiveQuery, Substitution
from repro.logic.terms import Constant, Term, Variable

Row = tuple[object, ...]


@dataclass(frozen=True)
class FetchStep:
    """Fetch the tuples of ``atom``'s relation through ``rule``, keyed on
    the positions bound so far, and bind ``binds``."""

    atom: Atom
    rule: AccessRule
    input_positions: tuple[int, ...]
    output_positions: tuple[int, ...]
    binds: tuple[Variable, ...]

    @property
    def verifies_atom(self) -> bool:
        return self.rule.verifies_atom

    def __str__(self) -> str:
        binds = ", ".join(f"?{v}" for v in self.binds) or "no new variables"
        return f"fetch {self.atom} via {self.rule}, binding {binds}"


@dataclass(frozen=True)
class ProbeStep:
    """Verify the fully-bound ``atom`` with one indexed membership probe."""

    atom: Atom

    def __str__(self) -> str:
        return f"probe {self.atom}"


Step = FetchStep | ProbeStep


@dataclass(frozen=True)
class StepCost:
    """The static worst-case cost estimate of one plan step.

    ``branches_in`` is the number of candidate bindings entering the step
    (the product of the bounds of the fetches above it), ``accesses`` the
    tuples the step may touch (``branches_in`` for a probe,
    ``branches_in * bound`` for a fetch) and ``branches_out`` the bindings
    leaving it.  Summing ``accesses`` over :meth:`Plan.step_costs` gives
    exactly :attr:`Plan.fanout_bound` -- the per-level multiplicative
    breakdown :mod:`repro.analysis` renders in blowup diagnostics.
    """

    step: Step
    branches_in: int
    accesses: int
    branches_out: int


class Plan:
    """A compiled scale-independent plan for a conjunctive query.

    ``view_relations`` names the relations of the plan's atoms that are
    *materialized views* rather than base tables (:mod:`repro.views`):
    their steps lower to view-store operators
    (:class:`~repro.core.executor.ViewScanOp` /
    :class:`~repro.core.executor.ViewProbeOp`) instead of database
    fetches, and executing the plan requires an execution context that
    carries the corresponding view states.
    """

    __slots__ = (
        "query",
        "parameters",
        "steps",
        "head_terms",
        "satisfiable",
        "view_relations",
        "_fanout_bound",
        "_cost_estimate",
    )

    def __init__(
        self,
        query: ConjunctiveQuery,
        parameters: tuple[Variable, ...],
        steps: tuple[Step, ...],
        head_terms: tuple[Term, ...],
        satisfiable: bool = True,
        view_relations: frozenset[str] = frozenset(),
    ):
        self.query = query
        self.parameters = parameters
        self.steps = steps
        self.head_terms = head_terms
        self.satisfiable = satisfiable
        self.view_relations = frozenset(view_relations)
        self._fanout_bound: int | None = None
        self._cost_estimate: float | None = None

    def __repr__(self) -> str:
        return (
            f"Plan(parameters={self.parameters!r}, steps={len(self.steps)}, "
            f"satisfiable={self.satisfiable})"
        )

    @property
    def fanout_bound(self) -> int:
        """An upper bound on the number of tuples the plan can access per
        execution -- a function of the access-rule bounds only, never of
        the database size.

        The bound is the sum over fetch steps of the product of the bounds
        of the fetches above them (each branch of the left-deep join can
        fan out by at most the rule's bound), plus one probe per branch.
        """
        bound = self._fanout_bound
        if bound is None:
            if not self.satisfiable:
                bound = 0
            else:
                bound = sum(cost.accesses for cost in self.step_costs())
            self._fanout_bound = bound
        return bound

    @property
    def cost_estimate(self) -> float:
        """The plan's static weighted cost: each fetch charges its
        worst-case accesses times its rule's per-lookup ``cost``, each
        probe one unit per open branch.

        With all rule costs at the default 1.0 this equals
        :attr:`fanout_bound`; non-uniform costs let the optimizer prefer
        cheap-access relations (e.g. a memory-resident view over a remote
        base table) at equal fanout.  The certifier re-derives this figure
        independently (CST002), and :func:`repro.analysis.cost.estimate_plan`
        refines it with observed statistics without executing anything.
        """
        cost = self._cost_estimate
        if cost is None:
            cost = 0.0
            for step_cost in self.step_costs():
                step = step_cost.step
                unit = step.rule.cost if isinstance(step, FetchStep) else 1.0
                cost += step_cost.accesses * unit
            self._cost_estimate = cost
        return cost

    def step_costs(self) -> tuple[StepCost, ...]:
        """Per-step worst-case cost estimates (see :class:`StepCost`).

        Every fetch multiplies the open branches by its rule's bound and
        may touch that many tuples; every probe touches one tuple per
        open branch.  ``sum(c.accesses) == fanout_bound`` by
        construction.
        """
        if not self.satisfiable:
            return ()
        costs: list[StepCost] = []
        branches = 1
        for step in self.steps:
            if isinstance(step, ProbeStep):
                costs.append(StepCost(step, branches, branches, branches))
                continue
            fanned = branches * step.rule.bound
            costs.append(StepCost(step, branches, fanned, fanned))
            branches = fanned
        return tuple(costs)

    def explain(self) -> str:
        """A human-readable rendering of the plan, with each step's static
        worst-case access estimate (see :meth:`step_costs`)."""
        lines = []
        params = ", ".join(f"?{v}" for v in self.parameters) or "none"
        lines.append(f"parameters: {params}")
        if not self.satisfiable:
            lines.append("unsatisfiable equalities: the answer is empty")
        for i, cost in enumerate(self.step_costs(), 1):
            lines.append(f"{i}. {cost.step}  [<= {cost.accesses} tuples]")
        head = ", ".join(
            str(t) if isinstance(t, Constant) else f"?{t}" for t in self.head_terms
        )
        lines.append(f"project: ({head})")
        lines.append(f"access bound: {self.fanout_bound} tuples")
        lines.append(f"cost estimate: {self.cost_estimate:g}")
        return "\n".join(lines)

    def execute(
        self,
        db,
        parameters: Mapping[object, object] | None = None,
        **kwargs: object,
    ) -> tuple[Row, ...]:
        """Run the plan on ``db`` with the given parameter values and return
        the deduplicated answer tuples.

        Parameter values may be passed as a mapping (keys are variables or
        their names) and/or as keyword arguments.  Delegates to the batched
        operator pipeline in :mod:`repro.core.executor`.
        """
        from repro.core.executor import execute_plan

        return execute_plan(self, db, parameters, **kwargs)


def compile_plan(
    query: ConjunctiveQuery,
    access: AccessSchema,
    parameters: Iterable[object] = (),
    *,
    view_relations: frozenset[str] = frozenset(),
) -> Plan:
    """Compile a scale-independent plan for ``query`` under ``access``,
    with the variables in ``parameters`` supplied at execution time.

    ``view_relations`` marks relation names of ``access.schema`` that are
    materialized views: their steps execute against view stores instead
    of the database (used by :mod:`repro.views`, which compiles rewritten
    queries against a schema extended with one relation per view).

    Raises :class:`NotControlledError` if the query is not controlled by
    ``parameters`` under ``access``.
    """
    access.schema.validate_query(query)
    params = tuple(dict.fromkeys(_as_variable(v) for v in parameters))
    unknown = [v for v in params if v not in set(query.variables())]
    if unknown:
        raise ValueError(
            "parameters not occurring in the query: "
            + ", ".join(f"?{v}" for v in unknown)
        )

    subst = query.equality_substitution()
    if subst is None:
        return Plan(
            query,
            params,
            (),
            tuple(subst_head(query, {})),
            satisfiable=False,
            view_relations=view_relations,
        )

    atoms = [a.substitute(subst) for a in query.body]
    bound: set[Variable] = set()
    for v in params:
        rep = subst.get(v, v)
        if isinstance(rep, Variable):
            bound.add(rep)

    # `remaining` holds (atom, verified?) pairs; an atom leaves the list
    # once it has been witnessed by a full fetch or a probe.
    remaining: list[Atom] = list(atoms)
    steps: list[Step] = []

    while remaining:
        # 1. Probe any atom that is already fully bound: one tuple access.
        probed = [a for a in remaining if all(_is_bound(t, bound) for t in a.terms)]
        if probed:
            for atom in probed:
                steps.append(ProbeStep(atom))
                remaining.remove(atom)
            continue

        # 2. Otherwise find the most selective applicable (atom, rule)
        # fetch: rule inputs bound, and it must make progress (bind a new
        # variable, or verify the atom outright).
        best: tuple[tuple, FetchStep] | None = None
        for atom in remaining:
            rel = access.schema.relation(atom.relation)
            for rule in access.rules_for(atom.relation):
                in_pos = rel.positions(rule.inputs)
                if not all(_is_bound(atom.terms[p], bound) for p in in_pos):
                    continue
                out_pos = rel.positions(rule.bound_attributes(rel))
                newly = tuple(
                    dict.fromkeys(
                        atom.terms[p]
                        for p in out_pos
                        if isinstance(atom.terms[p], Variable)
                        and atom.terms[p] not in bound
                    )
                )
                if not newly and not rule.verifies_atom:
                    continue  # an embedded fetch that binds nothing is useless
                score = (rule.bound, -len(in_pos))
                if best is None or score < best[0]:
                    best = (score, FetchStep(atom, rule, in_pos, out_pos, newly))
        if best is None:
            _raise_not_controlled(query, access, params, bound, remaining, subst)
        step = best[1]
        steps.append(step)
        bound.update(step.binds)
        atom, rule = step.atom, step.rule
        if rule.verifies_atom:
            remaining.remove(atom)
        # An embedded fetch leaves the atom in `remaining`; once all its
        # positions are bound, branch 1 turns it into a probe.

    head_terms = tuple(subst_head(query, subst))
    unbound_head = [
        t for t in head_terms if isinstance(t, Variable) and t not in bound
    ]
    if unbound_head:
        _raise_not_controlled(query, access, params, bound, [], subst)
    return Plan(
        query, params, tuple(steps), head_terms, view_relations=view_relations
    )


def subst_head(query: ConjunctiveQuery, subst: Substitution) -> list[Term]:
    return [subst.get(v, v) for v in query.head]


def _raise_not_controlled(
    query: ConjunctiveQuery,
    access: AccessSchema,
    params: tuple[Variable, ...],
    bound: set[Variable],
    remaining: list[Atom],
    subst: Substitution,
) -> None:
    all_vars = query.variables()
    uncovered = [
        v
        for v in all_vars
        if not isinstance(subst.get(v, v), Constant) and subst.get(v, v) not in bound
    ]
    details = []
    if uncovered:
        details.append("unreachable variables: " + ", ".join(f"?{v}" for v in uncovered))
    if remaining:
        details.append("uncovered atoms: " + ", ".join(str(a) for a in remaining))
    given = ", ".join(f"?{v}" for v in params) or "no parameters"
    message = (
        f"query {query} is not controlled by {given} under {access}"
        + (" (" + "; ".join(details) + ")" if details else "")
    )
    # Append the binding-pattern causal trace (why each variable stays
    # unreachable) when the dataflow pass is available.  Imported lazily:
    # repro.analysis sits above repro.core in the layering.
    try:
        from repro.analysis.dataflow import explain_uncontrolled

        trace = explain_uncontrolled(query, access, params)
    except Exception:
        trace = None
    if trace:
        message += "\n" + trace
    raise NotControlledError(message)

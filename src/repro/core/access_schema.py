"""Access schemas (Fan, Geerts & Libkin 2014, Section 2).

An access schema declares, for each relation, which *bounded access paths*
exist: a rule ``R(X -> N, T)`` says that for any values of the attributes
``X``, at most ``N`` tuples of ``R`` match and they can be fetched in time
``T``.  These are the promises indexes and cardinality constraints make in
a real deployment, and they are the only means by which a scale-independent
plan may touch the data.

Three rule shapes are provided:

* :class:`AccessRule` -- the general form ``R(X -> N)``: given values for
  ``X``, fetch the (at most ``N``) full tuples of ``R`` that match.
* :class:`FullAccessRule` -- the special case ``X = {}``: the whole
  relation holds at most ``N`` tuples and may be read outright ("small"
  relations such as dictionaries and enumerations).
* :class:`EmbeddedAccessRule` -- ``R(X -> Y, N)``: given values for ``X``,
  at most ``N`` distinct ``Y``-projections match.  A fetch through it binds
  only ``X`` and ``Y``; the atom still needs a separate membership probe
  (or another rule) before it is fully verified.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import SchemaError
from repro.relational.schema import DatabaseSchema, RelationSchema


def _attribute_tuple(attributes: Iterable[str], what: str) -> tuple[str, ...]:
    attrs = tuple(attributes)
    if len(set(attrs)) != len(attrs):
        raise SchemaError(f"duplicate {what} attributes: {attrs!r}")
    return attrs


def _check_bound(bound: object) -> int:
    # The cardinality bound N is what makes an access path usable for
    # scale independence; a rule without one would be a plain index and
    # could never certify a bounded plan, so N is mandatory.
    if isinstance(bound, bool) or not isinstance(bound, int) or bound < 1:
        raise SchemaError(
            f"access rule bound must be a positive integer, got {bound!r}"
        )
    return bound


class AccessRule:
    """The general access rule ``R(X -> N)``."""

    __slots__ = ("relation", "inputs", "bound", "cost")

    def __init__(
        self,
        relation: str,
        inputs: Iterable[str],
        bound: int,
        cost: float = 1.0,
    ):
        if not relation:
            raise SchemaError("access rule relation name must be non-empty")
        self.relation = relation
        self.inputs = _attribute_tuple(inputs, "input")
        self.bound = _check_bound(bound)
        self.cost = cost

    def _key(self) -> tuple:
        return (type(self).__name__, self.relation, self.inputs, self.bound)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AccessRule) and self._key() == other._key()  # type: ignore[union-attr]

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.relation!r}, {self.inputs!r}, "
            f"bound={self.bound!r})"
        )

    def __str__(self) -> str:
        inputs = ", ".join(self.inputs) or "{}"
        return f"{self.relation}({inputs} -> {self.bound})"

    def validate(self, schema: DatabaseSchema) -> None:
        """Check the rule against ``schema`` (relation and attributes
        exist)."""
        rel = schema.relation(self.relation)
        for attr in self.inputs:
            rel.position(attr)

    def bound_attributes(self, rel: RelationSchema) -> tuple[str, ...]:
        """The attributes whose values are known after a fetch through this
        rule: all of them, since full tuples are returned."""
        return rel.attributes

    @property
    def verifies_atom(self) -> bool:
        """Whether a fetch through this rule returns full tuples of ``R``
        (and hence witnesses the atom it serves)."""
        return True


class FullAccessRule(AccessRule):
    """``R({} -> N)``: the whole relation is bounded by ``N`` tuples."""

    __slots__ = ()

    def __init__(self, relation: str, bound: int, cost: float = 1.0):
        super().__init__(relation, (), bound, cost)


class EmbeddedAccessRule(AccessRule):
    """``R(X -> Y, N)``: given ``X``-values, at most ``N`` distinct
    ``Y``-projections of ``R`` match."""

    __slots__ = ("outputs",)

    def __init__(
        self,
        relation: str,
        inputs: Iterable[str],
        outputs: Iterable[str],
        bound: int,
        cost: float = 1.0,
    ):
        super().__init__(relation, inputs, bound, cost)
        self.outputs = _attribute_tuple(outputs, "output")
        if not self.outputs:
            raise SchemaError("embedded access rule needs at least one output attribute")
        overlap = set(self.inputs) & set(self.outputs)
        if overlap:
            raise SchemaError(
                f"embedded access rule inputs and outputs overlap: {sorted(overlap)}"
            )

    def _key(self) -> tuple:
        return super()._key() + (self.outputs,)

    def __repr__(self) -> str:
        return (
            f"EmbeddedAccessRule({self.relation!r}, {self.inputs!r}, "
            f"{self.outputs!r}, bound={self.bound!r})"
        )

    def __str__(self) -> str:
        inputs = ", ".join(self.inputs) or "{}"
        outputs = ", ".join(self.outputs)
        return f"{self.relation}({inputs} -> {outputs}, {self.bound})"

    def validate(self, schema: DatabaseSchema) -> None:
        super().validate(schema)
        rel = schema.relation(self.relation)
        for attr in self.outputs:
            rel.position(attr)

    def bound_attributes(self, rel: RelationSchema) -> tuple[str, ...]:
        return self.inputs + self.outputs

    @property
    def verifies_atom(self) -> bool:
        return False


class AccessSchema:
    """A database schema together with its access rules."""

    __slots__ = ("schema", "_by_relation")

    def __init__(self, schema: DatabaseSchema, rules: Iterable[AccessRule] = ()):
        if not isinstance(schema, DatabaseSchema):
            raise SchemaError(f"{schema!r} is not a DatabaseSchema")
        self.schema = schema
        self._by_relation: dict[str, tuple[AccessRule, ...]] = {}
        for rule in rules:
            if not isinstance(rule, AccessRule):
                raise SchemaError(f"{rule!r} is not an AccessRule")
            rule.validate(schema)
            self._by_relation[rule.relation] = self._by_relation.get(
                rule.relation, ()
            ) + (rule,)

    def rules_for(self, relation: str) -> tuple[AccessRule, ...]:
        """The access rules declared on ``relation`` (which must exist)."""
        self.schema.relation(relation)
        return self._by_relation.get(relation, ())

    def __iter__(self) -> Iterator[AccessRule]:
        for rules in self._by_relation.values():
            yield from rules

    def __len__(self) -> int:
        return sum(len(rules) for rules in self._by_relation.values())

    def __repr__(self) -> str:
        return f"AccessSchema({list(self)!r})"

    def __str__(self) -> str:
        return "{" + "; ".join(str(rule) for rule in self) + "}"

"""Access schemas (Fan, Geerts & Libkin 2014, Section 2).

An access schema declares, for each relation, which *bounded access paths*
exist: a rule ``R(X -> N, T)`` says that for any values of the attributes
``X``, at most ``N`` tuples of ``R`` match and they can be fetched in time
``T``.  These are the promises indexes and cardinality constraints make in
a real deployment, and they are the only means by which a scale-independent
plan may touch the data.

Three rule shapes are provided:

* :class:`AccessRule` -- the general form ``R(X -> N)``: given values for
  ``X``, fetch the (at most ``N``) full tuples of ``R`` that match.
* :class:`FullAccessRule` -- the special case ``X = {}``: the whole
  relation holds at most ``N`` tuples and may be read outright ("small"
  relations such as dictionaries and enumerations).
* :class:`EmbeddedAccessRule` -- ``R(X -> Y, N)``: given values for ``X``,
  at most ``N`` distinct ``Y``-projections match.  A fetch through it binds
  only ``X`` and ``Y``; the atom still needs a separate membership probe
  (or another rule) before it is fully verified.

Access schemas also have a textual form, parsed by
:func:`parse_access_schema` / :meth:`AccessSchema.parse`.  Two rule
syntaxes are accepted, separated by whitespace or optional semicolons and
optionally wrapped in ``{`` ... ``}`` (the rendering of
:meth:`AccessSchema.__str__`):

* the *attribute* form, which round-trips with each rule's ``str``:
  ``friend(pid1 -> 5000)`` (plain), ``dict({} -> 100)`` (full relation),
  ``person(pid -> name, city, 1)`` (embedded: everything after ``->``
  except the final bound is an output attribute);
* the *positional* form ``Friend: (0) -> * bound 5000``, naming 0-based
  attribute positions instead of attribute names -- ``*`` for "full
  tuples" (a plain rule) or a position list for an embedded rule, e.g.
  ``Person: (0) -> (1, 2) bound 1``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import SchemaError
from repro.logic.parser import (
    ARROW,
    COLON,
    COMMA,
    IDENT,
    LBRACE,
    LPAREN,
    NUMBER,
    RBRACE,
    RPAREN,
    SEMICOLON,
    STAR,
    Token,
    TokenStream,
    tokenize,
)
from repro.relational.schema import DatabaseSchema, RelationSchema


def _attribute_tuple(attributes: Iterable[str], what: str) -> tuple[str, ...]:
    attrs = tuple(attributes)
    if len(set(attrs)) != len(attrs):
        raise SchemaError(f"duplicate {what} attributes: {attrs!r}")
    return attrs


def _check_bound(bound: object) -> int:
    # The cardinality bound N is what makes an access path usable for
    # scale independence; a rule without one would be a plain index and
    # could never certify a bounded plan, so N is mandatory.
    if isinstance(bound, bool) or not isinstance(bound, int) or bound < 1:
        raise SchemaError(
            f"access rule bound must be a positive integer, got {bound!r}"
        )
    return bound


class AccessRule:
    """The general access rule ``R(X -> N)``."""

    __slots__ = ("relation", "inputs", "bound", "cost")

    def __init__(
        self,
        relation: str,
        inputs: Iterable[str],
        bound: int,
        cost: float = 1.0,
    ):
        if not relation:
            raise SchemaError("access rule relation name must be non-empty")
        self.relation = relation
        self.inputs = _attribute_tuple(inputs, "input")
        self.bound = _check_bound(bound)
        self.cost = cost

    def _key(self) -> tuple:
        # No type marker: FullAccessRule is only a constructor convenience
        # for the ``X = {}`` case, so it compares equal to a plain
        # AccessRule with empty inputs (EmbeddedAccessRule stays distinct
        # through the outputs its _key appends).
        return (self.relation, self.inputs, self.bound)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AccessRule) and self._key() == other._key()  # type: ignore[union-attr]

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.relation!r}, {self.inputs!r}, "
            f"bound={self.bound!r})"
        )

    def __str__(self) -> str:
        inputs = ", ".join(self.inputs) or "{}"
        return f"{self.relation}({inputs} -> {self.bound})"

    def validate(self, schema: DatabaseSchema) -> None:
        """Check the rule against ``schema`` (relation and attributes
        exist)."""
        rel = schema.relation(self.relation)
        for attr in self.inputs:
            rel.position(attr)

    def bound_attributes(self, rel: RelationSchema) -> tuple[str, ...]:
        """The attributes whose values are known after a fetch through this
        rule: all of them, since full tuples are returned."""
        return rel.attributes

    @property
    def verifies_atom(self) -> bool:
        """Whether a fetch through this rule returns full tuples of ``R``
        (and hence witnesses the atom it serves)."""
        return True


class FullAccessRule(AccessRule):
    """``R({} -> N)``: the whole relation is bounded by ``N`` tuples."""

    __slots__ = ()

    def __init__(self, relation: str, bound: int, cost: float = 1.0):
        super().__init__(relation, (), bound, cost)


class EmbeddedAccessRule(AccessRule):
    """``R(X -> Y, N)``: given ``X``-values, at most ``N`` distinct
    ``Y``-projections of ``R`` match."""

    __slots__ = ("outputs",)

    def __init__(
        self,
        relation: str,
        inputs: Iterable[str],
        outputs: Iterable[str],
        bound: int,
        cost: float = 1.0,
    ):
        super().__init__(relation, inputs, bound, cost)
        self.outputs = _attribute_tuple(outputs, "output")
        if not self.outputs:
            raise SchemaError("embedded access rule needs at least one output attribute")
        overlap = set(self.inputs) & set(self.outputs)
        if overlap:
            raise SchemaError(
                f"embedded access rule inputs and outputs overlap: {sorted(overlap)}"
            )

    def _key(self) -> tuple:
        return super()._key() + (self.outputs,)

    def __repr__(self) -> str:
        return (
            f"EmbeddedAccessRule({self.relation!r}, {self.inputs!r}, "
            f"{self.outputs!r}, bound={self.bound!r})"
        )

    def __str__(self) -> str:
        inputs = ", ".join(self.inputs) or "{}"
        outputs = ", ".join(self.outputs)
        return f"{self.relation}({inputs} -> {outputs}, {self.bound})"

    def validate(self, schema: DatabaseSchema) -> None:
        super().validate(schema)
        rel = schema.relation(self.relation)
        for attr in self.outputs:
            rel.position(attr)

    def bound_attributes(self, rel: RelationSchema) -> tuple[str, ...]:
        return self.inputs + self.outputs

    @property
    def verifies_atom(self) -> bool:
        return False


class AccessSchema:
    """A database schema together with its access rules."""

    __slots__ = ("schema", "_by_relation")

    def __init__(self, schema: DatabaseSchema, rules: Iterable[AccessRule] = ()):
        if not isinstance(schema, DatabaseSchema):
            raise SchemaError(f"{schema!r} is not a DatabaseSchema")
        self.schema = schema
        self._by_relation: dict[str, tuple[AccessRule, ...]] = {}
        for rule in rules:
            if not isinstance(rule, AccessRule):
                raise SchemaError(f"{rule!r} is not an AccessRule")
            rule.validate(schema)
            self._by_relation[rule.relation] = self._by_relation.get(
                rule.relation, ()
            ) + (rule,)

    @classmethod
    def parse(cls, schema: DatabaseSchema | str, text: str) -> "AccessSchema":
        """Parse the textual access-schema DSL (see the module docstring)
        against ``schema`` (a :class:`DatabaseSchema` or schema DSL text),
        e.g. ``AccessSchema.parse(schema, "friend(pid1 -> 5000)")``."""
        return parse_access_schema(schema, text)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AccessSchema)
            and self.schema == other.schema
            and self._by_relation == other._by_relation
        )

    def __hash__(self) -> int:
        return hash((self.schema, frozenset(self._by_relation.items())))

    def rules_for(self, relation: str) -> tuple[AccessRule, ...]:
        """The access rules declared on ``relation`` (which must exist)."""
        self.schema.relation(relation)
        return self._by_relation.get(relation, ())

    def __iter__(self) -> Iterator[AccessRule]:
        for rules in self._by_relation.values():
            yield from rules

    def __len__(self) -> int:
        return sum(len(rules) for rules in self._by_relation.values())

    def __repr__(self) -> str:
        return f"AccessSchema({list(self)!r})"

    def __str__(self) -> str:
        return "{" + "; ".join(str(rule) for rule in self) + "}"


def parse_access_schema(schema: DatabaseSchema | str, text: str) -> AccessSchema:
    """Parse access-rule DSL ``text`` against ``schema`` into an
    :class:`AccessSchema` (see the module docstring for the grammar).

    Malformed or schema-inconsistent rules raise
    :class:`repro.errors.ParseError` with the offending source position.
    """
    if isinstance(schema, str):
        schema = DatabaseSchema.parse(schema)
    stream = TokenStream(tokenize(text))
    braced = stream.at(LBRACE)
    if braced:
        stream.take()
    rules: list[AccessRule] = []
    while not stream.at_end() and not (braced and stream.at(RBRACE)):
        rules.append(_parse_access_rule(stream, schema))
        if stream.at(SEMICOLON):
            stream.take()
    if braced:
        stream.expect(RBRACE)
        if not stream.at_end():
            raise stream.error(
                f"expected end of input after '}}', got {stream.peek().describe()}"
            )
    return AccessSchema(schema, rules)


def _parse_access_rule(stream: TokenStream, schema: DatabaseSchema) -> AccessRule:
    name = stream.expect(IDENT, "a relation name")
    if name.text not in schema:
        raise stream.error(f"unknown relation {name.text!r}", name)
    rel = schema.relation(name.text)
    if stream.at(COLON):
        return _parse_positional_rule(stream, rel, name)
    return _parse_attribute_rule(stream, rel, name)


def _parse_attribute_rule(
    stream: TokenStream, rel: RelationSchema, name: Token
) -> AccessRule:
    stream.expect(LPAREN)
    inputs: list[str] = []
    if stream.at(LBRACE):  # the '{}' empty-input marker of AccessRule.__str__
        stream.take()
        stream.expect(RBRACE)
    else:
        while not stream.at(ARROW):
            inputs.append(_attribute(stream, rel).text)
            if stream.at(COMMA):
                stream.take()
            else:
                break
    stream.expect(ARROW)
    # Everything after '->' is a comma-list whose final element is the
    # numeric bound; any preceding attribute names are embedded outputs.
    outputs: list[str] = []
    while True:
        if stream.at(NUMBER):
            bound = stream.take()
            break
        outputs.append(_attribute(stream, rel).text)
        stream.expect(COMMA, "',' and then the numeric bound")
    stream.expect(RPAREN)
    return _build_rule(stream, name, rel.name, inputs, outputs, bound)


def _parse_positional_rule(
    stream: TokenStream, rel: RelationSchema, name: Token
) -> AccessRule:
    stream.expect(COLON)
    inputs = [rel.attributes[p] for p in _position_list(stream, rel)]
    stream.expect(ARROW)
    outputs: list[str] = []
    if stream.at(STAR):
        stream.take()
    else:
        positions = _position_list(stream, rel)
        if not positions:
            raise stream.error("embedded rule needs at least one output position")
        outputs = [rel.attributes[p] for p in positions]
    keyword = stream.expect(IDENT, "the keyword 'bound'")
    if keyword.text != "bound":
        raise stream.error(f"expected the keyword 'bound', got {keyword.text!r}", keyword)
    bound = stream.expect(NUMBER, "a numeric bound")
    return _build_rule(stream, name, rel.name, inputs, outputs, bound)


def _position_list(stream: TokenStream, rel: RelationSchema) -> list[int]:
    stream.expect(LPAREN)
    positions: list[int] = []
    if not stream.at(RPAREN):
        while True:
            token = stream.expect(NUMBER, "a 0-based attribute position")
            value = token.value
            if not isinstance(value, int) or not 0 <= value < rel.arity:
                raise stream.error(
                    f"position {token.text} is out of range for relation "
                    f"{rel.name!r} of arity {rel.arity}",
                    token,
                )
            positions.append(value)
            if not stream.at(COMMA):
                break
            stream.take()
    stream.expect(RPAREN)
    return positions


def _attribute(stream: TokenStream, rel: RelationSchema) -> Token:
    token = stream.expect(IDENT, "an attribute name")
    if not rel.has_attribute(token.text):
        raise stream.error(
            f"relation {rel.name!r} has no attribute {token.text!r} "
            f"(attributes: {', '.join(rel.attributes)})",
            token,
        )
    return token


def _build_rule(
    stream: TokenStream,
    name: Token,
    relation: str,
    inputs: list[str],
    outputs: list[str],
    bound: Token,
) -> AccessRule:
    # Check the bound here so the error points at the bound literal;
    # remaining SchemaErrors (duplicate/overlapping attributes) anchor at
    # the rule name below.
    try:
        _check_bound(bound.value)
    except SchemaError as exc:
        raise stream.error(str(exc), bound) from None
    try:
        if outputs:
            return EmbeddedAccessRule(relation, inputs, outputs, bound.value)
        if not inputs:
            return FullAccessRule(relation, bound.value)
        return AccessRule(relation, inputs, bound.value)
    except SchemaError as exc:
        raise stream.error(str(exc), name) from None

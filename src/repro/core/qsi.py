"""The QSI decision problem: scale independence on *all* databases.

``QSI(Q, A, parameters)`` asks whether ``Q`` is scale independent under
access schema ``A`` on every database, once the parameter variables are
supplied.  For conjunctive queries (and unions thereof) this is decided by
the controllability fixpoint: ``Q`` is scale independent iff it is
controlled, in which case :func:`repro.core.plans.compile_plan` produces a
witnessing plan.  For full first-order logic the problem is undecidable
(Fan, Geerts & Libkin 2014, Theorem 3.1), so FO inputs raise
:class:`repro.errors.UndecidableError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.access_schema import AccessSchema
from repro.core.controllability import Coverage, coverage
from repro.errors import UndecidableError
from repro.logic.ast import Formula
from repro.logic.cq import ConjunctiveQuery
from repro.logic.fo import FirstOrderQuery
from repro.logic.ucq import UnionOfConjunctiveQueries


@dataclass(frozen=True)
class QSIResult:
    """The verdict for one QSI instance."""

    scale_independent: bool
    coverages: tuple[Coverage, ...]
    reason: str

    def __bool__(self) -> bool:
        return self.scale_independent


def decide_qsi(
    query,
    access: AccessSchema,
    parameters: Iterable[object] = (),
) -> QSIResult:
    """Decide QSI for ``query`` under ``access``.

    Accepts a :class:`ConjunctiveQuery` or a
    :class:`UnionOfConjunctiveQueries`; raises
    :class:`UndecidableError` for first-order queries or bare formulas.
    """
    if isinstance(query, (FirstOrderQuery, Formula)):
        raise UndecidableError(
            "QSI is undecidable for first-order queries "
            "(Fan, Geerts & Libkin 2014, Theorem 3.1); "
            "restrict to conjunctive queries or unions thereof"
        )
    if isinstance(query, ConjunctiveQuery):
        disjuncts: tuple[ConjunctiveQuery, ...] = (query,)
    elif isinstance(query, UnionOfConjunctiveQueries):
        disjuncts = query.disjuncts
    else:
        raise TypeError(f"cannot decide QSI for {type(query).__name__}")

    # Materialize: a one-shot iterable must survive one pass per disjunct.
    parameters = tuple(parameters)
    coverages = tuple(coverage(q, access, parameters) for q in disjuncts)
    failing = [
        (q, c) for q, c in zip(disjuncts, coverages) if not c.controlled
    ]
    if failing:
        q, c = failing[0]
        reason = (
            f"{q} is not controlled: variables "
            + ", ".join(f"?{v}" for v in c.uncovered)
            + " are unreachable through the access rules"
        )
        return QSIResult(False, coverages, reason)
    return QSIResult(
        True,
        coverages,
        "every disjunct is controlled; a bounded fetch/join plan exists",
    )

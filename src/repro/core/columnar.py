"""The columnar batch representation of the physical executor.

Up to PR 7 the executor's unit of work was a ``list[dict[Variable,
object]]`` -- one dict per partial assignment, copied at every level.
Profiles (``explain_analyze`` with per-operator wall time) show that on
the bounded workloads the paper targets, where *tuples accessed* is flat
by construction, nearly all remaining wall time is that dict churn: per
row the old pipeline allocated a dict, rehashed every variable, and
threw the dict away one level later.

This module replaces the representation.  A :class:`ColumnarBatch`
stores one Python list per *variable slot* -- parallel columns, all of
:attr:`~ColumnarBatch.length` -- with the variable-to-slot mapping
compiled once per plan into a :class:`SlotTable` (during pipeline
lowering, see :func:`repro.core.executor.build_pipeline`).  Operators
then work column-at-a-time: a fetch builds its key column with one
``zip``, expands matches into a ``take`` list of source indices plus
fresh columns for newly bound variables, and gathers only the columns a
*live* downstream operator still reads (dead-column elimination -- the
keep-sets are computed at lowering time).  No per-row dict exists
anywhere on the hot path.

:class:`SignedColumnarBatch` pairs a batch with per-row derivation signs
(+1 gained, -1 lost) -- the delta faces (``run_delta``/``run_old``) of
:mod:`repro.incremental` run over it, so the telescoping delta rule is
vectorized over the same representation as the standard path.

:class:`PipelineCache` is the LRU home of lowered pipelines: bounded,
stats-instrumented, keyed by plan identity -- the same cache discipline
as the Engine's :class:`repro.api.cache.PlanCache` (which this module
cannot import: ``repro.api`` sits above ``repro.core``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.logic.terms import Variable

Row = tuple[object, ...]
Assignment = dict[Variable, object]

__all__ = [
    "SlotTable",
    "ColumnarBatch",
    "SignedColumnarBatch",
    "PipelineCache",
    "PipelineCacheStats",
]


class SlotTable:
    """An immutable variable -> column-slot mapping, compiled once per
    plan: the schema every :class:`ColumnarBatch` of one pipeline shares,
    so operators resolve a variable to a list index instead of hashing it
    per row."""

    __slots__ = ("variables", "index")

    def __init__(self, variables: Iterable[Variable]):
        self.variables: tuple[Variable, ...] = tuple(dict.fromkeys(variables))
        self.index: dict[Variable, int] = {
            v: i for i, v in enumerate(self.variables)
        }

    def __len__(self) -> int:
        return len(self.variables)

    def __contains__(self, variable: object) -> bool:
        return variable in self.index

    def __iter__(self):
        return iter(self.variables)

    def slot(self, variable: Variable) -> int:
        return self.index[variable]

    def extend(self, variables: Iterable[Variable]) -> "SlotTable":
        """A table with ``variables`` appended (ignoring ones already
        present); ``self`` when nothing is new."""
        fresh = [v for v in variables if v not in self.index]
        if not fresh:
            return self
        return SlotTable(self.variables + tuple(fresh))

    def __repr__(self) -> str:
        names = ", ".join(f"?{v}" for v in self.variables)
        return f"SlotTable({names})"


#: Shared empty-key singleton: a keyless fetch broadcasts one () key per
#: source row, so the key column is the same object for every batch.
EMPTY_KEY: Row = ()


class ColumnarBatch:
    """A batch of partial assignments in columnar form.

    ``columns`` is aligned with ``slots.variables``: entry ``i`` is a
    list of :attr:`length` values for variable ``slots.variables[i]``, or
    ``None`` when that variable is unbound (not yet fetched) or dead
    (eliminated because no later operator reads it).  Row ``r`` of the
    batch is the classic assignment ``{v: columns[slot(v)][r]}`` over the
    non-``None`` columns -- :meth:`to_assignments` materializes exactly
    that view for interop and tests; the hot path never does.
    """

    __slots__ = ("slots", "columns", "length")

    def __init__(
        self,
        slots: SlotTable,
        columns: list[list | None],
        length: int,
    ):
        self.slots = slots
        self.columns = columns
        self.length = length

    # -- construction ------------------------------------------------------

    @classmethod
    def seed(cls, slots: SlotTable, assignment: Mapping[Variable, object]):
        """The length-1 batch an execution starts from: parameter values
        in their slots, every other column unbound."""
        return cls(
            slots,
            [[assignment[v]] if v in assignment else None for v in slots.variables],
            1,
        )

    @classmethod
    def empty(cls, slots: SlotTable) -> "ColumnarBatch":
        return cls(slots, [None] * len(slots.variables), 0)

    @classmethod
    def from_assignments(
        cls,
        assignments: Sequence[Mapping[Variable, object]],
        slots: SlotTable | None = None,
    ) -> "ColumnarBatch":
        """Transpose row-major assignments into a batch (slots inferred
        in first-seen key order unless given) -- the interop path for
        tests and hand-built operators, not the pipeline."""
        if slots is None:
            seen: dict[Variable, None] = {}
            for a in assignments:
                seen.update(dict.fromkeys(a))
            slots = SlotTable(seen)
        columns: list[list | None] = []
        for v in slots.variables:
            if all(v in a for a in assignments) and assignments:
                columns.append([a[v] for a in assignments])
            elif any(v in a for a in assignments):
                raise ValueError(
                    f"ragged batch: ?{v} is bound in some assignments "
                    f"but not others (a column is all-or-nothing)"
                )
            else:
                columns.append(None)
        return cls(slots, columns, len(assignments))

    # -- row-major views ---------------------------------------------------

    def to_assignments(self) -> list[Assignment]:
        """The batch as classic per-row assignment dicts (bound columns
        only) -- the inverse of :meth:`from_assignments`."""
        bound = [
            (v, col)
            for v, col in zip(self.slots.variables, self.columns)
            if col is not None
        ]
        return [
            {v: col[r] for v, col in bound} for r in range(self.length)
        ]

    # -- column access -----------------------------------------------------

    def column(self, variable: Variable) -> list:
        """The bound column of ``variable``; KeyError when the variable is
        absent or unbound (mirrors the old per-dict ``assignment[var]``)."""
        col = self.columns[self.slots.index[variable]]
        if col is None:
            raise KeyError(variable)
        return col

    def column_or_none(self, variable: Variable) -> list | None:
        idx = self.slots.index.get(variable)
        return None if idx is None else self.columns[idx]

    def bound_variables(self) -> tuple[Variable, ...]:
        return tuple(
            v
            for v, col in zip(self.slots.variables, self.columns)
            if col is not None
        )

    def select(self, rows: Sequence[int]) -> "ColumnarBatch":
        """The sub-batch at ``rows`` (a gather over every bound column)."""
        return ColumnarBatch(
            self.slots,
            [
                None if col is None else [col[r] for r in rows]
                for col in self.columns
            ],
            len(rows),
        )

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        bound = ", ".join(f"?{v}" for v in self.bound_variables())
        return f"ColumnarBatch({self.length} rows; bound: {bound or 'none'})"


class SignedColumnarBatch:
    """A :class:`ColumnarBatch` whose rows carry derivation signs -- the
    vectorized twin of the old ``list[(assignment, sign)]`` that the
    delta operator faces (``run_delta`` / ``run_old``) consume and
    produce."""

    __slots__ = ("batch", "signs")

    def __init__(self, batch: ColumnarBatch, signs: list[int]):
        self.batch = batch
        self.signs = signs

    @classmethod
    def from_pairs(
        cls,
        pairs: Sequence[tuple[Mapping[Variable, object], int]],
        slots: SlotTable | None = None,
    ) -> "SignedColumnarBatch":
        batch = ColumnarBatch.from_assignments([a for a, _ in pairs], slots)
        return cls(batch, [sign for _, sign in pairs])

    def to_pairs(self) -> list[tuple[Assignment, int]]:
        return list(zip(self.batch.to_assignments(), self.signs))

    @classmethod
    def empty(cls, slots: SlotTable) -> "SignedColumnarBatch":
        return cls(ColumnarBatch.empty(slots), [])

    def __len__(self) -> int:
        return self.batch.length

    def __repr__(self) -> str:
        gained = sum(1 for s in self.signs if s > 0)
        return (
            f"SignedColumnarBatch({self.batch.length} rows, "
            f"+{gained}/-{self.batch.length - gained})"
        )


@dataclass(frozen=True)
class PipelineCacheStats:
    """Counters of a :class:`PipelineCache` (same shape as the Engine's
    plan-cache stats): hits/misses/evictions plus current occupancy."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int | None


class PipelineCache:
    """A bounded, thread-safe LRU of lowered pipelines, keyed by plan
    identity.

    Plans hash and compare by identity (no ``__eq__``), and the cache
    holds strong references until eviction -- so a key can never alias a
    *different* plan whose ``id()`` happened to be reused, the hazard an
    ``id(plan)``-keyed dict would have.  ``maxsize=None`` disables the
    bound (every lowered pipeline is retained).  The same single-lock
    LRU discipline as :class:`repro.api.cache.PlanCache`; there is no
    single-flight here because lowering is pure and cheap -- two racing
    lowers of one plan build identical pipelines and the second write
    wins harmlessly.
    """

    __slots__ = ("_maxsize", "_lock", "_entries", "_hits", "_misses", "_evictions")

    def __init__(self, maxsize: int | None = 256):
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be >= 1 or None, got {maxsize}")
        self._maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def maxsize(self) -> int | None:
        return self._maxsize

    def get_or_build(self, plan, build: Callable):
        """The cached lowering of ``plan``, building (and caching) it on
        first sight; least-recently-used entries are evicted past
        ``maxsize``."""
        lock = self._lock
        with lock:
            entry = self._entries.get(plan)
            if entry is not None:
                self._hits += 1
                self._entries.move_to_end(plan)
                return entry
            self._misses += 1
        # Build outside the lock: lowering is pure, so a racing build of
        # the same plan is redundant work, never a correctness hazard.
        entry = build(plan)
        with lock:
            self._entries[plan] = entry
            self._entries.move_to_end(plan)
            if self._maxsize is not None:
                while len(self._entries) > self._maxsize:
                    self._entries.popitem(last=False)
                    self._evictions += 1
        return entry

    def resize(self, maxsize: int | None) -> None:
        """Change the bound, evicting immediately if shrinking."""
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be >= 1 or None, got {maxsize}")
        with self._lock:
            self._maxsize = maxsize
            if maxsize is not None:
                while len(self._entries) > maxsize:
                    self._entries.popitem(last=False)
                    self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> PipelineCacheStats:
        with self._lock:
            return PipelineCacheStats(
                self._hits,
                self._misses,
                self._evictions,
                len(self._entries),
                self._maxsize,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

"""Batch-at-a-time physical execution of scale-independent plans.

:mod:`repro.core.plans` is the *planner*: :func:`~repro.core.plans.compile_plan`
turns a controlled conjunctive query into an ordered sequence of
fetch/probe steps plus a head projection.  This module is the *executor*:
it lowers those steps into a pipeline of physical operators that process
**batches** of binding dicts iteratively -- no Python recursion, and one
bulk database call (:meth:`~repro.relational.instance.Database.lookup_many`
/ :meth:`~repro.relational.instance.Database.contains_many`) per operator
instead of one :meth:`lookup`/:meth:`contains` per partial assignment.

The operators:

* :class:`FilterOp` -- enforce the compile-time equality constraints that
  involve plan parameters (a parameter equated to a constant or to another
  parameter) and propagate parameter values onto their equality-class
  representatives.  Only appears when the query's equalities demand it.
* :class:`FetchOp` -- one :meth:`lookup_many` for the whole batch, keyed on
  the positions that are statically known to be bound at this point of the
  pipeline, then join each group of rows back to its source assignment
  (consistency-checked for repeated variables; embedded access rules
  additionally filter on residual bound positions and deduplicate output
  projections, mirroring their ``R(X -> Y, N)`` semantics).
* :class:`ProbeOp` -- verify a fully-bound atom for the whole batch with
  one :meth:`contains_many` call.
* :class:`ProjectDedupOp` -- project the surviving assignments onto the
  head terms and deduplicate, preserving first-derivation order.

Because the bulk access methods resolve each *distinct* key once per
batch, batched execution touches at most -- and on skewed workloads far
fewer than -- the tuples the per-assignment reference path touches; both
stay within the plan's :attr:`~repro.core.plans.Plan.fanout_bound`.

:func:`execute_per_tuple` keeps the pre-pipeline recursive per-assignment
executor alive as the reference semantics: differential tests assert the
pipeline agrees with it, and :mod:`repro.bench` measures the speedup of
batched over per-tuple execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.core.access_schema import EmbeddedAccessRule
from repro.core.plans import Plan, ProbeStep
from repro.logic.ast import Atom, _as_variable
from repro.logic.evaluation import _bound_pattern, _extend, row_matches
from repro.logic.terms import Constant, Term, Variable

Row = tuple[object, ...]
Assignment = dict[Variable, object]
Batch = list[Assignment]


def _term_value(term: Term, assignment: Mapping[Variable, object]) -> object:
    return term.value if isinstance(term, Constant) else assignment[term]


@dataclass(frozen=True)
class FilterOp:
    """Filter a batch on compile-time-known equality ``conditions`` (pairs
    of terms whose values must agree) and copy parameter values onto their
    equality-class representatives (``binds``: source -> target variable).
    """

    conditions: tuple[tuple[Term, Term], ...] = ()
    binds: tuple[tuple[Variable, Variable], ...] = ()

    def __str__(self) -> str:
        parts = [f"{a} = {b}" for a, b in self.conditions]
        parts += [f"?{target} := ?{source}" for source, target in self.binds]
        return "filter " + ", ".join(parts)

    def run(self, db, batch: Batch) -> Batch:
        out: Batch = []
        for assignment in batch:
            if any(
                _term_value(a, assignment) != _term_value(b, assignment)
                for a, b in self.conditions
            ):
                continue
            if self.binds:
                assignment = dict(assignment)
                for source, target in self.binds:
                    assignment[target] = assignment[source]
            out.append(assignment)
        return out


@dataclass(frozen=True)
class FetchOp:
    """Fetch ``atom``'s matching tuples for a whole batch with one
    :meth:`lookup_many` keyed on ``key_positions``, then join each row
    group back to its source assignment.

    ``check_positions`` are bound positions outside the lookup key (they
    arise under embedded access rules, whose access path is keyed on the
    rule inputs only); rows that disagree there are filtered out.
    ``bind_positions`` are the variable positions the fetch newly binds --
    a repeated new variable must bind consistently across its positions.
    ``dedup_positions`` (embedded rules only) deduplicate the fetched
    output projections per source assignment, matching the rule's
    "at most N distinct Y-projections" contract.
    """

    atom: Atom
    key_positions: tuple[int, ...]
    check_positions: tuple[int, ...]
    bind_positions: tuple[int, ...]
    dedup_positions: tuple[int, ...] | None = None

    def __post_init__(self):
        # Pre-resolve every term access so the per-row loops below touch
        # no Atom/Term machinery (frozen dataclass: set via object).
        terms = self.atom.terms
        object.__setattr__(
            self,
            "_key_consts",
            tuple(
                (p, terms[p].value)
                for p in self.key_positions
                if isinstance(terms[p], Constant)
            ),
        )
        object.__setattr__(
            self,
            "_key_vars",
            tuple(
                (p, terms[p])
                for p in self.key_positions
                if not isinstance(terms[p], Constant)
            ),
        )
        object.__setattr__(
            self,
            "_check_items",
            tuple(
                (p, isinstance(terms[p], Constant),
                 terms[p].value if isinstance(terms[p], Constant) else terms[p])
                for p in self.check_positions
            ),
        )
        object.__setattr__(
            self, "_bind_items", tuple((p, terms[p]) for p in self.bind_positions)
        )

    def __str__(self) -> str:
        binds = ", ".join(f"?{self.atom.terms[p]}" for p in self.bind_positions)
        return f"fetch {self.atom} [key {self.key_positions}]" + (
            f" binding {binds}" if binds else ""
        )

    def run(self, db, batch: Batch) -> Batch:
        key_consts = self._key_consts
        key_vars = self._key_vars
        patterns = []
        for assignment in batch:
            pattern = dict(key_consts)
            for p, var in key_vars:
                pattern[p] = assignment[var]
            patterns.append(pattern)
        groups = db.lookup_many(self.atom.relation, patterns)
        check_items = self._check_items
        bind_items = self._bind_items
        dedup_positions = self.dedup_positions
        out: Batch = []
        append = out.append
        for assignment, rows in zip(batch, groups):
            if not rows:
                continue
            seen: set[Row] | None = set() if dedup_positions is not None else None
            for row in rows:
                ok = True
                for p, is_const, ref in check_items:
                    if (ref if is_const else assignment[ref]) != row[p]:
                        ok = False
                        break
                if not ok:
                    continue
                if seen is not None:
                    projection = tuple(row[p] for p in dedup_positions)
                    if projection in seen:
                        continue
                    seen.add(projection)
                extended = dict(assignment)
                for p, term in bind_items:
                    if term in extended:
                        if extended[term] != row[p]:
                            ok = False
                            break
                    else:
                        extended[term] = row[p]
                if ok:
                    append(extended)
        return out


@dataclass(frozen=True)
class ProbeOp:
    """Verify the fully-bound ``atom`` for a whole batch with one
    :meth:`contains_many` membership call."""

    atom: Atom

    def __post_init__(self):
        object.__setattr__(
            self,
            "_items",
            tuple(
                (isinstance(t, Constant), t.value if isinstance(t, Constant) else t)
                for t in self.atom.terms
            ),
        )

    def __str__(self) -> str:
        return f"probe {self.atom}"

    def run(self, db, batch: Batch) -> Batch:
        if not batch:
            return batch
        items = self._items
        rows = [
            tuple(ref if is_const else assignment[ref] for is_const, ref in items)
            for assignment in batch
        ]
        verdicts = db.contains_many(self.atom.relation, rows)
        return [a for a, present in zip(batch, verdicts) if present]


@dataclass(frozen=True)
class ProjectDedupOp:
    """Project each assignment onto the head terms and deduplicate,
    preserving first-derivation order.  Terminal operator: its output
    batch holds answer rows, not assignments."""

    head_terms: tuple[Term, ...]

    def __post_init__(self):
        object.__setattr__(
            self,
            "_items",
            tuple(
                (isinstance(t, Constant), t.value if isinstance(t, Constant) else t)
                for t in self.head_terms
            ),
        )

    def __str__(self) -> str:
        head = ", ".join(
            str(t) if isinstance(t, Constant) else f"?{t}" for t in self.head_terms
        )
        return f"project/dedup ({head})"

    def run(self, db, batch: Batch) -> list[Row]:
        items = self._items
        answers: dict[Row, None] = {}
        for assignment in batch:
            answers.setdefault(
                tuple(ref if is_const else assignment[ref] for is_const, ref in items),
                None,
            )
        return list(answers)


Operator = FilterOp | FetchOp | ProbeOp | ProjectDedupOp


def _parameter_constraints(
    plan: Plan,
) -> tuple[
    tuple[tuple[Term, Term], ...],
    tuple[tuple[Variable, Variable], ...],
    set[Variable],
]:
    """The equality constraints ``plan``'s parameters carry, and the set of
    representative variables they leave bound.

    A parameter whose equality class collapsed to a constant becomes a
    value check; two parameters in the same class must agree; a parameter
    whose representative is a *different* variable has its value copied
    onto that representative (the substituted atoms mention only
    representatives).
    """
    subst = plan.query.equality_substitution() or {}
    conditions: list[tuple[Term, Term]] = []
    binds: list[tuple[Variable, Variable]] = []
    bound: set[Variable] = set()
    first_with_rep: dict[Variable, Variable] = {}
    for v in plan.parameters:
        rep = subst.get(v, v)
        if isinstance(rep, Constant):
            conditions.append((v, rep))
            continue
        if rep in first_with_rep:
            conditions.append((first_with_rep[rep], v))
            continue
        first_with_rep[rep] = v
        if rep != v:
            binds.append((v, rep))
        bound.add(rep)
    return tuple(conditions), tuple(binds), bound


def build_pipeline(plan: Plan) -> tuple[Operator, ...]:
    """Lower ``plan``'s fetch/probe steps into the physical operator
    pipeline.  The set of bound variables before each step is known at
    compile time, so every operator's key/check/bind positions are static.
    """
    if not plan.satisfiable:
        return ()
    conditions, binds, bound = _parameter_constraints(plan)
    ops: list[Operator] = []
    if conditions or binds:
        ops.append(FilterOp(conditions, binds))
    for step in plan.steps:
        if isinstance(step, ProbeStep):
            ops.append(ProbeOp(step.atom))
            continue
        terms = step.atom.terms
        determined = tuple(
            p
            for p, t in enumerate(terms)
            if isinstance(t, Constant) or t in bound
        )
        if isinstance(step.rule, EmbeddedAccessRule):
            key = step.input_positions
            check = tuple(p for p in determined if p not in key)
            dedup = step.output_positions
            bindable = step.output_positions
        else:
            key = determined
            check = ()
            dedup = None
            bindable = tuple(range(len(terms)))
        bind = tuple(
            p
            for p in bindable
            if isinstance(terms[p], Variable) and terms[p] not in bound
        )
        ops.append(FetchOp(step.atom, key, check, bind, dedup))
        bound.update(step.binds)
    ops.append(ProjectDedupOp(plan.head_terms))
    return tuple(ops)


def pipeline_for(plan: Plan) -> tuple[Operator, ...]:
    """The memoized pipeline for ``plan`` (lowered once, reused by every
    execution; plans are immutable so the cache can never go stale)."""
    ops = plan._pipeline
    if ops is None:
        ops = build_pipeline(plan)
        plan._pipeline = ops
    return ops


def merge_parameter_values(
    parameters: Mapping[object, object] | None, kwargs: Mapping[str, object]
) -> Assignment:
    """Merge a parameter mapping and keyword arguments into one
    variable-keyed assignment (kwargs win on collision).  Shared by
    :meth:`Plan.execute`, the executor entry points and the Engine facade.
    """
    values: Assignment = {}
    for source in (parameters or {}), kwargs:
        for key, value in source.items():
            values[_as_variable(key)] = value
    return values


def _seed_assignment(
    plan: Plan,
    parameters: Mapping[object, object] | None,
    kwargs: Mapping[str, object],
) -> Assignment:
    """Validate the supplied parameter values against the plan's declared
    parameters and return the initial assignment."""
    values = merge_parameter_values(parameters, kwargs)
    declared = set(plan.parameters)
    extra = [v for v in values if v not in declared]
    if extra:
        raise ValueError(
            "bindings for variables that are not plan parameters "
            "(recompile with them as parameters to constrain the answer): "
            + ", ".join(f"?{v}" for v in extra)
        )
    missing = [v for v in plan.parameters if v not in values]
    if missing:
        raise ValueError(
            "missing plan parameters: " + ", ".join(f"?{v}" for v in missing)
        )
    return {v: values[v] for v in plan.parameters}


def execute_plan(
    plan: Plan,
    db,
    parameters: Mapping[object, object] | None = None,
    **kwargs: object,
) -> tuple[Row, ...]:
    """Run ``plan`` on ``db`` through the batched operator pipeline and
    return the deduplicated answer tuples.

    Parameter values may be passed as a mapping (keys are variables or
    their names) and/or as keyword arguments.
    """
    seed = _seed_assignment(plan, parameters, kwargs)
    if not plan.satisfiable:
        return ()
    batch: list = [seed]
    for op in pipeline_for(plan):
        batch = op.run(db, batch)
    return tuple(batch)


@dataclass(frozen=True)
class OperatorProfile:
    """Measured behaviour of one operator during one execution."""

    operator: str
    rows_in: int
    rows_out: int
    tuples_accessed: int
    indexed_lookups: int
    full_scans: int


@dataclass(frozen=True)
class PlanProfile:
    """One plan execution's answers plus per-operator row counts and
    access accounting (the payload of ``explain_analyze``)."""

    plan: Plan
    rows: tuple[Row, ...]
    operators: tuple[OperatorProfile, ...]

    @property
    def tuples_accessed(self) -> int:
        return sum(op.tuples_accessed for op in self.operators)

    def __str__(self) -> str:
        lines = []
        params = ", ".join(f"?{v}" for v in self.plan.parameters) or "none"
        lines.append(f"parameters: {params}")
        for i, op in enumerate(self.operators, 1):
            lines.append(
                f"{i}. {op.operator}  "
                f"[rows {op.rows_in} -> {op.rows_out}, "
                f"{op.tuples_accessed} tuples, "
                f"{op.indexed_lookups} lookups, {op.full_scans} scans]"
            )
        lines.append(
            f"answers: {len(self.rows)} rows, "
            f"{self.tuples_accessed} tuples accessed "
            f"(bound {self.plan.fanout_bound})"
        )
        return "\n".join(lines)


def profile_plan(
    plan: Plan,
    db,
    parameters: Mapping[object, object] | None = None,
    **kwargs: object,
) -> PlanProfile:
    """Like :func:`execute_plan`, but record per-operator row counts and
    access-statistics deltas along the way."""
    seed = _seed_assignment(plan, parameters, kwargs)
    if not plan.satisfiable:
        return PlanProfile(plan, (), ())
    profiles: list[OperatorProfile] = []
    batch: list = [seed]
    for op in pipeline_for(plan):
        before = db.stats.snapshot()
        out = op.run(db, batch)
        delta = db.stats.since(before)
        profiles.append(
            OperatorProfile(
                str(op),
                len(batch),
                len(out),
                delta.tuples_accessed,
                delta.indexed_lookups,
                delta.full_scans,
            )
        )
        batch = out
    return PlanProfile(plan, tuple(batch), tuple(profiles))


# -- the per-tuple reference path ----------------------------------------


def execute_per_tuple(
    plan: Plan,
    db,
    parameters: Mapping[object, object] | None = None,
    **kwargs: object,
) -> tuple[Row, ...]:
    """The pre-pipeline reference executor: a recursive generator that
    issues one :meth:`lookup`/:meth:`contains` per partial assignment.

    Semantically identical to :func:`execute_plan`; kept as the baseline
    for differential tests and for :mod:`repro.bench`'s batched-vs-
    per-tuple comparison.  Not the production path.
    """
    seed = _seed_assignment(plan, parameters, kwargs)
    if not plan.satisfiable:
        return ()
    conditions, binds, _ = _parameter_constraints(plan)
    for a, b in conditions:
        if _term_value(a, seed) != _term_value(b, seed):
            return ()
    for source, target in binds:
        seed[target] = seed[source]
    answers: dict[Row, None] = {}
    for final in _run_per_tuple(plan, db, 0, seed):
        answers.setdefault(
            tuple(_term_value(t, final) for t in plan.head_terms), None
        )
    return tuple(answers)


def _run_per_tuple(
    plan: Plan, db, i: int, assignment: Assignment
) -> Iterator[Assignment]:
    if i == len(plan.steps):
        yield assignment
        return
    step = plan.steps[i]
    if isinstance(step, ProbeStep):
        row = tuple(_term_value(t, assignment) for t in step.atom.terms)
        if db.contains(step.atom.relation, row):
            yield from _run_per_tuple(plan, db, i + 1, assignment)
        return

    atom = step.atom
    if isinstance(step.rule, EmbeddedAccessRule):
        # The access path is keyed on the rule's inputs only; other bound
        # positions are filtered after the fetch, and only the rule's
        # outputs become bound (deduplicated projections).
        pattern = {
            p: _term_value(atom.terms[p], assignment)
            for p in step.input_positions
        }
        seen: set[Row] = set()
        for row in db.lookup(atom.relation, pattern):
            if not row_matches(atom, row, assignment):
                continue
            projection = tuple(row[p] for p in step.output_positions)
            if projection in seen:
                continue
            seen.add(projection)
            extended = dict(assignment)
            consistent = True
            for p in step.output_positions:
                term = atom.terms[p]
                if isinstance(term, Constant):
                    continue
                if term in extended and extended[term] != row[p]:
                    consistent = False
                    break
                extended[term] = row[p]
            if consistent:
                yield from _run_per_tuple(plan, db, i + 1, extended)
        return

    # Plain (or full) access rule: key the lookup on every position that
    # is already bound -- a superset of the rule's inputs, so the declared
    # bound still applies and the lookup is at least as selective as the
    # access path guarantees.
    pattern = _bound_pattern(atom, assignment)
    for row in db.lookup(atom.relation, pattern):
        extended = _extend(atom, row, assignment)
        if extended is not None:
            yield from _run_per_tuple(plan, db, i + 1, extended)

"""Columnar batch-at-a-time physical execution of scale-independent plans.

:mod:`repro.core.plans` is the *planner*: :func:`~repro.core.plans.compile_plan`
turns a controlled conjunctive query into an ordered sequence of
fetch/probe steps plus a head projection.  This module is the *executor*:
it lowers those steps into a pipeline of physical operators over a
**columnar** batch representation (:class:`~repro.core.columnar.ColumnarBatch`:
one Python list per variable slot, the variable-to-slot mapping compiled
once per plan into a :class:`~repro.core.columnar.SlotTable`).  No
per-row dict exists on the hot path: operators resolve variables to list
indexes at lowering time, build whole key columns with one ``zip``, and
expand join matches as a ``take`` list of source indices plus fresh
columns for newly bound variables.  Constants are interned at lowering
time (:mod:`repro.relational.interning`) so every lookup key hashes once
and compares by identity first.

The operators:

* :class:`FilterOp` -- enforce the compile-time equality constraints that
  involve plan parameters (a parameter equated to a constant or to another
  parameter) and propagate parameter values onto their equality-class
  representatives.  Only appears when the query's equalities demand it,
  and is fused into the seed on the hot path (:func:`execute_plan`
  evaluates it on the parameter dict before the first batch exists).
* :class:`FetchOp` -- one :meth:`lookup_keys` for the whole batch, keyed on
  the positions that are statically known to be bound at this point of the
  pipeline, then join each group of rows back to its source row
  (consistency-checked for repeated variables; embedded access rules
  additionally filter on residual bound positions and deduplicate output
  projections, mirroring their ``R(X -> Y, N)`` semantics).
* :class:`ProbeOp` -- verify a fully-bound atom for the whole batch with
  one :meth:`contains_rows` call.
* :class:`ProjectDedupOp` -- project the surviving rows onto the head
  terms and deduplicate, preserving first-derivation order.

Two lowering-time optimizations ride on the columnar form (both are
profile-driven: ``profile_plan`` / ``explain_analyze`` record per-operator
wall time, and the pre-columnar profiles showed the terminal
fetch-then-project pair dominated by row materialization):

* **dead-column elimination** -- a backward liveness pass assigns every
  operator the ``keep`` set of variables some later operator still reads;
  gathers skip dead columns entirely.
* **terminal fusion** -- a pipeline ending in fetch-then-project lowers to
  one :class:`_FusedFetchProject` on the hot path: head rows are emitted
  straight from the fetch's row groups, so the final batch is never
  materialized.  The unfused operator sequence is what :func:`pipeline_for`
  returns (tests, profiles and the delta driver see individual operators);
  the fused sequence lives on the :class:`Pipeline`'s ``fused`` attribute
  and is what :func:`execute_plan` runs.

Because the bulk access methods resolve each *distinct* key once per
batch, batched execution touches at most -- and on skewed workloads far
fewer than -- the tuples the per-assignment reference path touches; both
stay within the plan's :attr:`~repro.core.plans.Plan.fanout_bound`.

:func:`execute_per_tuple` keeps the pre-pipeline recursive per-assignment
executor alive as the reference semantics: differential tests assert the
pipeline agrees with it, and :mod:`repro.bench` measures the speedup of
batched over per-tuple execution.

Every execution runs inside an :class:`ExecutionContext` -- the database
handle, a private per-execution :class:`AccessStats` (charged alongside
the database's cumulative counters, so concurrent executions never
contaminate each other's deltas), a change-log watermark and, for
refreshes, the net change slice past it.  All entry points accept either
a raw :class:`~repro.relational.instance.Database` (a fresh context is
opened) or an existing context.

On top of the standard path, every data operator has a *delta* face for
incremental scale independence (:mod:`repro.incremental`, Section 5),
vectorized over :class:`~repro.core.columnar.SignedColumnarBatch` (a
batch plus per-row derivation signs):

* ``run_delta`` joins a batch against the in-memory change slice of the
  operator's relation instead of the stored data (zero tuples accessed);
* ``run_old`` evaluates against the pre-delta snapshot -- live lookups,
  corrected in memory by the slice.

:func:`execute_plan_delta` composes them into the standard delta rule:
for each operator level ``i`` with changes, levels ``< i`` run on the new
state, level ``i`` joins the change slice, levels ``> i`` run on the old
state -- so each affected derivation is produced (with its sign) exactly
once, one bulk database call per level, and the tuples accessed stay
within :func:`delta_fanout_bound`, a function of the slice size and the
access-rule bounds only.  :func:`execute_plan_counting` is the matching
initial pass: it returns per-answer derivation multiplicities, the state
that makes signed deltas composable under deletion.
"""

from __future__ import annotations

from dataclasses import dataclass
from sys import intern as _intern
from time import perf_counter
from typing import Iterator, Mapping, Sequence

from repro.core.access_schema import AccessRule, EmbeddedAccessRule
from repro.core.columnar import (
    EMPTY_KEY,
    ColumnarBatch,
    PipelineCache,
    PipelineCacheStats,
    SignedColumnarBatch,
    SlotTable,
)
from repro.core.plans import FetchStep, Plan, ProbeStep
from repro.errors import IncrementalError, SchemaError
from repro.logic.ast import Atom, _as_variable
from repro.logic.evaluation import _bound_pattern, _extend, row_matches
from repro.logic.terms import Constant, Term, Variable
from repro.relational.instance import AccessStats, NetDelta, _plain
from repro.relational.interning import intern_value

Row = tuple[object, ...]
Assignment = dict[Variable, object]


def _rewind_groups(
    groups: Sequence[tuple[Row, ...]],
    patterns: Sequence[Mapping[int, object]],
    net: Mapping[Row, int],
) -> tuple[tuple[Row, ...], ...]:
    """Correct current-state lookup ``groups`` back to the pre-delta
    snapshot: rows inserted since the watermark are dropped, rows deleted
    since it (and matching the pattern) are restored."""
    if not net:
        return tuple(groups)
    deleted = [row for row, sign in net.items() if sign < 0]
    adjusted: list[tuple[Row, ...]] = []
    for pattern, rows in zip(patterns, groups):
        rows = tuple(row for row in rows if net.get(row, 0) <= 0)
        restored = tuple(
            row
            for row in deleted
            if all(row[p] == _plain(v) for p, v in pattern.items())
        )
        adjusted.append(rows + restored)
    return tuple(adjusted)


def _rewind_key_groups(
    groups: Sequence[tuple[Row, ...]],
    positions: tuple[int, ...],
    keys: Sequence[Row],
    net: Mapping[Row, int],
) -> Sequence[tuple[Row, ...]]:
    """:func:`_rewind_groups` for the columnar key form: one shared
    ``positions`` tuple, one key per group."""
    if not net:
        return groups
    deleted = [row for row, sign in net.items() if sign < 0]
    adjusted: list[tuple[Row, ...]] = []
    for key, rows in zip(keys, groups):
        rows = tuple(row for row in rows if net.get(row, 0) <= 0)
        restored = tuple(
            row
            for row in deleted
            if all(row[p] == v for p, v in zip(positions, key))
        )
        adjusted.append(rows + restored)
    return adjusted


def _rewind_membership(
    rows: Sequence[Sequence[object]],
    net: Mapping[Row, int],
    probe,
) -> tuple[bool, ...]:
    """Pre-delta membership verdicts: rows the slice says nothing about
    are probed against the current state via ``probe``; the rest are
    answered from the slice alone (deleted since the watermark -> present
    then; inserted since -> absent then)."""
    if not net:
        return tuple(probe([tuple(row) for row in rows]))
    verdicts: list[bool | None] = []
    unknown: list[Row] = []
    for row in rows:
        row = tuple(row)
        sign = net.get(row)
        if sign is None:
            verdicts.append(None)
            unknown.append(row)
        else:
            verdicts.append(sign < 0)
    if unknown:
        probed = iter(probe(unknown))
        verdicts = [next(probed) if v is None else v for v in verdicts]
    return tuple(verdicts)


class ExecutionContext:
    """The per-execution state threaded through every operator.

    One context = one execution: it owns the execution's private
    :attr:`stats` (every access is charged here *and* in the database's
    cumulative :attr:`~repro.relational.instance.Database.stats`), the
    change-log :attr:`watermark` the execution is positioned at, and --
    for delta executions -- the net change slice past that watermark.
    Contexts are cheap and never shared across executions; that is what
    makes per-execution accounting exact under concurrent traffic.

    ``views`` maps materialized-view names to their states
    (:class:`repro.views.ViewState` or anything with the same
    ``lookup``/``lookup_keys``/``contains_rows`` surface): view-assisted
    plans (:mod:`repro.views`) read views through the ``view_*`` methods
    below, charged to this execution's :attr:`stats` only -- the database
    cumulative counters see base-table traffic exclusively.  For delta
    executions, view answer changes ride in :attr:`delta` under the view
    name, exactly like a base relation's slice.
    """

    __slots__ = (
        "db",
        "stats",
        "_watermark",
        "delta",
        "views",
        "_delta_rows",
        "_delta_index",
    )

    def __init__(
        self,
        db,
        stats: AccessStats | None = None,
        watermark: int | None = None,
        delta: NetDelta | None = None,
        caches: tuple[dict, dict] | None = None,
        views: Mapping[str, object] | None = None,
    ):
        self.db = db
        self.stats = AccessStats() if stats is None else stats
        self._watermark = watermark
        self.delta = delta
        self.views = views
        # Derived views of the slice (row tuples, per-position indexes).
        # ``caches`` lets consumers of one identical slice share them
        # across contexts (see ChangeLog.slice_caches); by default they
        # are private to this context and allocated lazily -- the
        # standard execute path never touches the slice.
        if caches is None:
            self._delta_rows: dict[str, tuple[tuple[Row, int], ...]] | None = None
            self._delta_index: (
                dict[tuple, dict[Row, list[tuple[Row, int]]]] | None
            ) = None
        else:
            self._delta_rows = caches[0]
            self._delta_index = caches[1]

    @property
    def watermark(self) -> int:
        """The change-log position this execution is positioned at
        (resolved lazily: the standard hot path never reads the log)."""
        mark = self._watermark
        if mark is None:
            mark = self.db.change_log.watermark
            self._watermark = mark
        return mark

    def __repr__(self) -> str:
        delta = sum(len(rows) for rows in (self.delta or {}).values())
        return (
            f"ExecutionContext(watermark={self.watermark}, "
            f"delta={delta} rows, {self.stats.tuples_accessed} tuples accessed)"
        )

    # -- live reads (charged to this execution and the database) ---------

    def lookup(self, relation: str, pattern: Mapping[int, object]) -> tuple[Row, ...]:
        return self.db.lookup(relation, pattern, self.stats)

    def lookup_many(
        self, relation: str, patterns: Sequence[Mapping[int, object]]
    ) -> tuple[tuple[Row, ...], ...]:
        return self.db.lookup_many(relation, patterns, self.stats)

    def lookup_keys(
        self, relation: str, positions: tuple[int, ...], keys: Sequence[Row]
    ) -> Sequence[tuple[Row, ...]]:
        """Bulk lookup in the columnar executor's native form: every key
        constrains the same (sorted) ``positions``, so the index is
        resolved once for the batch; distinct keys are fetched -- and
        accounted -- once, exactly like :meth:`lookup_many`."""
        return self.db.lookup_keys(relation, positions, keys, self.stats)

    def contains(self, relation: str, row: Sequence[object]) -> bool:
        return self.db.contains(relation, row, self.stats)

    def contains_many(
        self, relation: str, rows: Sequence[Sequence[object]]
    ) -> tuple[bool, ...]:
        return self.db.contains_many(relation, rows, self.stats)

    def contains_rows(
        self, relation: str, rows: Sequence[Row]
    ) -> tuple[bool, ...]:
        """Bulk membership for pre-shaped row tuples (the columnar probe
        builds them straight from batch columns); distinct rows are probed
        -- and accounted -- once, exactly like :meth:`contains_many`."""
        return self.db.contains_rows(relation, rows, self.stats)

    def scan(self, relation: str) -> tuple[Row, ...]:
        return self.db.scan(relation, self.stats)

    # -- the change slice ------------------------------------------------

    def delta_net(self, relation: str) -> Mapping[Row, int]:
        """The net signed changes of ``relation`` in this context's slice."""
        return (self.delta or {}).get(relation) or {}

    def delta_rows(self, relation: str) -> tuple[tuple[Row, int], ...]:
        """The slice of ``relation`` as ``(row, sign)`` pairs (memoized)."""
        cache = self._delta_rows
        if cache is None:
            cache = self._delta_rows = {}
        rows = cache.get(relation)
        if rows is None:
            rows = tuple(self.delta_net(relation).items())
            cache[relation] = rows
        return rows

    def delta_index(
        self, relation: str, positions: tuple[int, ...]
    ) -> dict[Row, list[tuple[Row, int]]]:
        """The slice of ``relation`` hash-indexed on ``positions`` -- the
        in-memory twin of the database's per-position indexes, so a delta
        join costs O(batch + slice) instead of their product (memoized per
        (relation, positions))."""
        key = (relation, positions)
        cache = self._delta_index
        if cache is None:
            cache = self._delta_index = {}
        index = cache.get(key)
        if index is None:
            index = {}
            for row, sign in self.delta_rows(relation):
                index.setdefault(tuple(row[p] for p in positions), []).append(
                    (row, sign)
                )
            self._delta_index[key] = index
        return index

    # -- pre-delta snapshot reads ----------------------------------------

    def lookup_many_old(
        self, relation: str, patterns: Sequence[Mapping[int, object]]
    ) -> tuple[tuple[Row, ...], ...]:
        """Bulk lookup against the *pre-delta* snapshot: the live index
        answers (accounted as usual), corrected in memory by the change
        slice -- tuples inserted since the watermark are dropped, tuples
        deleted since it are restored."""
        groups = self.db.lookup_many(relation, patterns, self.stats)
        return _rewind_groups(groups, patterns, self.delta_net(relation))

    def lookup_keys_old(
        self, relation: str, positions: tuple[int, ...], keys: Sequence[Row]
    ) -> Sequence[tuple[Row, ...]]:
        """:meth:`lookup_keys` against the pre-delta snapshot (live index
        answers corrected in memory by the change slice)."""
        groups = self.db.lookup_keys(relation, positions, keys, self.stats)
        return _rewind_key_groups(groups, positions, keys, self.delta_net(relation))

    def contains_many_old(
        self, relation: str, rows: Sequence[Row]
    ) -> tuple[bool, ...]:
        """Bulk membership against the pre-delta snapshot: rows the slice
        says nothing about are probed live; the rest are answered from the
        slice without touching the database."""
        return _rewind_membership(
            rows,
            self.delta_net(relation),
            lambda unknown: self.db.contains_many(relation, unknown, self.stats),
        )

    def contains_rows_old(
        self, relation: str, rows: Sequence[Row]
    ) -> tuple[bool, ...]:
        """:meth:`contains_rows` against the pre-delta snapshot."""
        return _rewind_membership(
            rows,
            self.delta_net(relation),
            lambda unknown: self.db.contains_rows(relation, unknown, self.stats),
        )

    # -- materialized-view reads ------------------------------------------

    def _view(self, name: str):
        """The state of the materialized view ``name``, or a clear error
        when the context was opened without view states (a view-assisted
        plan must be executed through the Engine, which prepares them)."""
        state = (self.views or {}).get(name)
        if state is None:
            raise SchemaError(
                f"plan reads materialized view {name!r} but the execution "
                f"context carries no state for it; execute view-assisted "
                f"plans through the Engine (or pass views= when opening "
                f"the ExecutionContext)"
            )
        return state

    def view_lookup(
        self, name: str, pattern: Mapping[int, object]
    ) -> tuple[Row, ...]:
        """All rows of view ``name`` matching ``pattern``, charged to this
        execution's stats (views live outside the database, so its
        cumulative counters are untouched)."""
        return self._view(name).lookup(pattern, self.stats)

    def view_lookup_many(
        self, name: str, patterns: Sequence[Mapping[int, object]]
    ) -> tuple[tuple[Row, ...], ...]:
        return self._view(name).lookup_many(patterns, self.stats)

    def view_lookup_keys(
        self, name: str, positions: tuple[int, ...], keys: Sequence[Row]
    ) -> Sequence[tuple[Row, ...]]:
        return self._view(name).lookup_keys(positions, keys, self.stats)

    def view_contains(self, name: str, row: Sequence[object]) -> bool:
        return self._view(name).contains(row, self.stats)

    def view_contains_many(
        self, name: str, rows: Sequence[Sequence[object]]
    ) -> tuple[bool, ...]:
        return self._view(name).contains_many(rows, self.stats)

    def view_contains_rows(
        self, name: str, rows: Sequence[Row]
    ) -> tuple[bool, ...]:
        return self._view(name).contains_rows(rows, self.stats)

    def view_lookup_many_old(
        self, name: str, patterns: Sequence[Mapping[int, object]]
    ) -> tuple[tuple[Row, ...], ...]:
        """Bulk view lookup against the pre-delta snapshot: the current
        view store, corrected in memory by the view's answer slice."""
        groups = self._view(name).lookup_many(patterns, self.stats)
        return _rewind_groups(groups, patterns, self.delta_net(name))

    def view_lookup_keys_old(
        self, name: str, positions: tuple[int, ...], keys: Sequence[Row]
    ) -> Sequence[tuple[Row, ...]]:
        groups = self._view(name).lookup_keys(positions, keys, self.stats)
        return _rewind_key_groups(groups, positions, keys, self.delta_net(name))

    def view_contains_many_old(
        self, name: str, rows: Sequence[Row]
    ) -> tuple[bool, ...]:
        return _rewind_membership(
            rows,
            self.delta_net(name),
            lambda unknown: self._view(name).contains_many(unknown, self.stats),
        )

    def view_contains_rows_old(
        self, name: str, rows: Sequence[Row]
    ) -> tuple[bool, ...]:
        return _rewind_membership(
            rows,
            self.delta_net(name),
            lambda unknown: self._view(name).contains_rows(unknown, self.stats),
        )


def _as_context(db) -> ExecutionContext:
    """Open a fresh context over ``db``, or pass an existing one through."""
    return db if isinstance(db, ExecutionContext) else ExecutionContext(db)


def _term_value(term: Term, assignment: Mapping[Variable, object]) -> object:
    return term.value if isinstance(term, Constant) else assignment[term]


def _resolve(term: Term) -> tuple[bool, object]:
    """A term as a lowered ``(is_const, ref)`` pair: the (interned)
    constant value, or the variable itself."""
    if isinstance(term, Constant):
        return (True, intern_value(term.value))
    return (False, term)


def _gather(batch: ColumnarBatch, rows: list[int], keep) -> ColumnarBatch:
    """``batch.select(rows)`` with dead-column elimination: columns whose
    variable is outside ``keep`` (when given) are dropped instead of
    gathered -- no later operator reads them."""
    columns: list[list | None] = []
    for v, col in zip(batch.slots.variables, batch.columns):
        if col is None or (keep is not None and v not in keep):
            columns.append(None)
        else:
            columns.append([col[r] for r in rows])
    return ColumnarBatch(batch.slots, columns, len(rows))


def _drop_dead(batch: ColumnarBatch, keep) -> ColumnarBatch:
    """``batch`` with dead columns dropped (no row copies)."""
    if keep is None:
        return batch
    columns = [
        col if col is None or v in keep else None
        for v, col in zip(batch.slots.variables, batch.columns)
    ]
    return ColumnarBatch(batch.slots, columns, batch.length)


@dataclass(frozen=True)
class FilterOp:
    """Filter a batch on compile-time-known equality ``conditions`` (pairs
    of terms whose values must agree) and copy parameter values onto their
    equality-class representatives (``binds``: source -> target variable).

    On the hot path this operator is fused away: :func:`execute_plan`
    evaluates the conditions and binds directly on the length-1 seed
    assignment before the first batch is built (see
    :attr:`Pipeline.prefilter`).  The columnar :meth:`run` face remains
    for the unfused paths (profiles, counting, the delta driver).
    """

    conditions: tuple[tuple[Term, Term], ...] = ()
    binds: tuple[tuple[Variable, Variable], ...] = ()

    def __post_init__(self):
        object.__setattr__(
            self,
            "_cond_items",
            tuple((_resolve(a), _resolve(b)) for a, b in self.conditions),
        )

    def __str__(self) -> str:
        parts = [f"{a} = {b}" for a, b in self.conditions]
        parts += [f"?{target} := ?{source}" for source, target in self.binds]
        return "filter " + ", ".join(parts)

    def check_seed(self, seed: Assignment) -> bool:
        """Evaluate the conditions on a seed assignment and apply the
        binds in place -- the fused form of :meth:`run` for the length-1
        entry batch."""
        for (a_const, a_ref), (b_const, b_ref) in self._cond_items:
            a = a_ref if a_const else seed[a_ref]
            b = b_ref if b_const else seed[b_ref]
            if a != b:
                return False
        for source, target in self.binds:
            seed[target] = seed[source]
        return True

    def run(self, ctx: ExecutionContext, batch: ColumnarBatch) -> ColumnarBatch:
        n = batch.length
        if not n:
            return batch
        sel: list[int] | None = None
        for (a_const, a_ref), (b_const, b_ref) in self._cond_items:
            sa = [a_ref] * n if a_const else batch.column(a_ref)
            sb = [b_ref] * n if b_const else batch.column(b_ref)
            if sel is None:
                sel = [i for i in range(n) if sa[i] == sb[i]]
            else:
                sel = [i for i in sel if sa[i] == sb[i]]
        if sel is not None and len(sel) != n:
            batch = batch.select(sel)
        if self.binds and batch.length:
            slots = batch.slots
            columns = list(batch.columns)
            for source, target in self.binds:
                col = batch.column(source)
                idx = slots.index.get(target)
                if idx is None:
                    slots = slots.extend([target])
                    columns.append(col)
                else:
                    columns[idx] = col
            batch = ColumnarBatch(slots, columns, batch.length)
        return batch


@dataclass(frozen=True)
class FetchOp:
    """Fetch ``atom``'s matching tuples for a whole batch with one
    :meth:`lookup_keys` call keyed on ``key_positions``, then join each
    row group back to its source row.

    ``check_positions`` are bound positions outside the lookup key (they
    arise under embedded access rules, whose access path is keyed on the
    rule inputs only); rows that disagree there are filtered out.
    ``bind_positions`` are the variable positions the fetch newly binds --
    a repeated new variable must bind consistently across its positions.
    ``dedup_positions`` (embedded rules only) deduplicate the fetched
    output projections per source row, matching the rule's "at most N
    distinct Y-projections" contract.  ``rule`` is the access rule the
    originating :class:`~repro.core.plans.FetchStep` fetches through
    (``None`` for hand-built operators): it plays no part in execution,
    but lets diagnostics and error messages name the exact rule behind an
    operator.  ``keep`` (assigned by the lowering's liveness pass; ``None``
    keeps everything) names the variables still read downstream -- output
    columns outside it are dropped instead of gathered.
    """

    atom: Atom
    key_positions: tuple[int, ...]
    check_positions: tuple[int, ...]
    bind_positions: tuple[int, ...]
    dedup_positions: tuple[int, ...] | None = None
    rule: AccessRule | None = None
    keep: frozenset[Variable] | None = None

    def __post_init__(self):
        # Pre-resolve every term access so the per-row loops below touch
        # no Atom/Term machinery (frozen dataclass: set via object).
        terms = self.atom.terms
        # The lookup key in sorted-position order (the form the database
        # indexes on) and in declared order (the form the in-memory delta
        # index of run_delta is keyed on, shared across executors).
        object.__setattr__(
            self,
            "_sorted_positions",
            tuple(sorted(self.key_positions)),
        )
        object.__setattr__(
            self,
            "_sorted_key",
            tuple(_resolve(terms[p]) for p in self._sorted_positions),
        )
        object.__setattr__(
            self,
            "_key_items",
            tuple(_resolve(terms[p]) for p in self.key_positions),
        )
        check_items = [
            (p, *_resolve(terms[p])) for p in self.check_positions
        ]
        # A constant at a bind position is a residual equality check, not
        # a binding (the planner never emits one; hand-built operators
        # get the per-tuple semantics).
        bind_groups: dict[Variable, list[int]] = {}
        for p in self.bind_positions:
            term = terms[p]
            if isinstance(term, Constant):
                check_items.append((p, True, intern_value(term.value)))
            else:
                bind_groups.setdefault(term, []).append(p)
        object.__setattr__(self, "_check_items", tuple(check_items))
        object.__setattr__(
            self,
            "_bind_groups",
            tuple((term, tuple(ps)) for term, ps in bind_groups.items()),
        )

    def __str__(self) -> str:
        binds = ", ".join(f"?{self.atom.terms[p]}" for p in self.bind_positions)
        return f"fetch {self.atom} [key {self.key_positions}]" + (
            f" binding {binds}" if binds else ""
        )

    # The lookup source, overridden by ViewScanOp to read a view store
    # instead of the database; every other line of run/run_old/run_delta
    # is shared.

    def _lookup_keys(self, ctx: ExecutionContext, positions, keys):
        return ctx.lookup_keys(self.atom.relation, positions, keys)

    def _lookup_keys_old(self, ctx: ExecutionContext, positions, keys):
        return ctx.lookup_keys_old(self.atom.relation, positions, keys)

    def _keys(self, batch: ColumnarBatch) -> list[Row]:
        """The batch's lookup-key column (sorted-position order)."""
        n = batch.length
        skey = self._sorted_key
        if not skey:
            return [EMPTY_KEY] * n
        if len(skey) == 1:
            is_const, ref = skey[0]
            if is_const:
                return [(ref,)] * n
            return [(v,) for v in batch.column(ref)]
        seqs = [
            [ref] * n if is_const else batch.column(ref) for is_const, ref in skey
        ]
        return list(zip(*seqs))

    def _resolve_checks(self, batch: ColumnarBatch) -> list[tuple]:
        """``check_positions`` resolved against this batch: ``(position,
        column-or-None, constant)`` triples."""
        return [
            (p, None, ref) if is_const else (p, batch.column(ref), None)
            for p, is_const, ref in self._check_items
        ]

    def _resolve_binds(self, batch: ColumnarBatch, *, stores: bool) -> list[tuple]:
        """``bind_positions`` resolved against this batch: ``(store,
        positions, prebound-column, variable)`` per distinct variable.
        ``store`` is the fresh output column to fill (``None`` when the
        variable is already bound -- consistency check only -- or dead)."""
        keep = self.keep
        specs = []
        for term, ps in self._bind_groups:
            col = batch.column_or_none(term)
            store = (
                []
                if stores and col is None and (keep is None or term in keep)
                else None
            )
            specs.append((store, ps, col, term))
        return specs

    def _walk(
        self,
        groups,
        check_specs,
        bind_specs,
        take: list[int],
        signs_in=None,
        signs_out=None,
        signed_rows: bool = False,
        dedup: tuple[int, ...] | None = None,
    ) -> None:
        """The general expansion loop shared by every face: per source row
        ``i`` and fetched row, apply residual checks, per-source dedup and
        bind-consistency, then record the match (source index into
        ``take``, signed multiplicity into ``signs_out``, fresh bind
        values into the bind stores)."""
        append = take.append
        row_sign = 1
        for i, rows in enumerate(groups):
            if not rows:
                continue
            seen: set[Row] | None = set() if dedup is not None else None
            for entry in rows:
                if signed_rows:
                    row, row_sign = entry
                else:
                    row = entry
                ok = True
                for p, col, const in check_specs:
                    if (const if col is None else col[i]) != row[p]:
                        ok = False
                        break
                if not ok:
                    continue
                if seen is not None:
                    projection = tuple(row[p] for p in dedup)
                    if projection in seen:
                        continue
                    seen.add(projection)
                pending = None
                for store, ps, col, _ in bind_specs:
                    if col is None:
                        v = row[ps[0]]
                        rest = ps[1:]
                    else:
                        v = col[i]
                        rest = ps
                    for q in rest:
                        if row[q] != v:
                            ok = False
                            break
                    if not ok:
                        break
                    if store is not None:
                        if pending is None:
                            pending = []
                        pending.append((store, v))
                if not ok:
                    continue
                append(i)
                if signs_out is not None:
                    signs_out.append(
                        signs_in[i] * row_sign if signed_rows else signs_in[i]
                    )
                if pending is not None:
                    for store, v in pending:
                        store.append(v)

    def _finish(
        self, batch: ColumnarBatch, take: list[int], bind_specs
    ) -> ColumnarBatch:
        """Assemble the output batch: gather the surviving (live) input
        columns at ``take`` and install the freshly bound columns."""
        out = _gather(batch, take, self.keep)
        fresh = [(term, store) for store, _, _, term in bind_specs if store is not None]
        if not fresh:
            return out
        slots = out.slots
        columns = out.columns
        missing = [term for term, _ in fresh if term not in slots.index]
        if missing:
            slots = slots.extend(missing)
            columns = columns + [None] * (len(slots) - len(columns))
        for term, store in fresh:
            columns[slots.index[term]] = store
        return ColumnarBatch(slots, columns, out.length)

    def run(self, ctx: ExecutionContext, batch: ColumnarBatch) -> ColumnarBatch:
        if not batch.length:
            return _drop_dead(batch, self.keep)
        groups = self._lookup_keys(ctx, self._sorted_positions, self._keys(batch))
        check_specs = self._resolve_checks(batch)
        bind_specs = self._resolve_binds(batch, stores=True)
        take: list[int] = []
        if (
            not check_specs
            and self.dedup_positions is None
            and all(col is None and len(ps) == 1 for _, ps, col, _ in bind_specs)
        ):
            # Fast path (every planner-emitted plain fetch): no residual
            # checks, no per-source dedup, each bind variable fresh at a
            # single position -- the join is a pure expansion.
            append = take.append
            stores = [
                (store, ps[0]) for store, ps, _, _ in bind_specs if store is not None
            ]
            if len(stores) == 1:
                (store, p0) = stores[0]
                push = store.append
                for i, rows in enumerate(groups):
                    for row in rows:
                        append(i)
                        push(row[p0])
            elif not stores:
                for i, rows in enumerate(groups):
                    for row in rows:
                        append(i)
            else:
                for i, rows in enumerate(groups):
                    for row in rows:
                        append(i)
                        for store, p0 in stores:
                            store.append(row[p0])
        else:
            self._walk(
                groups,
                check_specs,
                bind_specs,
                take,
                dedup=self.dedup_positions,
            )
        return self._finish(batch, take, bind_specs)

    def _check_delta_supported(self) -> None:
        # An embedded-rule fetch deduplicates output projections *per
        # source row*, so its derivation count is not a product of
        # per-level multiplicities and signed deltas cannot be exact.
        if self.dedup_positions is not None:
            rule = f" '{self.rule}'" if self.rule is not None else ""
            raise IncrementalError(
                f"delta execution does not support embedded-rule fetches: "
                f"relation {self.atom.relation!r} is fetched through embedded "
                f"access rule{rule} ({self}); declare a plain rule on "
                f"{self.atom.relation!r} to refresh this query incrementally"
            )

    def run_delta(
        self, ctx: ExecutionContext, batch: SignedColumnarBatch
    ) -> SignedColumnarBatch:
        """Join a signed batch against the net change slice of ``atom``'s
        relation -- the delta face of :meth:`run`.  The slice lives in
        memory, so this accesses zero stored tuples."""
        self._check_delta_supported()
        source = batch.batch
        n = source.length
        if not n or not ctx.delta_net(self.atom.relation):
            return SignedColumnarBatch.empty(source.slots)
        if self.key_positions:
            index = ctx.delta_index(self.atom.relation, self.key_positions)
            key_items = self._key_items
            if len(key_items) == 1:
                is_const, ref = key_items[0]
                keys = (
                    [(ref,)] * n if is_const else [(v,) for v in source.column(ref)]
                )
            else:
                seqs = [
                    [ref] * n if is_const else source.column(ref)
                    for is_const, ref in key_items
                ]
                keys = list(zip(*seqs))
            get = index.get
            groups = [get(key, ()) for key in keys]
        else:
            # A keyless fetch (full-relation rule): every slice row joins
            # with every source row.
            groups = [ctx.delta_rows(self.atom.relation)] * n
        bind_specs = self._resolve_binds(source, stores=True)
        take: list[int] = []
        signs_out: list[int] = []
        self._walk(
            groups, (), bind_specs, take, batch.signs, signs_out, signed_rows=True
        )
        return SignedColumnarBatch(self._finish(source, take, bind_specs), signs_out)

    def run_old(
        self, ctx: ExecutionContext, batch: SignedColumnarBatch
    ) -> SignedColumnarBatch:
        """:meth:`run` against the pre-delta snapshot, preserving signs:
        one live :meth:`lookup_keys` (accounted as usual), corrected in
        memory by the change slice."""
        self._check_delta_supported()
        source = batch.batch
        if not source.length:
            return SignedColumnarBatch.empty(source.slots)
        groups = self._lookup_keys_old(
            ctx, self._sorted_positions, self._keys(source)
        )
        check_specs = self._resolve_checks(source)
        bind_specs = self._resolve_binds(source, stores=True)
        take: list[int] = []
        signs_out: list[int] = []
        self._walk(groups, check_specs, bind_specs, take, batch.signs, signs_out)
        return SignedColumnarBatch(self._finish(source, take, bind_specs), signs_out)


@dataclass(frozen=True)
class ProbeOp:
    """Verify the fully-bound ``atom`` for a whole batch with one
    :meth:`contains_rows` membership call.  ``keep`` is the liveness
    pass's surviving-variable set (``None`` keeps everything)."""

    atom: Atom
    keep: frozenset[Variable] | None = None

    def __post_init__(self):
        object.__setattr__(
            self,
            "_items",
            tuple(_resolve(t) for t in self.atom.terms),
        )

    def __str__(self) -> str:
        return f"probe {self.atom}"

    # The membership source, overridden by ViewProbeOp to probe a view
    # store instead of the database.

    def _contains_rows(self, ctx: ExecutionContext, rows):
        return ctx.contains_rows(self.atom.relation, rows)

    def _contains_rows_old(self, ctx: ExecutionContext, rows):
        return ctx.contains_rows_old(self.atom.relation, rows)

    def _rows(self, batch: ColumnarBatch) -> list[Row]:
        """The batch's probe-row column (one pre-shaped tuple per row)."""
        n = batch.length
        items = self._items
        if len(items) == 1:
            is_const, ref = items[0]
            if is_const:
                return [(ref,)] * n
            return [(v,) for v in batch.column(ref)]
        seqs = [
            [ref] * n if is_const else batch.column(ref) for is_const, ref in items
        ]
        return list(zip(*seqs))

    def run(self, ctx: ExecutionContext, batch: ColumnarBatch) -> ColumnarBatch:
        if not batch.length:
            return _drop_dead(batch, self.keep)
        verdicts = self._contains_rows(ctx, self._rows(batch))
        if all(verdicts):
            return _drop_dead(batch, self.keep)
        sel = [i for i, present in enumerate(verdicts) if present]
        return _gather(batch, sel, self.keep)

    def run_delta(
        self, ctx: ExecutionContext, batch: SignedColumnarBatch
    ) -> SignedColumnarBatch:
        """Probe the change slice instead of the database: a row survives
        only if its fully-bound tuple effectively changed, carrying the
        change's sign.  Accesses zero stored tuples."""
        net = ctx.delta_net(self.atom.relation)
        source = batch.batch
        if not net or not source.length:
            return SignedColumnarBatch.empty(source.slots)
        get = net.get
        signs = batch.signs
        sel: list[int] = []
        signs_out: list[int] = []
        for i, row in enumerate(self._rows(source)):
            row_sign = get(row, 0)
            if row_sign:
                sel.append(i)
                signs_out.append(signs[i] * row_sign)
        return SignedColumnarBatch(_gather(source, sel, self.keep), signs_out)

    def run_old(
        self, ctx: ExecutionContext, batch: SignedColumnarBatch
    ) -> SignedColumnarBatch:
        """:meth:`run` against the pre-delta snapshot, preserving signs."""
        source = batch.batch
        if not source.length:
            return SignedColumnarBatch.empty(source.slots)
        verdicts = self._contains_rows_old(ctx, self._rows(source))
        signs = batch.signs
        sel = [i for i, present in enumerate(verdicts) if present]
        return SignedColumnarBatch(
            _gather(source, sel, self.keep), [signs[i] for i in sel]
        )


@dataclass(frozen=True)
class ViewScanOp(FetchOp):
    """A :class:`FetchOp` whose atom names a materialized view
    (:mod:`repro.views`): only the lookup source differs -- batches are
    answered from the execution context's view store, indexed on the key
    positions and charged to the per-execution stats only, instead of
    the database.  ``run``/``run_old``/``run_delta`` are inherited: a
    view's answer changes ride in ``ctx.delta`` under the view's name,
    so the delta face joins them exactly like a base relation's slice,
    and the old face rewinds the current view store by that slice."""

    def __str__(self) -> str:
        binds = ", ".join(f"?{self.atom.terms[p]}" for p in self.bind_positions)
        return f"view scan {self.atom} [key {self.key_positions}]" + (
            f" binding {binds}" if binds else ""
        )

    def _lookup_keys(self, ctx: ExecutionContext, positions, keys):
        return ctx.view_lookup_keys(self.atom.relation, positions, keys)

    def _lookup_keys_old(self, ctx: ExecutionContext, positions, keys):
        return ctx.view_lookup_keys_old(self.atom.relation, positions, keys)


@dataclass(frozen=True)
class ViewProbeOp(ProbeOp):
    """A :class:`ProbeOp` whose membership source is a materialized
    view's store instead of the database; everything else -- including
    the delta face, which reads the view's answer changes from
    ``ctx.delta`` under the view's name -- is inherited."""

    def __str__(self) -> str:
        return f"view probe {self.atom}"

    def _contains_rows(self, ctx: ExecutionContext, rows):
        return ctx.view_contains_rows(self.atom.relation, rows)

    def _contains_rows_old(self, ctx: ExecutionContext, rows):
        return ctx.view_contains_rows_old(self.atom.relation, rows)


@dataclass(frozen=True)
class ProjectDedupOp:
    """Project each batch row onto the head terms and deduplicate,
    preserving first-derivation order.  Terminal operator: its output
    holds answer rows, not a batch."""

    head_terms: tuple[Term, ...]

    def __post_init__(self):
        object.__setattr__(
            self,
            "_items",
            tuple(_resolve(t) for t in self.head_terms),
        )

    def __str__(self) -> str:
        head = ", ".join(
            str(t) if isinstance(t, Constant) else f"?{t}" for t in self.head_terms
        )
        return f"project/dedup ({head})"

    def _row_iter(self, batch: ColumnarBatch):
        """The head projection of every batch row, in order."""
        n = batch.length
        items = self._items
        if len(items) == 1:
            is_const, ref = items[0]
            col = [ref] * n if is_const else batch.column(ref)
            return ((v,) for v in col)
        seqs = [
            [ref] * n if is_const else batch.column(ref) for is_const, ref in items
        ]
        return zip(*seqs)

    def run(self, ctx: ExecutionContext, batch: ColumnarBatch) -> list[Row]:
        if not batch.length:
            return []
        if not self._items:
            return [()]
        return list(dict.fromkeys(self._row_iter(batch)))

    def counts(self, batch: ColumnarBatch) -> dict[Row, int]:
        """Project like :meth:`run` but return per-answer derivation
        multiplicities (first-derivation order) instead of deduplicating --
        the materialized state of :mod:`repro.incremental`."""
        counts: dict[Row, int] = {}
        if not batch.length:
            return counts
        if not self._items:
            counts[EMPTY_KEY] = batch.length
            return counts
        get = counts.get
        for row in self._row_iter(batch):
            counts[row] = get(row, 0) + 1
        return counts

    def accumulate_signed(
        self, batch: SignedColumnarBatch, into: dict[Row, int]
    ) -> None:
        """Fold a signed batch's head projections into ``into`` -- the
        delta face of :meth:`counts`."""
        source = batch.batch
        if not source.length:
            return
        get = into.get
        if not self._items:
            into[EMPTY_KEY] = get(EMPTY_KEY, 0) + sum(batch.signs)
            return
        for row, sign in zip(self._row_iter(source), batch.signs):
            into[row] = get(row, 0) + sign


class _FusedFetchProject:
    """The fused terminal operator: a trailing :class:`FetchOp` (or
    :class:`ViewScanOp`) and the :class:`ProjectDedupOp` collapsed into
    one pass that emits deduplicated head rows straight from the fetched
    row groups -- the final batch (its gathers, fresh bind columns and
    per-row bookkeeping) is never materialized.  Lowering applies it on
    the :attr:`Pipeline.fused` sequence only; the unfused operators stay
    addressable for profiles, tests and the delta driver."""

    __slots__ = ("fetch", "project")

    def __init__(self, fetch: FetchOp, project: ProjectDedupOp):
        self.fetch = fetch
        self.project = project

    def __str__(self) -> str:
        return f"fused[{self.fetch}; {self.project}]"

    def run(self, ctx: ExecutionContext, batch: ColumnarBatch) -> list[Row]:
        if not batch.length:
            return []
        fetch = self.fetch
        groups = fetch._lookup_keys(ctx, fetch._sorted_positions, fetch._keys(batch))
        check_specs = fetch._resolve_checks(batch)
        bind_specs = fetch._resolve_binds(batch, stores=False)
        # Lower each head term to its source: a constant, a column of the
        # input batch, or a position of the fetched row.
        specs: list[tuple[int, object]] = []
        for is_const, ref in self.project._items:
            if is_const:
                specs.append((0, ref))
                continue
            col = batch.column_or_none(ref)
            if col is not None:
                specs.append((1, col))
                continue
            for term, ps in fetch._bind_groups:
                if term == ref:
                    specs.append((2, ps[0]))
                    break
            else:
                raise KeyError(ref)
        answers: dict[Row, None] = {}
        setd = answers.setdefault
        simple = (
            not check_specs
            and fetch.dedup_positions is None
            and all(col is None and len(ps) == 1 for _, ps, col, _ in bind_specs)
        )
        if simple and len(specs) == 1:
            kind, x = specs[0]
            if kind == 2:
                for rows in groups:
                    for row in rows:
                        setd((row[x],), None)
            elif kind == 1:
                # Same head value for every row of a group: record each
                # non-empty group once.
                for i, rows in enumerate(groups):
                    if rows:
                        setd((x[i],), None)
            else:
                for rows in groups:
                    if rows:
                        setd((x,), None)
                        break
        elif simple:
            for i, rows in enumerate(groups):
                for row in rows:
                    setd(
                        tuple(
                            x if kind == 0 else (x[i] if kind == 1 else row[x])
                            for kind, x in specs
                        ),
                        None,
                    )
        else:
            dedup = fetch.dedup_positions
            for i, rows in enumerate(groups):
                if not rows:
                    continue
                seen: set[Row] | None = set() if dedup is not None else None
                for row in rows:
                    ok = True
                    for p, col, const in check_specs:
                        if (const if col is None else col[i]) != row[p]:
                            ok = False
                            break
                    if not ok:
                        continue
                    if seen is not None:
                        projection = tuple(row[p] for p in dedup)
                        if projection in seen:
                            continue
                        seen.add(projection)
                    for _, ps, col, _ in bind_specs:
                        if col is None:
                            v = row[ps[0]]
                            rest = ps[1:]
                        else:
                            v = col[i]
                            rest = ps
                        for q in rest:
                            if row[q] != v:
                                ok = False
                                break
                        if not ok:
                            break
                    if not ok:
                        continue
                    setd(
                        tuple(
                            x if kind == 0 else (x[i] if kind == 1 else row[x])
                            for kind, x in specs
                        ),
                        None,
                    )
        return list(answers)


Operator = FilterOp | FetchOp | ProbeOp | ViewScanOp | ViewProbeOp | ProjectDedupOp


# -- compiled hot-path steps ---------------------------------------------
#
# The batch schema at every pipeline position is static: which slots are
# bound, which are live, which positions key each lookup -- all of it is
# known at lowering time.  So the hot path does not interpret operators:
# build_pipeline additionally compiles each fused operator into a closure
# over integer slot indexes, and execute_plan threads a bare
# (columns, length) pair through those closures.  No Variable is hashed
# and no batch object is allocated per execution.  The operator classes
# above remain the addressable form of the same pipeline (tests,
# profiles, counting and the delta driver run them; differential tests
# pin the compiled path to them).


def _compile_row_builder(specs):
    """A closure building the per-row key/probe tuple column from
    ``specs`` (``(True, constant)`` / ``(False, slot)`` items)."""
    if not specs:
        return lambda columns, n: [EMPTY_KEY] * n
    if len(specs) == 1:
        is_const, x = specs[0]
        if is_const:
            key = (x,)
            return lambda columns, n: [key] * n
        return lambda columns, n: [(v,) for v in columns[x]]
    specs = tuple(specs)

    def rows_fn(columns, n):
        seqs = [[x] * n if is_const else columns[x] for is_const, x in specs]
        return list(zip(*seqs))

    return rows_fn


def _compile_fetch(op: FetchOp, slots: SlotTable, bound_slots: set[int]):
    """Compile a non-terminal fetch into a ``(ctx, columns, n) ->
    (columns, n)`` closure; returns it plus the slot set bound after."""
    variables = slots.variables
    sidx = slots.index
    nslots = len(variables)
    spos = op._sorted_positions
    keys_fn = _compile_row_builder(
        [
            (True, ref) if is_const else (False, sidx[ref])
            for is_const, ref in op._sorted_key
        ]
    )
    check_specs = tuple(
        (p, None, ref) if is_const else (p, sidx[ref], None)
        for p, is_const, ref in op._check_items
    )
    keep = op.keep
    consist: list[tuple[int, tuple[int, ...]]] = []
    fresh: list[tuple[int | None, tuple[int, ...]]] = []
    for term, ps in op._bind_groups:
        s = sidx[term]
        if s in bound_slots:
            consist.append((s, ps))
        elif keep is None or term in keep:
            fresh.append((s, ps))
        elif len(ps) > 1:
            # Dead but repeated: the within-row consistency check still
            # filters, only the column is unneeded.
            fresh.append((None, ps))
    gather = tuple(s for s in bound_slots if keep is None or variables[s] in keep)
    out_bound = set(gather) | {s for s, _ in fresh if s is not None}
    relation = op.atom.relation
    from_view = isinstance(op, ViewScanOp)
    dedup = op.dedup_positions
    stores_spec = tuple((s, ps[0]) for s, ps in fresh if s is not None)
    fast = (
        not check_specs
        and dedup is None
        and not consist
        and all(len(ps) == 1 for _, ps in fresh)
    )
    if fast and len(stores_spec) == 1:
        # The planner's common case: a plain fetch binding one variable.
        (s_out, p0) = stores_spec[0]

        def step(ctx, columns, n):
            keys = keys_fn(columns, n)
            groups = (
                ctx._view(relation).lookup_keys(spos, keys, ctx.stats)
                if from_view
                else ctx.db.lookup_keys(relation, spos, keys, ctx.stats)
            )
            out = [None] * nslots
            if n == 1:
                rows = groups[0]
                k = len(rows)
                if k:
                    for s in gather:
                        out[s] = columns[s] * k
                    out[s_out] = [row[p0] for row in rows]
                return out, k
            take = []
            t_append = take.append
            store = []
            s_append = store.append
            for i, rows in enumerate(groups):
                for row in rows:
                    t_append(i)
                    s_append(row[p0])
            for s in gather:
                col = columns[s]
                out[s] = [col[i] for i in take]
            out[s_out] = store
            return out, len(take)

        return step, out_bound
    if fast:

        def step(ctx, columns, n):
            keys = keys_fn(columns, n)
            groups = (
                ctx._view(relation).lookup_keys(spos, keys, ctx.stats)
                if from_view
                else ctx.db.lookup_keys(relation, spos, keys, ctx.stats)
            )
            take = []
            t_append = take.append
            stores = [[] for _ in stores_spec]
            for i, rows in enumerate(groups):
                for row in rows:
                    t_append(i)
                    for store, (_, p) in zip(stores, stores_spec):
                        store.append(row[p])
            out = [None] * nslots
            for s in gather:
                col = columns[s]
                out[s] = [col[i] for i in take]
            for store, (s, _) in zip(stores, stores_spec):
                out[s] = store
            return out, len(take)

        return step, out_bound

    fresh_t = tuple(fresh)
    consist_t = tuple(consist)

    def step(ctx, columns, n):
        keys = keys_fn(columns, n)
        groups = (
            ctx._view(relation).lookup_keys(spos, keys, ctx.stats)
            if from_view
            else ctx.db.lookup_keys(relation, spos, keys, ctx.stats)
        )
        checks = [
            (p, None if s is None else columns[s], const)
            for p, s, const in check_specs
        ]
        consist_cols = [(columns[s], ps) for s, ps in consist_t]
        stores = [None if s is None else [] for s, _ in fresh_t]
        take = []
        t_append = take.append
        for i, rows in enumerate(groups):
            if not rows:
                continue
            seen = set() if dedup is not None else None
            for row in rows:
                ok = True
                for p, col, const in checks:
                    if (const if col is None else col[i]) != row[p]:
                        ok = False
                        break
                if not ok:
                    continue
                # Dedup consumes the projection even when a later
                # consistency check rejects the row (the embedded rule's
                # "at most N distinct projections" budget is spent by the
                # fetch, not the join).
                if seen is not None:
                    projection = tuple(row[p] for p in dedup)
                    if projection in seen:
                        continue
                    seen.add(projection)
                for col, ps in consist_cols:
                    v = col[i]
                    for q in ps:
                        if row[q] != v:
                            ok = False
                            break
                    if not ok:
                        break
                if not ok:
                    continue
                pending = None
                for store, (_, ps) in zip(stores, fresh_t):
                    v = row[ps[0]]
                    for q in ps[1:]:
                        if row[q] != v:
                            ok = False
                            break
                    if not ok:
                        break
                    if store is not None:
                        if pending is None:
                            pending = []
                        pending.append((store, v))
                if not ok:
                    continue
                t_append(i)
                if pending is not None:
                    for store, v in pending:
                        store.append(v)
        out = [None] * nslots
        for s in gather:
            col = columns[s]
            out[s] = [col[i] for i in take]
        for store, (s, _) in zip(stores, fresh_t):
            if store is not None:
                out[s] = store
        return out, len(take)

    return step, out_bound


def _compile_probe(op: ProbeOp, slots: SlotTable, bound_slots: set[int]):
    """Compile a probe into a ``(ctx, columns, n) -> (columns, n)``
    closure; returns it plus the slot set bound after."""
    variables = slots.variables
    sidx = slots.index
    nslots = len(variables)
    rows_fn = _compile_row_builder(
        [
            (True, ref) if is_const else (False, sidx[ref])
            for is_const, ref in op._items
        ]
    )
    relation = op.atom.relation
    from_view = isinstance(op, ViewProbeOp)
    keep = op.keep
    gather = tuple(s for s in bound_slots if keep is None or variables[s] in keep)
    dead = len(gather) != len(bound_slots)

    def step(ctx, columns, n):
        rows = rows_fn(columns, n)
        verdicts = (
            ctx._view(relation).contains_rows(rows, ctx.stats)
            if from_view
            else ctx.db.contains_rows(relation, rows, ctx.stats)
        )
        if all(verdicts):
            if not dead:
                return columns, n
            out = [None] * nslots
            for s in gather:
                out[s] = columns[s]
            return out, n
        sel = [i for i, present in enumerate(verdicts) if present]
        out = [None] * nslots
        for s in gather:
            col = columns[s]
            out[s] = [col[i] for i in sel]
        return out, len(sel)

    return step, set(gather)


def _compile_project(op: ProjectDedupOp, slots: SlotTable, bound_slots: set[int]):
    """Compile the terminal projection into a ``(ctx, columns, n) ->
    list[Row]`` closure (first-derivation order preserved by the dedup
    dict)."""
    sidx = slots.index
    specs = [
        (True, ref) if is_const else (False, sidx[ref])
        for is_const, ref in op._items
    ]
    if not specs:
        return lambda ctx, columns, n: [()] if n else []
    if len(specs) == 1:
        is_const, x = specs[0]
        if is_const:
            row = (x,)
            return lambda ctx, columns, n: [row] if n else []

        def terminal(ctx, columns, n):
            if not n:
                return []
            return list(dict.fromkeys((v,) for v in columns[x]))

        return terminal
    specs_t = tuple(specs)

    def terminal(ctx, columns, n):
        if not n:
            return []
        seqs = [[x] * n if is_const else columns[x] for is_const, x in specs_t]
        return list(dict.fromkeys(zip(*seqs)))

    return terminal


def _compile_fused(
    fused_op: "_FusedFetchProject", slots: SlotTable, bound_slots: set[int]
):
    """Compile the fused fetch+project tail into a ``(ctx, columns, n) ->
    list[Row]`` closure emitting deduplicated head rows straight from the
    fetched row groups."""
    fetch = fused_op.fetch
    project = fused_op.project
    sidx = slots.index
    spos = fetch._sorted_positions
    keys_fn = _compile_row_builder(
        [
            (True, ref) if is_const else (False, sidx[ref])
            for is_const, ref in fetch._sorted_key
        ]
    )
    check_specs = tuple(
        (p, None, ref) if is_const else (p, sidx[ref], None)
        for p, is_const, ref in fetch._check_items
    )
    consist: list[tuple[int, tuple[int, ...]]] = []
    fresh_pos: dict[Variable, tuple[int, ...]] = {}
    for term, ps in fetch._bind_groups:
        s = sidx.get(term)
        if s is not None and s in bound_slots:
            consist.append((s, ps))
        else:
            fresh_pos[term] = ps
    # Each head term lowers to a constant (0), an input column (1), or a
    # position of the fetched row (2).
    specs: list[tuple[int, object]] = []
    for is_const, ref in project._items:
        if is_const:
            specs.append((0, ref))
            continue
        s = sidx.get(ref)
        if s is not None and s in bound_slots:
            specs.append((1, s))
        else:
            specs.append((2, fresh_pos[ref][0]))
    relation = fetch.atom.relation
    from_view = isinstance(fetch, ViewScanOp)
    dedup = fetch.dedup_positions
    fresh_consist = tuple(ps for ps in fresh_pos.values() if len(ps) > 1)
    simple = not check_specs and dedup is None and not consist and not fresh_consist
    if simple and len(specs) == 1:
        kind, x = specs[0]
        if kind == 2:

            def terminal(ctx, columns, n):
                keys = keys_fn(columns, n)
                groups = (
                    ctx._view(relation).lookup_keys(spos, keys, ctx.stats)
                    if from_view
                    else ctx.db.lookup_keys(relation, spos, keys, ctx.stats)
                )
                answers: dict[Row, None] = {}
                setd = answers.setdefault
                for rows in groups:
                    for row in rows:
                        setd((row[x],), None)
                return list(answers)

        elif kind == 1:

            def terminal(ctx, columns, n):
                # Same head value for every row of a group: record each
                # non-empty group once.
                keys = keys_fn(columns, n)
                groups = (
                    ctx._view(relation).lookup_keys(spos, keys, ctx.stats)
                    if from_view
                    else ctx.db.lookup_keys(relation, spos, keys, ctx.stats)
                )
                col = columns[x]
                answers: dict[Row, None] = {}
                setd = answers.setdefault
                for i, rows in enumerate(groups):
                    if rows:
                        setd((col[i],), None)
                return list(answers)

        else:
            row0 = (x,)

            def terminal(ctx, columns, n):
                keys = keys_fn(columns, n)
                groups = (
                    ctx._view(relation).lookup_keys(spos, keys, ctx.stats)
                    if from_view
                    else ctx.db.lookup_keys(relation, spos, keys, ctx.stats)
                )
                for rows in groups:
                    if rows:
                        return [row0]
                return []

        return terminal
    if simple:
        specs_t = tuple(specs)

        def terminal(ctx, columns, n):
            keys = keys_fn(columns, n)
            groups = (
                ctx._view(relation).lookup_keys(spos, keys, ctx.stats)
                if from_view
                else ctx.db.lookup_keys(relation, spos, keys, ctx.stats)
            )
            answers: dict[Row, None] = {}
            setd = answers.setdefault
            for i, rows in enumerate(groups):
                for row in rows:
                    setd(
                        tuple(
                            x
                            if kind == 0
                            else (columns[x][i] if kind == 1 else row[x])
                            for kind, x in specs_t
                        ),
                        None,
                    )
            return list(answers)

        return terminal
    consist_t = tuple(consist)
    specs_g = tuple(specs)

    def terminal(ctx, columns, n):
        keys = keys_fn(columns, n)
        groups = (
            ctx._view(relation).lookup_keys(spos, keys, ctx.stats)
            if from_view
            else ctx.db.lookup_keys(relation, spos, keys, ctx.stats)
        )
        checks = [
            (p, None if s is None else columns[s], const)
            for p, s, const in check_specs
        ]
        consist_cols = [(columns[s], ps) for s, ps in consist_t]
        answers: dict[Row, None] = {}
        setd = answers.setdefault
        for i, rows in enumerate(groups):
            if not rows:
                continue
            seen = set() if dedup is not None else None
            for row in rows:
                ok = True
                for p, col, const in checks:
                    if (const if col is None else col[i]) != row[p]:
                        ok = False
                        break
                if not ok:
                    continue
                if seen is not None:
                    projection = tuple(row[p] for p in dedup)
                    if projection in seen:
                        continue
                    seen.add(projection)
                for col, ps in consist_cols:
                    v = col[i]
                    for q in ps:
                        if row[q] != v:
                            ok = False
                            break
                    if not ok:
                        break
                if ok:
                    for ps in fresh_consist:
                        v = row[ps[0]]
                        for q in ps[1:]:
                            if row[q] != v:
                                ok = False
                                break
                        if not ok:
                            break
                if not ok:
                    continue
                setd(
                    tuple(
                        x if kind == 0 else (columns[x][i] if kind == 1 else row[x])
                        for kind, x in specs_g
                    ),
                    None,
                )
        return list(answers)

    return terminal


class Pipeline(tuple):
    """The lowered physical form of one plan: a tuple of the *unfused*
    operators (what tests, profiles and the delta driver address), plus
    the compiled execution extras as attributes --

    * ``slots`` -- the plan's :class:`~repro.core.columnar.SlotTable`;
    * ``params`` -- the declared parameter set (fast seed validation);
    * ``prefilter`` -- the leading :class:`FilterOp`, fused onto the seed
      assignment by :func:`execute_plan` (``None`` when absent);
    * ``fused`` -- the hot-path operator sequence: the unfused data
      operators minus the prefilter, with a trailing fetch+project pair
      collapsed into one :class:`_FusedFetchProject`;
    * ``seed_slots`` / ``body`` / ``terminal`` -- the compiled form of the
      fused sequence :func:`execute_plan` actually runs: the parameter
      slot assignments, the ``(ctx, columns, n) -> (columns, n)`` step
      closures, and the terminal ``-> list[Row]`` closure;
    * ``width`` -- the slot count (the length of each column list).

    Comparing a ``Pipeline`` to a plain tuple compares the unfused
    operators (tuple semantics), so an unsatisfiable plan's pipeline
    equals ``()``.
    """

    slots: SlotTable
    params: frozenset
    width: int
    prefilter: FilterOp | None
    fused: tuple
    seed_slots: tuple
    body: tuple
    terminal: object

    def __new__(
        cls,
        ops: Sequence = (),
        slots: SlotTable | None = None,
        params: frozenset = frozenset(),
        prefilter: FilterOp | None = None,
        fused: Sequence | None = None,
        seed_slots: Sequence = (),
        body: Sequence = (),
        terminal=None,
    ):
        self = super().__new__(cls, ops)
        self.slots = SlotTable(()) if slots is None else slots
        self.params = params
        self.width = len(self.slots.variables)
        self.prefilter = prefilter
        self.fused = tuple(ops) if fused is None else tuple(fused)
        self.seed_slots = tuple(seed_slots)
        self.body = tuple(body)
        self.terminal = terminal
        return self


def _parameter_constraints(
    plan: Plan,
) -> tuple[
    tuple[tuple[Term, Term], ...],
    tuple[tuple[Variable, Variable], ...],
    set[Variable],
]:
    """The equality constraints ``plan``'s parameters carry, and the set of
    representative variables they leave bound.

    A parameter whose equality class collapsed to a constant becomes a
    value check; two parameters in the same class must agree; a parameter
    whose representative is a *different* variable has its value copied
    onto that representative (the substituted atoms mention only
    representatives).
    """
    subst = plan.query.equality_substitution() or {}
    conditions: list[tuple[Term, Term]] = []
    binds: list[tuple[Variable, Variable]] = []
    bound: set[Variable] = set()
    first_with_rep: dict[Variable, Variable] = {}
    for v in plan.parameters:
        rep = subst.get(v, v)
        if isinstance(rep, Constant):
            conditions.append((v, rep))
            continue
        if rep in first_with_rep:
            conditions.append((first_with_rep[rep], v))
            continue
        first_with_rep[rep] = v
        if rep != v:
            binds.append((v, rep))
        bound.add(rep)
    return tuple(conditions), tuple(binds), bound


def _assign_keep_sets(ops: list[Operator], head_terms: tuple[Term, ...]) -> None:
    """The backward liveness pass: give every data operator the ``keep``
    set of variables some strictly-later operator (or the projection)
    still reads, so gathers skip dead columns.  The delta driver runs the
    same operators in the same order (new-prefix / slice-join / old-
    suffix all read the same per-level key, check and head variables), so
    one keep set is valid for every face."""
    needed: set[Variable] = {t for t in head_terms if isinstance(t, Variable)}
    for op in reversed(ops):
        if isinstance(op, (FilterOp, ProjectDedupOp)):
            continue
        object.__setattr__(op, "keep", frozenset(needed))
        if isinstance(op, FetchOp):
            needed -= {term for term, _ in op._bind_groups}
            needed |= {ref for is_const, ref in op._sorted_key if not is_const}
            needed |= {
                ref for _, is_const, ref in op._check_items if not is_const
            }
        else:  # ProbeOp
            needed |= {ref for is_const, ref in op._items if not is_const}


def build_pipeline(plan: Plan) -> Pipeline:
    """Lower ``plan``'s fetch/probe steps into the physical operator
    pipeline.  The set of bound variables before each step is known at
    compile time, so every operator's key/check/bind positions, its
    variable slots and its live-column set are all static; the returned
    :class:`Pipeline` additionally carries the fused hot-path sequence.
    """
    params = frozenset(plan.parameters)
    if not plan.satisfiable:
        return Pipeline((), None, params)
    conditions, binds, bound = _parameter_constraints(plan)
    ops: list[Operator] = []
    prefilter: FilterOp | None = None
    if conditions or binds:
        prefilter = FilterOp(conditions, binds)
        ops.append(prefilter)
    view_relations = plan.view_relations
    for step in plan.steps:
        is_view = step.atom.relation in view_relations
        if isinstance(step, ProbeStep):
            ops.append(ViewProbeOp(step.atom) if is_view else ProbeOp(step.atom))
            continue
        terms = step.atom.terms
        determined = tuple(
            p
            for p, t in enumerate(terms)
            if isinstance(t, Constant) or t in bound
        )
        if isinstance(step.rule, EmbeddedAccessRule):
            key = step.input_positions
            check = tuple(p for p in determined if p not in key)
            dedup = step.output_positions
            bindable = step.output_positions
        else:
            key = determined
            check = ()
            dedup = None
            bindable = tuple(range(len(terms)))
        bind = tuple(
            p
            for p in bindable
            if isinstance(terms[p], Variable) and terms[p] not in bound
        )
        op_type = ViewScanOp if is_view else FetchOp
        ops.append(op_type(step.atom, key, check, bind, dedup, step.rule))
        bound.update(step.binds)
    ops.append(ProjectDedupOp(plan.head_terms))
    _assign_keep_sets(ops, plan.head_terms)

    # The per-plan slot table: parameters, bind targets, atom variables
    # and head variables, first-seen order (SlotTable dedups).
    slot_vars: list[Variable] = list(plan.parameters)
    slot_vars.extend(target for _, target in binds)
    for step in plan.steps:
        slot_vars.extend(t for t in step.atom.terms if isinstance(t, Variable))
    slot_vars.extend(t for t in plan.head_terms if isinstance(t, Variable))

    # The fused hot-path sequence: the prefilter is evaluated on the seed
    # by execute_plan, and a trailing fetch+project pair emits head rows
    # directly.
    fused: list = [op for op in ops if op is not prefilter]
    if len(fused) >= 2 and isinstance(fused[-2], FetchOp):
        fused[-2:] = [_FusedFetchProject(fused[-2], fused[-1])]

    # Compile the fused sequence down to slot-index closures (what
    # execute_plan runs); the boundness of every slot at every position
    # is static, so all variable hashing happens here, once per plan.
    slots = SlotTable(slot_vars)
    sidx = slots.index
    seed_vars = tuple(
        dict.fromkeys([*plan.parameters, *(target for _, target in binds)])
    )
    seed_slots = tuple((sidx[v], v) for v in seed_vars)
    bound_slots = {slot for slot, _ in seed_slots}
    body = []
    for op in fused[:-1]:
        if isinstance(op, FetchOp):
            step, bound_slots = _compile_fetch(op, slots, bound_slots)
        else:
            step, bound_slots = _compile_probe(op, slots, bound_slots)
        body.append(step)
    tail = fused[-1]
    if isinstance(tail, _FusedFetchProject):
        terminal = _compile_fused(tail, slots, bound_slots)
    else:
        terminal = _compile_project(tail, slots, bound_slots)
    return Pipeline(ops, slots, params, prefilter, fused, seed_slots, body, terminal)


#: The process-wide LRU of lowered pipelines (satellite of PR 8: the old
#: per-plan memo attribute grew without bound and had no stats; this is
#: the same cache discipline as the Engine's PlanCache).
pipeline_cache = PipelineCache(maxsize=256)


def pipeline_for(plan: Plan) -> Pipeline:
    """The memoized pipeline for ``plan`` (lowered once, reused by every
    execution; plans are immutable so an entry can never go stale).
    Cached in :data:`pipeline_cache` -- a bounded LRU keyed by plan
    identity, with hit/miss/eviction counters."""
    return pipeline_cache.get_or_build(plan, build_pipeline)


def pipeline_cache_stats() -> PipelineCacheStats:
    """Counters of the process-wide pipeline cache."""
    return pipeline_cache.stats()


def merge_parameter_values(
    parameters: Mapping[object, object] | None, kwargs: Mapping[str, object]
) -> Assignment:
    """Merge a parameter mapping and keyword arguments into one
    variable-keyed assignment (kwargs win on collision).  Shared by
    :meth:`Plan.execute`, the executor entry points and the Engine facade.

    ``Constant``-wrapped values are unwrapped here, once: assignments hold
    plain values everywhere downstream, so every comparison -- filter
    equalities, fetched-row consistency checks, in-memory delta joins --
    sees the same representation the database stores.  String values are
    interned on the way in for the same reason stored rows are
    (:mod:`repro.relational.interning`): every lookup key built from a
    parameter then hashes once and compares by identity first.
    """
    values: Assignment = {}
    if parameters:
        for key, value in parameters.items():
            if isinstance(value, Constant):
                value = value.value
            values[key if type(key) is Variable else _as_variable(key)] = (
                _intern(value) if type(value) is str else value
            )
    if kwargs:
        for key, value in kwargs.items():
            if isinstance(value, Constant):
                value = value.value
            values[_as_variable(key)] = (
                _intern(value) if type(value) is str else value
            )
    return values


def _reject_seed(plan: Plan, values: Assignment) -> None:
    """Raise the parameter-mismatch error for a seed whose variable set
    does not equal the plan's declared parameters."""
    declared = set(plan.parameters)
    extra = [v for v in values if v not in declared]
    if extra:
        raise ValueError(
            "bindings for variables that are not plan parameters "
            "(recompile with them as parameters to constrain the answer): "
            + ", ".join(f"?{v}" for v in extra)
        )
    missing = [v for v in plan.parameters if v not in values]
    if missing:
        raise ValueError(
            "missing plan parameters: " + ", ".join(f"?{v}" for v in missing)
        )


def _seed_assignment(
    plan: Plan,
    parameters: Mapping[object, object] | None,
    kwargs: Mapping[str, object],
) -> Assignment:
    """Validate the supplied parameter values against the plan's declared
    parameters and return the initial assignment."""
    values = merge_parameter_values(parameters, kwargs)
    if values.keys() != set(plan.parameters):
        _reject_seed(plan, values)
    return {v: values[v] for v in plan.parameters}


def execute_plan(
    plan: Plan,
    db,
    parameters: Mapping[object, object] | None = None,
    **kwargs: object,
) -> tuple[Row, ...]:
    """Run ``plan`` on ``db`` (a Database or an :class:`ExecutionContext`)
    through the columnar operator pipeline (the fused hot-path sequence)
    and return the deduplicated answer tuples.

    Parameter values may be passed as a mapping (keys are variables or
    their names) and/or as keyword arguments.
    """
    return _execute_merged(plan, db, merge_parameter_values(parameters, kwargs))


def _execute_merged(plan: Plan, db, values: Assignment) -> tuple[Row, ...]:
    """:func:`execute_plan` after parameter normalization: ``values`` must
    already be a variable-keyed, Constant-unwrapped, interned assignment.
    The Engine facade calls this directly so a value dict it normalized
    once is not re-walked per plan."""
    pipe = pipeline_for(plan)
    if values.keys() != pipe.params:
        _reject_seed(plan, values)
    if not plan.satisfiable:
        return ()
    ctx = db if isinstance(db, ExecutionContext) else ExecutionContext(db)
    prefilter = pipe.prefilter
    if prefilter is not None and not prefilter.check_seed(values):
        return ()
    columns: list[list | None] = [None] * pipe.width
    for slot, var in pipe.seed_slots:
        columns[slot] = [values[var]]
    n = 1
    for step in pipe.body:
        columns, n = step(ctx, columns, n)
        if not n:
            return ()
    return tuple(pipe.terminal(ctx, columns, n))


def execute_plan_counting(
    plan: Plan,
    db,
    parameters: Mapping[object, object] | None = None,
    *,
    profiles: list["OperatorProfile"] | None = None,
    **kwargs: object,
) -> dict[Row, int]:
    """Like :func:`execute_plan`, but return ``{answer row: derivation
    multiplicity}`` in first-derivation order instead of deduplicating.

    The multiplicities are the materialized state incremental maintenance
    needs: an answer row is in the result exactly while its count is
    positive, and :func:`execute_plan_delta` produces the signed count
    changes a batch of updates causes.  Pass ``profiles`` (a list) to
    collect one :class:`OperatorProfile` per operator along the way.

    Raises :class:`~repro.errors.IncrementalError` (eagerly, whatever the
    data) for plans that fetch through an embedded access rule: their
    per-row projection dedup makes the multiplicities non-compositional,
    so the counts would be unusable as incremental state.
    """
    check_delta_supported(plan)
    seed = _seed_assignment(plan, parameters, kwargs)
    if not plan.satisfiable:
        return {}
    ctx = _as_context(db)
    pipe = pipeline_for(plan)
    batch = ColumnarBatch.seed(pipe.slots, seed)
    for op in pipe[:-1]:
        if profiles is None:
            batch = op.run(ctx, batch)
            continue
        before = ctx.stats.snapshot()
        start = perf_counter()
        out = op.run(ctx, batch)
        elapsed = perf_counter() - start
        _profile(
            profiles, str(op), len(batch), len(out), ctx.stats.since(before), elapsed
        )
        batch = out
    project = pipe[-1]
    if profiles is None:
        return project.counts(batch)
    start = perf_counter()
    counts = project.counts(batch)
    _profile(
        profiles,
        str(project),
        len(batch),
        len(counts),
        AccessStats(),
        perf_counter() - start,
    )
    return counts


def execute_plan_delta(
    plan: Plan,
    ctx: ExecutionContext,
    parameters: Mapping[object, object] | None = None,
    *,
    profiles: list["OperatorProfile"] | None = None,
    seed: Assignment | None = None,
    **kwargs: object,
) -> dict[Row, int]:
    """Evaluate the standard delta rule for ``plan`` over ``ctx``'s change
    slice: the signed derivation-count change of every affected answer row
    (positive -- derivations gained, negative -- lost).

    For each operator level ``i`` whose relation effectively changed,
    levels before ``i`` run on the new state (shared across levels via one
    incrementally extended prefix batch), level ``i`` joins the in-memory
    slice (``run_delta``, zero tuples accessed), and levels after ``i``
    run on the pre-delta snapshot (``run_old``) -- so every derivation
    gained or lost is produced exactly once however many levels changed,
    with one bulk database call per level.  The joins are vectorized over
    :class:`~repro.core.columnar.SignedColumnarBatch`, the same columnar
    representation the standard path uses.  Levels whose relation did not
    change cost nothing beyond the prefix they already share; an empty
    slice costs zero accesses.  Applying the result to the counts of
    :func:`execute_plan_counting` reproduces a from-scratch run on the
    new state.

    Raises :class:`~repro.errors.IncrementalError` for plans that fetch
    through an embedded access rule (no exact counting semantics) --
    eagerly, whichever relations changed, so an unsupported plan can
    never sometimes succeed depending on the slice.

    ``seed`` is the refresh hot path's escape hatch: a pre-validated
    parameter assignment (variable-keyed, e.g. kept from the initial
    counting execution) that skips per-call validation.
    """
    check_delta_supported(plan)
    if seed is None:
        seed = _seed_assignment(plan, parameters, kwargs)
    else:
        seed = dict(seed)
    changes: dict[Row, int] = {}
    if not plan.satisfiable:
        return changes
    pipe = pipeline_for(plan)
    prefix = ColumnarBatch.seed(pipe.slots, seed)
    for op in pipe[:-1]:
        if isinstance(op, FilterOp):
            prefix = op.run(ctx, prefix)
            _profile(profiles, op, 1, len(prefix), AccessStats())
    if not prefix.length:
        return changes
    levels = [op for op in pipe[:-1] if not isinstance(op, FilterOp)]
    project = pipe[-1]
    relevant = {
        i for i, level in enumerate(levels) if ctx.delta_rows(level.atom.relation)
    }
    if not relevant:
        return changes
    last = max(relevant)

    def run_measured(op, label: str, batch, method):
        """One operator application, profiled only when asked to be."""
        if profiles is None:
            return method(ctx, batch)
        before = ctx.stats.snapshot()
        start = perf_counter()
        out = method(ctx, batch)
        elapsed = perf_counter() - start
        _profile(
            profiles,
            f"{label} {op}",
            len(batch),
            len(out),
            ctx.stats.since(before),
            elapsed,
        )
        return out

    for i, level in enumerate(levels):
        if i in relevant:
            signed = run_measured(
                level,
                f"Δ[{i + 1}]",
                SignedColumnarBatch(prefix, [1] * prefix.length),
                level.run_delta,
            )
            for j in range(i + 1, len(levels)):
                if not len(signed):
                    break
                signed = run_measured(
                    levels[j], f"old[{j + 1}]", signed, levels[j].run_old
                )
            project.accumulate_signed(signed, changes)
        if i >= last:
            break
        prefix = run_measured(level, f"new[{i + 1}]", prefix, level.run)
        if not prefix.length:
            break
    changes = {row: change for row, change in changes.items() if change}
    _profile(profiles, project, len(changes), len(changes), AccessStats())
    return changes


def delta_fanout_bound(plan: Plan, delta_sizes: Mapping[str, int]) -> int:
    """An upper bound on the tuples :func:`execute_plan_delta` can access
    for ``plan`` given a change slice with ``delta_sizes`` net rows per
    relation -- a function of the slice and the access-rule bounds only,
    never of the database size (the incremental analogue of
    :attr:`~repro.core.plans.Plan.fanout_bound`).

    Per changed level: the prefix runs on the new state (its fetches are
    bounded exactly as in the full plan), the slice join itself touches no
    stored tuples, and the old-state suffix fans out from at most
    ``prefix branches x slice rows`` seeds through the remaining rules'
    bounds.  Relations absent from ``delta_sizes`` contribute nothing.
    """
    if not plan.satisfiable:
        return 0
    steps = plan.steps
    total = 0
    prefix_access = 0  # accesses to run the levels before i on the new state
    branches = 1  # how many assignments the prefix can carry
    for i, step in enumerate(steps):
        changed = delta_sizes.get(step.atom.relation, 0)
        if changed:
            seeds = branches * changed
            suffix = 0
            for later in steps[i + 1 :]:
                if isinstance(later, ProbeStep):
                    suffix += seeds
                else:
                    suffix += seeds * later.rule.bound
                    seeds *= later.rule.bound
            total += prefix_access + suffix
        if isinstance(step, ProbeStep):
            prefix_access += branches
        else:
            prefix_access += branches * step.rule.bound
            branches *= step.rule.bound
    return total


def check_delta_supported(plan: Plan) -> None:
    """Raise :class:`~repro.errors.IncrementalError` unless every fetch of
    ``plan`` goes through a plain or full access rule (embedded rules have
    no exact counting semantics -- see :meth:`FetchOp.run_delta`)."""
    for step in plan.steps:
        if isinstance(step, FetchStep) and isinstance(step.rule, EmbeddedAccessRule):
            raise IncrementalError(
                f"plan step '{step}' fetches relation "
                f"{step.atom.relation!r} through the embedded access rule "
                f"'{step.rule}'; incremental (delta) execution supports "
                f"only plain and full access rules -- declare a plain rule "
                f"on {step.atom.relation!r} to refresh this query "
                f"incrementally"
            )


@dataclass(frozen=True)
class OperatorProfile:
    """Measured behaviour of one operator during one execution.

    ``wall_time_s`` is the operator's measured wall-clock time (seconds);
    it is ``0.0`` on paths that account rows without timing (e.g. the
    pure-bookkeeping projection line of the delta driver)."""

    operator: str
    rows_in: int
    rows_out: int
    tuples_accessed: int
    indexed_lookups: int
    full_scans: int
    wall_time_s: float = 0.0


def _profile(
    profiles: list[OperatorProfile] | None,
    operator: object,
    rows_in: int,
    rows_out: int,
    delta: AccessStats,
    wall_time_s: float = 0.0,
) -> None:
    """Append one operator's measurements to ``profiles`` (when given);
    ``operator`` is stringified only then, keeping the unprofiled hot
    path free of rendering work."""
    if profiles is not None:
        profiles.append(
            OperatorProfile(
                str(operator),
                rows_in,
                rows_out,
                delta.tuples_accessed,
                delta.indexed_lookups,
                delta.full_scans,
                wall_time_s,
            )
        )


@dataclass(frozen=True)
class PlanProfile:
    """One plan execution's answers plus per-operator row counts, access
    accounting and wall time (the payload of ``explain_analyze``)."""

    plan: Plan
    rows: tuple[Row, ...]
    operators: tuple[OperatorProfile, ...]

    @property
    def tuples_accessed(self) -> int:
        return sum(op.tuples_accessed for op in self.operators)

    @property
    def wall_time_s(self) -> float:
        return sum(op.wall_time_s for op in self.operators)

    def __str__(self) -> str:
        lines = []
        params = ", ".join(f"?{v}" for v in self.plan.parameters) or "none"
        lines.append(f"parameters: {params}")
        for i, op in enumerate(self.operators, 1):
            lines.append(
                f"{i}. {op.operator}  "
                f"[rows {op.rows_in} -> {op.rows_out}, "
                f"{op.tuples_accessed} tuples, "
                f"{op.indexed_lookups} lookups, {op.full_scans} scans, "
                f"{op.wall_time_s * 1e6:.1f} us]"
            )
        lines.append(
            f"answers: {len(self.rows)} rows, "
            f"{self.tuples_accessed} tuples accessed "
            f"(bound {self.plan.fanout_bound}), "
            f"{self.wall_time_s * 1e6:.1f} us"
        )
        return "\n".join(lines)


def profile_plan(
    plan: Plan,
    db,
    parameters: Mapping[object, object] | None = None,
    *,
    fused: bool = False,
    **kwargs: object,
) -> PlanProfile:
    """Like :func:`execute_plan`, but record per-operator row counts,
    access-statistics deltas and wall time along the way.

    By default the *unfused* operator sequence is profiled -- one entry
    per logical operator, the form fusion decisions are made from.  Pass
    ``fused=True`` to profile the hot-path sequence :func:`execute_plan`
    actually runs (prefilter + fused tail).
    """
    seed = _seed_assignment(plan, parameters, kwargs)
    if not plan.satisfiable:
        return PlanProfile(plan, (), ())
    ctx = _as_context(db)
    pipe = pipeline_for(plan)
    if fused:
        ops = pipe.fused if pipe.prefilter is None else (pipe.prefilter, *pipe.fused)
    else:
        ops = tuple(pipe)
    profiles: list[OperatorProfile] = []
    batch = ColumnarBatch.seed(pipe.slots, seed)
    for op in ops:
        before = ctx.stats.snapshot()
        start = perf_counter()
        out = op.run(ctx, batch)
        elapsed = perf_counter() - start
        _profile(
            profiles, str(op), len(batch), len(out), ctx.stats.since(before), elapsed
        )
        batch = out
    return PlanProfile(plan, tuple(batch), tuple(profiles))


# -- the per-tuple reference path ----------------------------------------


def execute_per_tuple(
    plan: Plan,
    db,
    parameters: Mapping[object, object] | None = None,
    **kwargs: object,
) -> tuple[Row, ...]:
    """The pre-pipeline reference executor: a recursive generator that
    issues one :meth:`lookup`/:meth:`contains` per partial assignment.

    Semantically identical to :func:`execute_plan`; kept as the baseline
    for differential tests and for :mod:`repro.bench`'s batched-vs-
    per-tuple comparison.  Not the production path.
    """
    seed = _seed_assignment(plan, parameters, kwargs)
    if not plan.satisfiable:
        return ()
    ctx = _as_context(db)
    conditions, binds, _ = _parameter_constraints(plan)
    for a, b in conditions:
        if _term_value(a, seed) != _term_value(b, seed):
            return ()
    for source, target in binds:
        seed[target] = seed[source]
    answers: dict[Row, None] = {}
    for final in _run_per_tuple(plan, ctx, 0, seed):
        answers.setdefault(
            tuple(_term_value(t, final) for t in plan.head_terms), None
        )
    return tuple(answers)


def _run_per_tuple(
    plan: Plan, ctx: ExecutionContext, i: int, assignment: Assignment
) -> Iterator[Assignment]:
    if i == len(plan.steps):
        yield assignment
        return
    step = plan.steps[i]
    is_view = step.atom.relation in plan.view_relations
    if isinstance(step, ProbeStep):
        row = tuple(_term_value(t, assignment) for t in step.atom.terms)
        present = (
            ctx.view_contains(step.atom.relation, row)
            if is_view
            else ctx.contains(step.atom.relation, row)
        )
        if present:
            yield from _run_per_tuple(plan, ctx, i + 1, assignment)
        return

    atom = step.atom
    if is_view:
        # View rules are always plain: key on every bound position and
        # read the view store (charged to the per-execution stats only).
        pattern = _bound_pattern(atom, assignment)
        for row in ctx.view_lookup(atom.relation, pattern):
            extended = _extend(atom, row, assignment)
            if extended is not None:
                yield from _run_per_tuple(plan, ctx, i + 1, extended)
        return
    if isinstance(step.rule, EmbeddedAccessRule):
        # The access path is keyed on the rule's inputs only; other bound
        # positions are filtered after the fetch, and only the rule's
        # outputs become bound (deduplicated projections).
        pattern = {
            p: _term_value(atom.terms[p], assignment)
            for p in step.input_positions
        }
        seen: set[Row] = set()
        for row in ctx.lookup(atom.relation, pattern):
            if not row_matches(atom, row, assignment):
                continue
            projection = tuple(row[p] for p in step.output_positions)
            if projection in seen:
                continue
            seen.add(projection)
            extended = dict(assignment)
            consistent = True
            for p in step.output_positions:
                term = atom.terms[p]
                if isinstance(term, Constant):
                    continue
                if term in extended and extended[term] != row[p]:
                    consistent = False
                    break
                extended[term] = row[p]
            if consistent:
                yield from _run_per_tuple(plan, ctx, i + 1, extended)
        return

    # Plain (or full) access rule: key the lookup on every position that
    # is already bound -- a superset of the rule's inputs, so the declared
    # bound still applies and the lookup is at least as selective as the
    # access path guarantees.
    pattern = _bound_pattern(atom, assignment)
    for row in ctx.lookup(atom.relation, pattern):
        extended = _extend(atom, row, assignment)
        if extended is not None:
            yield from _run_per_tuple(plan, ctx, i + 1, extended)

"""Batch-at-a-time physical execution of scale-independent plans.

:mod:`repro.core.plans` is the *planner*: :func:`~repro.core.plans.compile_plan`
turns a controlled conjunctive query into an ordered sequence of
fetch/probe steps plus a head projection.  This module is the *executor*:
it lowers those steps into a pipeline of physical operators that process
**batches** of binding dicts iteratively -- no Python recursion, and one
bulk database call (:meth:`~repro.relational.instance.Database.lookup_many`
/ :meth:`~repro.relational.instance.Database.contains_many`) per operator
instead of one :meth:`lookup`/:meth:`contains` per partial assignment.

The operators:

* :class:`FilterOp` -- enforce the compile-time equality constraints that
  involve plan parameters (a parameter equated to a constant or to another
  parameter) and propagate parameter values onto their equality-class
  representatives.  Only appears when the query's equalities demand it.
* :class:`FetchOp` -- one :meth:`lookup_many` for the whole batch, keyed on
  the positions that are statically known to be bound at this point of the
  pipeline, then join each group of rows back to its source assignment
  (consistency-checked for repeated variables; embedded access rules
  additionally filter on residual bound positions and deduplicate output
  projections, mirroring their ``R(X -> Y, N)`` semantics).
* :class:`ProbeOp` -- verify a fully-bound atom for the whole batch with
  one :meth:`contains_many` call.
* :class:`ProjectDedupOp` -- project the surviving assignments onto the
  head terms and deduplicate, preserving first-derivation order.

Because the bulk access methods resolve each *distinct* key once per
batch, batched execution touches at most -- and on skewed workloads far
fewer than -- the tuples the per-assignment reference path touches; both
stay within the plan's :attr:`~repro.core.plans.Plan.fanout_bound`.

:func:`execute_per_tuple` keeps the pre-pipeline recursive per-assignment
executor alive as the reference semantics: differential tests assert the
pipeline agrees with it, and :mod:`repro.bench` measures the speedup of
batched over per-tuple execution.

Every execution runs inside an :class:`ExecutionContext` -- the database
handle, a private per-execution :class:`AccessStats` (charged alongside
the database's cumulative counters, so concurrent executions never
contaminate each other's deltas), a change-log watermark and, for
refreshes, the net change slice past it.  All entry points accept either
a raw :class:`~repro.relational.instance.Database` (a fresh context is
opened) or an existing context.

On top of the standard path, every data operator has a *delta* face for
incremental scale independence (:mod:`repro.incremental`, Section 5):

* ``run_delta`` joins a batch against the in-memory change slice of the
  operator's relation instead of the stored data (zero tuples accessed);
* ``run_old`` evaluates against the pre-delta snapshot -- live lookups,
  corrected in memory by the slice.

:func:`execute_plan_delta` composes them into the standard delta rule:
for each operator level ``i`` with changes, levels ``< i`` run on the new
state, level ``i`` joins the change slice, levels ``> i`` run on the old
state -- so each affected derivation is produced (with its sign) exactly
once, one bulk database call per level, and the tuples accessed stay
within :func:`delta_fanout_bound`, a function of the slice size and the
access-rule bounds only.  :func:`execute_plan_counting` is the matching
initial pass: it returns per-answer derivation multiplicities, the state
that makes signed deltas composable under deletion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.core.access_schema import AccessRule, EmbeddedAccessRule
from repro.core.plans import FetchStep, Plan, ProbeStep
from repro.errors import IncrementalError, SchemaError
from repro.logic.ast import Atom, _as_variable
from repro.logic.evaluation import _bound_pattern, _extend, row_matches
from repro.logic.terms import Constant, Term, Variable
from repro.relational.instance import AccessStats, NetDelta, _plain

Row = tuple[object, ...]
Assignment = dict[Variable, object]
Batch = list[Assignment]
#: A batch whose assignments carry a derivation sign (+1 gained, -1 lost).
SignedBatch = list[tuple[Assignment, int]]


def _rewind_groups(
    groups: Sequence[tuple[Row, ...]],
    patterns: Sequence[Mapping[int, object]],
    net: Mapping[Row, int],
) -> tuple[tuple[Row, ...], ...]:
    """Correct current-state lookup ``groups`` back to the pre-delta
    snapshot: rows inserted since the watermark are dropped, rows deleted
    since it (and matching the pattern) are restored."""
    if not net:
        return tuple(groups)
    deleted = [row for row, sign in net.items() if sign < 0]
    adjusted: list[tuple[Row, ...]] = []
    for pattern, rows in zip(patterns, groups):
        rows = tuple(row for row in rows if net.get(row, 0) <= 0)
        restored = tuple(
            row
            for row in deleted
            if all(row[p] == _plain(v) for p, v in pattern.items())
        )
        adjusted.append(rows + restored)
    return tuple(adjusted)


def _rewind_membership(
    rows: Sequence[Sequence[object]],
    net: Mapping[Row, int],
    probe,
) -> tuple[bool, ...]:
    """Pre-delta membership verdicts: rows the slice says nothing about
    are probed against the current state via ``probe``; the rest are
    answered from the slice alone (deleted since the watermark -> present
    then; inserted since -> absent then)."""
    if not net:
        return tuple(probe([tuple(row) for row in rows]))
    verdicts: list[bool | None] = []
    unknown: list[Row] = []
    for row in rows:
        row = tuple(row)
        sign = net.get(row)
        if sign is None:
            verdicts.append(None)
            unknown.append(row)
        else:
            verdicts.append(sign < 0)
    if unknown:
        probed = iter(probe(unknown))
        verdicts = [next(probed) if v is None else v for v in verdicts]
    return tuple(verdicts)


class ExecutionContext:
    """The per-execution state threaded through every operator.

    One context = one execution: it owns the execution's private
    :attr:`stats` (every access is charged here *and* in the database's
    cumulative :attr:`~repro.relational.instance.Database.stats`), the
    change-log :attr:`watermark` the execution is positioned at, and --
    for delta executions -- the net change slice past that watermark.
    Contexts are cheap and never shared across executions; that is what
    makes per-execution accounting exact under concurrent traffic.

    ``views`` maps materialized-view names to their states
    (:class:`repro.views.ViewState` or anything with the same
    ``lookup``/``lookup_many``/``contains_many`` surface): view-assisted
    plans (:mod:`repro.views`) read views through the ``view_*`` methods
    below, charged to this execution's :attr:`stats` only -- the database
    cumulative counters see base-table traffic exclusively.  For delta
    executions, view answer changes ride in :attr:`delta` under the view
    name, exactly like a base relation's slice.
    """

    __slots__ = (
        "db",
        "stats",
        "watermark",
        "delta",
        "views",
        "_delta_rows",
        "_delta_index",
    )

    def __init__(
        self,
        db,
        stats: AccessStats | None = None,
        watermark: int | None = None,
        delta: NetDelta | None = None,
        caches: tuple[dict, dict] | None = None,
        views: Mapping[str, object] | None = None,
    ):
        self.db = db
        self.stats = AccessStats() if stats is None else stats
        self.watermark = db.change_log.watermark if watermark is None else watermark
        self.delta = delta
        self.views = views
        # Derived views of the slice (row tuples, per-position indexes).
        # ``caches`` lets consumers of one identical slice share them
        # across contexts (see ChangeLog.slice_caches); by default they
        # are private to this context.
        if caches is None:
            caches = ({}, {})
        self._delta_rows: dict[str, tuple[tuple[Row, int], ...]] = caches[0]
        self._delta_index: dict[tuple, dict[Row, list[tuple[Row, int]]]] = caches[1]

    def __repr__(self) -> str:
        delta = sum(len(rows) for rows in (self.delta or {}).values())
        return (
            f"ExecutionContext(watermark={self.watermark}, "
            f"delta={delta} rows, {self.stats.tuples_accessed} tuples accessed)"
        )

    # -- live reads (charged to this execution and the database) ---------

    def lookup(self, relation: str, pattern: Mapping[int, object]) -> tuple[Row, ...]:
        return self.db.lookup(relation, pattern, self.stats)

    def lookup_many(
        self, relation: str, patterns: Sequence[Mapping[int, object]]
    ) -> tuple[tuple[Row, ...], ...]:
        return self.db.lookup_many(relation, patterns, self.stats)

    def contains(self, relation: str, row: Sequence[object]) -> bool:
        return self.db.contains(relation, row, self.stats)

    def contains_many(
        self, relation: str, rows: Sequence[Sequence[object]]
    ) -> tuple[bool, ...]:
        return self.db.contains_many(relation, rows, self.stats)

    def scan(self, relation: str) -> tuple[Row, ...]:
        return self.db.scan(relation, self.stats)

    # -- the change slice ------------------------------------------------

    def delta_net(self, relation: str) -> Mapping[Row, int]:
        """The net signed changes of ``relation`` in this context's slice."""
        return (self.delta or {}).get(relation) or {}

    def delta_rows(self, relation: str) -> tuple[tuple[Row, int], ...]:
        """The slice of ``relation`` as ``(row, sign)`` pairs (memoized)."""
        rows = self._delta_rows.get(relation)
        if rows is None:
            rows = tuple(self.delta_net(relation).items())
            self._delta_rows[relation] = rows
        return rows

    def delta_index(
        self, relation: str, positions: tuple[int, ...]
    ) -> dict[Row, list[tuple[Row, int]]]:
        """The slice of ``relation`` hash-indexed on ``positions`` -- the
        in-memory twin of the database's per-position indexes, so a delta
        join costs O(batch + slice) instead of their product (memoized per
        (relation, positions))."""
        key = (relation, positions)
        index = self._delta_index.get(key)
        if index is None:
            index = {}
            for row, sign in self.delta_rows(relation):
                index.setdefault(tuple(row[p] for p in positions), []).append(
                    (row, sign)
                )
            self._delta_index[key] = index
        return index

    # -- pre-delta snapshot reads ----------------------------------------

    def lookup_many_old(
        self, relation: str, patterns: Sequence[Mapping[int, object]]
    ) -> tuple[tuple[Row, ...], ...]:
        """Bulk lookup against the *pre-delta* snapshot: the live index
        answers (accounted as usual), corrected in memory by the change
        slice -- tuples inserted since the watermark are dropped, tuples
        deleted since it are restored."""
        groups = self.db.lookup_many(relation, patterns, self.stats)
        return _rewind_groups(groups, patterns, self.delta_net(relation))

    def contains_many_old(
        self, relation: str, rows: Sequence[Row]
    ) -> tuple[bool, ...]:
        """Bulk membership against the pre-delta snapshot: rows the slice
        says nothing about are probed live; the rest are answered from the
        slice without touching the database."""
        return _rewind_membership(
            rows,
            self.delta_net(relation),
            lambda unknown: self.db.contains_many(relation, unknown, self.stats),
        )

    # -- materialized-view reads ------------------------------------------

    def _view(self, name: str):
        """The state of the materialized view ``name``, or a clear error
        when the context was opened without view states (a view-assisted
        plan must be executed through the Engine, which prepares them)."""
        state = (self.views or {}).get(name)
        if state is None:
            raise SchemaError(
                f"plan reads materialized view {name!r} but the execution "
                f"context carries no state for it; execute view-assisted "
                f"plans through the Engine (or pass views= when opening "
                f"the ExecutionContext)"
            )
        return state

    def view_lookup(
        self, name: str, pattern: Mapping[int, object]
    ) -> tuple[Row, ...]:
        """All rows of view ``name`` matching ``pattern``, charged to this
        execution's stats (views live outside the database, so its
        cumulative counters are untouched)."""
        return self._view(name).lookup(pattern, self.stats)

    def view_lookup_many(
        self, name: str, patterns: Sequence[Mapping[int, object]]
    ) -> tuple[tuple[Row, ...], ...]:
        return self._view(name).lookup_many(patterns, self.stats)

    def view_contains(self, name: str, row: Sequence[object]) -> bool:
        return self._view(name).contains(row, self.stats)

    def view_contains_many(
        self, name: str, rows: Sequence[Sequence[object]]
    ) -> tuple[bool, ...]:
        return self._view(name).contains_many(rows, self.stats)

    def view_lookup_many_old(
        self, name: str, patterns: Sequence[Mapping[int, object]]
    ) -> tuple[tuple[Row, ...], ...]:
        """Bulk view lookup against the pre-delta snapshot: the current
        view store, corrected in memory by the view's answer slice."""
        groups = self._view(name).lookup_many(patterns, self.stats)
        return _rewind_groups(groups, patterns, self.delta_net(name))

    def view_contains_many_old(
        self, name: str, rows: Sequence[Row]
    ) -> tuple[bool, ...]:
        return _rewind_membership(
            rows,
            self.delta_net(name),
            lambda unknown: self._view(name).contains_many(unknown, self.stats),
        )


def _as_context(db) -> ExecutionContext:
    """Open a fresh context over ``db``, or pass an existing one through."""
    return db if isinstance(db, ExecutionContext) else ExecutionContext(db)


def _term_value(term: Term, assignment: Mapping[Variable, object]) -> object:
    return term.value if isinstance(term, Constant) else assignment[term]


@dataclass(frozen=True)
class FilterOp:
    """Filter a batch on compile-time-known equality ``conditions`` (pairs
    of terms whose values must agree) and copy parameter values onto their
    equality-class representatives (``binds``: source -> target variable).
    """

    conditions: tuple[tuple[Term, Term], ...] = ()
    binds: tuple[tuple[Variable, Variable], ...] = ()

    def __str__(self) -> str:
        parts = [f"{a} = {b}" for a, b in self.conditions]
        parts += [f"?{target} := ?{source}" for source, target in self.binds]
        return "filter " + ", ".join(parts)

    def run(self, ctx: ExecutionContext, batch: Batch) -> Batch:
        out: Batch = []
        for assignment in batch:
            if any(
                _term_value(a, assignment) != _term_value(b, assignment)
                for a, b in self.conditions
            ):
                continue
            if self.binds:
                assignment = dict(assignment)
                for source, target in self.binds:
                    assignment[target] = assignment[source]
            out.append(assignment)
        return out


@dataclass(frozen=True)
class FetchOp:
    """Fetch ``atom``'s matching tuples for a whole batch with one
    :meth:`lookup_many` keyed on ``key_positions``, then join each row
    group back to its source assignment.

    ``check_positions`` are bound positions outside the lookup key (they
    arise under embedded access rules, whose access path is keyed on the
    rule inputs only); rows that disagree there are filtered out.
    ``bind_positions`` are the variable positions the fetch newly binds --
    a repeated new variable must bind consistently across its positions.
    ``dedup_positions`` (embedded rules only) deduplicate the fetched
    output projections per source assignment, matching the rule's
    "at most N distinct Y-projections" contract.  ``rule`` is the access
    rule the originating :class:`~repro.core.plans.FetchStep` fetches
    through (``None`` for hand-built operators): it plays no part in
    execution, but lets diagnostics and error messages name the exact
    rule behind an operator.
    """

    atom: Atom
    key_positions: tuple[int, ...]
    check_positions: tuple[int, ...]
    bind_positions: tuple[int, ...]
    dedup_positions: tuple[int, ...] | None = None
    rule: AccessRule | None = None

    def __post_init__(self):
        # Pre-resolve every term access so the per-row loops below touch
        # no Atom/Term machinery (frozen dataclass: set via object).
        terms = self.atom.terms
        object.__setattr__(
            self,
            "_key_consts",
            tuple(
                (p, terms[p].value)
                for p in self.key_positions
                if isinstance(terms[p], Constant)
            ),
        )
        object.__setattr__(
            self,
            "_key_vars",
            tuple(
                (p, terms[p])
                for p in self.key_positions
                if not isinstance(terms[p], Constant)
            ),
        )
        object.__setattr__(
            self,
            "_check_items",
            tuple(
                (p, isinstance(terms[p], Constant),
                 terms[p].value if isinstance(terms[p], Constant) else terms[p])
                for p in self.check_positions
            ),
        )
        object.__setattr__(
            self, "_bind_items", tuple((p, terms[p]) for p in self.bind_positions)
        )
        object.__setattr__(
            self,
            "_key_items",
            tuple(
                (isinstance(terms[p], Constant),
                 terms[p].value if isinstance(terms[p], Constant) else terms[p])
                for p in self.key_positions
            ),
        )

    def __str__(self) -> str:
        binds = ", ".join(f"?{self.atom.terms[p]}" for p in self.bind_positions)
        return f"fetch {self.atom} [key {self.key_positions}]" + (
            f" binding {binds}" if binds else ""
        )

    def _patterns(self, assignments) -> list[dict[int, object]]:
        key_consts = self._key_consts
        key_vars = self._key_vars
        patterns = []
        for assignment in assignments:
            pattern = dict(key_consts)
            for p, var in key_vars:
                pattern[p] = assignment[var]
            patterns.append(pattern)
        return patterns

    # The lookup source, overridden by ViewScanOp to read a view store
    # instead of the database; every other line of run/run_old/run_delta
    # is shared.

    def _lookup_many(self, ctx: ExecutionContext, patterns):
        return ctx.lookup_many(self.atom.relation, patterns)

    def _lookup_many_old(self, ctx: ExecutionContext, patterns):
        return ctx.lookup_many_old(self.atom.relation, patterns)

    def run(self, ctx: ExecutionContext, batch: Batch) -> Batch:
        groups = self._lookup_many(ctx, self._patterns(batch))
        check_items = self._check_items
        bind_items = self._bind_items
        dedup_positions = self.dedup_positions
        out: Batch = []
        append = out.append
        for assignment, rows in zip(batch, groups):
            if not rows:
                continue
            seen: set[Row] | None = set() if dedup_positions is not None else None
            for row in rows:
                ok = True
                for p, is_const, ref in check_items:
                    if (ref if is_const else assignment[ref]) != row[p]:
                        ok = False
                        break
                if not ok:
                    continue
                if seen is not None:
                    projection = tuple(row[p] for p in dedup_positions)
                    if projection in seen:
                        continue
                    seen.add(projection)
                extended = dict(assignment)
                for p, term in bind_items:
                    if term in extended:
                        if extended[term] != row[p]:
                            ok = False
                            break
                    else:
                        extended[term] = row[p]
                if ok:
                    append(extended)
        return out

    def _check_delta_supported(self) -> None:
        # An embedded-rule fetch deduplicates output projections *per
        # source assignment*, so its derivation count is not a product of
        # per-level multiplicities and signed deltas cannot be exact.
        if self.dedup_positions is not None:
            rule = f" '{self.rule}'" if self.rule is not None else ""
            raise IncrementalError(
                f"delta execution does not support embedded-rule fetches: "
                f"relation {self.atom.relation!r} is fetched through embedded "
                f"access rule{rule} ({self}); declare a plain rule on "
                f"{self.atom.relation!r} to refresh this query incrementally"
            )

    def _extend_signed(self, assignment: Assignment, row: Row) -> Assignment | None:
        """Extend ``assignment`` with ``row``'s bind positions, or None on a
        repeated-variable mismatch (the slow-path twin of the inlined loop
        in :meth:`run`)."""
        extended = dict(assignment)
        for p, term in self._bind_items:
            if term in extended:
                if extended[term] != row[p]:
                    return None
            else:
                extended[term] = row[p]
        return extended

    def run_delta(self, ctx: ExecutionContext, batch: SignedBatch) -> SignedBatch:
        """Join a signed batch against the net change slice of ``atom``'s
        relation -- the delta face of :meth:`run`.  The slice lives in
        memory, so this accesses zero stored tuples."""
        self._check_delta_supported()
        if not batch or not ctx.delta_net(self.atom.relation):
            return []
        out: SignedBatch = []
        if self.key_positions:
            index = ctx.delta_index(self.atom.relation, self.key_positions)
            key_items = self._key_items
            for assignment, sign in batch:
                key = tuple(
                    ref if is_const else assignment[ref] for is_const, ref in key_items
                )
                for row, row_sign in index.get(key, ()):
                    extended = self._extend_signed(assignment, row)
                    if extended is not None:
                        out.append((extended, sign * row_sign))
        else:
            # A keyless fetch (full-relation rule): every slice row joins
            # with every assignment.
            delta = ctx.delta_rows(self.atom.relation)
            for assignment, sign in batch:
                for row, row_sign in delta:
                    extended = self._extend_signed(assignment, row)
                    if extended is not None:
                        out.append((extended, sign * row_sign))
        return out

    def run_old(self, ctx: ExecutionContext, batch: SignedBatch) -> SignedBatch:
        """:meth:`run` against the pre-delta snapshot, preserving signs:
        one live :meth:`lookup_many` (accounted as usual), corrected in
        memory by the change slice."""
        self._check_delta_supported()
        if not batch:
            return []
        groups = self._lookup_many_old(ctx, self._patterns(a for a, _ in batch))
        check_items = self._check_items
        out: SignedBatch = []
        for (assignment, sign), rows in zip(batch, groups):
            for row in rows:
                if any(
                    (ref if is_const else assignment[ref]) != row[p]
                    for p, is_const, ref in check_items
                ):
                    continue
                extended = self._extend_signed(assignment, row)
                if extended is not None:
                    out.append((extended, sign))
        return out


@dataclass(frozen=True)
class ProbeOp:
    """Verify the fully-bound ``atom`` for a whole batch with one
    :meth:`contains_many` membership call."""

    atom: Atom

    def __post_init__(self):
        object.__setattr__(
            self,
            "_items",
            tuple(
                (isinstance(t, Constant), t.value if isinstance(t, Constant) else t)
                for t in self.atom.terms
            ),
        )

    def __str__(self) -> str:
        return f"probe {self.atom}"

    def _row(self, assignment: Assignment) -> Row:
        return tuple(
            ref if is_const else assignment[ref] for is_const, ref in self._items
        )

    # The membership source, overridden by ViewProbeOp to probe a view
    # store instead of the database.

    def _contains_many(self, ctx: ExecutionContext, rows):
        return ctx.contains_many(self.atom.relation, rows)

    def _contains_many_old(self, ctx: ExecutionContext, rows):
        return ctx.contains_many_old(self.atom.relation, rows)

    def run(self, ctx: ExecutionContext, batch: Batch) -> Batch:
        if not batch:
            return batch
        rows = [self._row(assignment) for assignment in batch]
        verdicts = self._contains_many(ctx, rows)
        return [a for a, present in zip(batch, verdicts) if present]

    def run_delta(self, ctx: ExecutionContext, batch: SignedBatch) -> SignedBatch:
        """Probe the change slice instead of the database: an assignment
        survives only if its fully-bound row effectively changed, carrying
        the change's sign.  Accesses zero stored tuples."""
        net = ctx.delta_net(self.atom.relation)
        if not net or not batch:
            return []
        out: SignedBatch = []
        for assignment, sign in batch:
            row_sign = net.get(self._row(assignment), 0)
            if row_sign:
                out.append((assignment, sign * row_sign))
        return out

    def run_old(self, ctx: ExecutionContext, batch: SignedBatch) -> SignedBatch:
        """:meth:`run` against the pre-delta snapshot, preserving signs."""
        if not batch:
            return []
        rows = [self._row(assignment) for assignment, _ in batch]
        verdicts = self._contains_many_old(ctx, rows)
        return [entry for entry, present in zip(batch, verdicts) if present]


@dataclass(frozen=True)
class ViewScanOp(FetchOp):
    """A :class:`FetchOp` whose atom names a materialized view
    (:mod:`repro.views`): only the lookup source differs -- batches are
    answered from the execution context's view store, indexed on the key
    positions and charged to the per-execution stats only, instead of
    the database.  ``run``/``run_old``/``run_delta`` are inherited: a
    view's answer changes ride in ``ctx.delta`` under the view's name,
    so the delta face joins them exactly like a base relation's slice,
    and the old face rewinds the current view store by that slice."""

    def __str__(self) -> str:
        binds = ", ".join(f"?{self.atom.terms[p]}" for p in self.bind_positions)
        return f"view scan {self.atom} [key {self.key_positions}]" + (
            f" binding {binds}" if binds else ""
        )

    def _lookup_many(self, ctx: ExecutionContext, patterns):
        return ctx.view_lookup_many(self.atom.relation, patterns)

    def _lookup_many_old(self, ctx: ExecutionContext, patterns):
        return ctx.view_lookup_many_old(self.atom.relation, patterns)


@dataclass(frozen=True)
class ViewProbeOp(ProbeOp):
    """A :class:`ProbeOp` whose membership source is a materialized
    view's store instead of the database; everything else -- including
    the delta face, which reads the view's answer changes from
    ``ctx.delta`` under the view's name -- is inherited."""

    def __str__(self) -> str:
        return f"view probe {self.atom}"

    def _contains_many(self, ctx: ExecutionContext, rows):
        return ctx.view_contains_many(self.atom.relation, rows)

    def _contains_many_old(self, ctx: ExecutionContext, rows):
        return ctx.view_contains_many_old(self.atom.relation, rows)


@dataclass(frozen=True)
class ProjectDedupOp:
    """Project each assignment onto the head terms and deduplicate,
    preserving first-derivation order.  Terminal operator: its output
    batch holds answer rows, not assignments."""

    head_terms: tuple[Term, ...]

    def __post_init__(self):
        object.__setattr__(
            self,
            "_items",
            tuple(
                (isinstance(t, Constant), t.value if isinstance(t, Constant) else t)
                for t in self.head_terms
            ),
        )

    def __str__(self) -> str:
        head = ", ".join(
            str(t) if isinstance(t, Constant) else f"?{t}" for t in self.head_terms
        )
        return f"project/dedup ({head})"

    def _row(self, assignment: Assignment) -> Row:
        return tuple(
            ref if is_const else assignment[ref] for is_const, ref in self._items
        )

    def run(self, ctx: ExecutionContext, batch: Batch) -> list[Row]:
        answers: dict[Row, None] = {}
        for assignment in batch:
            answers.setdefault(self._row(assignment), None)
        return list(answers)

    def counts(self, batch: Batch) -> dict[Row, int]:
        """Project like :meth:`run` but return per-answer derivation
        multiplicities (first-derivation order) instead of deduplicating --
        the materialized state of :mod:`repro.incremental`."""
        counts: dict[Row, int] = {}
        for assignment in batch:
            row = self._row(assignment)
            counts[row] = counts.get(row, 0) + 1
        return counts

    def accumulate_signed(self, batch: SignedBatch, into: dict[Row, int]) -> None:
        """Fold a signed batch's head projections into ``into`` -- the
        delta face of :meth:`counts`."""
        for assignment, sign in batch:
            row = self._row(assignment)
            into[row] = into.get(row, 0) + sign


Operator = FilterOp | FetchOp | ProbeOp | ViewScanOp | ViewProbeOp | ProjectDedupOp


def _parameter_constraints(
    plan: Plan,
) -> tuple[
    tuple[tuple[Term, Term], ...],
    tuple[tuple[Variable, Variable], ...],
    set[Variable],
]:
    """The equality constraints ``plan``'s parameters carry, and the set of
    representative variables they leave bound.

    A parameter whose equality class collapsed to a constant becomes a
    value check; two parameters in the same class must agree; a parameter
    whose representative is a *different* variable has its value copied
    onto that representative (the substituted atoms mention only
    representatives).
    """
    subst = plan.query.equality_substitution() or {}
    conditions: list[tuple[Term, Term]] = []
    binds: list[tuple[Variable, Variable]] = []
    bound: set[Variable] = set()
    first_with_rep: dict[Variable, Variable] = {}
    for v in plan.parameters:
        rep = subst.get(v, v)
        if isinstance(rep, Constant):
            conditions.append((v, rep))
            continue
        if rep in first_with_rep:
            conditions.append((first_with_rep[rep], v))
            continue
        first_with_rep[rep] = v
        if rep != v:
            binds.append((v, rep))
        bound.add(rep)
    return tuple(conditions), tuple(binds), bound


def build_pipeline(plan: Plan) -> tuple[Operator, ...]:
    """Lower ``plan``'s fetch/probe steps into the physical operator
    pipeline.  The set of bound variables before each step is known at
    compile time, so every operator's key/check/bind positions are static.
    """
    if not plan.satisfiable:
        return ()
    conditions, binds, bound = _parameter_constraints(plan)
    ops: list[Operator] = []
    if conditions or binds:
        ops.append(FilterOp(conditions, binds))
    view_relations = plan.view_relations
    for step in plan.steps:
        is_view = step.atom.relation in view_relations
        if isinstance(step, ProbeStep):
            ops.append(ViewProbeOp(step.atom) if is_view else ProbeOp(step.atom))
            continue
        terms = step.atom.terms
        determined = tuple(
            p
            for p, t in enumerate(terms)
            if isinstance(t, Constant) or t in bound
        )
        if isinstance(step.rule, EmbeddedAccessRule):
            key = step.input_positions
            check = tuple(p for p in determined if p not in key)
            dedup = step.output_positions
            bindable = step.output_positions
        else:
            key = determined
            check = ()
            dedup = None
            bindable = tuple(range(len(terms)))
        bind = tuple(
            p
            for p in bindable
            if isinstance(terms[p], Variable) and terms[p] not in bound
        )
        op_type = ViewScanOp if is_view else FetchOp
        ops.append(op_type(step.atom, key, check, bind, dedup, step.rule))
        bound.update(step.binds)
    ops.append(ProjectDedupOp(plan.head_terms))
    return tuple(ops)


def pipeline_for(plan: Plan) -> tuple[Operator, ...]:
    """The memoized pipeline for ``plan`` (lowered once, reused by every
    execution; plans are immutable so the cache can never go stale)."""
    ops = plan._pipeline
    if ops is None:
        ops = build_pipeline(plan)
        plan._pipeline = ops
    return ops


def merge_parameter_values(
    parameters: Mapping[object, object] | None, kwargs: Mapping[str, object]
) -> Assignment:
    """Merge a parameter mapping and keyword arguments into one
    variable-keyed assignment (kwargs win on collision).  Shared by
    :meth:`Plan.execute`, the executor entry points and the Engine facade.

    ``Constant``-wrapped values are unwrapped here, once: assignments hold
    plain values everywhere downstream, so every comparison -- filter
    equalities, fetched-row consistency checks, in-memory delta joins --
    sees the same representation the database stores.
    """
    values: Assignment = {}
    for source in (parameters or {}), kwargs:
        for key, value in source.items():
            values[_as_variable(key)] = (
                value.value if isinstance(value, Constant) else value
            )
    return values


def _seed_assignment(
    plan: Plan,
    parameters: Mapping[object, object] | None,
    kwargs: Mapping[str, object],
) -> Assignment:
    """Validate the supplied parameter values against the plan's declared
    parameters and return the initial assignment."""
    values = merge_parameter_values(parameters, kwargs)
    declared = set(plan.parameters)
    extra = [v for v in values if v not in declared]
    if extra:
        raise ValueError(
            "bindings for variables that are not plan parameters "
            "(recompile with them as parameters to constrain the answer): "
            + ", ".join(f"?{v}" for v in extra)
        )
    missing = [v for v in plan.parameters if v not in values]
    if missing:
        raise ValueError(
            "missing plan parameters: " + ", ".join(f"?{v}" for v in missing)
        )
    return {v: values[v] for v in plan.parameters}


def execute_plan(
    plan: Plan,
    db,
    parameters: Mapping[object, object] | None = None,
    **kwargs: object,
) -> tuple[Row, ...]:
    """Run ``plan`` on ``db`` (a Database or an :class:`ExecutionContext`)
    through the batched operator pipeline and return the deduplicated
    answer tuples.

    Parameter values may be passed as a mapping (keys are variables or
    their names) and/or as keyword arguments.
    """
    seed = _seed_assignment(plan, parameters, kwargs)
    if not plan.satisfiable:
        return ()
    ctx = _as_context(db)
    batch: list = [seed]
    for op in pipeline_for(plan):
        batch = op.run(ctx, batch)
    return tuple(batch)


def execute_plan_counting(
    plan: Plan,
    db,
    parameters: Mapping[object, object] | None = None,
    *,
    profiles: list["OperatorProfile"] | None = None,
    **kwargs: object,
) -> dict[Row, int]:
    """Like :func:`execute_plan`, but return ``{answer row: derivation
    multiplicity}`` in first-derivation order instead of deduplicating.

    The multiplicities are the materialized state incremental maintenance
    needs: an answer row is in the result exactly while its count is
    positive, and :func:`execute_plan_delta` produces the signed count
    changes a batch of updates causes.  Pass ``profiles`` (a list) to
    collect one :class:`OperatorProfile` per operator along the way.

    Raises :class:`~repro.errors.IncrementalError` (eagerly, whatever the
    data) for plans that fetch through an embedded access rule: their
    per-assignment projection dedup makes the multiplicities
    non-compositional, so the counts would be unusable as incremental
    state.
    """
    check_delta_supported(plan)
    seed = _seed_assignment(plan, parameters, kwargs)
    if not plan.satisfiable:
        return {}
    ctx = _as_context(db)
    ops = pipeline_for(plan)
    batch: list = [seed]
    for op in ops[:-1]:
        if profiles is None:
            batch = op.run(ctx, batch)
            continue
        before = ctx.stats.snapshot()
        out = op.run(ctx, batch)
        _profile(profiles, str(op), len(batch), len(out), ctx.stats.since(before))
        batch = out
    counts = ops[-1].counts(batch)
    _profile(profiles, str(ops[-1]), len(batch), len(counts), AccessStats())
    return counts


def execute_plan_delta(
    plan: Plan,
    ctx: ExecutionContext,
    parameters: Mapping[object, object] | None = None,
    *,
    profiles: list["OperatorProfile"] | None = None,
    seed: Assignment | None = None,
    **kwargs: object,
) -> dict[Row, int]:
    """Evaluate the standard delta rule for ``plan`` over ``ctx``'s change
    slice: the signed derivation-count change of every affected answer row
    (positive -- derivations gained, negative -- lost).

    For each operator level ``i`` whose relation effectively changed,
    levels before ``i`` run on the new state (shared across levels via one
    incrementally extended prefix batch), level ``i`` joins the in-memory
    slice (``run_delta``, zero tuples accessed), and levels after ``i``
    run on the pre-delta snapshot (``run_old``) -- so every derivation
    gained or lost is produced exactly once however many levels changed,
    with one bulk database call per level.  Levels whose relation did not
    change cost nothing beyond the prefix they already share; an empty
    slice costs zero accesses.  Applying the result to the counts of
    :func:`execute_plan_counting` reproduces a from-scratch run on the
    new state.

    Raises :class:`~repro.errors.IncrementalError` for plans that fetch
    through an embedded access rule (no exact counting semantics) --
    eagerly, whichever relations changed, so an unsupported plan can
    never sometimes succeed depending on the slice.

    ``seed`` is the refresh hot path's escape hatch: a pre-validated
    parameter assignment (variable-keyed, e.g. kept from the initial
    counting execution) that skips per-call validation.
    """
    check_delta_supported(plan)
    if seed is None:
        seed = _seed_assignment(plan, parameters, kwargs)
    else:
        seed = dict(seed)
    changes: dict[Row, int] = {}
    if not plan.satisfiable:
        return changes
    ops = pipeline_for(plan)
    prefix: Batch = [seed]
    for op in ops[:-1]:
        if isinstance(op, FilterOp):
            prefix = op.run(ctx, prefix)
            _profile(profiles, op, 1, len(prefix), AccessStats())
    if not prefix:
        return changes
    levels = [op for op in ops[:-1] if not isinstance(op, FilterOp)]
    project = ops[-1]
    relevant = {
        i for i, level in enumerate(levels) if ctx.delta_rows(level.atom.relation)
    }
    if not relevant:
        return changes
    last = max(relevant)

    def run_measured(op, label: str, batch, method):
        """One operator application, profiled only when asked to be."""
        if profiles is None:
            return method(ctx, batch)
        before = ctx.stats.snapshot()
        out = method(ctx, batch)
        _profile(profiles, f"{label} {op}", len(batch), len(out), ctx.stats.since(before))
        return out

    for i, level in enumerate(levels):
        if i in relevant:
            signed = run_measured(
                level, f"Δ[{i + 1}]", [(a, 1) for a in prefix], level.run_delta
            )
            for j in range(i + 1, len(levels)):
                if not signed:
                    break
                signed = run_measured(
                    levels[j], f"old[{j + 1}]", signed, levels[j].run_old
                )
            project.accumulate_signed(signed, changes)
        if i >= last:
            break
        prefix = run_measured(level, f"new[{i + 1}]", prefix, level.run)
        if not prefix:
            break
    changes = {row: change for row, change in changes.items() if change}
    _profile(profiles, project, len(changes), len(changes), AccessStats())
    return changes


def delta_fanout_bound(plan: Plan, delta_sizes: Mapping[str, int]) -> int:
    """An upper bound on the tuples :func:`execute_plan_delta` can access
    for ``plan`` given a change slice with ``delta_sizes`` net rows per
    relation -- a function of the slice and the access-rule bounds only,
    never of the database size (the incremental analogue of
    :attr:`~repro.core.plans.Plan.fanout_bound`).

    Per changed level: the prefix runs on the new state (its fetches are
    bounded exactly as in the full plan), the slice join itself touches no
    stored tuples, and the old-state suffix fans out from at most
    ``prefix branches x slice rows`` seeds through the remaining rules'
    bounds.  Relations absent from ``delta_sizes`` contribute nothing.
    """
    if not plan.satisfiable:
        return 0
    steps = plan.steps
    total = 0
    prefix_access = 0  # accesses to run the levels before i on the new state
    branches = 1  # how many assignments the prefix can carry
    for i, step in enumerate(steps):
        changed = delta_sizes.get(step.atom.relation, 0)
        if changed:
            seeds = branches * changed
            suffix = 0
            for later in steps[i + 1 :]:
                if isinstance(later, ProbeStep):
                    suffix += seeds
                else:
                    suffix += seeds * later.rule.bound
                    seeds *= later.rule.bound
            total += prefix_access + suffix
        if isinstance(step, ProbeStep):
            prefix_access += branches
        else:
            prefix_access += branches * step.rule.bound
            branches *= step.rule.bound
    return total


def check_delta_supported(plan: Plan) -> None:
    """Raise :class:`~repro.errors.IncrementalError` unless every fetch of
    ``plan`` goes through a plain or full access rule (embedded rules have
    no exact counting semantics -- see :meth:`FetchOp.run_delta`)."""
    for step in plan.steps:
        if isinstance(step, FetchStep) and isinstance(step.rule, EmbeddedAccessRule):
            raise IncrementalError(
                f"plan step '{step}' fetches relation "
                f"{step.atom.relation!r} through the embedded access rule "
                f"'{step.rule}'; incremental (delta) execution supports "
                f"only plain and full access rules -- declare a plain rule "
                f"on {step.atom.relation!r} to refresh this query "
                f"incrementally"
            )


@dataclass(frozen=True)
class OperatorProfile:
    """Measured behaviour of one operator during one execution."""

    operator: str
    rows_in: int
    rows_out: int
    tuples_accessed: int
    indexed_lookups: int
    full_scans: int


def _profile(
    profiles: list[OperatorProfile] | None,
    operator: object,
    rows_in: int,
    rows_out: int,
    delta: AccessStats,
) -> None:
    """Append one operator's measurements to ``profiles`` (when given);
    ``operator`` is stringified only then, keeping the unprofiled hot
    path free of rendering work."""
    if profiles is not None:
        profiles.append(
            OperatorProfile(
                str(operator),
                rows_in,
                rows_out,
                delta.tuples_accessed,
                delta.indexed_lookups,
                delta.full_scans,
            )
        )


@dataclass(frozen=True)
class PlanProfile:
    """One plan execution's answers plus per-operator row counts and
    access accounting (the payload of ``explain_analyze``)."""

    plan: Plan
    rows: tuple[Row, ...]
    operators: tuple[OperatorProfile, ...]

    @property
    def tuples_accessed(self) -> int:
        return sum(op.tuples_accessed for op in self.operators)

    def __str__(self) -> str:
        lines = []
        params = ", ".join(f"?{v}" for v in self.plan.parameters) or "none"
        lines.append(f"parameters: {params}")
        for i, op in enumerate(self.operators, 1):
            lines.append(
                f"{i}. {op.operator}  "
                f"[rows {op.rows_in} -> {op.rows_out}, "
                f"{op.tuples_accessed} tuples, "
                f"{op.indexed_lookups} lookups, {op.full_scans} scans]"
            )
        lines.append(
            f"answers: {len(self.rows)} rows, "
            f"{self.tuples_accessed} tuples accessed "
            f"(bound {self.plan.fanout_bound})"
        )
        return "\n".join(lines)


def profile_plan(
    plan: Plan,
    db,
    parameters: Mapping[object, object] | None = None,
    **kwargs: object,
) -> PlanProfile:
    """Like :func:`execute_plan`, but record per-operator row counts and
    access-statistics deltas along the way."""
    seed = _seed_assignment(plan, parameters, kwargs)
    if not plan.satisfiable:
        return PlanProfile(plan, (), ())
    ctx = _as_context(db)
    profiles: list[OperatorProfile] = []
    batch: list = [seed]
    for op in pipeline_for(plan):
        before = ctx.stats.snapshot()
        out = op.run(ctx, batch)
        _profile(profiles, str(op), len(batch), len(out), ctx.stats.since(before))
        batch = out
    return PlanProfile(plan, tuple(batch), tuple(profiles))


# -- the per-tuple reference path ----------------------------------------


def execute_per_tuple(
    plan: Plan,
    db,
    parameters: Mapping[object, object] | None = None,
    **kwargs: object,
) -> tuple[Row, ...]:
    """The pre-pipeline reference executor: a recursive generator that
    issues one :meth:`lookup`/:meth:`contains` per partial assignment.

    Semantically identical to :func:`execute_plan`; kept as the baseline
    for differential tests and for :mod:`repro.bench`'s batched-vs-
    per-tuple comparison.  Not the production path.
    """
    seed = _seed_assignment(plan, parameters, kwargs)
    if not plan.satisfiable:
        return ()
    ctx = _as_context(db)
    conditions, binds, _ = _parameter_constraints(plan)
    for a, b in conditions:
        if _term_value(a, seed) != _term_value(b, seed):
            return ()
    for source, target in binds:
        seed[target] = seed[source]
    answers: dict[Row, None] = {}
    for final in _run_per_tuple(plan, ctx, 0, seed):
        answers.setdefault(
            tuple(_term_value(t, final) for t in plan.head_terms), None
        )
    return tuple(answers)


def _run_per_tuple(
    plan: Plan, ctx: ExecutionContext, i: int, assignment: Assignment
) -> Iterator[Assignment]:
    if i == len(plan.steps):
        yield assignment
        return
    step = plan.steps[i]
    is_view = step.atom.relation in plan.view_relations
    if isinstance(step, ProbeStep):
        row = tuple(_term_value(t, assignment) for t in step.atom.terms)
        present = (
            ctx.view_contains(step.atom.relation, row)
            if is_view
            else ctx.contains(step.atom.relation, row)
        )
        if present:
            yield from _run_per_tuple(plan, ctx, i + 1, assignment)
        return

    atom = step.atom
    if is_view:
        # View rules are always plain: key on every bound position and
        # read the view store (charged to the per-execution stats only).
        pattern = _bound_pattern(atom, assignment)
        for row in ctx.view_lookup(atom.relation, pattern):
            extended = _extend(atom, row, assignment)
            if extended is not None:
                yield from _run_per_tuple(plan, ctx, i + 1, extended)
        return
    if isinstance(step.rule, EmbeddedAccessRule):
        # The access path is keyed on the rule's inputs only; other bound
        # positions are filtered after the fetch, and only the rule's
        # outputs become bound (deduplicated projections).
        pattern = {
            p: _term_value(atom.terms[p], assignment)
            for p in step.input_positions
        }
        seen: set[Row] = set()
        for row in ctx.lookup(atom.relation, pattern):
            if not row_matches(atom, row, assignment):
                continue
            projection = tuple(row[p] for p in step.output_positions)
            if projection in seen:
                continue
            seen.add(projection)
            extended = dict(assignment)
            consistent = True
            for p in step.output_positions:
                term = atom.terms[p]
                if isinstance(term, Constant):
                    continue
                if term in extended and extended[term] != row[p]:
                    consistent = False
                    break
                extended[term] = row[p]
            if consistent:
                yield from _run_per_tuple(plan, ctx, i + 1, extended)
        return

    # Plain (or full) access rule: key the lookup on every position that
    # is already bound -- a superset of the rule's inputs, so the declared
    # bound still applies and the lookup is at least as selective as the
    # access path guarantees.
    pattern = _bound_pattern(atom, assignment)
    for row in ctx.lookup(atom.relation, pattern):
        extended = _extend(atom, row, assignment)
        if extended is not None:
            yield from _run_per_tuple(plan, ctx, i + 1, extended)

"""The QDSI decision problem: scale independence on a *given* database.

``QDSI(Q, D, A, M)`` asks whether ``Q`` can be answered on the concrete
database ``D`` while accessing at most ``M`` tuples through the access
paths of ``A``.  The decider is constructive:

1. if ``Q`` is controlled under ``A``, compile the scale-independent plan
   and execute it with access accounting -- the measured access count
   certifies (or refutes) the budget;
2. otherwise fall back to direct evaluation with accounting: on a small
   enough ``D`` even a scan-based evaluation may fit the budget, which is
   exactly what makes QDSI database-specific.

The result records the number of tuples actually accessed and, when one
was used, the witnessing plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.access_schema import AccessSchema
from repro.core.executor import execute_plan
from repro.core.plans import Plan, compile_plan
from repro.errors import NotControlledError
from repro.logic.cq import ConjunctiveQuery
from repro.relational.instance import Database


@dataclass(frozen=True)
class QDSIResult:
    """The verdict for one QDSI instance."""

    scale_independent: bool
    tuples_accessed: int
    budget: int
    answers: tuple[tuple[object, ...], ...]
    plan: Plan | None
    reason: str

    def __bool__(self) -> bool:
        return self.scale_independent


def decide_qdsi(
    query,
    database: Database,
    access: AccessSchema,
    budget: int,
) -> QDSIResult:
    """Decide whether ``query`` is scale independent in ``database`` under
    ``access`` within a budget of ``budget`` tuple accesses.

    ``budget`` must be a non-negative integer; anything else (negative,
    bool, float, ...) raises :class:`ValueError` rather than producing a
    nonsense verdict.
    """
    if isinstance(budget, bool) or not isinstance(budget, int):
        raise ValueError(
            f"budget must be a non-negative integer number of tuple "
            f"accesses, got {budget!r}"
        )
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")

    plan: Plan | None = None
    if isinstance(query, ConjunctiveQuery):
        try:
            plan = compile_plan(query, access)
        except NotControlledError:
            plan = None

    before = database.stats.snapshot()
    if plan is not None:
        answers = execute_plan(plan, database)
        how = "scale-independent plan"
    else:
        answers = query.evaluate(database)
        how = "direct evaluation"
    accessed = database.stats.since(before).tuples_accessed

    within = accessed <= budget
    reason = (
        f"{how} accessed {accessed} tuples "
        f"({'within' if within else 'over'} budget {budget})"
    )
    return QDSIResult(within, accessed, budget, tuple(answers), plan, reason)

"""Constant interning for the columnar hot path.

Every lookup key the executor builds, every stored row and every seed
parameter funnels through hash-based containers: per-position hash
indexes, distinct-key dedup dicts, answer dedup dicts.  Strings dominate
real workloads (names, cities, urls), and CPython caches a str's hash on
the object -- so making sure one *shared* object represents each
distinct string value means its hash is computed once for the lifetime
of the process, and dict probes hit the identity fast path (``x is y``)
before ever falling back to ``__eq__``.

:func:`intern_value` is that funnel: exact ``str`` values go through
:func:`sys.intern`; everything else (ints, floats, tuples, arbitrary
hashables -- and ``str`` subclasses, which :func:`sys.intern` rejects)
passes through untouched.  :meth:`Database.insert_many
<repro.relational.instance.Database.insert_many>` interns stored rows,
the executor interns operator constants at lowering time and parameter
values at seed time, so by the time a key tuple meets an index both
sides of every comparison are the same object.
"""

from __future__ import annotations

from sys import intern as _intern

__all__ = ["intern_value", "intern_row"]


def intern_value(value: object) -> object:
    """``value``, interned when it is an exact ``str`` (identity-stable,
    hash cached once process-wide); any other value unchanged."""
    return _intern(value) if type(value) is str else value


def intern_row(row: tuple) -> tuple:
    """``row`` with every exact-``str`` component interned.  Returns the
    original tuple object when nothing needed interning (the common
    all-numeric case allocates nothing)."""
    for v in row:
        if type(v) is str:
            return tuple(_intern(v) if type(v) is str else v for v in row)
    return row

"""Database instances: a logging, validating facade over a storage backend.

A :class:`Database` owns the schema, the access accounting and the
mutation log; the tuples themselves live in a pluggable
:class:`~repro.relational.backends.base.StorageBackend` chosen at
construction (``Database(schema, backend=...)``) -- the in-memory
dict-index :class:`~repro.relational.backends.memory.MemoryBackend` by
default, an out-of-core
:class:`~repro.relational.backends.sqlite.SqliteBackend`, or a
hash-sharded :class:`~repro.relational.backends.sharded.ShardedBackend`
composite.  The backend's bulk methods (``lookup_keys``,
``contains_rows``, ``scan``) are bound directly onto the instance, so
the executor's compiled closures dispatch straight into the backend with
no facade frame in between -- swapping backends never recompiles a plan.

Every read goes through :meth:`Database.lookup`, :meth:`Database.scan`,
:meth:`Database.contains` or their bulk forms and is recorded in
:class:`AccessStats` -- this accounting is the empirical measuring stick
for scale independence: a plan is scale independent precisely when the
number of tuples it accesses is bounded regardless of the database size.

The bulk forms exist for the batch-at-a-time executor
(:mod:`repro.core.executor`): one call serves a whole batch of patterns,
resolving each *distinct* key (and accounting it) exactly once, however
many patterns in the batch share it.

Accounting is two-level.  :attr:`Database.stats` is the cumulative,
engine-wide view: every read charges it, forever.  Each read method also
accepts an optional ``stats`` argument -- an extra :class:`AccessStats`
charged *in addition* -- which is how the executor's per-execution
:class:`~repro.core.executor.ExecutionContext` isolates one execution's
delta from concurrent traffic: the per-execution object is confined to
its execution, so its counters are exact even when many executions share
the database.  (The shared cumulative counters use plain unlocked
increments; under heavy cross-thread traffic they are approximate.)

Mutations go through :meth:`Database.insert_many` and
:meth:`Database.delete_many` (with :meth:`add` / :meth:`delete` as
single-tuple conveniences).  The facade validates and interns every row,
hands the batch to the backend, and appends each *effective* change (an
insert of a genuinely new tuple, a delete of a genuinely present one) to
the database's monotonic :class:`ChangeLog` -- the substrate of
incremental scale independence (:mod:`repro.incremental`, Section 5 of
the paper): a refresh replays only the log suffix past its watermark.
:meth:`Database.bulk_load` is the one escape hatch: an *unlogged*
streaming load for populating an empty database at out-of-core scale,
permitted only while the change log is empty so no watermark can be
bypassed.  Mutations are single-writer: interleaving them with
concurrent executions is undefined.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import UpdateError
from repro.logic.terms import Constant
from repro.relational.backends.base import StorageBackend
from repro.relational.backends.memory import MemoryBackend
from repro.relational.interning import intern_row
from repro.relational.schema import DatabaseSchema

Row = tuple[object, ...]

#: The signed net effect of a log slice, per relation: ``+1`` for a tuple
#: inserted since the watermark, ``-1`` for one deleted since it (tuples
#: whose changes cancel out are dropped).
NetDelta = dict[str, dict[Row, int]]

#: Rows per backend call on the :meth:`Database.bulk_load` streaming path.
_LOAD_CHUNK = 50_000


@dataclass(slots=True)
class AccessStats:
    """Counters for tuple accesses performed against a database."""

    tuples_accessed: int = 0
    indexed_lookups: int = 0
    full_scans: int = 0

    def reset(self) -> None:
        self.tuples_accessed = 0
        self.indexed_lookups = 0
        self.full_scans = 0

    def snapshot(self) -> "AccessStats":
        return AccessStats(self.tuples_accessed, self.indexed_lookups, self.full_scans)

    def since(self, earlier: "AccessStats") -> "AccessStats":
        """The accesses performed between ``earlier`` and now."""
        return AccessStats(
            self.tuples_accessed - earlier.tuples_accessed,
            self.indexed_lookups - earlier.indexed_lookups,
            self.full_scans - earlier.full_scans,
        )


@dataclass(frozen=True)
class ChangeEntry:
    """One effective mutation: transaction id, ``"+"``/``"-"``, relation,
    tuple."""

    tid: int
    op: str  # "+" (insert) or "-" (delete)
    relation: str
    row: Row

    def __str__(self) -> str:
        return f"[{self.tid}] {self.op}{self.relation}{self.row!r}"


#: How many memoized slices (``net_since`` results and their derived-view
#: caches) a ChangeLog retains; one per *live* watermark is enough, so
#: this bounds memory while letting many refresh cadences coexist.
SLICE_CACHE_SIZE = 8


class ChangeLog:
    """A monotonic, append-only log of effective database mutations.

    Transaction ids are dense and 0-based, so the :attr:`watermark` --
    the id the *next* entry will get -- doubles as a position: the slice
    ``entries_since(w)`` is exactly the changes a reader holding
    watermark ``w`` has not yet seen.  The log never forgets; truncation
    would invalidate outstanding watermarks.
    """

    __slots__ = ("_entries", "_net_cache", "_slice_caches")

    def __init__(self) -> None:
        self._entries: list[ChangeEntry] = []
        # Memoized net_since slices keyed by (from, to): many incremental
        # results refreshing off one log hit the identical slice, and the
        # log is append-only so an entry can never go stale.  Both memos
        # evict least-recently-used entries past SLICE_CACHE_SIZE -- a
        # reader's hot slice survives however many cold watermarks other
        # readers probe in between.
        self._net_cache: OrderedDict[tuple[int, int], NetDelta] = OrderedDict()
        self._slice_caches: OrderedDict[tuple[int, int], tuple[dict, dict]] = (
            OrderedDict()
        )

    @property
    def watermark(self) -> int:
        """The id the next appended entry will receive."""
        return len(self._entries)

    def append(self, op: str, relation: str, row: Row) -> ChangeEntry:
        if op not in ("+", "-"):
            raise ValueError(f"change op must be '+' or '-', got {op!r}")
        entry = ChangeEntry(len(self._entries), op, relation, row)
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ChangeEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> ChangeEntry:
        return self._entries[index]

    def __repr__(self) -> str:
        return f"ChangeLog({len(self._entries)} entries)"

    def entries_since(self, watermark: int) -> tuple[ChangeEntry, ...]:
        """Every entry with ``tid >= watermark``, in log order."""
        if watermark < 0:
            raise ValueError(f"watermark must be >= 0, got {watermark}")
        return tuple(self._entries[watermark:])

    def net_since(self, watermark: int) -> NetDelta:
        """The net signed delta of the slice past ``watermark``.

        With set semantics every tuple nets to ``+1`` (absent then,
        present now), ``-1`` (present then, absent now) or cancels out
        entirely; cancelled tuples and unchanged relations are omitted,
        so an empty mapping means "nothing effectively changed".
        """
        if watermark < 0:
            raise ValueError(f"watermark must be >= 0, got {watermark}")
        key = (watermark, len(self._entries))
        cached = self._net_cache.get(key)
        if cached is not None:
            self._net_cache.move_to_end(key)
            return cached
        net: NetDelta = {}
        for entry in self._entries[watermark:]:
            rows = net.setdefault(entry.relation, {})
            sign = rows.get(entry.row, 0) + (1 if entry.op == "+" else -1)
            if sign:
                rows[entry.row] = sign
            else:
                del rows[entry.row]
        net = {relation: rows for relation, rows in net.items() if rows}
        self._net_cache[key] = net
        while len(self._net_cache) > SLICE_CACHE_SIZE:
            self._net_cache.popitem(last=False)
        return net

    def slice_caches(self, watermark: int) -> tuple[dict, dict]:
        """Shared derived-view memos (row tuples, per-position indexes) for
        the slice from ``watermark`` to now, handed to the execution
        context so every consumer refreshing off the identical slice
        reuses one set of in-memory delta indexes.  Safe because the log
        is append-only: a (from, to) pair names one immutable slice."""
        key = (watermark, len(self._entries))
        caches = self._slice_caches.get(key)
        if caches is None:
            caches = ({}, {})
            self._slice_caches[key] = caches
            while len(self._slice_caches) > SLICE_CACHE_SIZE:
                self._slice_caches.popitem(last=False)
        else:
            self._slice_caches.move_to_end(key)
        return caches


def _plain(value: object) -> object:
    """Unwrap a :class:`Constant` into its underlying value."""
    return value.value if isinstance(value, Constant) else value


class Database:
    """A database instance over a :class:`DatabaseSchema`.

    Tuples are stored with set semantics but preserve insertion order
    (within a shard, for sharded backends).  Values must be hashable.
    Storage and index maintenance live in the backend; the facade
    validates rows, unwraps :class:`Constant`, interns strings, accounts
    accesses and records every effective mutation in :attr:`change_log`.

    The backend's charged bulk reads are bound straight onto the
    instance, so ``db.lookup_keys`` / ``db.contains_rows`` / ``db.scan``
    *are* the backend's methods -- the executor's hot path pays no
    facade indirection.
    """

    __slots__ = (
        "schema",
        "stats",
        "change_log",
        "_backend",
        # Backend methods bound per instance -- see the class docstring.
        "lookup_keys",
        "contains_rows",
        "scan",
    )

    def __init__(
        self,
        schema: DatabaseSchema,
        data: Mapping[str, Iterable[Sequence[object]]] | None = None,
        *,
        backend: StorageBackend | None = None,
    ):
        self.schema = schema
        self.stats = AccessStats()
        self.change_log = ChangeLog()
        if backend is None:
            backend = MemoryBackend()
        backend.attach(schema, self.stats)
        self._backend = backend
        self.lookup_keys = backend.lookup_keys
        self.contains_rows = backend.contains_rows
        self.scan = backend.scan
        if data:
            for name, rows in data.items():
                self.insert_many(name, rows)

    @property
    def backend(self) -> StorageBackend:
        """The storage backend this database was constructed over."""
        return self._backend

    # -- updates ---------------------------------------------------------

    def add(self, relation: str, row: Sequence[object]) -> bool:
        """Insert ``row`` into ``relation`` (validated against the schema).

        Returns True if the tuple was new, False if it was already present.
        """
        return self.insert_many(relation, (row,)) == 1

    def delete(self, relation: str, row: Sequence[object]) -> bool:
        """Delete ``row`` from ``relation``; True if it was present."""
        return self.delete_many(relation, (row,)) == 1

    def insert_many(
        self, relation: str, rows: Iterable[Sequence[object]], *, strict: bool = False
    ) -> int:
        """Insert ``rows`` into ``relation``, logging each effective insert.

        Already-present tuples are skipped (set semantics) -- unless
        ``strict``, in which case they raise :class:`UpdateError`, the
        paper's Section 5 well-formedness condition that insertions be
        disjoint from the database.  Returns the number of tuples
        actually inserted.

        Row-at-a-time semantics are preserved across the batched backend
        call: if validation or a strict check fails at row *k*, rows
        ``0..k-1`` have been applied and logged.
        """
        prepared = self._prepare("+", relation, rows)
        if strict:
            absent = self._backend.probe_rows(relation, prepared)
            fresh: set[Row] = set()
            for i, (row, present) in enumerate(zip(prepared, absent)):
                if present or row in fresh:
                    self._apply("+", relation, prepared[:i])
                    raise UpdateError(
                        f"insert of {row!r} into {relation!r}: tuple is "
                        f"already present"
                    )
                fresh.add(row)
        return self._apply("+", relation, prepared)

    def delete_many(
        self, relation: str, rows: Iterable[Sequence[object]], *, strict: bool = False
    ) -> int:
        """Delete ``rows`` from ``relation``, logging each effective delete.

        Absent tuples are skipped -- unless ``strict``, in which case they
        raise :class:`UpdateError`, the Section 5 well-formedness
        condition that deletions be contained in the database.  Returns
        the number of tuples actually deleted.  Row-at-a-time semantics
        are preserved exactly as in :meth:`insert_many`.
        """
        prepared = self._prepare("-", relation, rows)
        if strict:
            present_before = self._backend.probe_rows(relation, prepared)
            gone: set[Row] = set()
            for i, (row, present) in enumerate(zip(prepared, present_before)):
                if not present or row in gone:
                    self._apply("-", relation, prepared[:i])
                    raise UpdateError(
                        f"delete of {row!r} from {relation!r}: tuple is "
                        f"not present"
                    )
                gone.add(row)
        return self._apply("-", relation, prepared)

    def bulk_load(self, relation: str, rows: Iterable[Sequence[object]]) -> int:
        """Stream ``rows`` into ``relation`` *without* logging -- the
        out-of-core population fast path.

        Rows are validated and interned like any insert, but applied in
        backend chunks and never recorded in :attr:`change_log`, so a
        million-row load does not pin a million tuples in the Python
        heap.  Only permitted while the change log is empty: once any
        logged mutation exists, an unlogged load would slip past
        outstanding incremental watermarks, so it raises
        :class:`UpdateError`.  Returns the number of tuples actually
        inserted (set semantics).
        """
        rel = self.schema.relation(relation)
        if len(self.change_log):
            raise UpdateError(
                f"bulk_load into {relation!r}: the change log is not empty; "
                f"unlogged loads are only sound on a pristine database -- "
                f"use insert_many for logged mutations"
            )
        backend = self._backend
        validate = rel.validate_tuple
        applied = 0
        chunk: list[Row] = []
        for row in rows:
            chunk.append(intern_row(validate(tuple(map(_plain, row)))))
            if len(chunk) >= _LOAD_CHUNK:
                applied += backend.load_rows(relation, chunk)
                chunk = []
        if chunk:
            applied += backend.load_rows(relation, chunk)
        return applied

    def _prepare(self, op: str, relation: str, rows: Iterable[Sequence[object]]) -> list[Row]:
        """Validate, unwrap and intern a mutation batch.  If a row fails
        validation, the valid prefix is applied and logged before the
        error propagates -- the historical row-at-a-time behaviour."""
        rel = self.schema.relation(relation)
        validate = rel.validate_tuple
        prepared: list[Row] = []
        try:
            for row in rows:
                prepared.append(intern_row(validate(tuple(map(_plain, row)))))
        except BaseException:
            self._apply(op, relation, prepared)
            raise
        return prepared

    def _apply(self, op: str, relation: str, prepared: Sequence[Row]) -> int:
        """Apply a prepared batch through the backend and log each
        effective change, preserving input order."""
        if not prepared:
            return 0
        if op == "+":
            flags = self._backend.insert_rows(relation, prepared)
        else:
            flags = self._backend.delete_rows(relation, prepared)
        append = self.change_log.append
        applied = 0
        for row, flag in zip(prepared, flags):
            if flag:
                append(op, relation, row)
                applied += 1
        return applied

    # -- reads (accounted) -----------------------------------------------
    #
    # ``lookup_keys``, ``contains_rows`` and ``scan`` are the backend's
    # own bound methods (see __init__); the signatures and accounting
    # contract are documented on StorageBackend.  The dict-shaped
    # conveniences below normalize into those three.

    def lookup(
        self,
        relation: str,
        pattern: Mapping[int, object],
        stats: AccessStats | None = None,
    ) -> tuple[Row, ...]:
        """All tuples of ``relation`` matching ``pattern`` (a mapping from
        0-based positions to required values).

        An empty pattern degenerates to a full scan; otherwise the lookup
        goes through the backend's index on the pattern's positions.
        Accessed tuples are counted in :attr:`stats` (and in ``stats``,
        when given -- the per-execution accounting hook).
        """
        if not pattern:
            return self.scan(relation, stats)
        positions = tuple(sorted(pattern))
        key = tuple(_plain(pattern[p]) for p in positions)
        groups = self.lookup_keys(relation, positions, (key,), stats)
        return tuple(groups[0])

    def lookup_many(
        self,
        relation: str,
        patterns: Sequence[Mapping[int, object]],
        stats: AccessStats | None = None,
    ) -> tuple[tuple[Row, ...], ...]:
        """Bulk :meth:`lookup`: one result group per pattern, aligned with
        ``patterns``.

        Each *distinct* ``(positions, key)`` pair is resolved against the
        backend -- and counted in :attr:`stats` -- exactly once, however
        many patterns in the batch share it; this is what makes
        batch-at-a-time execution touch strictly fewer tuples than one
        :meth:`lookup` per pattern.  An empty pattern degenerates to one
        (shared, counted-once) full scan.
        """
        patterns = list(patterns)
        if not patterns:
            return ()
        self.schema.relation(relation)
        # Shape every pattern into (sorted positions, plain key), batching
        # the distinct keys per position set so each set costs the backend
        # one bulk call.  Patterns in one batch almost always share their
        # position set (the executor's lookup keys are static per
        # operator), so the sort is re-run only when positions change.
        shaped: list[tuple[tuple[int, ...], Row] | None] = []
        by_positions: dict[tuple[int, ...], dict[Row, None]] = {}
        last_keys = None
        positions: tuple[int, ...] = ()
        for pattern in patterns:
            if not pattern:
                shaped.append(None)
                continue
            keys = pattern.keys()
            if keys != last_keys:
                positions = tuple(sorted(keys))
                last_keys = keys
            key = tuple([_plain(pattern[p]) for p in positions])
            shaped.append((positions, key))
            by_positions.setdefault(positions, {})[key] = None
        fetched: dict[tuple[tuple[int, ...], Row], tuple[Row, ...]] = {}
        for pos, keyset in by_positions.items():
            distinct = list(keyset)
            for key, group in zip(
                distinct, self.lookup_keys(relation, pos, distinct, stats)
            ):
                fetched[pos, key] = tuple(group)
        scanned: tuple[Row, ...] | None = None
        groups: list[tuple[Row, ...]] = []
        for shape in shaped:
            if shape is None:
                if scanned is None:
                    scanned = self.scan(relation, stats)
                groups.append(scanned)
            else:
                groups.append(fetched[shape])
        return tuple(groups)

    def contains(
        self,
        relation: str,
        row: Sequence[object],
        stats: AccessStats | None = None,
    ) -> bool:
        """Membership probe via the backend's full-row index (accesses at
        most one tuple)."""
        rel = self.schema.relation(relation)
        row = rel.validate_tuple(tuple(_plain(v) for v in row))
        return self.contains_rows(relation, (row,), stats)[0]

    def contains_many(
        self,
        relation: str,
        rows: Sequence[Sequence[object]],
        stats: AccessStats | None = None,
    ) -> tuple[bool, ...]:
        """Bulk :meth:`contains`: one verdict per row, aligned with
        ``rows``.  Each *distinct* row is probed (and accounted) once,
        however often it recurs in the batch."""
        rel = self.schema.relation(relation)
        validate = rel.validate_tuple
        shaped = [validate(tuple(map(_plain, row))) for row in rows]
        if not shaped:
            return ()
        return self.contains_rows(relation, shaped, stats)

    # -- unaccounted metadata --------------------------------------------

    def size(self, relation: str | None = None) -> int:
        """The number of tuples in ``relation``, or in the whole database."""
        if relation is None:
            return sum(self._backend.count(name) for name in self.schema.names)
        self.schema.relation(relation)
        return self._backend.count(relation)

    def active_domain(self) -> tuple[object, ...]:
        """Every value occurring in the database, in first-occurrence order."""
        return tuple(
            dict.fromkeys(
                value
                for name in self.schema.names
                for row in self._backend.iter_rows(name)
                for value in row
            )
        )

    def reset_stats(self) -> None:
        self.stats.reset()

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{name}: {self._backend.count(name)}" for name in self.schema.names
        )
        return f"Database({{{sizes}}})"

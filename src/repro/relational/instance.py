"""In-memory database instances with hash indexes and access accounting.

A :class:`Database` stores each relation as an ordered set of tuples and
builds per-relation hash indexes lazily, one per set of lookup positions.
Every read goes through :meth:`Database.lookup`, :meth:`Database.scan`,
:meth:`Database.contains` or their bulk forms :meth:`Database.lookup_many`
and :meth:`Database.contains_many`, and is recorded in
:class:`AccessStats` -- this accounting is the empirical measuring stick
for scale independence: a plan is scale independent precisely when the
number of tuples it accesses is bounded regardless of the database size.

The bulk forms exist for the batch-at-a-time executor
(:mod:`repro.core.executor`): one call serves a whole batch of patterns,
resolving each *distinct* key against the hash index (and accounting it)
exactly once, however many patterns in the batch share it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.errors import SchemaError
from repro.logic.terms import Constant
from repro.relational.schema import DatabaseSchema

Row = tuple[object, ...]


@dataclass
class AccessStats:
    """Counters for tuple accesses performed against a database."""

    tuples_accessed: int = 0
    indexed_lookups: int = 0
    full_scans: int = 0

    def reset(self) -> None:
        self.tuples_accessed = 0
        self.indexed_lookups = 0
        self.full_scans = 0

    def snapshot(self) -> "AccessStats":
        return AccessStats(self.tuples_accessed, self.indexed_lookups, self.full_scans)

    def since(self, earlier: "AccessStats") -> "AccessStats":
        """The accesses performed between ``earlier`` and now."""
        return AccessStats(
            self.tuples_accessed - earlier.tuples_accessed,
            self.indexed_lookups - earlier.indexed_lookups,
            self.full_scans - earlier.full_scans,
        )


def _plain(value: object) -> object:
    """Unwrap a :class:`Constant` into its underlying value."""
    return value.value if isinstance(value, Constant) else value


class Database:
    """A database instance over a :class:`DatabaseSchema`.

    Tuples are stored with set semantics but preserve insertion order.
    Values must be hashable.  Hash indexes are created lazily per
    ``(relation, positions)`` pair and maintained incrementally on insert.
    """

    __slots__ = ("schema", "stats", "_rows", "_indexes")

    def __init__(
        self,
        schema: DatabaseSchema,
        data: Mapping[str, Iterable[Sequence[object]]] | None = None,
    ):
        self.schema = schema
        self.stats = AccessStats()
        self._rows: dict[str, dict[Row, None]] = {name: {} for name in schema.names}
        self._indexes: dict[str, dict[tuple[int, ...], dict[Row, list[Row]]]] = {
            name: {} for name in schema.names
        }
        if data:
            for name, rows in data.items():
                for row in rows:
                    self.add(name, row)

    # -- updates ---------------------------------------------------------

    def add(self, relation: str, row: Sequence[object]) -> bool:
        """Insert ``row`` into ``relation`` (validated against the schema).

        Returns True if the tuple was new, False if it was already present.
        """
        rel = self.schema.relation(relation)
        row = rel.validate_tuple(tuple(_plain(v) for v in row))
        rows = self._rows[relation]
        if row in rows:
            return False
        rows[row] = None
        for positions, index in self._indexes[relation].items():
            key = tuple(row[p] for p in positions)
            index.setdefault(key, []).append(row)
        return True

    # -- reads (accounted) -----------------------------------------------

    def lookup(self, relation: str, pattern: Mapping[int, object]) -> tuple[Row, ...]:
        """All tuples of ``relation`` matching ``pattern`` (a mapping from
        0-based positions to required values).

        An empty pattern degenerates to a full scan; otherwise the lookup
        goes through a hash index on the pattern's positions.  Accessed
        tuples are counted in :attr:`stats`.
        """
        if not pattern:
            return self.scan(relation)
        rel = self.schema.relation(relation)
        positions = tuple(sorted(pattern))
        self._check_positions(relation, rel.arity, positions)
        index = self._index_for(relation, positions)
        key = tuple(_plain(pattern[p]) for p in positions)
        rows = index.get(key, ())
        self.stats.indexed_lookups += 1
        self.stats.tuples_accessed += len(rows)
        return tuple(rows)

    def lookup_many(
        self, relation: str, patterns: Sequence[Mapping[int, object]]
    ) -> tuple[tuple[Row, ...], ...]:
        """Bulk :meth:`lookup`: one result group per pattern, aligned with
        ``patterns``.

        Each *distinct* ``(positions, key)`` pair is resolved against the
        hash index -- and counted in :attr:`stats` -- exactly once, however
        many patterns in the batch share it; this is what makes
        batch-at-a-time execution touch strictly fewer tuples than one
        :meth:`lookup` per pattern.  An empty pattern degenerates to one
        (shared, counted-once) full scan.
        """
        patterns = list(patterns)
        if not patterns:
            return ()
        rel = self.schema.relation(relation)
        stats = self.stats
        groups: list[tuple[Row, ...]] = []
        fetched: dict[tuple[tuple[int, ...], Row], tuple[Row, ...]] = {}
        scanned: tuple[Row, ...] | None = None
        # Patterns in one batch almost always share their position set
        # (the executor's lookup keys are static per operator), so the
        # index is re-resolved only when the positions actually change.
        last_keys = None
        positions: tuple[int, ...] = ()
        index: dict[Row, list[Row]] = {}
        for pattern in patterns:
            if not pattern:
                if scanned is None:
                    scanned = self.scan(relation)
                groups.append(scanned)
                continue
            keys = pattern.keys()
            if keys != last_keys:
                positions = tuple(sorted(keys))
                self._check_positions(relation, rel.arity, positions)
                index = self._index_for(relation, positions)
                last_keys = keys
            key = tuple([_plain(pattern[p]) for p in positions])
            rows = fetched.get((positions, key))
            if rows is None:
                rows = tuple(index.get(key, ()))
                stats.indexed_lookups += 1
                stats.tuples_accessed += len(rows)
                fetched[positions, key] = rows
            groups.append(rows)
        return tuple(groups)

    def scan(self, relation: str) -> tuple[Row, ...]:
        """All tuples of ``relation`` -- a full scan, counted as such."""
        self.schema.relation(relation)
        rows = tuple(self._rows[relation])
        self.stats.full_scans += 1
        self.stats.tuples_accessed += len(rows)
        return rows

    def contains(self, relation: str, row: Sequence[object]) -> bool:
        """Membership probe via the all-positions hash index (accesses at
        most one tuple)."""
        rel = self.schema.relation(relation)
        row = rel.validate_tuple(tuple(_plain(v) for v in row))
        self.stats.indexed_lookups += 1
        present = row in self._rows[relation]
        if present:
            self.stats.tuples_accessed += 1
        return present

    def contains_many(
        self, relation: str, rows: Sequence[Sequence[object]]
    ) -> tuple[bool, ...]:
        """Bulk :meth:`contains`: one verdict per row, aligned with
        ``rows``.  Each *distinct* row is probed (and accounted) once,
        however often it recurs in the batch."""
        rel = self.schema.relation(relation)
        store = self._rows[relation]
        verdicts: list[bool] = []
        probed: dict[Row, bool] = {}
        for row in rows:
            row = rel.validate_tuple(tuple(_plain(v) for v in row))
            present = probed.get(row)
            if present is None:
                self.stats.indexed_lookups += 1
                present = row in store
                if present:
                    self.stats.tuples_accessed += 1
                probed[row] = present
            verdicts.append(present)
        return tuple(verdicts)

    # -- unaccounted metadata --------------------------------------------

    def size(self, relation: str | None = None) -> int:
        """The number of tuples in ``relation``, or in the whole database."""
        if relation is None:
            return sum(len(rows) for rows in self._rows.values())
        self.schema.relation(relation)
        return len(self._rows[relation])

    def active_domain(self) -> tuple[object, ...]:
        """Every value occurring in the database, in first-occurrence order."""
        return tuple(
            dict.fromkeys(
                value for rows in self._rows.values() for row in rows for value in row
            )
        )

    def reset_stats(self) -> None:
        self.stats.reset()

    def __repr__(self) -> str:
        sizes = ", ".join(f"{name}: {len(rows)}" for name, rows in self._rows.items())
        return f"Database({{{sizes}}})"

    # -- internals -------------------------------------------------------

    @staticmethod
    def _check_positions(
        relation: str, arity: int, positions: tuple[int, ...]
    ) -> None:
        for p in positions:
            if not 0 <= p < arity:
                raise SchemaError(
                    f"position {p} out of range for relation {relation!r} "
                    f"of arity {arity}"
                )

    def _index_for(
        self, relation: str, positions: tuple[int, ...]
    ) -> dict[Row, list[Row]]:
        index = self._indexes[relation].get(positions)
        if index is None:
            index = {}
            for row in self._rows[relation]:
                index.setdefault(tuple(row[p] for p in positions), []).append(row)
            self._indexes[relation][positions] = index
        return index

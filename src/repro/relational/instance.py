"""In-memory database instances with hash indexes and access accounting.

A :class:`Database` stores each relation as an ordered set of tuples and
builds per-relation hash indexes lazily, one per set of lookup positions.
Every read goes through :meth:`Database.lookup`, :meth:`Database.scan`,
:meth:`Database.contains` or their bulk forms :meth:`Database.lookup_many`
and :meth:`Database.contains_many`, and is recorded in
:class:`AccessStats` -- this accounting is the empirical measuring stick
for scale independence: a plan is scale independent precisely when the
number of tuples it accesses is bounded regardless of the database size.

The bulk forms exist for the batch-at-a-time executor
(:mod:`repro.core.executor`): one call serves a whole batch of patterns,
resolving each *distinct* key against the hash index (and accounting it)
exactly once, however many patterns in the batch share it.

Accounting is two-level.  :attr:`Database.stats` is the cumulative,
engine-wide view: every read charges it, forever.  Each read method also
accepts an optional ``stats`` argument -- an extra :class:`AccessStats`
charged *in addition* -- which is how the executor's per-execution
:class:`~repro.core.executor.ExecutionContext` isolates one execution's
delta from concurrent traffic: the per-execution object is confined to
its execution, so its counters are exact even when many executions share
the database.  (The shared cumulative counters use plain unlocked
increments; under heavy cross-thread traffic they are approximate.)

Mutations go through :meth:`Database.insert_many` and
:meth:`Database.delete_many` (with :meth:`add` / :meth:`delete` as
single-tuple conveniences).  Both maintain every lazily built
per-position hash index in place and append each *effective* change (an
insert of a genuinely new tuple, a delete of a genuinely present one) to
the database's monotonic :class:`ChangeLog` -- the substrate of
incremental scale independence (:mod:`repro.incremental`, Section 5 of
the paper): a refresh replays only the log suffix past its watermark.
Mutations are single-writer: interleaving them with concurrent
executions is undefined.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError, UpdateError
from repro.logic.terms import Constant
from repro.relational.interning import intern_row
from repro.relational.schema import DatabaseSchema

Row = tuple[object, ...]

#: The signed net effect of a log slice, per relation: ``+1`` for a tuple
#: inserted since the watermark, ``-1`` for one deleted since it (tuples
#: whose changes cancel out are dropped).
NetDelta = dict[str, dict[Row, int]]


@dataclass(slots=True)
class AccessStats:
    """Counters for tuple accesses performed against a database."""

    tuples_accessed: int = 0
    indexed_lookups: int = 0
    full_scans: int = 0

    def reset(self) -> None:
        self.tuples_accessed = 0
        self.indexed_lookups = 0
        self.full_scans = 0

    def snapshot(self) -> "AccessStats":
        return AccessStats(self.tuples_accessed, self.indexed_lookups, self.full_scans)

    def since(self, earlier: "AccessStats") -> "AccessStats":
        """The accesses performed between ``earlier`` and now."""
        return AccessStats(
            self.tuples_accessed - earlier.tuples_accessed,
            self.indexed_lookups - earlier.indexed_lookups,
            self.full_scans - earlier.full_scans,
        )


@dataclass(frozen=True)
class ChangeEntry:
    """One effective mutation: transaction id, ``"+"``/``"-"``, relation,
    tuple."""

    tid: int
    op: str  # "+" (insert) or "-" (delete)
    relation: str
    row: Row

    def __str__(self) -> str:
        return f"[{self.tid}] {self.op}{self.relation}{self.row!r}"


#: How many memoized slices (``net_since`` results and their derived-view
#: caches) a ChangeLog retains; one per *live* watermark is enough, so
#: this bounds memory while letting many refresh cadences coexist.
SLICE_CACHE_SIZE = 8


class ChangeLog:
    """A monotonic, append-only log of effective database mutations.

    Transaction ids are dense and 0-based, so the :attr:`watermark` --
    the id the *next* entry will get -- doubles as a position: the slice
    ``entries_since(w)`` is exactly the changes a reader holding
    watermark ``w`` has not yet seen.  The log never forgets; truncation
    would invalidate outstanding watermarks.
    """

    __slots__ = ("_entries", "_net_cache", "_slice_caches")

    def __init__(self) -> None:
        self._entries: list[ChangeEntry] = []
        # Memoized net_since slices keyed by (from, to): many incremental
        # results refreshing off one log hit the identical slice, and the
        # log is append-only so an entry can never go stale.  Both memos
        # evict least-recently-used entries past SLICE_CACHE_SIZE -- a
        # reader's hot slice survives however many cold watermarks other
        # readers probe in between.
        self._net_cache: OrderedDict[tuple[int, int], NetDelta] = OrderedDict()
        self._slice_caches: OrderedDict[tuple[int, int], tuple[dict, dict]] = (
            OrderedDict()
        )

    @property
    def watermark(self) -> int:
        """The id the next appended entry will receive."""
        return len(self._entries)

    def append(self, op: str, relation: str, row: Row) -> ChangeEntry:
        if op not in ("+", "-"):
            raise ValueError(f"change op must be '+' or '-', got {op!r}")
        entry = ChangeEntry(len(self._entries), op, relation, row)
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ChangeEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> ChangeEntry:
        return self._entries[index]

    def __repr__(self) -> str:
        return f"ChangeLog({len(self._entries)} entries)"

    def entries_since(self, watermark: int) -> tuple[ChangeEntry, ...]:
        """Every entry with ``tid >= watermark``, in log order."""
        if watermark < 0:
            raise ValueError(f"watermark must be >= 0, got {watermark}")
        return tuple(self._entries[watermark:])

    def net_since(self, watermark: int) -> NetDelta:
        """The net signed delta of the slice past ``watermark``.

        With set semantics every tuple nets to ``+1`` (absent then,
        present now), ``-1`` (present then, absent now) or cancels out
        entirely; cancelled tuples and unchanged relations are omitted,
        so an empty mapping means "nothing effectively changed".
        """
        if watermark < 0:
            raise ValueError(f"watermark must be >= 0, got {watermark}")
        key = (watermark, len(self._entries))
        cached = self._net_cache.get(key)
        if cached is not None:
            self._net_cache.move_to_end(key)
            return cached
        net: NetDelta = {}
        for entry in self._entries[watermark:]:
            rows = net.setdefault(entry.relation, {})
            sign = rows.get(entry.row, 0) + (1 if entry.op == "+" else -1)
            if sign:
                rows[entry.row] = sign
            else:
                del rows[entry.row]
        net = {relation: rows for relation, rows in net.items() if rows}
        self._net_cache[key] = net
        while len(self._net_cache) > SLICE_CACHE_SIZE:
            self._net_cache.popitem(last=False)
        return net

    def slice_caches(self, watermark: int) -> tuple[dict, dict]:
        """Shared derived-view memos (row tuples, per-position indexes) for
        the slice from ``watermark`` to now, handed to the execution
        context so every consumer refreshing off the identical slice
        reuses one set of in-memory delta indexes.  Safe because the log
        is append-only: a (from, to) pair names one immutable slice."""
        key = (watermark, len(self._entries))
        caches = self._slice_caches.get(key)
        if caches is None:
            caches = ({}, {})
            self._slice_caches[key] = caches
            while len(self._slice_caches) > SLICE_CACHE_SIZE:
                self._slice_caches.popitem(last=False)
        else:
            self._slice_caches.move_to_end(key)
        return caches


def _plain(value: object) -> object:
    """Unwrap a :class:`Constant` into its underlying value."""
    return value.value if isinstance(value, Constant) else value


class Database:
    """A database instance over a :class:`DatabaseSchema`.

    Tuples are stored with set semantics but preserve insertion order.
    Values must be hashable.  Hash indexes are created lazily per
    ``(relation, positions)`` pair and maintained incrementally on insert
    and delete; every mutation is recorded in :attr:`change_log`.
    """

    __slots__ = ("schema", "stats", "change_log", "_rows", "_indexes")

    def __init__(
        self,
        schema: DatabaseSchema,
        data: Mapping[str, Iterable[Sequence[object]]] | None = None,
    ):
        self.schema = schema
        self.stats = AccessStats()
        self.change_log = ChangeLog()
        self._rows: dict[str, dict[Row, None]] = {name: {} for name in schema.names}
        self._indexes: dict[str, dict[tuple[int, ...], dict[Row, list[Row]]]] = {
            name: {} for name in schema.names
        }
        if data:
            for name, rows in data.items():
                self.insert_many(name, rows)

    # -- updates ---------------------------------------------------------

    def add(self, relation: str, row: Sequence[object]) -> bool:
        """Insert ``row`` into ``relation`` (validated against the schema).

        Returns True if the tuple was new, False if it was already present.
        """
        return self.insert_many(relation, (row,)) == 1

    def delete(self, relation: str, row: Sequence[object]) -> bool:
        """Delete ``row`` from ``relation``; True if it was present."""
        return self.delete_many(relation, (row,)) == 1

    def insert_many(
        self, relation: str, rows: Iterable[Sequence[object]], *, strict: bool = False
    ) -> int:
        """Insert ``rows`` into ``relation``, maintaining every lazily
        built index in place and logging each effective insert.

        Already-present tuples are skipped (set semantics) -- unless
        ``strict``, in which case they raise :class:`UpdateError`, the
        paper's Section 5 well-formedness condition that insertions be
        disjoint from the database.  Returns the number of tuples
        actually inserted.
        """
        rel = self.schema.relation(relation)
        store = self._rows[relation]
        indexes = self._indexes[relation]
        applied = 0
        for row in rows:
            row = intern_row(rel.validate_tuple(tuple(_plain(v) for v in row)))
            if row in store:
                if strict:
                    raise UpdateError(
                        f"insert of {row!r} into {relation!r}: tuple is "
                        f"already present"
                    )
                continue
            store[row] = None
            for positions, index in indexes.items():
                key = tuple(row[p] for p in positions)
                index.setdefault(key, []).append(row)
            self.change_log.append("+", relation, row)
            applied += 1
        return applied

    def delete_many(
        self, relation: str, rows: Iterable[Sequence[object]], *, strict: bool = False
    ) -> int:
        """Delete ``rows`` from ``relation``, maintaining every lazily
        built index in place and logging each effective delete.

        Absent tuples are skipped -- unless ``strict``, in which case they
        raise :class:`UpdateError`, the Section 5 well-formedness
        condition that deletions be contained in the database.  Returns
        the number of tuples actually deleted.
        """
        rel = self.schema.relation(relation)
        store = self._rows[relation]
        indexes = self._indexes[relation]
        applied = 0
        for row in rows:
            row = intern_row(rel.validate_tuple(tuple(_plain(v) for v in row)))
            if row not in store:
                if strict:
                    raise UpdateError(
                        f"delete of {row!r} from {relation!r}: tuple is "
                        f"not present"
                    )
                continue
            del store[row]
            for positions, index in indexes.items():
                key = tuple(row[p] for p in positions)
                group = index[key]
                group.remove(row)
                if not group:
                    del index[key]
            self.change_log.append("-", relation, row)
            applied += 1
        return applied

    # -- reads (accounted) -----------------------------------------------

    def lookup(
        self,
        relation: str,
        pattern: Mapping[int, object],
        stats: AccessStats | None = None,
    ) -> tuple[Row, ...]:
        """All tuples of ``relation`` matching ``pattern`` (a mapping from
        0-based positions to required values).

        An empty pattern degenerates to a full scan; otherwise the lookup
        goes through a hash index on the pattern's positions.  Accessed
        tuples are counted in :attr:`stats` (and in ``stats``, when
        given -- the per-execution accounting hook).
        """
        if not pattern:
            return self.scan(relation, stats)
        rel = self.schema.relation(relation)
        positions = tuple(sorted(pattern))
        self._check_positions(relation, rel.arity, positions)
        index = self._index_for(relation, positions)
        key = tuple(_plain(pattern[p]) for p in positions)
        rows = index.get(key, ())
        self._charge(stats, tuples=len(rows), lookups=1)
        return tuple(rows)

    def lookup_many(
        self,
        relation: str,
        patterns: Sequence[Mapping[int, object]],
        stats: AccessStats | None = None,
    ) -> tuple[tuple[Row, ...], ...]:
        """Bulk :meth:`lookup`: one result group per pattern, aligned with
        ``patterns``.

        Each *distinct* ``(positions, key)`` pair is resolved against the
        hash index -- and counted in :attr:`stats` -- exactly once, however
        many patterns in the batch share it; this is what makes
        batch-at-a-time execution touch strictly fewer tuples than one
        :meth:`lookup` per pattern.  An empty pattern degenerates to one
        (shared, counted-once) full scan.
        """
        patterns = list(patterns)
        if not patterns:
            return ()
        rel = self.schema.relation(relation)
        tuples = 0
        lookups = 0
        groups: list[tuple[Row, ...]] = []
        fetched: dict[tuple[tuple[int, ...], Row], tuple[Row, ...]] = {}
        scanned: tuple[Row, ...] | None = None
        # Patterns in one batch almost always share their position set
        # (the executor's lookup keys are static per operator), so the
        # index is re-resolved only when the positions actually change.
        last_keys = None
        positions: tuple[int, ...] = ()
        index: dict[Row, list[Row]] = {}
        for pattern in patterns:
            if not pattern:
                if scanned is None:
                    scanned = self.scan(relation, stats)
                groups.append(scanned)
                continue
            keys = pattern.keys()
            if keys != last_keys:
                positions = tuple(sorted(keys))
                self._check_positions(relation, rel.arity, positions)
                index = self._index_for(relation, positions)
                last_keys = keys
            key = tuple([_plain(pattern[p]) for p in positions])
            rows = fetched.get((positions, key))
            if rows is None:
                rows = tuple(index.get(key, ()))
                lookups += 1
                tuples += len(rows)
                fetched[positions, key] = rows
            groups.append(rows)
        self._charge(stats, tuples=tuples, lookups=lookups)
        return tuple(groups)

    def lookup_keys(
        self,
        relation: str,
        positions: tuple[int, ...],
        keys: Sequence[Row],
        stats: AccessStats | None = None,
    ) -> Sequence[Sequence[Row]]:
        """Bulk :meth:`lookup` in the columnar executor's native shape:
        every key constrains the same ``positions`` (sorted ascending, the
        form the per-position indexes are keyed on), so the index is
        resolved once for the whole batch.  One result group per key,
        aligned with ``keys``; key values must already be plain (the
        executor interns/unwraps them at lowering and seed time).

        The accounting contract is exactly :meth:`lookup_many`'s: each
        *distinct* key is fetched and counted once, however often it
        recurs; an empty ``positions`` degenerates to one shared,
        counted-once full scan replicated per key.

        Unlike the dict-shaped lookups, the returned groups may be the
        *live* index buckets -- no per-group defensive copy on the hot
        path.  Callers must treat them as read-only and consume them
        before mutating the database (the executor does both).
        """
        if not keys:
            return ()
        if not positions:
            return [self.scan(relation, stats)] * len(keys)
        # The executor calls this once per operator per execution: resolve
        # the index with one dict probe when it already exists (inserts
        # and deletes maintain built indexes in place, so an existing
        # index object is always current) and fall back to the validated
        # build path only on first sight of (relation, positions).
        try:
            index = self._indexes[relation].get(positions)
        except KeyError:
            self.schema.relation(relation)  # raises the proper SchemaError
            raise
        if index is None:
            rel = self.schema.relation(relation)
            self._check_positions(relation, rel.arity, positions)
            index = self._index_for(relation, positions)
        if len(keys) == 1:
            rows = index.get(keys[0], ())
            cum = self.stats
            cum.tuples_accessed += len(rows)
            cum.indexed_lookups += 1
            if stats is not None:
                stats.tuples_accessed += len(rows)
                stats.indexed_lookups += 1
            return [rows]
        tuples = 0
        lookups = 0
        fetched: dict[Row, Sequence[Row]] = {}
        groups: list[Sequence[Row]] = []
        get_cached = fetched.get
        get_indexed = index.get
        for key in keys:
            rows = get_cached(key)
            if rows is None:
                rows = get_indexed(key, ())
                lookups += 1
                tuples += len(rows)
                fetched[key] = rows
            groups.append(rows)
        cum = self.stats
        cum.tuples_accessed += tuples
        cum.indexed_lookups += lookups
        if stats is not None:
            stats.tuples_accessed += tuples
            stats.indexed_lookups += lookups
        return groups

    def contains_rows(
        self,
        relation: str,
        rows: Sequence[Row],
        stats: AccessStats | None = None,
    ) -> tuple[bool, ...]:
        """Bulk :meth:`contains` for pre-shaped row tuples (the columnar
        probe builds them straight from batch columns, so values are
        already plain).  Each *distinct* row is probed -- and accounted --
        once, exactly like :meth:`contains_many`."""
        try:
            store = self._rows[relation]
        except KeyError:
            self.schema.relation(relation)  # raises the proper SchemaError
            raise
        if len(rows) == 1:
            present = rows[0] in store
            cum = self.stats
            cum.tuples_accessed += 1 if present else 0
            cum.indexed_lookups += 1
            if stats is not None:
                stats.tuples_accessed += 1 if present else 0
                stats.indexed_lookups += 1
            return (present,)
        tuples = 0
        lookups = 0
        verdicts: list[bool] = []
        probed: dict[Row, bool] = {}
        get_cached = probed.get
        for row in rows:
            present = get_cached(row)
            if present is None:
                lookups += 1
                present = row in store
                if present:
                    tuples += 1
                probed[row] = present
            verdicts.append(present)
        self._charge(stats, tuples=tuples, lookups=lookups)
        return tuple(verdicts)

    def scan(self, relation: str, stats: AccessStats | None = None) -> tuple[Row, ...]:
        """All tuples of ``relation`` -- a full scan, counted as such."""
        self.schema.relation(relation)
        rows = tuple(self._rows[relation])
        self._charge(stats, tuples=len(rows), scans=1)
        return rows

    def contains(
        self,
        relation: str,
        row: Sequence[object],
        stats: AccessStats | None = None,
    ) -> bool:
        """Membership probe via the all-positions hash index (accesses at
        most one tuple)."""
        rel = self.schema.relation(relation)
        row = rel.validate_tuple(tuple(_plain(v) for v in row))
        present = row in self._rows[relation]
        self._charge(stats, tuples=1 if present else 0, lookups=1)
        return present

    def contains_many(
        self,
        relation: str,
        rows: Sequence[Sequence[object]],
        stats: AccessStats | None = None,
    ) -> tuple[bool, ...]:
        """Bulk :meth:`contains`: one verdict per row, aligned with
        ``rows``.  Each *distinct* row is probed (and accounted) once,
        however often it recurs in the batch."""
        rel = self.schema.relation(relation)
        store = self._rows[relation]
        tuples = 0
        lookups = 0
        verdicts: list[bool] = []
        probed: dict[Row, bool] = {}
        for row in rows:
            row = rel.validate_tuple(tuple(_plain(v) for v in row))
            present = probed.get(row)
            if present is None:
                lookups += 1
                present = row in store
                if present:
                    tuples += 1
                probed[row] = present
            verdicts.append(present)
        self._charge(stats, tuples=tuples, lookups=lookups)
        return tuple(verdicts)

    # -- unaccounted metadata --------------------------------------------

    def size(self, relation: str | None = None) -> int:
        """The number of tuples in ``relation``, or in the whole database."""
        if relation is None:
            return sum(len(rows) for rows in self._rows.values())
        self.schema.relation(relation)
        return len(self._rows[relation])

    def active_domain(self) -> tuple[object, ...]:
        """Every value occurring in the database, in first-occurrence order."""
        return tuple(
            dict.fromkeys(
                value for rows in self._rows.values() for row in rows for value in row
            )
        )

    def reset_stats(self) -> None:
        self.stats.reset()

    def __repr__(self) -> str:
        sizes = ", ".join(f"{name}: {len(rows)}" for name, rows in self._rows.items())
        return f"Database({{{sizes}}})"

    # -- internals -------------------------------------------------------

    def _charge(
        self,
        extra: AccessStats | None,
        *,
        tuples: int = 0,
        lookups: int = 0,
        scans: int = 0,
    ) -> None:
        """Record one read's counters in the cumulative stats and, when
        given, the caller's per-execution stats."""
        for stats in (self.stats,) if extra is None else (self.stats, extra):
            stats.tuples_accessed += tuples
            stats.indexed_lookups += lookups
            stats.full_scans += scans

    @staticmethod
    def _check_positions(relation: str, arity: int, positions: tuple[int, ...]) -> None:
        for p in positions:
            if not 0 <= p < arity:
                raise SchemaError(
                    f"position {p} out of range for relation {relation!r} "
                    f"of arity {arity}"
                )

    def _index_for(
        self, relation: str, positions: tuple[int, ...]
    ) -> dict[Row, list[Row]]:
        index = self._indexes[relation].get(positions)
        if index is None:
            index = {}
            for row in self._rows[relation]:
                index.setdefault(tuple(row[p] for p in positions), []).append(row)
            self._indexes[relation][positions] = index
        return index

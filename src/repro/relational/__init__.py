"""The relational substrate: schemas and database instances.

:mod:`repro.relational.schema` declares relation and database schemas with
arity/attribute validation; :mod:`repro.relational.instance` provides
in-memory instances with per-relation hash indexes and tuple-access
accounting, the measuring stick for scale independence.
"""

from repro.relational.schema import DatabaseSchema, RelationSchema, parse_schema
from repro.relational.instance import AccessStats, Database

__all__ = ["RelationSchema", "DatabaseSchema", "parse_schema", "Database", "AccessStats"]

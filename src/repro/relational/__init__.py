"""The relational substrate: schemas, database instances, storage backends.

:mod:`repro.relational.schema` declares relation and database schemas with
arity/attribute validation; :mod:`repro.relational.instance` provides the
:class:`Database` facade -- validation, interning, tuple-access
accounting (the measuring stick for scale independence) and the
mutation :class:`~repro.relational.instance.ChangeLog` -- over a
pluggable storage engine from :mod:`repro.relational.backends`
(in-memory dict indexes by default, out-of-core SQLite, or a
hash-sharded composite).
"""

from repro.relational.backends import (
    MemoryBackend,
    ShardedBackend,
    SqliteBackend,
    StorageBackend,
)
from repro.relational.instance import AccessStats, Database
from repro.relational.schema import DatabaseSchema, RelationSchema, parse_schema

__all__ = [
    "RelationSchema",
    "DatabaseSchema",
    "parse_schema",
    "Database",
    "AccessStats",
    "StorageBackend",
    "MemoryBackend",
    "SqliteBackend",
    "ShardedBackend",
]

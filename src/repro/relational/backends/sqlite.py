"""An out-of-core SQLite storage backend.

One table per relation (columns ``c0..cN``, a unique index over all
columns for set semantics), plus a lazily created **covering index** per
accessed position set -- key columns first, the remaining columns
appended, so every bulk lookup is answered from the index alone.  Bulk
calls stay one round trip each: a batch of distinct keys resolves
through a single chunked ``IN``-list (an OR-of-ANDs disjunction for
composite keys -- SQLite answers it with MULTI-INDEX OR searches,
where the prettier row-value ``IN (VALUES ...)`` form falls back to a
full table scan), and mutation batches go through ``executemany``.

Accounting is exactly the memory backend's: each distinct key in a batch
is charged one indexed lookup plus the tuples its group holds, so the
scale-independence numbers (tuples accessed vs the fanout bound) are
directly comparable across backends.  Returned rows are **owned** --
built fresh from the query result and interned -- never aliases of
internal storage (:attr:`~StorageBackend.returns_live_groups` stays
False).

File lifecycle: pass ``path`` to put the store on disk (the file is
created on attach and left in place -- callers own deletion; pass the
same path to a *new* backend to reopen existing tables), or no path for
a private in-memory SQLite database.  ``close()`` releases the
connection.  Durability pragmas are relaxed (``journal_mode=OFF``,
``synchronous=OFF``): this is a query-engine store, not a system of
record.

``None`` is a first-class value: SQL ``NULL`` neither matches ``=`` nor
deduplicates under a UNIQUE index, so every read/write path routes
``None``-bearing keys and rows through explicit ``IS NULL`` predicates
(and Python-side dedup on load), keeping all backends row-for-row
interchangeable.

Limitations: values must be SQLite-native (int, float, str, bytes or
``None``), and relation names that differ only by case would collide
(SQLite identifiers are case-insensitive).
"""

from __future__ import annotations

import sqlite3
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.relational.backends.base import Row, StorageBackend, check_positions
from repro.relational.interning import intern_row

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.instance import AccessStats
    from repro.relational.schema import DatabaseSchema

#: Bound parameters per statement stay well under SQLite's variable limit
#: (999 in the oldest supported builds).
_MAX_VARIABLES = 900

#: Rows per ``executemany`` chunk on the write path.
_WRITE_CHUNK = 50_000


class SqliteBackend(StorageBackend):
    """Relation-per-table SQLite store with per-position covering indexes."""

    returns_live_groups = False

    def __init__(self, path: str | None = None):
        super().__init__()
        self.path = path
        self._conn: sqlite3.Connection | None = None
        self._arity: dict[str, int] = {}
        self._indexed: dict[str, set[tuple[int, ...]]] = {}

    def attach(self, schema: "DatabaseSchema", stats: "AccessStats") -> None:
        super().attach(schema, stats)
        # isolation_level=None -> autocommit: every statement is durable in
        # the file immediately, so "reopen by path" sees everything without
        # an explicit commit protocol.  check_same_thread=False matches the
        # database's concurrency contract (reads may be cross-thread,
        # mutations are single-writer).
        conn = sqlite3.connect(
            self.path if self.path is not None else ":memory:",
            isolation_level=None,
            check_same_thread=False,
        )
        conn.execute("PRAGMA journal_mode=OFF")
        conn.execute("PRAGMA synchronous=OFF")
        conn.execute("PRAGMA temp_store=MEMORY")
        conn.execute("PRAGMA cache_size=-131072")  # 128 MiB of page cache
        self._conn = conn
        for name in schema.names:
            arity = schema.relation(name).arity
            self._arity[name] = arity
            cols = ", ".join(f"c{i}" for i in range(arity))
            conn.execute(f"CREATE TABLE IF NOT EXISTS {self._table(name)} ({cols})")
            conn.execute(
                f"CREATE UNIQUE INDEX IF NOT EXISTS "
                f"{self._index_name(name, tuple(range(arity)))} "
                f"ON {self._table(name)} ({cols})"
            )
            # The unique all-columns index covers any lookup whose sorted
            # key positions are a prefix of (0, 1, ..., arity-1).
            self._indexed[name] = {
                tuple(range(width)) for width in range(1, arity + 1)
            }

    def close(self) -> None:
        """Release the connection (idempotent).  A file-backed store stays
        on disk; reopen it by constructing a new backend with the same
        path."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # -- charged reads ---------------------------------------------------

    def lookup_keys(
        self,
        relation: str,
        positions: tuple[int, ...],
        keys: Sequence[Row],
        stats: "AccessStats | None" = None,
    ) -> Sequence[Sequence[Row]]:
        if not keys:
            return ()
        if not positions:
            return self._scan_groups(relation, keys, stats)
        arity = self._require(relation)
        check_positions(relation, arity, positions)
        self._ensure_index(relation, positions)
        distinct: dict[Row, list[Row]] = {key: [] for key in keys}
        width = len(positions)
        table = self._table(relation)
        sel = ", ".join(f"c{i}" for i in range(arity))
        conn = self._conn
        pending = list(distinct)
        plain = [key for key in pending if None not in key]
        nullish = [key for key in pending if None in key]
        chunk_size = max(1, _MAX_VARIABLES // width)
        for start in range(0, len(plain), chunk_size):
            chunk = plain[start : start + chunk_size]
            if width == 1:
                marks = ", ".join("?" * len(chunk))
                sql = (
                    f"SELECT {sel} FROM {table} "
                    f"WHERE c{positions[0]} IN ({marks}) ORDER BY rowid"
                )
                params: list[object] = [key[0] for key in chunk]
            else:
                one_key = (
                    "(" + " AND ".join(f"c{p} = ?" for p in positions) + ")"
                )
                disjunction = " OR ".join([one_key] * len(chunk))
                sql = (
                    f"SELECT {sel} FROM {table} "
                    f"WHERE {disjunction} ORDER BY rowid"
                )
                params = [value for key in chunk for value in key]
            for fetched in conn.execute(sql, params):
                row = intern_row(tuple(fetched))
                distinct[tuple(row[p] for p in positions)].append(row)
        # None-bearing keys: ``=`` never matches NULL, so these need
        # per-key predicates with IS NULL at the None positions.
        for start in range(0, len(nullish), chunk_size):
            chunk = nullish[start : start + chunk_size]
            terms: list[str] = []
            params = []
            for key in chunk:
                term, key_params = self._null_safe_key(positions, key)
                terms.append(term)
                params.extend(key_params)
            sql = (
                f"SELECT {sel} FROM {table} "
                f"WHERE {' OR '.join(terms)} ORDER BY rowid"
            )
            for fetched in conn.execute(sql, params):
                row = intern_row(tuple(fetched))
                group = distinct.get(tuple(row[p] for p in positions))
                if group is not None:
                    group.append(row)
        tuples = sum(len(group) for group in distinct.values())
        self._charge(stats, tuples=tuples, lookups=len(distinct))
        owned = {key: tuple(group) for key, group in distinct.items()}
        return [owned[key] for key in keys]

    def contains_rows(
        self,
        relation: str,
        rows: Sequence[Row],
        stats: "AccessStats | None" = None,
    ) -> tuple[bool, ...]:
        self._require(relation)
        distinct = list(dict.fromkeys(rows))
        present = self._present(relation, distinct)
        self._charge(stats, tuples=len(present), lookups=len(distinct))
        return tuple(row in present for row in rows)

    def scan(self, relation: str, stats: "AccessStats | None" = None) -> tuple[Row, ...]:
        self._require(relation)
        rows = tuple(
            intern_row(tuple(fetched))
            for fetched in self._conn.execute(
                f"SELECT * FROM {self._table(relation)} ORDER BY rowid"
            )
        )
        self._charge(stats, tuples=len(rows), scans=1)
        return rows

    # -- unaccounted primitives ------------------------------------------

    def probe_rows(self, relation: str, rows: Sequence[Row]) -> list[bool]:
        self._require(relation)
        present = self._present(relation, list(dict.fromkeys(rows)))
        return [row in present for row in rows]

    def count(self, relation: str) -> int:
        (n,) = self._conn.execute(
            f"SELECT COUNT(*) FROM {self._table(relation)}"
        ).fetchone()
        return n

    def iter_rows(self, relation: str) -> Iterator[Row]:
        for fetched in self._conn.execute(
            f"SELECT * FROM {self._table(relation)} ORDER BY rowid"
        ):
            yield intern_row(tuple(fetched))

    # -- mutations -------------------------------------------------------

    def insert_rows(self, relation: str, rows: Sequence[Row]) -> list[bool]:
        arity = self._require(relation)
        present = self._present(relation, list(dict.fromkeys(rows)))
        flags: list[bool] = []
        new: list[Row] = []
        for row in rows:
            if row in present:
                flags.append(False)
            else:
                present.add(row)
                new.append(row)
                flags.append(True)
        if new:
            marks = ", ".join("?" * arity)
            self._conn.executemany(
                f"INSERT INTO {self._table(relation)} VALUES ({marks})", new
            )
        return flags

    def delete_rows(self, relation: str, rows: Sequence[Row]) -> list[bool]:
        arity = self._require(relation)
        present = self._present(relation, list(dict.fromkeys(rows)))
        flags: list[bool] = []
        gone: list[Row] = []
        for row in rows:
            if row in present:
                present.discard(row)
                gone.append(row)
                flags.append(True)
            else:
                flags.append(False)
        plain = [row for row in gone if None not in row]
        if plain:
            where = " AND ".join(f"c{i} = ?" for i in range(arity))
            self._conn.executemany(
                f"DELETE FROM {self._table(relation)} WHERE {where}", plain
            )
        # None-bearing rows need IS NULL predicates; they are rare, so
        # one statement per row keeps this simple.
        for row in gone:
            if None not in row:
                continue
            term, params = self._null_safe_key(tuple(range(arity)), row)
            self._conn.execute(
                f"DELETE FROM {self._table(relation)} WHERE {term}", params
            )
        return flags

    def load_rows(self, relation: str, rows: Sequence[Row]) -> int:
        """Bulk load without per-row flags: ``INSERT OR IGNORE`` in
        ``executemany`` chunks, counting applied rows via the connection's
        change counter.  ``None``-bearing rows bypass the OR IGNORE fast
        path -- the unique index treats NULLs as distinct, so it cannot
        dedupe them -- and are deduped in Python instead."""
        arity = self._require(relation)
        conn = self._conn
        table = self._table(relation)
        marks = ", ".join("?" * arity)
        plain = [row for row in rows if None not in row]
        nullish = [row for row in rows if None in row]
        applied = 0
        if plain:
            sql = f"INSERT OR IGNORE INTO {table} VALUES ({marks})"
            before = conn.total_changes
            for start in range(0, len(plain), _WRITE_CHUNK):
                conn.executemany(sql, plain[start : start + _WRITE_CHUNK])
            applied += conn.total_changes - before
        if nullish:
            present = self._present(relation, list(dict.fromkeys(nullish)))
            fresh: list[Row] = []
            for row in nullish:
                if row not in present:
                    present.add(intern_row(tuple(row)))
                    fresh.append(row)
            if fresh:
                conn.executemany(
                    f"INSERT INTO {table} VALUES ({marks})", fresh
                )
                applied += len(fresh)
        return applied

    # -- internals -------------------------------------------------------

    def _require(self, relation: str) -> int:
        arity = self._arity.get(relation)
        if arity is None:
            self.schema.relation(relation)  # raises the proper SchemaError
            raise KeyError(relation)  # pragma: no cover - schema raised
        return arity

    def _present(self, relation: str, distinct: list[Row]) -> set[Row]:
        """The subset of ``distinct`` rows currently stored (one chunked
        probe through the unique all-columns index)."""
        arity = self._arity[relation]
        table = self._table(relation)
        conn = self._conn
        present: set[Row] = set()
        chunk_size = max(1, _MAX_VARIABLES // arity)
        cols = ", ".join(f"c{i}" for i in range(arity))
        plain = [row for row in distinct if None not in row]
        nullish = [row for row in distinct if None in row]
        for start in range(0, len(plain), chunk_size):
            chunk = plain[start : start + chunk_size]
            if arity == 1:
                marks = ", ".join("?" * len(chunk))
                sql = f"SELECT {cols} FROM {table} WHERE c0 IN ({marks})"
                params: list[object] = [row[0] for row in chunk]
            else:
                one_row = (
                    "(" + " AND ".join(f"c{i} = ?" for i in range(arity)) + ")"
                )
                disjunction = " OR ".join([one_row] * len(chunk))
                sql = f"SELECT {cols} FROM {table} WHERE {disjunction}"
                params = [value for row in chunk for value in row]
            for fetched in conn.execute(sql, params):
                present.add(intern_row(tuple(fetched)))
        positions = tuple(range(arity))
        for start in range(0, len(nullish), chunk_size):
            chunk = nullish[start : start + chunk_size]
            terms: list[str] = []
            null_params: list[object] = []
            for row in chunk:
                term, row_params = self._null_safe_key(positions, row)
                terms.append(term)
                null_params.extend(row_params)
            sql = f"SELECT {cols} FROM {table} WHERE {' OR '.join(terms)}"
            for fetched in conn.execute(sql, null_params):
                present.add(intern_row(tuple(fetched)))
        return present

    @staticmethod
    def _null_safe_key(
        positions: tuple[int, ...], key: Row
    ) -> tuple[str, list[object]]:
        """One key's WHERE term with ``IS NULL`` at the ``None``
        positions (SQL ``=`` never matches NULL) and the bound
        parameters for the rest."""
        terms: list[str] = []
        params: list[object] = []
        for position, value in zip(positions, key):
            if value is None:
                terms.append(f"c{position} IS NULL")
            else:
                terms.append(f"c{position} = ?")
                params.append(value)
        return "(" + " AND ".join(terms) + ")", params

    def _ensure_index(self, relation: str, positions: tuple[int, ...]) -> None:
        """Create the covering index for ``positions`` on first use: key
        columns first, every remaining column appended so the lookup is
        index-only."""
        if positions in self._indexed[relation]:
            return
        arity = self._arity[relation]
        ordered = list(positions) + [
            i for i in range(arity) if i not in positions
        ]
        cols = ", ".join(f"c{i}" for i in ordered)
        self._conn.execute(
            f"CREATE INDEX IF NOT EXISTS {self._index_name(relation, positions)} "
            f"ON {self._table(relation)} ({cols})"
        )
        self._indexed[relation].add(positions)

    @staticmethod
    def _table(relation: str) -> str:
        quoted = relation.replace('"', '""')
        return f'"r_{quoted}"'

    @staticmethod
    def _index_name(relation: str, positions: tuple[int, ...]) -> str:
        quoted = relation.replace('"', '""')
        suffix = "_".join(str(p) for p in positions)
        return f'"ix_{quoted}_{suffix}"'

    def __repr__(self) -> str:
        where = self.path if self.path is not None else ":memory:"
        return f"SqliteBackend({where!r})"


__all__ = ["SqliteBackend"]

"""Pluggable storage backends behind :class:`~repro.relational.instance.Database`.

The executor's bulk narrow waist -- key-batched lookups, membership
probes, scans, batched mutations -- extracted into
:class:`~repro.relational.backends.base.StorageBackend`, with three
implementations:

* :class:`~repro.relational.backends.memory.MemoryBackend` -- the
  default in-memory dict-index store (live index buckets, lazy
  per-position indexes);
* :class:`~repro.relational.backends.sqlite.SqliteBackend` -- an
  out-of-core relation-per-table SQLite store with covering indexes and
  one round trip per bulk call;
* :class:`~repro.relational.backends.sharded.ShardedBackend` -- a
  hash-sharded composite fanning each batch's distinct keys out to N
  child backends.

All three preserve the paper's tuple-access accounting exactly, so
scale-independence measurements are comparable across backends.
"""

from repro.relational.backends.base import Row, StorageBackend, check_positions
from repro.relational.backends.memory import MemoryBackend
from repro.relational.backends.sharded import ShardedBackend
from repro.relational.backends.sqlite import SqliteBackend

__all__ = [
    "StorageBackend",
    "MemoryBackend",
    "SqliteBackend",
    "ShardedBackend",
    "Row",
    "check_positions",
]

"""The storage-backend interface: the narrow waist beneath ``Database``.

Every operator the executor compiles reads and writes through a handful
of bulk methods -- key-batched lookups, row-batched membership probes,
full scans, batched inserts and deletes.  :class:`StorageBackend` is that
surface extracted into an interface, so the same compiled plans run
against an in-memory dict-index store (:class:`~repro.relational.backends.memory.MemoryBackend`,
the default), an out-of-core SQLite store
(:class:`~repro.relational.backends.sqlite.SqliteBackend`) or a
hash-sharded composite
(:class:`~repro.relational.backends.sharded.ShardedBackend`) without
recompilation: the :class:`~repro.relational.instance.Database` facade
binds the backend's bulk methods directly, so executor closures calling
``db.lookup_keys(...)`` dispatch straight into the backend with no
intermediate frame.

The contract, in full:

**Lifecycle.**  A backend instance serves exactly one database.
:meth:`StorageBackend.attach` binds it to a schema and the database's
cumulative :class:`~repro.relational.instance.AccessStats`; attaching a
second time raises.

**Values.**  The facade validates rows against the schema, unwraps
:class:`~repro.logic.terms.Constant` and interns strings *before* any
backend call: backends store and return plain tuples and never validate.
Lookup keys arrive plain too, aligned with their (sorted, ascending)
positions.

**Accounting.**  The charged reads -- :meth:`lookup_keys`,
:meth:`contains_rows`, :meth:`scan` -- record tuple accesses in the
attached cumulative stats and, when given, a per-execution extra
``stats`` object, exactly as the paper's measuring stick requires: each
*distinct* key (or row) in a batch is resolved and counted **once**,
however often it recurs; an absent key still counts one indexed lookup;
an empty position tuple degenerates to one shared, counted-once full
scan.  A composite backend must preserve these semantics across its
children (counting a batch's distinct keys once *globally*, not once per
child).  Mutations and the unaccounted primitives (:meth:`probe_rows`,
:meth:`count`, :meth:`iter_rows`) charge nothing.

**Aliasing.**  :attr:`returns_live_groups` declares whether the row
groups returned by :meth:`lookup_keys` may alias internal storage.  The
memory backend sets it: its groups are the *live* index buckets (no
defensive copy on the hot path), so callers must treat them as read-only
and consume them before mutating the database.  Backends that leave it
False return owned rows the caller may keep (but still must not mutate
-- rows are shared tuples).

**Mutations.**  :meth:`insert_rows` / :meth:`delete_rows` apply a batch
with set semantics, maintain every index the backend has built, and
return one effectiveness flag per input row *in order* (an insert of an
already-present tuple, or a second occurrence within the batch, is
``False``; likewise deletes of absent tuples).  The facade turns the
flags into :class:`~repro.relational.instance.ChangeLog` entries, so a
backend that misreports effectiveness corrupts incremental execution --
the conformance suite (``tests/test_backends.py``) checks this.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.errors import SchemaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.relational.instance import AccessStats
    from repro.relational.schema import DatabaseSchema

Row = tuple[object, ...]


def check_positions(relation: str, arity: int, positions: tuple[int, ...]) -> None:
    """Raise :class:`SchemaError` unless every position fits ``arity``."""
    for p in positions:
        if not 0 <= p < arity:
            raise SchemaError(
                f"position {p} out of range for relation {relation!r} "
                f"of arity {arity}"
            )


class StorageBackend(ABC):
    """Abstract storage engine behind a :class:`~repro.relational.instance.Database`.

    See the module docstring for the full contract (lifecycle, plain
    values, accounting exactness, the aliasing flag, mutation flags).
    """

    #: Whether :meth:`lookup_keys` may return groups aliasing internal
    #: storage (live index buckets).  When True, callers must treat the
    #: groups as read-only and consume them before mutating the database.
    returns_live_groups: bool = False

    def __init__(self) -> None:
        self._schema: "DatabaseSchema | None" = None
        self._cum: "AccessStats | None" = None

    # -- lifecycle -------------------------------------------------------

    def attach(self, schema: "DatabaseSchema", stats: "AccessStats") -> None:
        """Bind this backend to ``schema`` and the owning database's
        cumulative ``stats``.  One-shot: a backend serves one database."""
        if self._schema is not None:
            raise SchemaError(
                f"{type(self).__name__} is already attached to a database; "
                f"construct a fresh backend per Database"
            )
        self._schema = schema
        self._cum = stats

    @property
    def schema(self) -> "DatabaseSchema":
        if self._schema is None:
            raise SchemaError(f"{type(self).__name__} is not attached to a database")
        return self._schema

    # -- charged reads ---------------------------------------------------

    @abstractmethod
    def lookup_keys(
        self,
        relation: str,
        positions: tuple[int, ...],
        keys: Sequence[Row],
        stats: "AccessStats | None" = None,
    ) -> Sequence[Sequence[Row]]:
        """One row group per key, aligned with ``keys``; every key
        constrains the same sorted ``positions``.  Each *distinct* key is
        resolved and charged once; ``positions == ()`` degenerates to one
        shared, counted-once full scan replicated per key.  Whether the
        groups may alias internal storage is declared by
        :attr:`returns_live_groups`."""

    @abstractmethod
    def contains_rows(
        self,
        relation: str,
        rows: Sequence[Row],
        stats: "AccessStats | None" = None,
    ) -> tuple[bool, ...]:
        """One membership verdict per row, aligned with ``rows``.  Each
        *distinct* row is probed and charged once (one indexed lookup,
        plus one tuple accessed when present)."""

    @abstractmethod
    def scan(self, relation: str, stats: "AccessStats | None" = None) -> tuple[Row, ...]:
        """Every row of ``relation`` in insertion order -- one full scan,
        charged as such."""

    # -- unaccounted primitives ------------------------------------------

    @abstractmethod
    def probe_rows(self, relation: str, rows: Sequence[Row]) -> list[bool]:
        """Uncharged presence flags aligned with ``rows`` -- the facade's
        pre-check for strict (Section 5 well-formed) mutation batches."""

    @abstractmethod
    def count(self, relation: str) -> int:
        """The number of stored rows (uncharged metadata)."""

    @abstractmethod
    def iter_rows(self, relation: str) -> Iterator[Row]:
        """Iterate the stored rows in insertion order (uncharged metadata
        -- the active-domain walk)."""

    # -- mutations -------------------------------------------------------

    @abstractmethod
    def insert_rows(self, relation: str, rows: Sequence[Row]) -> list[bool]:
        """Apply a batch of inserts with set semantics, maintaining every
        built index; one effectiveness flag per input row, in order."""

    @abstractmethod
    def delete_rows(self, relation: str, rows: Sequence[Row]) -> list[bool]:
        """Apply a batch of deletes, maintaining every built index; one
        effectiveness flag per input row, in order."""

    def load_rows(self, relation: str, rows: Sequence[Row]) -> int:
        """Bulk-load fast path: insert with set semantics and return only
        the applied *count* (no per-row flags, no identity).  Backends
        may override to skip flag bookkeeping entirely."""
        return sum(self.insert_rows(relation, rows))

    # -- shared helpers --------------------------------------------------

    def _charge(
        self,
        extra: "AccessStats | None",
        *,
        tuples: int = 0,
        lookups: int = 0,
        scans: int = 0,
    ) -> None:
        """Record one read's counters in the attached cumulative stats
        and, when given, the caller's per-execution stats."""
        cum = self._cum
        for stats in (cum,) if extra is None else (cum, extra):
            stats.tuples_accessed += tuples
            stats.indexed_lookups += lookups
            stats.full_scans += scans

    def _scan_groups(
        self,
        relation: str,
        keys: Sequence[Row],
        stats: "AccessStats | None",
    ) -> list[tuple[Row, ...]]:
        """The ``positions == ()`` degenerate case of :meth:`lookup_keys`:
        one shared, counted-once scan replicated per key."""
        return [self.scan(relation, stats)] * len(keys)


__all__ = ["StorageBackend", "Row", "check_positions"]

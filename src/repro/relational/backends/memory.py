"""The default in-memory dict-index backend.

This is ``Database``'s original storage engine extracted behind
:class:`~repro.relational.backends.base.StorageBackend`: each relation is
an insertion-ordered set of tuples (a dict with ``None`` values), with
per-position hash indexes built lazily on first lookup and maintained in
place by every insert and delete.

It keeps the two properties the executor's hot path was tuned for:

* ``lookup_keys`` may return the **live index buckets**
  (:attr:`returns_live_groups` is True) -- no per-group defensive copy;
  callers treat groups as read-only and consume them before mutating the
  database;
* the single-key fast path charges stats inline, with no intermediate
  allocation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

from repro.relational.backends.base import Row, StorageBackend, check_positions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.instance import AccessStats
    from repro.relational.schema import DatabaseSchema


class MemoryBackend(StorageBackend):
    """Insertion-ordered tuple sets with lazy per-position hash indexes."""

    returns_live_groups = True

    def __init__(self) -> None:
        super().__init__()
        self._rows: dict[str, dict[Row, None]] = {}
        self._indexes: dict[str, dict[tuple[int, ...], dict[Row, list[Row]]]] = {}

    def attach(self, schema: "DatabaseSchema", stats: "AccessStats") -> None:
        super().attach(schema, stats)
        self._rows = {name: {} for name in schema.names}
        self._indexes = {name: {} for name in schema.names}

    # -- charged reads ---------------------------------------------------

    def lookup_keys(
        self,
        relation: str,
        positions: tuple[int, ...],
        keys: Sequence[Row],
        stats: "AccessStats | None" = None,
    ) -> Sequence[Sequence[Row]]:
        if not keys:
            return ()
        if not positions:
            return self._scan_groups(relation, keys, stats)
        # The executor calls this once per operator per execution: resolve
        # the index with one dict probe when it already exists (inserts
        # and deletes maintain built indexes in place, so an existing
        # index object is always current) and fall back to the validated
        # build path only on first sight of (relation, positions).
        try:
            index = self._indexes[relation].get(positions)
        except KeyError:
            self.schema.relation(relation)  # raises the proper SchemaError
            raise
        if index is None:
            rel = self.schema.relation(relation)
            check_positions(relation, rel.arity, positions)
            index = self._index_for(relation, positions)
        if len(keys) == 1:
            rows = index.get(keys[0], ())
            cum = self._cum
            cum.tuples_accessed += len(rows)
            cum.indexed_lookups += 1
            if stats is not None:
                stats.tuples_accessed += len(rows)
                stats.indexed_lookups += 1
            return [rows]
        tuples = 0
        lookups = 0
        fetched: dict[Row, Sequence[Row]] = {}
        groups: list[Sequence[Row]] = []
        get_cached = fetched.get
        get_indexed = index.get
        for key in keys:
            rows = get_cached(key)
            if rows is None:
                rows = get_indexed(key, ())
                lookups += 1
                tuples += len(rows)
                fetched[key] = rows
            groups.append(rows)
        cum = self._cum
        cum.tuples_accessed += tuples
        cum.indexed_lookups += lookups
        if stats is not None:
            stats.tuples_accessed += tuples
            stats.indexed_lookups += lookups
        return groups

    def contains_rows(
        self,
        relation: str,
        rows: Sequence[Row],
        stats: "AccessStats | None" = None,
    ) -> tuple[bool, ...]:
        try:
            store = self._rows[relation]
        except KeyError:
            self.schema.relation(relation)  # raises the proper SchemaError
            raise
        if len(rows) == 1:
            present = rows[0] in store
            cum = self._cum
            cum.tuples_accessed += 1 if present else 0
            cum.indexed_lookups += 1
            if stats is not None:
                stats.tuples_accessed += 1 if present else 0
                stats.indexed_lookups += 1
            return (present,)
        tuples = 0
        lookups = 0
        verdicts: list[bool] = []
        probed: dict[Row, bool] = {}
        get_cached = probed.get
        for row in rows:
            present = get_cached(row)
            if present is None:
                lookups += 1
                present = row in store
                if present:
                    tuples += 1
                probed[row] = present
            verdicts.append(present)
        self._charge(stats, tuples=tuples, lookups=lookups)
        return tuple(verdicts)

    def scan(self, relation: str, stats: "AccessStats | None" = None) -> tuple[Row, ...]:
        self.schema.relation(relation)
        rows = tuple(self._rows[relation])
        self._charge(stats, tuples=len(rows), scans=1)
        return rows

    # -- unaccounted primitives ------------------------------------------

    def probe_rows(self, relation: str, rows: Sequence[Row]) -> list[bool]:
        store = self._rows[relation]
        return [row in store for row in rows]

    def count(self, relation: str) -> int:
        return len(self._rows[relation])

    def iter_rows(self, relation: str) -> Iterator[Row]:
        return iter(self._rows[relation])

    # -- mutations -------------------------------------------------------

    def insert_rows(self, relation: str, rows: Sequence[Row]) -> list[bool]:
        store = self._rows[relation]
        indexes = self._indexes[relation]
        flags: list[bool] = []
        for row in rows:
            if row in store:
                flags.append(False)
                continue
            store[row] = None
            for positions, index in indexes.items():
                key = tuple(row[p] for p in positions)
                index.setdefault(key, []).append(row)
            flags.append(True)
        return flags

    def delete_rows(self, relation: str, rows: Sequence[Row]) -> list[bool]:
        store = self._rows[relation]
        indexes = self._indexes[relation]
        flags: list[bool] = []
        for row in rows:
            if row not in store:
                flags.append(False)
                continue
            del store[row]
            for positions, index in indexes.items():
                key = tuple(row[p] for p in positions)
                group = index[key]
                group.remove(row)
                if not group:
                    del index[key]
            flags.append(True)
        return flags

    # -- internals -------------------------------------------------------

    def _index_for(
        self, relation: str, positions: tuple[int, ...]
    ) -> dict[Row, list[Row]]:
        index = self._indexes[relation].get(positions)
        if index is None:
            index = {}
            for row in self._rows[relation]:
                index.setdefault(tuple(row[p] for p in positions), []).append(row)
            self._indexes[relation][positions] = index
        return index


__all__ = ["MemoryBackend"]

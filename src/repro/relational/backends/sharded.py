"""A hash-sharded composite storage backend.

``ShardedBackend`` partitions every relation across ``N`` child backends
by ``hash(shard_key) % N``, where the shard key is the row's projection
onto configurable positions (default: position 0, the paper's
point-lookup column).  A bulk call fans its batch's *distinct* keys out
to the children owning them -- one sub-batch per child, so the
one-round-trip-per-operator property survives composition -- and merges
the results.

Accounting stays exact and **global**: the composite charges each
distinct key of a batch once, however many children it consulted, and
tuples-accessed totals are exact because shards are disjoint (a row
lives on exactly one child).  Each child keeps a private scratch
:class:`~repro.relational.instance.AccessStats`, exposed via
:meth:`shard_stats`, so tests can observe routing balance without the
scratch counters leaking into the database's cumulative stats.

Routing: a lookup whose positions include every shard-key position is
**routed** -- each distinct key goes to exactly one child.  Otherwise it
is **broadcast** to all children and the per-key groups concatenated;
counting is normalized back to once-per-distinct-key, so the delta
rule's dedup semantics are preserved either way.

Routing is **deterministic across processes**: the shard index is
``crc32(repr(canonical_key)) % N`` -- not Python's ``hash()``, whose
string hashes vary with ``PYTHONHASHSEED`` -- with booleans and
integral floats canonicalized to ints first (``True == 1`` and
``1.0 == 1`` in Python, so equal keys must repr identically).  A row's
shard assignment can therefore be persisted and recomputed in another
process.

Caveat: scans and iteration concatenate children in shard order, so
global insertion order is only preserved *within* a shard.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Callable, Iterator, Mapping, Sequence

from repro.errors import SchemaError
from repro.relational.backends.base import Row, StorageBackend, check_positions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.instance import AccessStats
    from repro.relational.schema import DatabaseSchema


def _canon(value: object) -> object:
    """Canonicalize values that compare equal but repr differently:
    ``True == 1`` and ``1.0 == 1``, so equal shard keys must map to the
    same bytes before hashing."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def stable_shard_hash(key: Row) -> int:
    """The process-independent shard hash: CRC-32 of the canonicalized
    key's repr.  Unlike ``hash()``, this survives ``PYTHONHASHSEED``, so
    shard assignments may be persisted and recomputed elsewhere."""
    canonical = tuple(_canon(value) for value in key)
    return zlib.crc32(repr(canonical).encode("utf-8"))


class ShardedBackend(StorageBackend):
    """Hash-partitioned composite over ``shards`` child backends."""

    returns_live_groups = False

    def __init__(
        self,
        shards: int = 4,
        *,
        factory: Callable[[], StorageBackend] | None = None,
        key_positions: Mapping[str, tuple[int, ...]] | None = None,
    ):
        super().__init__()
        if shards < 1:
            raise SchemaError(f"shards must be >= 1, got {shards}")
        if factory is None:
            from repro.relational.backends.memory import MemoryBackend

            factory = MemoryBackend
        self.shards = shards
        self._factory = factory
        self._key_positions = dict(key_positions or {})
        self._children: list[StorageBackend] = []
        self._child_stats: list["AccessStats"] = []

    def attach(self, schema: "DatabaseSchema", stats: "AccessStats") -> None:
        super().attach(schema, stats)
        from repro.relational.instance import AccessStats

        for name, positions in self._key_positions.items():
            rel = schema.relation(name)  # raises for unknown relations
            check_positions(name, rel.arity, positions)
        for name in schema.names:
            self._key_positions.setdefault(name, (0,))
        for _ in range(self.shards):
            child = self._factory()
            scratch = AccessStats()
            child.attach(schema, scratch)
            self._children.append(child)
            self._child_stats.append(scratch)

    def shard_stats(self) -> tuple["AccessStats", ...]:
        """Each child's private scratch stats, in shard order -- routing
        balance is visible here, not in the database's cumulative stats."""
        return tuple(self._child_stats)

    # -- routing ---------------------------------------------------------

    def _shard_of(self, projected: Row) -> int:
        return stable_shard_hash(projected) % self.shards

    def _row_shard(self, relation: str, row: Row) -> int:
        kp = self._key_positions[relation]
        return stable_shard_hash(tuple(row[p] for p in kp)) % self.shards

    # -- charged reads ---------------------------------------------------

    def lookup_keys(
        self,
        relation: str,
        positions: tuple[int, ...],
        keys: Sequence[Row],
        stats: "AccessStats | None" = None,
    ) -> Sequence[Sequence[Row]]:
        if not keys:
            return ()
        if not positions:
            return self._scan_groups(relation, keys, stats)
        rel = self.schema.relation(relation)
        check_positions(relation, rel.arity, positions)
        kp = self._key_positions[relation]
        distinct = list(dict.fromkeys(keys))
        merged: dict[Row, tuple[Row, ...]] = {}
        if set(kp) <= set(positions):
            # Routed: project each key onto the shard-key positions and
            # send it to exactly the child that owns its rows.
            idx = tuple(positions.index(p) for p in kp)
            per_child: list[list[Row]] = [[] for _ in range(self.shards)]
            for key in distinct:
                per_child[self._shard_of(tuple(key[i] for i in idx))].append(key)
            for child, sub in zip(self._children, per_child):
                if not sub:
                    continue
                groups = child.lookup_keys(relation, positions, sub)
                for key, group in zip(sub, groups):
                    merged[key] = tuple(group)
        else:
            # Broadcast: every child may hold matches; shards are
            # disjoint, so concatenation is exact and dedup-free.
            partials: dict[Row, list[Row]] = {key: [] for key in distinct}
            for child in self._children:
                groups = child.lookup_keys(relation, positions, distinct)
                for key, group in zip(distinct, groups):
                    partials[key].extend(group)
            merged = {key: tuple(group) for key, group in partials.items()}
        tuples = sum(len(group) for group in merged.values())
        self._charge(stats, tuples=tuples, lookups=len(distinct))
        return [merged[key] for key in keys]

    def contains_rows(
        self,
        relation: str,
        rows: Sequence[Row],
        stats: "AccessStats | None" = None,
    ) -> tuple[bool, ...]:
        self.schema.relation(relation)
        distinct = list(dict.fromkeys(rows))
        verdict: dict[Row, bool] = {}
        per_child: list[list[Row]] = [[] for _ in range(self.shards)]
        for row in distinct:
            per_child[self._row_shard(relation, row)].append(row)
        for child, sub in zip(self._children, per_child):
            if not sub:
                continue
            for row, present in zip(sub, child.contains_rows(relation, sub)):
                verdict[row] = present
        tuples = sum(1 for present in verdict.values() if present)
        self._charge(stats, tuples=tuples, lookups=len(distinct))
        return tuple(verdict[row] for row in rows)

    def scan(self, relation: str, stats: "AccessStats | None" = None) -> tuple[Row, ...]:
        self.schema.relation(relation)
        rows: list[Row] = []
        for child in self._children:
            rows.extend(child.iter_rows(relation))
        self._charge(stats, tuples=len(rows), scans=1)
        return tuple(rows)

    # -- unaccounted primitives ------------------------------------------

    def probe_rows(self, relation: str, rows: Sequence[Row]) -> list[bool]:
        distinct = list(dict.fromkeys(rows))
        verdict: dict[Row, bool] = {}
        per_child: list[list[Row]] = [[] for _ in range(self.shards)]
        for row in distinct:
            per_child[self._row_shard(relation, row)].append(row)
        for child, sub in zip(self._children, per_child):
            if not sub:
                continue
            for row, present in zip(sub, child.probe_rows(relation, sub)):
                verdict[row] = present
        return [verdict[row] for row in rows]

    def count(self, relation: str) -> int:
        return sum(child.count(relation) for child in self._children)

    def iter_rows(self, relation: str) -> Iterator[Row]:
        for child in self._children:
            yield from child.iter_rows(relation)

    # -- mutations -------------------------------------------------------

    def insert_rows(self, relation: str, rows: Sequence[Row]) -> list[bool]:
        return self._scatter_mutation(relation, rows, "insert_rows")

    def delete_rows(self, relation: str, rows: Sequence[Row]) -> list[bool]:
        return self._scatter_mutation(relation, rows, "delete_rows")

    def _scatter_mutation(
        self, relation: str, rows: Sequence[Row], method: str
    ) -> list[bool]:
        """Partition the batch by shard, apply per child, and gather the
        flags back into input order.  Duplicate rows hash to the same
        shard in their original relative order, so within-batch
        effectiveness (first occurrence wins) is preserved."""
        per_child: list[list[Row]] = [[] for _ in range(self.shards)]
        origins: list[list[int]] = [[] for _ in range(self.shards)]
        for i, row in enumerate(rows):
            shard = self._row_shard(relation, row)
            per_child[shard].append(row)
            origins[shard].append(i)
        flags = [False] * len(rows)
        for child, sub, where in zip(self._children, per_child, origins):
            if not sub:
                continue
            for i, flag in zip(where, getattr(child, method)(relation, sub)):
                flags[i] = flag
        return flags

    def __repr__(self) -> str:
        return f"ShardedBackend(shards={self.shards})"


__all__ = ["ShardedBackend", "stable_shard_hash"]

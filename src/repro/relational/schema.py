"""Relation and database schemas.

A :class:`RelationSchema` names a relation and its attributes; a
:class:`DatabaseSchema` is a collection of relation schemas.  All lookup
and validation errors raise :class:`repro.errors.SchemaError`, so that a
malformed query, tuple or access rule is rejected at the boundary instead
of producing silently wrong answers.

Schemas also have a one-declaration-per-relation textual form, parsed by
:func:`parse_schema` / :meth:`DatabaseSchema.parse`::

    Person(pid, name, city)   # '#' comments run to end of line
    Friend(pid1, pid2)

Declarations are separated by whitespace or optional semicolons, and
``str(schema)`` renders back to this form, so ``DatabaseSchema.parse``
and ``str`` are mutually inverse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import SchemaError
from repro.logic.ast import Atom, Formula
from repro.logic.parser import (
    COMMA,
    IDENT,
    LPAREN,
    RPAREN,
    SEMICOLON,
    TokenStream,
    tokenize,
)


@dataclass(frozen=True)
class RelationSchema:
    """A relation name together with its ordered attribute names."""

    name: str
    attributes: tuple[str, ...]

    def __init__(self, name: str, attributes: Iterable[str]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", tuple(attributes))
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        if not self.attributes:
            raise SchemaError(f"relation {self.name!r} must have at least one attribute")
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(f"relation {self.name!r} has duplicate attributes")
        for attr in self.attributes:
            if not attr:
                raise SchemaError(f"relation {self.name!r} has an empty attribute name")

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def has_attribute(self, attribute: str) -> bool:
        return attribute in self.attributes

    def position(self, attribute: str) -> int:
        """The 0-based position of ``attribute``, or a SchemaError."""
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r} "
                f"(attributes: {', '.join(self.attributes)})"
            ) from None

    def positions(self, attributes: Iterable[str]) -> tuple[int, ...]:
        return tuple(self.position(a) for a in attributes)

    def validate_tuple(self, row: Sequence[object]) -> tuple[object, ...]:
        """Check the arity of ``row`` and return it as a plain tuple."""
        row = tuple(row)
        if len(row) != self.arity:
            raise SchemaError(
                f"tuple {row!r} has arity {len(row)}, "
                f"but relation {self.name!r} has arity {self.arity}"
            )
        return row

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


def parse_schema(text: str) -> "DatabaseSchema":
    """Parse a schema DSL text (see the module docstring) into a
    :class:`DatabaseSchema`.

    Malformed declarations raise :class:`repro.errors.ParseError` with the
    position of the offending token.
    """
    stream = TokenStream(tokenize(text))
    relations: list[RelationSchema] = []
    seen: dict[str, RelationSchema] = {}
    while not stream.at_end():
        name = stream.expect(IDENT, "a relation name")
        if name.text in seen:
            raise stream.error(f"duplicate relation {name.text!r}", name)
        stream.expect(LPAREN)
        attributes: list[str] = []
        attribute_tokens = []
        if not stream.at(RPAREN):
            while True:
                attr = stream.expect(IDENT, "an attribute name")
                attributes.append(attr.text)
                attribute_tokens.append(attr)
                if not stream.at(COMMA):
                    break
                stream.take()
        stream.expect(RPAREN)
        if len(set(attributes)) != len(attributes):
            duplicate = next(
                t for i, t in enumerate(attribute_tokens) if t.text in attributes[:i]
            )
            raise stream.error(
                f"relation {name.text!r} repeats attribute {duplicate.text!r}", duplicate
            )
        try:
            rel = RelationSchema(name.text, attributes)
        except SchemaError as exc:
            raise stream.error(str(exc), name) from None
        seen[name.text] = rel
        relations.append(rel)
        if stream.at(SEMICOLON):
            stream.take()
    # No declarations is a valid (empty) schema: DatabaseSchema([]) is
    # constructible and renders as "", so parse and str stay inverse.
    return DatabaseSchema(relations)


class DatabaseSchema:
    """A named collection of relation schemas."""

    __slots__ = ("_relations",)

    def __init__(self, relations: Iterable[RelationSchema]):
        self._relations: dict[str, RelationSchema] = {}
        for rel in relations:
            if not isinstance(rel, RelationSchema):
                raise SchemaError(f"{rel!r} is not a RelationSchema")
            if rel.name in self._relations:
                raise SchemaError(f"duplicate relation name {rel.name!r}")
            self._relations[rel.name] = rel

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DatabaseSchema) and self._relations == other._relations
        )

    def __hash__(self) -> int:
        # Order-insensitive, like __eq__ (dict equality ignores order).
        return hash(frozenset(self._relations.values()))

    def __repr__(self) -> str:
        return f"DatabaseSchema({list(self._relations.values())!r})"

    def __str__(self) -> str:
        return "; ".join(str(rel) for rel in self._relations.values())

    @classmethod
    def parse(cls, text: str) -> "DatabaseSchema":
        """Parse the textual schema DSL, e.g.
        ``DatabaseSchema.parse("Person(name, city); Friend(pid1, pid2)")``."""
        return parse_schema(text)

    def relation(self, name: str) -> RelationSchema:
        """The schema of relation ``name``, or a SchemaError."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"unknown relation {name!r} (known: {', '.join(self._relations) or 'none'})"
            ) from None

    def validate_atom(self, atom: Atom) -> None:
        """Check that ``atom`` refers to a known relation with the right
        arity."""
        rel = self.relation(atom.relation)
        if atom.arity != rel.arity:
            raise SchemaError(
                f"atom {atom} has arity {atom.arity}, "
                f"but relation {rel.name!r} has arity {rel.arity}"
            )

    def validate_query(self, query) -> None:
        """Validate every atom of a CQ/UCQ/FO query or bare formula."""
        if isinstance(query, Formula):
            atoms = query.atoms()
        elif hasattr(query, "disjuncts"):
            for disjunct in query.disjuncts:
                self.validate_query(disjunct)
            return
        elif hasattr(query, "body"):
            atoms = query.body
        elif hasattr(query, "formula"):
            atoms = query.formula.atoms()
        else:
            raise SchemaError(f"cannot validate {type(query).__name__}")
        for atom in atoms:
            self.validate_atom(atom)

"""Command-line entry point: ``python -m repro.bench``.

Runs the social-network workload benchmark at the requested sizes,
prints a human-readable summary and writes the ``BENCH_<n>.json``
trajectory file (see :mod:`repro.bench`).
"""

from __future__ import annotations

import argparse

from repro.bench import BACKENDS, DEFAULT_SIZES, LARGE_SIZES, run_bench, run_large_bench, write_bench


def _sizes(text: str) -> tuple[int, ...]:
    try:
        sizes = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"sizes must be comma-separated integers, got {text!r}"
        ) from None
    if not sizes:
        raise argparse.ArgumentTypeError("at least one size is required")
    return sizes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "Benchmark the scale-independent executor on the social-network "
            "workload: batched vs per-tuple wall time, tuples accessed vs "
            "fanout bound, plan-cache hit rate."
        ),
    )
    parser.add_argument(
        "--sizes",
        type=_sizes,
        default=DEFAULT_SIZES,
        help="comma-separated database sizes (persons), e.g. 100,1000,10000",
    )
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (best is kept)"
    )
    parser.add_argument(
        "--params",
        type=int,
        default=8,
        help="parameter values sampled per size",
    )
    parser.add_argument(
        "--max-friends",
        type=int,
        default=None,
        help="friend fan-out cap (defaults to the workload default)",
    )
    parser.add_argument(
        "--churn-batches",
        type=int,
        default=4,
        help="churn batches per size for the refresh-vs-recompute scenario "
        "(0 disables it)",
    )
    parser.add_argument(
        "--churn-size",
        type=int,
        default=16,
        help="mutations per churn batch",
    )
    parser.add_argument(
        "--views",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run the Section 6 view scenario (Q4/Q5 through V1/V2, "
        "plus view refresh-vs-rematerialize under churn)",
    )
    parser.add_argument(
        "--view-batches",
        type=int,
        default=4,
        help="churn batches per size for the view-maintenance leg "
        "(0 disables just that leg)",
    )
    parser.add_argument(
        "--view-size",
        type=int,
        default=16,
        help="mutations per view-maintenance churn batch",
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="memory",
        help="storage backend every scenario's database runs on",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=4,
        help="child count for --backend sharded",
    )
    parser.add_argument(
        "--large",
        action="store_true",
        help="also run the out-of-core scale scenario (streamed bulk load, "
        "Q1-Q5 at --large-sizes on --large-backend, recompute baselines "
        "skipped as infeasible)",
    )
    parser.add_argument(
        "--large-sizes",
        type=_sizes,
        default=LARGE_SIZES,
        help="comma-separated sizes for the --large scenario",
    )
    parser.add_argument(
        "--large-backend",
        choices=BACKENDS,
        default="sqlite",
        help="storage backend for the --large scenario",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: BENCH_<version>.json in the cwd)",
    )
    parser.add_argument(
        "--assert-speedup-floor",
        type=float,
        default=None,
        metavar="FLOOR",
        help="exit nonzero unless every query's batched-vs-per-tuple "
        "speedup at the largest size is at least FLOOR (CI guard against "
        "executor regressions)",
    )
    args = parser.parse_args(argv)

    doc = run_bench(
        args.sizes,
        seed=args.seed,
        repeats=args.repeats,
        params_per_size=args.params,
        max_friends=args.max_friends,
        churn_batches=args.churn_batches,
        churn_batch_size=args.churn_size,
        views=args.views,
        view_batches=args.view_batches,
        view_batch_size=args.view_size,
        backend=args.backend,
        shards=args.shards,
        output=False if args.large else args.out,
    )
    if args.large:
        doc["large"] = run_large_bench(
            args.large_sizes,
            backend=args.large_backend,
            shards=args.shards,
            seed=args.seed,
            repeats=args.repeats,
            params_per_size=args.params,
            views=args.views,
        )
        write_bench(doc, args.out)

    print(
        f"workload: {doc['workload']}  sizes: {doc['sizes']}  "
        f"seed: {doc['seed']}  backend: {doc['backend']}"
    )
    header = f"{'query':<6} {'size':>8} {'batched µs':>11} {'per-tuple µs':>13} {'speedup':>8} {'tuples':>7} {'bound':>7}"
    print(header)
    print("-" * len(header))
    by_key = {(r["query"], r["size"], r["mode"]): r for r in doc["records"]}
    for name in sorted({r["query"] for r in doc["records"]}):
        for size in doc["sizes"]:
            batched = by_key[name, size, "batched"]
            per_tuple = by_key[name, size, "per_tuple"]
            speedup = (
                per_tuple["wall_time_s"] / batched["wall_time_s"]
                if batched["wall_time_s"]
                else float("inf")
            )
            print(
                f"{name:<6} {size:>8} "
                f"{batched['wall_time_s'] * 1e6:>11.1f} "
                f"{per_tuple['wall_time_s'] * 1e6:>13.1f} "
                f"{speedup:>7.2f}x "
                f"{batched['tuples_accessed_max']:>7} "
                f"{batched['fanout_bound']:>7}"
            )
    churn = doc.get("churn", {})
    if churn.get("records"):
        print(
            f"\nchurn: {churn['batches']} batches x {churn['batch_size']} "
            f"mutations per size"
        )
        header = (
            f"{'query':<6} {'size':>8} {'refresh µs':>11} {'recompute µs':>13} "
            f"{'speedup':>8} {'tuples':>7} {'Δbound':>7}"
        )
        print(header)
        print("-" * len(header))
        for record in churn["records"]:
            print(
                f"{record['query']:<6} {record['size']:>8} "
                f"{record['refresh_wall_s'] * 1e6:>11.1f} "
                f"{record['recompute_wall_s'] * 1e6:>13.1f} "
                f"{record['speedup']:>7.2f}x "
                f"{record['refresh_tuples_max']:>7} "
                f"{record['delta_bound_max']:>7}"
            )
    views = doc.get("views", {})
    if views.get("records"):
        print(
            f"\nviews: Q4/Q5 through V1/V2 (declared bound {views['bound']}); "
            f"base rules alone: NotControlledError"
        )
        header = (
            f"{'query':<6} {'size':>8} {'view µs':>11} {'naive µs':>13} "
            f"{'speedup':>8} {'tuples':>7} {'bound':>7}"
        )
        print(header)
        print("-" * len(header))
        by_mode = {
            (r["query"], r["size"], r["mode"]): r for r in views["records"]
        }
        for name in sorted({r["query"] for r in views["records"]}):
            for size in doc["sizes"]:
                assisted = by_mode.get((name, size, "view_assisted"))
                naive = by_mode.get((name, size, "base_naive"))
                if assisted is None or naive is None:
                    continue
                speedup = (
                    naive["wall_time_s"] / assisted["wall_time_s"]
                    if assisted["wall_time_s"]
                    else float("inf")
                )
                print(
                    f"{name:<6} {size:>8} "
                    f"{assisted['wall_time_s'] * 1e6:>11.1f} "
                    f"{naive['wall_time_s'] * 1e6:>13.1f} "
                    f"{speedup:>7.2f}x "
                    f"{assisted['tuples_accessed_max']:>7} "
                    f"{assisted['fanout_bound']:>7}"
                )
    if views.get("maintenance"):
        print(
            f"\nview maintenance: {views['batches']} batches x "
            f"{views['batch_size']} mutations per size"
        )
        header = (
            f"{'view':<6} {'size':>8} {'refresh µs':>11} {'rebuild µs':>13} "
            f"{'speedup':>8} {'tuples':>7} {'rows':>7}"
        )
        print(header)
        print("-" * len(header))
        for record in views["maintenance"]:
            print(
                f"{record['view']:<6} {record['size']:>8} "
                f"{record['refresh_wall_s'] * 1e6:>11.1f} "
                f"{record['recompute_wall_s'] * 1e6:>13.1f} "
                f"{record['speedup']:>7.2f}x "
                f"{record['refresh_tuples_max']:>7} "
                f"{record['rows_final']:>7}"
            )
    large = doc.get("large")
    if large:
        print(
            f"\nlarge scale scenario: backend {large['backend']}  "
            f"sizes {large['sizes']}  block {large['block']}"
        )
        for size in large["sizes"]:
            stats = large["load"][str(size)]
            print(
                f"  loaded {stats['rows_loaded']} rows @ size {size} in "
                f"{stats['load_wall_s']:.1f}s (max in-degree "
                f"{stats['max_in_degree']})"
            )
        header = (
            f"{'query':<6} {'size':>9} {'batched µs':>11} {'p99 µs':>9} "
            f"{'tuples':>7} {'bound':>7} {'flat':>5}"
        )
        print(header)
        print("-" * len(header))
        large_by_key = {
            (r["query"], r["size"]): r
            for r in large["records"]
            if r["mode"] == "batched"
        }
        large_by_key.update(
            {(r["query"], r["size"]): r for r in large.get("view_records", [])}
        )
        for name in sorted(large["summary"]):
            entry = large["summary"][name]
            for size in large["sizes"]:
                record = large_by_key[name, size]
                print(
                    f"{name:<6} {size:>9} "
                    f"{record['wall_time_s'] * 1e6:>11.1f} "
                    f"{record['p99_s'] * 1e6:>9.1f} "
                    f"{record['tuples_accessed_max']:>7} "
                    f"{record['fanout_bound']:>7} "
                    f"{'yes' if entry['flat_across_sizes'] else 'NO':>5}"
                )
        print(f"  zero full scans: {large['zero_full_scans']}")
        print(f"  skipped: {large['skipped']}")
    for size, cache in doc["plan_cache"].items():
        print(
            f"plan cache @ size {size}: {cache['hits']} hits / "
            f"{cache['misses']} misses (hit rate {cache['hit_rate']:.2f})"
        )
    if args.assert_speedup_floor is not None:
        floor = args.assert_speedup_floor
        slow = {
            name: entry["speedup_at_largest"]
            for name, entry in doc["summary"].items()
            if "speedup_at_largest" in entry
            and entry["speedup_at_largest"] < floor
        }
        if slow:
            detail = ", ".join(
                f"{name}={speedup:.2f}x" for name, speedup in sorted(slow.items())
            )
            print(
                f"SPEEDUP FLOOR VIOLATED: {detail} below required {floor:.2f}x "
                f"at size {max(doc['sizes'])}"
            )
            return 1
        print(f"speedup floor {floor:.2f}x satisfied at size {max(doc['sizes'])}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""The experiment harness: measure scale independence, don't just assert it.

``run_bench`` drives the :mod:`repro.workloads` social-network queries
Q1/Q2/Q3 at increasing database sizes and records, per (query, size):

* wall time per execution through the **batched** operator pipeline
  (:func:`repro.core.executor.execute_plan`) and through the **per-tuple**
  reference path (:func:`repro.core.executor.execute_per_tuple`) -- the
  speedup of batched over per-tuple is the refactor's dividend;
* tuples accessed per execution next to the plan's ``fanout_bound`` --
  the paper's claim is that this stays flat while the database grows;
* plan-cache hits/misses for the run's repeated parameterized executes.

On top of that, the **churn scenario** measures incremental scale
independence (Section 5): per (query, size), materialize
:class:`~repro.incremental.IncrementalResult` answers, drive a seeded
insert/delete stream (:func:`repro.workloads.generate_churn`, degree caps
honored), and record ``refresh()`` wall time and tuples accessed against
a from-scratch recompute after every batch -- refresh must win on time
and stay within the delta fanout bound, which depends on the batch, not
the database.

The **view scenario** (Section 6, bench version 5) exercises the queries
the base access schema cannot control at all -- Q4 (followers of ``?p``
in NYC) and Q5 (who visited ``?u``) -- after registering the workload
views V1/V2 (:func:`repro.workloads.register_workload_views`).  Per
(query, size) it records the view-assisted execution (tuples accessed
must stay within the plan's bound, flat across sizes, zero scans) next
to an unrestricted naive evaluation of the same query (the base-only
reference: correct, but honoring no declared access path -- over base
rules alone the query raises ``NotControlledError``, which the scenario
also verifies).  Per (view, size) it then drives the churn stream and
measures incremental view *maintenance*: ``ViewState.refresh()`` wall
time and stored tuples touched against a from-scratch rematerialization
after every batch -- refresh must win, and for the single-atom V1/V2 it
touches zero stored tuples.

Each document also records the static-analysis gate's verdict over the
workload (:func:`repro.analysis.workload_report` -- diagnostic counts
and whether Q1-Q5 stay clean at warning level), so a bench trajectory
whose workload regressed is visible as such.

The results are written to ``BENCH_<n>.json`` (``n`` =
:data:`BENCH_VERSION`, bumped whenever the measured pipeline changes) so
the repository accumulates a perf trajectory over time.  CI runs a
seconds-scale smoke configuration and uploads the file as an artifact;
locally::

    PYTHONPATH=src python -m repro.bench --sizes 100,1000,10000

or from code::

    from repro.bench import run_bench
    doc = run_bench(sizes=(100, 1000, 10000), seed=0)
"""

from __future__ import annotations

import json
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Literal, Mapping, Sequence

from repro.api.engine import Engine
from repro.core.executor import execute_per_tuple, execute_plan
from repro.errors import NotControlledError
from repro.relational import ShardedBackend, SqliteBackend, StorageBackend
from repro.views import ViewState
from repro.workloads import (
    DEFAULT_BLOCK,
    DEFAULT_VIEW_BOUND,
    RUNNING_QUERIES,
    SOCIAL_SCHEMA,
    VIEW_QUERIES,
    QueryBundle,
    generate_churn,
    generate_social_network,
    max_in_degree,
    register_workload_views,
    sample_pids,
    sample_urls,
    social_access_text,
    social_engine,
    stream_social_network,
)

#: Numbers the ``BENCH_<n>.json`` trajectory; bump when the measured
#: pipeline changes materially.
BENCH_VERSION = 9

DEFAULT_SIZES = (100, 1000, 10000)

#: The storage backends the bench can run against (--backend).
BACKENDS = ("memory", "sqlite", "sharded")


def _make_backend(
    backend: str, shards: int, path: str | None = None
) -> "StorageBackend | None":
    """A fresh backend instance for one database (backends are one-shot:
    each attaches to a single Database).  ``None`` means the default
    memory backend, keeping the historical construction path -- and its
    measured numbers -- byte-identical."""
    if backend == "memory":
        return None
    if backend == "sqlite":
        return SqliteBackend(path)
    if backend == "sharded":
        return ShardedBackend(shards)
    raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")


@dataclass(frozen=True)
class BenchRecord:
    """One (query, database size, execution mode) measurement."""

    query: str
    size: int
    mode: str  # "batched" | "per_tuple"
    executions: int
    wall_time_s: float  # best-of-repeats mean seconds per execution
    p50_s: float  # median seconds per execution (individually timed pass)
    p99_s: float  # 99th-percentile seconds per execution (same pass)
    rows: int  # total distinct answer rows across the parameter stream
    tuples_accessed_max: int  # worst case per execution
    fanout_bound: int
    indexed_lookups: int  # for the worst-case execution
    full_scans: int  # across the whole run; must stay 0
    backend: str = "memory"  # storage backend the database ran on
    rows_loaded: int = 0  # tuples in the database when measured


@dataclass(frozen=True)
class ChurnRecord:
    """One (query, database size) refresh-vs-recompute measurement over a
    seeded churn stream."""

    query: str
    size: int
    batches: int
    batch_size: int
    refreshes: int  # refresh/recompute pairs measured
    refresh_wall_s: float  # mean seconds per incremental refresh
    recompute_wall_s: float  # mean seconds per from-scratch execute
    speedup: float  # recompute over refresh
    refresh_tuples_max: int  # worst refresh's tuples accessed
    delta_bound_max: int  # that refresh's a-priori delta fanout bound
    full_scans: int  # across every refresh; must stay 0


@dataclass(frozen=True)
class ViewQueryRecord:
    """One (view-unlocked query, database size, mode) measurement: the
    view-assisted bounded plan vs the unrestricted naive evaluation."""

    query: str
    size: int
    mode: str  # "view_assisted" | "base_naive"
    executions: int
    wall_time_s: float  # best-of-repeats mean seconds per execution
    p50_s: float  # median seconds per execution (individually timed pass)
    p99_s: float  # 99th-percentile seconds per execution (same pass)
    rows: int  # total distinct answer rows across the parameter stream
    tuples_accessed_max: int  # worst case per execution
    fanout_bound: int  # the view-assisted plan's bound (0 for naive)
    full_scans: int  # across the whole run
    controlled_without_views: bool  # False: base rules alone raise
    backend: str = "memory"  # storage backend the database ran on
    rows_loaded: int = 0  # base tuples in the database when measured


@dataclass(frozen=True)
class ViewMaintenanceRecord:
    """One (view, database size) refresh-vs-rematerialize measurement
    over the seeded churn stream."""

    view: str
    size: int
    batches: int
    batch_size: int
    refreshes: int
    refresh_wall_s: float  # mean seconds per incremental refresh
    recompute_wall_s: float  # mean seconds per from-scratch rebuild
    speedup: float  # recompute over refresh
    refresh_tuples_max: int  # worst refresh's stored tuples touched
    rows_final: int  # view size after the stream (sanity/scale signal)


def _measure_access(plan, db, runner, param_values: Sequence[Mapping]) -> tuple[int, int, int, int]:
    """Run once per parameter set with accounting; return (rows, max
    tuples accessed per execution, lookups of that execution, scans)."""
    rows = set()
    worst = (0, 0)
    scans = 0
    for values in param_values:
        before = db.stats.snapshot()
        out = runner(plan, db, values)
        delta = db.stats.since(before)
        rows.update(out)
        scans += delta.full_scans
        if delta.tuples_accessed > worst[0]:
            worst = (delta.tuples_accessed, delta.indexed_lookups)
    return len(rows), worst[0], worst[1], scans


def _time_executions(plan, db, runner, param_values, repeats: int) -> float:
    """Best-of-``repeats`` mean wall seconds per execution."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for values in param_values:
            runner(plan, db, values)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / len(param_values))
    return best


#: Minimum individually-timed samples behind a percentile estimate; the
#: sampling passes loop the parameter stream until they have this many.
LATENCY_SAMPLES = 200


def _percentiles(samples: list[float]) -> tuple[float, float]:
    """(p50, p99) of ``samples`` by the nearest-rank method."""
    if not samples:
        return 0.0, 0.0
    ordered = sorted(samples)
    n = len(ordered)
    p50 = ordered[max(0, -(-n // 2) - 1)]
    p99 = ordered[max(0, -(-99 * n // 100) - 1)]
    return p50, p99


def _latency_percentiles(
    fn, param_values, minimum: int = LATENCY_SAMPLES
) -> tuple[float, float]:
    """(p50, p99) wall seconds per execution of ``fn(values)``.

    The mean (``wall_time_s``) keeps its bulk-timed methodology -- one
    clock read around the whole parameter stream, comparable across bench
    versions -- so percentiles come from a separate pass that times every
    execution individually, looping the stream until at least ``minimum``
    samples exist."""
    samples: list[float] = []
    clock = time.perf_counter
    while len(samples) < minimum:
        for values in param_values:
            start = clock()
            fn(values)
            samples.append(clock() - start)
    return _percentiles(samples)


def _run_churn(
    size: int,
    *,
    seed: int,
    engine_kwargs: Mapping,
    queries: Sequence[QueryBundle],
    params_per_size: int,
    batches: int,
    batch_size: int,
    backend: str = "memory",
    shards: int = 4,
) -> list[ChurnRecord]:
    """The churn scenario at one database size: materialize incremental
    results for every (query, parameter), apply the seeded churn stream,
    and measure each refresh against a from-scratch recompute (which must
    agree -- the bench doubles as an end-to-end differential check)."""
    caps = {
        key: engine_kwargs[key]
        for key in ("max_friends", "max_visits")
        if key in engine_kwargs
    }
    # Generate the instance once and hand it to both the engine and the
    # churn derivation (social_engine would generate an identical copy).
    data = generate_social_network(size, **engine_kwargs)
    engine = Engine(
        SOCIAL_SCHEMA,
        social_access_text(**caps),
        data,
        backend=_make_backend(backend, shards),
    )
    db = engine.require_database()
    stream = generate_churn(
        data, batches=batches, batch_size=batch_size, seed=seed + 1, **caps
    )
    pids = sample_pids(size, params_per_size, seed=seed)
    prepared = {bundle.name: bundle.prepare(engine) for bundle in queries}
    live = {
        (bundle.name, pid): prepared[bundle.name].execute_incremental(
            {bundle.parameters[0]: pid}
        )
        for bundle in queries
        for pid in pids
    }
    acc = {
        bundle.name: {
            "refresh": 0.0,
            "recompute": 0.0,
            "tuples": 0,
            "bound": 0,
            "scans": 0,
            "n": 0,
        }
        for bundle in queries
    }
    for batch in stream:
        batch.apply(db)
        for bundle in queries:
            entry = acc[bundle.name]
            for pid in pids:
                result = live[bundle.name, pid]
                start = time.perf_counter()
                result.refresh()
                entry["refresh"] += time.perf_counter() - start
                start = time.perf_counter()
                fresh = prepared[bundle.name].execute({bundle.parameters[0]: pid})
                entry["recompute"] += time.perf_counter() - start
                if set(result.rows) != set(fresh.rows):
                    raise AssertionError(
                        f"refresh diverged from recompute: {bundle.name} "
                        f"size={size} pid={pid}"
                    )
                if result.stats.tuples_accessed > entry["tuples"]:
                    entry["tuples"] = result.stats.tuples_accessed
                    entry["bound"] = result.delta_bound or 0
                entry["scans"] += result.stats.full_scans
                entry["n"] += 1
    return [
        ChurnRecord(
            query=name,
            size=size,
            batches=batches,
            batch_size=batch_size,
            refreshes=entry["n"],
            refresh_wall_s=entry["refresh"] / entry["n"] if entry["n"] else 0.0,
            recompute_wall_s=entry["recompute"] / entry["n"] if entry["n"] else 0.0,
            speedup=(
                round(entry["recompute"] / entry["refresh"], 3)
                if entry["refresh"]
                else float("inf")
            ),
            refresh_tuples_max=entry["tuples"],
            delta_bound_max=entry["bound"],
            full_scans=entry["scans"],
        )
        for name, entry in acc.items()
    ]


def _run_views(
    size: int,
    *,
    seed: int,
    engine_kwargs: Mapping,
    params_per_size: int,
    repeats: int,
    batches: int,
    batch_size: int,
    backend: str = "memory",
    shards: int = 4,
) -> tuple[list[ViewQueryRecord], list[ViewMaintenanceRecord]]:
    """The view scenario at one database size: Q4/Q5 through V1/V2
    (bounded, differential-checked against naive evaluation) plus
    refresh-vs-rematerialize view maintenance under churn."""
    caps = {
        key: engine_kwargs[key]
        for key in ("max_friends", "max_visits")
        if key in engine_kwargs
    }
    data = generate_social_network(size, **engine_kwargs)
    for relation in ("friend", "visits"):
        actual = max_in_degree(data, relation)
        if actual > DEFAULT_VIEW_BOUND:
            raise AssertionError(
                f"measured in-degree {actual} of {relation!r} exceeds the "
                f"declared view bound {DEFAULT_VIEW_BOUND} at size {size}: "
                f"the workload views' promise would be untruthful"
            )
    engine = Engine(
        SOCIAL_SCHEMA,
        social_access_text(**caps),
        data,
        backend=_make_backend(backend, shards),
    )
    db = engine.require_database()
    rows_loaded = db.size()
    streams: dict[str, list[dict]] = {
        "Q4": [{"p": pid} for pid in sample_pids(size, params_per_size, seed=seed)],
        "Q5": [{"u": url} for url in sample_urls(data, params_per_size, seed=seed)],
    }

    # Over base rules alone these queries must not be controlled at all
    # -- that is the whole point of the scenario.
    controlled: dict[str, bool] = {}
    for bundle in VIEW_QUERIES:
        prepared = bundle.prepare(engine)
        try:
            prepared.plan(bundle.parameters)
            controlled[bundle.name] = True
        except NotControlledError:
            controlled[bundle.name] = False

    views = register_workload_views(engine)
    records: list[ViewQueryRecord] = []
    for bundle in VIEW_QUERIES:
        prepared = bundle.prepare(engine)
        param_values = streams[bundle.name]
        for values in param_values:  # warm: plan cache + materialization
            prepared.execute(values)

        rows: set = set()
        tuples_max = 0
        scans = 0
        bound = 0
        for values in param_values:
            result = prepared.execute(values)
            rows.update(result.rows)
            tuples_max = max(tuples_max, result.stats.tuples_accessed)
            scans += result.stats.full_scans
            bound = result.fanout_bound
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for values in param_values:
                prepared.execute(values)
            best = min(best, (time.perf_counter() - start) / len(param_values))
        p50, p99 = _latency_percentiles(prepared.execute, param_values)
        records.append(
            ViewQueryRecord(
                query=bundle.name,
                size=size,
                mode="view_assisted",
                executions=len(param_values) * repeats,
                wall_time_s=best,
                p50_s=p50,
                p99_s=p99,
                rows=len(rows),
                tuples_accessed_max=tuples_max,
                fanout_bound=bound,
                full_scans=scans,
                controlled_without_views=controlled[bundle.name],
                backend=backend,
                rows_loaded=rows_loaded,
            )
        )

        # The unrestricted reference: naive evaluation honors no access
        # path; it doubles as the scenario's differential check.
        cq = prepared.query
        naive_rows: set = set()
        naive_tuples_max = 0
        naive_scans = 0
        for values in param_values:
            before = db.stats.snapshot()
            out = cq.evaluate(db, values)
            delta = db.stats.since(before)
            naive_rows.update(out)
            naive_tuples_max = max(naive_tuples_max, delta.tuples_accessed)
            naive_scans += delta.full_scans
        if naive_rows != rows:
            raise AssertionError(
                f"view-assisted answers diverged from naive evaluation: "
                f"{bundle.name} size={size}"
            )
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for values in param_values:
                cq.evaluate(db, values)
            best = min(best, (time.perf_counter() - start) / len(param_values))
        p50, p99 = _latency_percentiles(
            lambda values: cq.evaluate(db, values), param_values
        )
        records.append(
            ViewQueryRecord(
                query=bundle.name,
                size=size,
                mode="base_naive",
                executions=len(param_values) * repeats,
                wall_time_s=best,
                p50_s=p50,
                p99_s=p99,
                rows=len(naive_rows),
                tuples_accessed_max=naive_tuples_max,
                fanout_bound=0,
                full_scans=naive_scans,
                controlled_without_views=controlled[bundle.name],
                backend=backend,
                rows_loaded=rows_loaded,
            )
        )

    maintenance: list[ViewMaintenanceRecord] = []
    if batches:
        stream = generate_churn(
            data, batches=batches, batch_size=batch_size, seed=seed + 1, **caps
        )
        acc = {
            view.name: {
                "refresh": 0.0,
                "recompute": 0.0,
                "tuples": 0,
                "n": 0,
                "rows": 0,
            }
            for view in views
        }
        # Compile each maintenance plan once, outside the timed region:
        # the recompute leg must measure rematerialization, not repeated
        # plan compilation.
        maintenance_plans = {
            view.name: view.maintenance_plan(db.schema) for view in views
        }
        for batch in stream:
            batch.apply(db)
            for view in views:
                state = engine.views.state(view.name)
                if state is None:  # pragma: no cover - warmed above
                    state = engine.views.prepare(db, [view.name])[view.name]
                entry = acc[view.name]
                before = db.stats.snapshot()
                start = time.perf_counter()
                state.refresh()
                entry["refresh"] += time.perf_counter() - start
                touched = db.stats.since(before).tuples_accessed
                entry["tuples"] = max(entry["tuples"], touched)
                start = time.perf_counter()
                fresh = ViewState(view, db, maintenance_plans[view.name])
                entry["recompute"] += time.perf_counter() - start
                if set(fresh.rows) != set(state.rows):
                    raise AssertionError(
                        f"view refresh diverged from rematerialization: "
                        f"{view.name} size={size}"
                    )
                entry["n"] += 1
                entry["rows"] = len(state.rows)
        maintenance = [
            ViewMaintenanceRecord(
                view=name,
                size=size,
                batches=batches,
                batch_size=batch_size,
                refreshes=entry["n"],
                refresh_wall_s=entry["refresh"] / entry["n"] if entry["n"] else 0.0,
                recompute_wall_s=(
                    entry["recompute"] / entry["n"] if entry["n"] else 0.0
                ),
                speedup=(
                    round(entry["recompute"] / entry["refresh"], 3)
                    if entry["refresh"]
                    else float("inf")
                ),
                refresh_tuples_max=entry["tuples"],
                rows_final=entry["rows"],
            )
            for name, entry in acc.items()
        ]
    return records, maintenance


def run_bench(
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    seed: int = 0,
    repeats: int = 3,
    params_per_size: int = 8,
    queries: Sequence[QueryBundle] = RUNNING_QUERIES,
    max_friends: int | None = None,
    churn_batches: int = 4,
    churn_batch_size: int = 16,
    views: bool = True,
    view_batches: int = 4,
    view_batch_size: int = 16,
    backend: str = "memory",
    shards: int = 4,
    output: str | Path | None | Literal[False] = None,
) -> dict:
    """Run the workload ``queries`` at each database size in ``sizes`` and
    return (and optionally write) the benchmark document.

    ``churn_batches`` / ``churn_batch_size`` shape the churn scenario's
    mutation stream (``churn_batches=0`` disables it).  ``views``
    toggles the Section 6 scenario (Q4/Q5 through V1/V2 plus
    refresh-vs-rematerialize maintenance shaped by ``view_batches`` /
    ``view_batch_size``).  ``backend`` selects the storage engine every
    scenario's database runs on (:data:`BACKENDS`; ``shards`` sizes the
    sharded composite) -- the same compiled plans run against all of
    them, which is the point of the backend axis.  ``output`` -- path for
    the JSON document; ``None`` writes the default ``BENCH_<n>.json`` in
    the current directory; pass ``output=False`` to skip writing.
    """
    sizes = tuple(sizes)
    if not sizes or any(s < 2 for s in sizes):
        raise ValueError(f"sizes must be >= 2, got {sizes!r}")
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    engine_kwargs: dict = {"seed": seed}
    if max_friends is not None:
        engine_kwargs["max_friends"] = max_friends

    records: list[BenchRecord] = []
    cache_stats: dict[int, dict[str, float]] = {}
    for size in sizes:
        engine = social_engine(
            size, **engine_kwargs, backend=_make_backend(backend, shards)
        )
        db = engine.require_database()
        rows_loaded = db.size()
        cache_before = engine.cache_stats()
        for bundle in queries:
            prepared = bundle.prepare(engine)
            plan = prepared.plan(bundle.parameters)
            pids = sample_pids(size, params_per_size, seed=seed)
            param_values = [
                {bundle.parameters[0]: pid} for pid in pids
            ]
            # Warm the plan cache the way production traffic would, and
            # exercise the facade path once per parameter.
            for values in param_values:
                prepared.execute(values)
            for mode, runner in (
                ("batched", execute_plan),
                ("per_tuple", execute_per_tuple),
            ):
                rows, tuples_max, lookups, scans = _measure_access(
                    plan, db, runner, param_values
                )
                wall = _time_executions(plan, db, runner, param_values, repeats)
                p50, p99 = _latency_percentiles(
                    lambda values: runner(plan, db, values), param_values
                )
                records.append(
                    BenchRecord(
                        query=bundle.name,
                        size=size,
                        mode=mode,
                        executions=len(param_values) * repeats,
                        wall_time_s=wall,
                        p50_s=p50,
                        p99_s=p99,
                        rows=rows,
                        tuples_accessed_max=tuples_max,
                        fanout_bound=plan.fanout_bound,
                        indexed_lookups=lookups,
                        full_scans=scans,
                        backend=backend,
                        rows_loaded=rows_loaded,
                    )
                )
        cache_after = engine.cache_stats()
        hits = cache_after.hits - cache_before.hits
        misses = cache_after.misses - cache_before.misses
        cache_stats[size] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        }

    churn_records: list[ChurnRecord] = []
    if churn_batches:
        for size in sizes:
            churn_records.extend(
                _run_churn(
                    size,
                    seed=seed,
                    engine_kwargs=engine_kwargs,
                    queries=queries,
                    params_per_size=params_per_size,
                    batches=churn_batches,
                    batch_size=churn_batch_size,
                    backend=backend,
                    shards=shards,
                )
            )

    view_records: list[ViewQueryRecord] = []
    view_maintenance: list[ViewMaintenanceRecord] = []
    if views:
        for size in sizes:
            query_records, maintenance_records = _run_views(
                size,
                seed=seed,
                engine_kwargs=engine_kwargs,
                params_per_size=params_per_size,
                repeats=repeats,
                batches=view_batches,
                batch_size=view_batch_size,
                backend=backend,
                shards=shards,
            )
            view_records.extend(query_records)
            view_maintenance.extend(maintenance_records)

    # The static-analysis gate's verdict rides along in the trajectory:
    # a bench run whose workload stopped being diagnostic-clean is
    # measuring a workload the CI gate would reject.
    from repro.analysis import Severity, workload_report

    analysis = workload_report()
    doc = {
        "bench_version": BENCH_VERSION,
        "workload": "social",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "seed": seed,
        "sizes": list(sizes),
        "repeats": repeats,
        "params_per_size": params_per_size,
        "backend": backend,
        "shards": shards if backend == "sharded" else None,
        "records": [asdict(r) for r in records],
        "churn": {
            "batches": churn_batches,
            "batch_size": churn_batch_size,
            "records": [asdict(r) for r in churn_records],
        },
        "views": {
            "enabled": bool(views),
            "bound": DEFAULT_VIEW_BOUND,
            "batches": view_batches,
            "batch_size": view_batch_size,
            "records": [asdict(r) for r in view_records],
            "maintenance": [asdict(r) for r in view_maintenance],
        },
        "plan_cache": cache_stats,
        "analysis": {
            "diagnostics": len(analysis),
            "errors": len(analysis.errors),
            "warnings": len(analysis.warnings),
            "hints": len(analysis.hints),
            "clean_at_warning": analysis.ok(Severity.WARNING),
        },
        "summary": summarize(records, churn_records, view_records, view_maintenance),
    }
    if output is not False:
        write_bench(doc, output)
    return doc


#: Default sizes for the out-of-core scale scenario: the BENCH_8-scale
#: reference point and the million-row claim.
LARGE_SIZES = (10_000, 1_000_000)


def run_large_bench(
    sizes: Sequence[int] = LARGE_SIZES,
    *,
    backend: str = "sqlite",
    shards: int = 4,
    seed: int = 0,
    repeats: int = 3,
    params_per_size: int = 8,
    block: int | None = None,
    views: bool = True,
    sqlite_dir: str | Path | None = None,
) -> dict:
    """The out-of-core scale scenario: stream block-structured instances
    of each size into a fresh backend via
    :meth:`~repro.relational.instance.Database.bulk_load` (never holding
    more than one generator block in Python memory) and measure Q1-Q3
    plus, with ``views``, the view-assisted Q4/Q5.

    The block structure (see
    :func:`~repro.workloads.stream_social_network`) makes the scale
    claim exact: parameters are sampled from block 0, which is identical
    at every size, so ``tuples_accessed_max`` must be *equal* -- not just
    bounded -- across sizes; the returned ``summary`` records that
    flatness per query.  The unbounded baselines (naive evaluation,
    churn recompute) are deliberately skipped: at millions of rows they
    are exactly the full-scan work scale independence exists to avoid.

    ``block=None`` uses ``min(min(sizes), DEFAULT_BLOCK)`` so the
    smallest size is a single block.  SQLite stores go to files under
    ``sqlite_dir`` (a temporary directory by default, removed
    afterwards) -- at 1M persons the store is hundreds of MB, which is
    the point: the data lives on disk, not in the Python heap.
    """
    sizes = tuple(sizes)
    if not sizes or any(s < 2 for s in sizes):
        raise ValueError(f"sizes must be >= 2, got {sizes!r}")
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    block_size = block if block is not None else min(min(sizes), DEFAULT_BLOCK)

    cleanup = None
    if backend == "sqlite" and sqlite_dir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-bench-")
        sqlite_dir = cleanup.name

    records: list[BenchRecord] = []
    view_records: list[ViewQueryRecord] = []
    load_stats: dict[str, dict] = {}
    try:
        for size in sizes:
            path = (
                str(Path(sqlite_dir) / f"social_{size}.sqlite3")
                if backend == "sqlite"
                else None
            )
            engine = Engine(
                SOCIAL_SCHEMA,
                social_access_text(),
                backend=_make_backend(backend, shards, path),
            )
            db = engine.require_database()

            # Stream-load block by block, tracking the measured in-degree
            # ceilings as we go (blocks are disjoint in both pid and url
            # space, so the per-chunk maximum is the global maximum) and
            # keeping block 0's visits for Q5's parameter stream.
            load_start = time.perf_counter()
            rows_loaded = 0
            in_degree = {"friend": 0, "visits": 0}
            block0_visits: list | None = None
            for relation, rows in stream_social_network(
                size, seed=seed, block=block_size
            ):
                if relation in in_degree and rows:
                    counts: dict = {}
                    for row in rows:
                        counts[row[1]] = counts.get(row[1], 0) + 1
                    in_degree[relation] = max(
                        in_degree[relation], max(counts.values())
                    )
                if relation == "visits" and block0_visits is None:
                    block0_visits = rows
                rows_loaded += db.bulk_load(relation, rows)
            load_wall = time.perf_counter() - load_start
            for relation, worst in in_degree.items():
                if worst > DEFAULT_VIEW_BOUND:
                    raise AssertionError(
                        f"measured in-degree {worst} of {relation!r} exceeds "
                        f"the declared view bound {DEFAULT_VIEW_BOUND} at "
                        f"size {size}: the workload views' promise would be "
                        f"untruthful"
                    )
            load_stats[str(size)] = {
                "rows_loaded": rows_loaded,
                "load_wall_s": round(load_wall, 3),
                "max_in_degree": dict(in_degree),
            }

            # Parameters come from block 0, identical at every size.
            pids = sample_pids(min(size, block_size), params_per_size, seed=seed)
            urls = sample_urls(
                {"visits": block0_visits or []}, params_per_size, seed=seed
            )

            for bundle in RUNNING_QUERIES:
                prepared = bundle.prepare(engine)
                plan = prepared.plan(bundle.parameters)
                param_values = [{bundle.parameters[0]: pid} for pid in pids]
                for values in param_values:  # warm plan cache + indexes
                    prepared.execute(values)
                for mode, runner in (
                    ("batched", execute_plan),
                    ("per_tuple", execute_per_tuple),
                ):
                    n_rows, tuples_max, lookups, scans = _measure_access(
                        plan, db, runner, param_values
                    )
                    wall = _time_executions(plan, db, runner, param_values, repeats)
                    p50, p99 = _latency_percentiles(
                        lambda values: runner(plan, db, values), param_values
                    )
                    records.append(
                        BenchRecord(
                            query=bundle.name,
                            size=size,
                            mode=mode,
                            executions=len(param_values) * repeats,
                            wall_time_s=wall,
                            p50_s=p50,
                            p99_s=p99,
                            rows=n_rows,
                            tuples_accessed_max=tuples_max,
                            fanout_bound=plan.fanout_bound,
                            indexed_lookups=lookups,
                            full_scans=scans,
                            backend=backend,
                            rows_loaded=rows_loaded,
                        )
                    )

            if views:
                controlled: dict[str, bool] = {}
                for bundle in VIEW_QUERIES:
                    prepared = bundle.prepare(engine)
                    try:
                        prepared.plan(bundle.parameters)
                        controlled[bundle.name] = True
                    except NotControlledError:
                        controlled[bundle.name] = False
                register_workload_views(engine)
                streams = {
                    "Q4": [{"p": pid} for pid in pids],
                    "Q5": [{"u": url} for url in urls],
                }
                for bundle in VIEW_QUERIES:
                    prepared = bundle.prepare(engine)
                    param_values = streams[bundle.name]
                    for values in param_values:  # warm: materialization
                        prepared.execute(values)
                    rows_set: set = set()
                    tuples_max = 0
                    scans = 0
                    bound = 0
                    for values in param_values:
                        result = prepared.execute(values)
                        rows_set.update(result.rows)
                        tuples_max = max(tuples_max, result.stats.tuples_accessed)
                        scans += result.stats.full_scans
                        bound = result.fanout_bound
                    best = float("inf")
                    for _ in range(repeats):
                        start = time.perf_counter()
                        for values in param_values:
                            prepared.execute(values)
                        best = min(
                            best, (time.perf_counter() - start) / len(param_values)
                        )
                    p50, p99 = _latency_percentiles(prepared.execute, param_values)
                    view_records.append(
                        ViewQueryRecord(
                            query=bundle.name,
                            size=size,
                            mode="view_assisted",
                            executions=len(param_values) * repeats,
                            wall_time_s=best,
                            p50_s=p50,
                            p99_s=p99,
                            rows=len(rows_set),
                            tuples_accessed_max=tuples_max,
                            fanout_bound=bound,
                            full_scans=scans,
                            controlled_without_views=controlled[bundle.name],
                            backend=backend,
                            rows_loaded=rows_loaded,
                        )
                    )

            close = getattr(db.backend, "close", None)
            if close is not None:
                close()
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    summary: dict[str, dict] = {}
    for record in records:
        if record.mode != "batched":
            continue
        entry = summary.setdefault(
            record.query,
            {"tuples_accessed_by_size": {}, "fanout_bound": record.fanout_bound},
        )
        entry["tuples_accessed_by_size"][str(record.size)] = (
            record.tuples_accessed_max
        )
    for view_record in view_records:
        entry = summary.setdefault(
            view_record.query,
            {
                "tuples_accessed_by_size": {},
                "fanout_bound": view_record.fanout_bound,
            },
        )
        entry["tuples_accessed_by_size"][str(view_record.size)] = (
            view_record.tuples_accessed_max
        )
    for entry in summary.values():
        tuples = entry["tuples_accessed_by_size"]
        entry["flat_across_sizes"] = len(set(tuples.values())) <= 1
        entry["within_fanout_bound"] = all(
            t <= entry["fanout_bound"] for t in tuples.values()
        )

    return {
        "backend": backend,
        "shards": shards if backend == "sharded" else None,
        "sizes": list(sizes),
        "block": block_size,
        "seed": seed,
        "repeats": repeats,
        "params_per_size": params_per_size,
        "records": [asdict(r) for r in records],
        "view_records": [asdict(r) for r in view_records],
        "load": load_stats,
        "skipped": (
            "base_naive evaluation and churn recompute: both are full-scan "
            "work over millions of rows -- the infeasible baseline scale "
            "independence exists to avoid"
        ),
        "zero_full_scans": all(r.full_scans == 0 for r in records)
        and all(r.full_scans == 0 for r in view_records),
        "summary": summary,
    }


def summarize(
    records: Sequence[BenchRecord],
    churn_records: Sequence[ChurnRecord] = (),
    view_records: Sequence[ViewQueryRecord] = (),
    view_maintenance: Sequence[ViewMaintenanceRecord] = (),
) -> dict:
    """Per-query roll-up: tuples accessed by size (the flatness evidence),
    the batched-over-per-tuple speedup at the largest size and, when the
    churn scenario ran, the refresh-over-recompute speedup there too.
    The view scenario contributes the same flatness evidence for Q4/Q5
    (bounded through V1/V2) plus per-view maintenance speedups."""
    by_query: dict[str, dict] = {}
    for record in records:
        entry = by_query.setdefault(
            record.query,
            {"tuples_accessed_by_size": {}, "fanout_bound": record.fanout_bound},
        )
        if record.mode == "batched":
            entry["tuples_accessed_by_size"][str(record.size)] = (
                record.tuples_accessed_max
            )
    largest = max((r.size for r in records), default=0)
    for name, entry in by_query.items():
        batched = next(
            (
                r
                for r in records
                if r.query == name and r.size == largest and r.mode == "batched"
            ),
            None,
        )
        per_tuple = next(
            (
                r
                for r in records
                if r.query == name and r.size == largest and r.mode == "per_tuple"
            ),
            None,
        )
        if batched and per_tuple and batched.wall_time_s > 0:
            entry["speedup_at_largest"] = round(
                per_tuple.wall_time_s / batched.wall_time_s, 3
            )
        tuples = entry["tuples_accessed_by_size"]
        entry["within_fanout_bound"] = all(
            t <= entry["fanout_bound"] for t in tuples.values()
        )
    churn_largest = max((r.size for r in churn_records), default=0)
    for record in churn_records:
        entry = by_query.setdefault(record.query, {})
        if record.size == churn_largest:
            entry["refresh_speedup_at_largest"] = record.speedup
        entry["refresh_within_delta_bound"] = entry.get(
            "refresh_within_delta_bound", True
        ) and (record.refresh_tuples_max <= record.delta_bound_max)
    for record in view_records:
        if record.mode != "view_assisted":
            continue
        entry = by_query.setdefault(
            record.query,
            {"tuples_accessed_by_size": {}, "fanout_bound": record.fanout_bound},
        )
        entry["tuples_accessed_by_size"][str(record.size)] = (
            record.tuples_accessed_max
        )
        entry["fanout_bound"] = record.fanout_bound
        entry["controlled_without_views"] = record.controlled_without_views
        entry["within_fanout_bound"] = all(
            t <= entry["fanout_bound"]
            for t in entry["tuples_accessed_by_size"].values()
        )
    maintenance_largest = max((r.size for r in view_maintenance), default=0)
    for record in view_maintenance:
        entry = by_query.setdefault(record.view, {})
        if record.size == maintenance_largest:
            entry["view_refresh_speedup_at_largest"] = record.speedup
        entry["refresh_touches_zero_tuples"] = entry.get(
            "refresh_touches_zero_tuples", True
        ) and (record.refresh_tuples_max == 0)
    return by_query


def default_output_path(directory: str | Path = ".") -> Path:
    """Where the trajectory file for this bench version lives."""
    return Path(directory) / f"BENCH_{BENCH_VERSION}.json"


def write_bench(doc: Mapping, path: str | Path | None = None) -> Path:
    """Write the benchmark document as JSON; returns the path written."""
    target = Path(path) if path is not None else default_output_path()
    target.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    return target

"""The experiment harness: measure scale independence, don't just assert it.

``run_bench`` drives the :mod:`repro.workloads` social-network queries
Q1/Q2/Q3 at increasing database sizes and records, per (query, size):

* wall time per execution through the **batched** operator pipeline
  (:func:`repro.core.executor.execute_plan`) and through the **per-tuple**
  reference path (:func:`repro.core.executor.execute_per_tuple`) -- the
  speedup of batched over per-tuple is the refactor's dividend;
* tuples accessed per execution next to the plan's ``fanout_bound`` --
  the paper's claim is that this stays flat while the database grows;
* plan-cache hits/misses for the run's repeated parameterized executes.

On top of that, the **churn scenario** measures incremental scale
independence (Section 5): per (query, size), materialize
:class:`~repro.incremental.IncrementalResult` answers, drive a seeded
insert/delete stream (:func:`repro.workloads.generate_churn`, degree caps
honored), and record ``refresh()`` wall time and tuples accessed against
a from-scratch recompute after every batch -- refresh must win on time
and stay within the delta fanout bound, which depends on the batch, not
the database.

The results are written to ``BENCH_<n>.json`` (``n`` =
:data:`BENCH_VERSION`, bumped whenever the measured pipeline changes) so
the repository accumulates a perf trajectory over time.  CI runs a
seconds-scale smoke configuration and uploads the file as an artifact;
locally::

    PYTHONPATH=src python -m repro.bench --sizes 100,1000,10000

or from code::

    from repro.bench import run_bench
    doc = run_bench(sizes=(100, 1000, 10000), seed=0)
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Literal, Mapping, Sequence

from repro.api.engine import Engine
from repro.core.executor import execute_per_tuple, execute_plan
from repro.workloads import (
    RUNNING_QUERIES,
    SOCIAL_SCHEMA,
    QueryBundle,
    generate_churn,
    generate_social_network,
    sample_pids,
    social_access_text,
    social_engine,
)

#: Numbers the ``BENCH_<n>.json`` trajectory; bump when the measured
#: pipeline changes materially.
BENCH_VERSION = 4

DEFAULT_SIZES = (100, 1000, 10000)


@dataclass(frozen=True)
class BenchRecord:
    """One (query, database size, execution mode) measurement."""

    query: str
    size: int
    mode: str  # "batched" | "per_tuple"
    executions: int
    wall_time_s: float  # best-of-repeats mean seconds per execution
    rows: int  # total distinct answer rows across the parameter stream
    tuples_accessed_max: int  # worst case per execution
    fanout_bound: int
    indexed_lookups: int  # for the worst-case execution
    full_scans: int  # across the whole run; must stay 0


@dataclass(frozen=True)
class ChurnRecord:
    """One (query, database size) refresh-vs-recompute measurement over a
    seeded churn stream."""

    query: str
    size: int
    batches: int
    batch_size: int
    refreshes: int  # refresh/recompute pairs measured
    refresh_wall_s: float  # mean seconds per incremental refresh
    recompute_wall_s: float  # mean seconds per from-scratch execute
    speedup: float  # recompute over refresh
    refresh_tuples_max: int  # worst refresh's tuples accessed
    delta_bound_max: int  # that refresh's a-priori delta fanout bound
    full_scans: int  # across every refresh; must stay 0


def _measure_access(plan, db, runner, param_values: Sequence[Mapping]) -> tuple[int, int, int, int]:
    """Run once per parameter set with accounting; return (rows, max
    tuples accessed per execution, lookups of that execution, scans)."""
    rows = set()
    worst = (0, 0)
    scans = 0
    for values in param_values:
        before = db.stats.snapshot()
        out = runner(plan, db, values)
        delta = db.stats.since(before)
        rows.update(out)
        scans += delta.full_scans
        if delta.tuples_accessed > worst[0]:
            worst = (delta.tuples_accessed, delta.indexed_lookups)
    return len(rows), worst[0], worst[1], scans


def _time_executions(plan, db, runner, param_values, repeats: int) -> float:
    """Best-of-``repeats`` mean wall seconds per execution."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for values in param_values:
            runner(plan, db, values)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / len(param_values))
    return best


def _run_churn(
    size: int,
    *,
    seed: int,
    engine_kwargs: Mapping,
    queries: Sequence[QueryBundle],
    params_per_size: int,
    batches: int,
    batch_size: int,
) -> list[ChurnRecord]:
    """The churn scenario at one database size: materialize incremental
    results for every (query, parameter), apply the seeded churn stream,
    and measure each refresh against a from-scratch recompute (which must
    agree -- the bench doubles as an end-to-end differential check)."""
    caps = {
        key: engine_kwargs[key]
        for key in ("max_friends", "max_visits")
        if key in engine_kwargs
    }
    # Generate the instance once and hand it to both the engine and the
    # churn derivation (social_engine would generate an identical copy).
    data = generate_social_network(size, **engine_kwargs)
    engine = Engine(SOCIAL_SCHEMA, social_access_text(**caps), data)
    db = engine.require_database()
    stream = generate_churn(
        data, batches=batches, batch_size=batch_size, seed=seed + 1, **caps
    )
    pids = sample_pids(size, params_per_size, seed=seed)
    prepared = {bundle.name: bundle.prepare(engine) for bundle in queries}
    live = {
        (bundle.name, pid): prepared[bundle.name].execute_incremental(
            {bundle.parameters[0]: pid}
        )
        for bundle in queries
        for pid in pids
    }
    acc = {
        bundle.name: {
            "refresh": 0.0,
            "recompute": 0.0,
            "tuples": 0,
            "bound": 0,
            "scans": 0,
            "n": 0,
        }
        for bundle in queries
    }
    for batch in stream:
        batch.apply(db)
        for bundle in queries:
            entry = acc[bundle.name]
            for pid in pids:
                result = live[bundle.name, pid]
                start = time.perf_counter()
                result.refresh()
                entry["refresh"] += time.perf_counter() - start
                start = time.perf_counter()
                fresh = prepared[bundle.name].execute({bundle.parameters[0]: pid})
                entry["recompute"] += time.perf_counter() - start
                if set(result.rows) != set(fresh.rows):
                    raise AssertionError(
                        f"refresh diverged from recompute: {bundle.name} "
                        f"size={size} pid={pid}"
                    )
                if result.stats.tuples_accessed > entry["tuples"]:
                    entry["tuples"] = result.stats.tuples_accessed
                    entry["bound"] = result.delta_bound or 0
                entry["scans"] += result.stats.full_scans
                entry["n"] += 1
    return [
        ChurnRecord(
            query=name,
            size=size,
            batches=batches,
            batch_size=batch_size,
            refreshes=entry["n"],
            refresh_wall_s=entry["refresh"] / entry["n"] if entry["n"] else 0.0,
            recompute_wall_s=entry["recompute"] / entry["n"] if entry["n"] else 0.0,
            speedup=(
                round(entry["recompute"] / entry["refresh"], 3)
                if entry["refresh"]
                else float("inf")
            ),
            refresh_tuples_max=entry["tuples"],
            delta_bound_max=entry["bound"],
            full_scans=entry["scans"],
        )
        for name, entry in acc.items()
    ]


def run_bench(
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    seed: int = 0,
    repeats: int = 3,
    params_per_size: int = 8,
    queries: Sequence[QueryBundle] = RUNNING_QUERIES,
    max_friends: int | None = None,
    churn_batches: int = 4,
    churn_batch_size: int = 16,
    output: str | Path | None | Literal[False] = None,
) -> dict:
    """Run the workload ``queries`` at each database size in ``sizes`` and
    return (and optionally write) the benchmark document.

    ``churn_batches`` / ``churn_batch_size`` shape the churn scenario's
    mutation stream (``churn_batches=0`` disables it).  ``output`` --
    path for the JSON document; ``None`` writes the default
    ``BENCH_<n>.json`` in the current directory; pass ``output=False`` to
    skip writing.
    """
    sizes = tuple(sizes)
    if not sizes or any(s < 2 for s in sizes):
        raise ValueError(f"sizes must be >= 2, got {sizes!r}")
    engine_kwargs: dict = {"seed": seed}
    if max_friends is not None:
        engine_kwargs["max_friends"] = max_friends

    records: list[BenchRecord] = []
    cache_stats: dict[int, dict[str, float]] = {}
    for size in sizes:
        engine = social_engine(size, **engine_kwargs)
        db = engine.require_database()
        cache_before = engine.cache_stats()
        for bundle in queries:
            prepared = bundle.prepare(engine)
            plan = prepared.plan(bundle.parameters)
            pids = sample_pids(size, params_per_size, seed=seed)
            param_values = [
                {bundle.parameters[0]: pid} for pid in pids
            ]
            # Warm the plan cache the way production traffic would, and
            # exercise the facade path once per parameter.
            for values in param_values:
                prepared.execute(values)
            for mode, runner in (
                ("batched", execute_plan),
                ("per_tuple", execute_per_tuple),
            ):
                rows, tuples_max, lookups, scans = _measure_access(
                    plan, db, runner, param_values
                )
                wall = _time_executions(plan, db, runner, param_values, repeats)
                records.append(
                    BenchRecord(
                        query=bundle.name,
                        size=size,
                        mode=mode,
                        executions=len(param_values) * repeats,
                        wall_time_s=wall,
                        rows=rows,
                        tuples_accessed_max=tuples_max,
                        fanout_bound=plan.fanout_bound,
                        indexed_lookups=lookups,
                        full_scans=scans,
                    )
                )
        cache_after = engine.cache_stats()
        hits = cache_after.hits - cache_before.hits
        misses = cache_after.misses - cache_before.misses
        cache_stats[size] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        }

    churn_records: list[ChurnRecord] = []
    if churn_batches:
        for size in sizes:
            churn_records.extend(
                _run_churn(
                    size,
                    seed=seed,
                    engine_kwargs=engine_kwargs,
                    queries=queries,
                    params_per_size=params_per_size,
                    batches=churn_batches,
                    batch_size=churn_batch_size,
                )
            )

    doc = {
        "bench_version": BENCH_VERSION,
        "workload": "social",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "seed": seed,
        "sizes": list(sizes),
        "repeats": repeats,
        "params_per_size": params_per_size,
        "records": [asdict(r) for r in records],
        "churn": {
            "batches": churn_batches,
            "batch_size": churn_batch_size,
            "records": [asdict(r) for r in churn_records],
        },
        "plan_cache": cache_stats,
        "summary": summarize(records, churn_records),
    }
    if output is not False:
        write_bench(doc, output)
    return doc


def summarize(
    records: Sequence[BenchRecord], churn_records: Sequence[ChurnRecord] = ()
) -> dict:
    """Per-query roll-up: tuples accessed by size (the flatness evidence),
    the batched-over-per-tuple speedup at the largest size and, when the
    churn scenario ran, the refresh-over-recompute speedup there too."""
    by_query: dict[str, dict] = {}
    for record in records:
        entry = by_query.setdefault(
            record.query,
            {"tuples_accessed_by_size": {}, "fanout_bound": record.fanout_bound},
        )
        if record.mode == "batched":
            entry["tuples_accessed_by_size"][str(record.size)] = (
                record.tuples_accessed_max
            )
    largest = max((r.size for r in records), default=0)
    for name, entry in by_query.items():
        batched = next(
            (
                r
                for r in records
                if r.query == name and r.size == largest and r.mode == "batched"
            ),
            None,
        )
        per_tuple = next(
            (
                r
                for r in records
                if r.query == name and r.size == largest and r.mode == "per_tuple"
            ),
            None,
        )
        if batched and per_tuple and batched.wall_time_s > 0:
            entry["speedup_at_largest"] = round(
                per_tuple.wall_time_s / batched.wall_time_s, 3
            )
        tuples = entry["tuples_accessed_by_size"]
        entry["within_fanout_bound"] = all(
            t <= entry["fanout_bound"] for t in tuples.values()
        )
    churn_largest = max((r.size for r in churn_records), default=0)
    for record in churn_records:
        entry = by_query.setdefault(record.query, {})
        if record.size == churn_largest:
            entry["refresh_speedup_at_largest"] = record.speedup
        entry["refresh_within_delta_bound"] = entry.get(
            "refresh_within_delta_bound", True
        ) and (record.refresh_tuples_max <= record.delta_bound_max)
    return by_query


def default_output_path(directory: str | Path = ".") -> Path:
    """Where the trajectory file for this bench version lives."""
    return Path(directory) / f"BENCH_{BENCH_VERSION}.json"


def write_bench(doc: Mapping, path: str | Path | None = None) -> Path:
    """Write the benchmark document as JSON; returns the path written."""
    target = Path(path) if path is not None else default_output_path()
    target.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    return target

"""The experiment harness: measure scale independence, don't just assert it.

``run_bench`` drives the :mod:`repro.workloads` social-network queries
Q1/Q2/Q3 at increasing database sizes and records, per (query, size):

* wall time per execution through the **batched** operator pipeline
  (:func:`repro.core.executor.execute_plan`) and through the **per-tuple**
  reference path (:func:`repro.core.executor.execute_per_tuple`) -- the
  speedup of batched over per-tuple is the refactor's dividend;
* tuples accessed per execution next to the plan's ``fanout_bound`` --
  the paper's claim is that this stays flat while the database grows;
* plan-cache hits/misses for the run's repeated parameterized executes.

The results are written to ``BENCH_<n>.json`` (``n`` =
:data:`BENCH_VERSION`, bumped whenever the measured pipeline changes) so
the repository accumulates a perf trajectory over time.  CI runs a
seconds-scale smoke configuration and uploads the file as an artifact;
locally::

    PYTHONPATH=src python -m repro.bench --sizes 100,1000,10000

or from code::

    from repro.bench import run_bench
    doc = run_bench(sizes=(100, 1000, 10000), seed=0)
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Literal, Mapping, Sequence

from repro.core.executor import execute_per_tuple, execute_plan
from repro.workloads import RUNNING_QUERIES, QueryBundle, sample_pids, social_engine

#: Numbers the ``BENCH_<n>.json`` trajectory; bump when the measured
#: pipeline changes materially.
BENCH_VERSION = 3

DEFAULT_SIZES = (100, 1000, 10000)


@dataclass(frozen=True)
class BenchRecord:
    """One (query, database size, execution mode) measurement."""

    query: str
    size: int
    mode: str  # "batched" | "per_tuple"
    executions: int
    wall_time_s: float  # best-of-repeats mean seconds per execution
    rows: int  # total distinct answer rows across the parameter stream
    tuples_accessed_max: int  # worst case per execution
    fanout_bound: int
    indexed_lookups: int  # for the worst-case execution
    full_scans: int  # across the whole run; must stay 0


def _measure_access(plan, db, runner, param_values: Sequence[Mapping]) -> tuple[int, int, int, int]:
    """Run once per parameter set with accounting; return (rows, max
    tuples accessed per execution, lookups of that execution, scans)."""
    rows = set()
    worst = (0, 0)
    scans = 0
    for values in param_values:
        before = db.stats.snapshot()
        out = runner(plan, db, values)
        delta = db.stats.since(before)
        rows.update(out)
        scans += delta.full_scans
        if delta.tuples_accessed > worst[0]:
            worst = (delta.tuples_accessed, delta.indexed_lookups)
    return len(rows), worst[0], worst[1], scans


def _time_executions(plan, db, runner, param_values, repeats: int) -> float:
    """Best-of-``repeats`` mean wall seconds per execution."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for values in param_values:
            runner(plan, db, values)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / len(param_values))
    return best


def run_bench(
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    seed: int = 0,
    repeats: int = 3,
    params_per_size: int = 8,
    queries: Sequence[QueryBundle] = RUNNING_QUERIES,
    max_friends: int | None = None,
    output: str | Path | None | Literal[False] = None,
) -> dict:
    """Run the workload ``queries`` at each database size in ``sizes`` and
    return (and optionally write) the benchmark document.

    ``output`` -- path for the JSON document; ``None`` writes the default
    ``BENCH_<n>.json`` in the current directory; pass ``output=False`` to
    skip writing.
    """
    sizes = tuple(sizes)
    if not sizes or any(s < 2 for s in sizes):
        raise ValueError(f"sizes must be >= 2, got {sizes!r}")
    engine_kwargs: dict = {"seed": seed}
    if max_friends is not None:
        engine_kwargs["max_friends"] = max_friends

    records: list[BenchRecord] = []
    cache_stats: dict[int, dict[str, float]] = {}
    for size in sizes:
        engine = social_engine(size, **engine_kwargs)
        db = engine.require_database()
        cache_before = engine.cache_stats()
        for bundle in queries:
            prepared = bundle.prepare(engine)
            plan = prepared.plan(bundle.parameters)
            pids = sample_pids(size, params_per_size, seed=seed)
            param_values = [
                {bundle.parameters[0]: pid} for pid in pids
            ]
            # Warm the plan cache the way production traffic would, and
            # exercise the facade path once per parameter.
            for values in param_values:
                prepared.execute(values)
            for mode, runner in (
                ("batched", execute_plan),
                ("per_tuple", execute_per_tuple),
            ):
                rows, tuples_max, lookups, scans = _measure_access(
                    plan, db, runner, param_values
                )
                wall = _time_executions(plan, db, runner, param_values, repeats)
                records.append(
                    BenchRecord(
                        query=bundle.name,
                        size=size,
                        mode=mode,
                        executions=len(param_values) * repeats,
                        wall_time_s=wall,
                        rows=rows,
                        tuples_accessed_max=tuples_max,
                        fanout_bound=plan.fanout_bound,
                        indexed_lookups=lookups,
                        full_scans=scans,
                    )
                )
        cache_after = engine.cache_stats()
        hits = cache_after.hits - cache_before.hits
        misses = cache_after.misses - cache_before.misses
        cache_stats[size] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        }

    doc = {
        "bench_version": BENCH_VERSION,
        "workload": "social",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "seed": seed,
        "sizes": list(sizes),
        "repeats": repeats,
        "params_per_size": params_per_size,
        "records": [asdict(r) for r in records],
        "plan_cache": cache_stats,
        "summary": summarize(records),
    }
    if output is not False:
        write_bench(doc, output)
    return doc


def summarize(records: Sequence[BenchRecord]) -> dict:
    """Per-query roll-up: tuples accessed by size (the flatness evidence)
    and the batched-over-per-tuple speedup at the largest size."""
    by_query: dict[str, dict] = {}
    for record in records:
        entry = by_query.setdefault(
            record.query,
            {"tuples_accessed_by_size": {}, "fanout_bound": record.fanout_bound},
        )
        if record.mode == "batched":
            entry["tuples_accessed_by_size"][str(record.size)] = (
                record.tuples_accessed_max
            )
    largest = max((r.size for r in records), default=0)
    for name, entry in by_query.items():
        batched = next(
            (
                r
                for r in records
                if r.query == name and r.size == largest and r.mode == "batched"
            ),
            None,
        )
        per_tuple = next(
            (
                r
                for r in records
                if r.query == name and r.size == largest and r.mode == "per_tuple"
            ),
            None,
        )
        if batched and per_tuple and batched.wall_time_s > 0:
            entry["speedup_at_largest"] = round(
                per_tuple.wall_time_s / batched.wall_time_s, 3
            )
        tuples = entry["tuples_accessed_by_size"]
        entry["within_fanout_bound"] = all(
            t <= entry["fanout_bound"] for t in tuples.values()
        )
    return by_query


def default_output_path(directory: str | Path = ".") -> Path:
    """Where the trajectory file for this bench version lives."""
    return Path(directory) / f"BENCH_{BENCH_VERSION}.json"


def write_bench(doc: Mapping, path: str | Path | None = None) -> Path:
    """Write the benchmark document as JSON; returns the path written."""
    target = Path(path) if path is not None else default_output_path()
    target.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    return target

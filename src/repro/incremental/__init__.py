"""Incremental scale independence (Fan, Geerts & Libkin 2014, Section 5).

A scale-independent query answered once should stay answered cheaply: when
the database changes, the result must be *refreshable* from the deltas
with bounded access, not recomputed from scratch.  This module is that
refresh path, built on three pieces of machinery:

* the :class:`~repro.relational.instance.ChangeLog` every
  :class:`~repro.relational.instance.Database` keeps -- a monotonic log of
  effective inserts and deletes, sliced by watermark;
* the delta faces of the physical operators
  (:meth:`~repro.core.executor.FetchOp.run_delta` /
  :meth:`~repro.core.executor.FetchOp.run_old`), composed by
  :func:`~repro.core.executor.execute_plan_delta` into the standard delta
  rule: per changed operator level, new-state prefix |x| in-memory change
  slice |x| old-state suffix, one bulk database call per level;
* derivation *counting*: the initial execution
  (:func:`~repro.core.executor.execute_plan_counting`) materializes how
  many derivations support each answer row, so signed deltas compose
  exactly under deletion -- a row leaves the answer precisely when its
  last derivation dies, even if several independent derivations produced
  it.

:class:`IncrementalResult` packages the materialized answers together
with the watermark they are valid at.  :meth:`IncrementalResult.refresh`
reads the log slice past the watermark, applies the delta pipeline for
every compiled plan (one per disjunct for a union), folds the signed
changes into the counts and advances the watermark.  The tuples a refresh
accesses are bounded by :func:`~repro.core.executor.delta_fanout_bound`
-- a function of the change-slice size and the access-rule bounds, never
of the database size.

Obtain results through the facade: ``engine.execute_incremental(q, p=1)``
or ``prepared.execute_incremental(p=1)``, then ``result.refresh()`` after
mutations.  Replacing the engine's access schema invalidates compiled
plans; a refresh that observes a new access-schema version transparently
*rebases* -- recompiles through the (version-keyed) plan cache and
recomputes from scratch -- rather than mixing plans across schema
versions.

Limitations, by design: plans fetching through an *embedded* access rule
are rejected with :class:`~repro.errors.IncrementalError` (their
per-assignment projection dedup has no exact counting semantics) -- the
:mod:`repro.analysis.maintain` classifier decides this statically before
anything is materialized, so the error carries the full INC001 causal
trace -- and mutations are single-writer: interleaving them with an
in-flight execute or refresh is undefined.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.core.executor import (
    ExecutionContext,
    OperatorProfile,
    PlanProfile,
    delta_fanout_bound,
    execute_plan_counting,
    execute_plan_delta,
)
from repro.core.plans import Plan

Row = tuple[object, ...]

__all__ = ["IncrementalResult", "build_incremental"]


class IncrementalResult:
    """Materialized answers of one parameterized execution, refreshable
    from the database's change log.

    Behaves like a read-only sequence of answer rows (the
    :class:`~repro.api.engine.ResultSet` protocol); additionally carries
    the :attr:`watermark` the answers are valid at, the access accounting
    of the last (initial or refresh) pass in :attr:`stats`, and the bound
    the last refresh was charged against in :attr:`delta_bound`.
    """

    __slots__ = (
        "columns",
        "watermark",
        "stats",
        "fanout_bound",
        "last_mode",
        "profiles",
        "_engine",
        "_query",
        "_values",
        "_plans",
        "_seeds",
        "_access_version",
        "_views_version",
        "_counts",
        "_order",
        "_delta_sizes",
    )

    def __init__(self, engine, query, values: Mapping, columns: tuple[str, ...]):
        self._engine = engine
        self._query = query
        self._values = dict(values)
        self.columns = columns
        self._delta_sizes: dict[str, int] | None = None
        self.last_mode = "initial"
        self._materialize()

    # -- sequence behaviour ---------------------------------------------

    @property
    def rows(self) -> tuple[Row, ...]:
        """The current answer rows (first-derivation order; rows gained by
        a refresh are appended, rows lost are dropped in place)."""
        return tuple(self._order)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index):
        return self.rows[index]

    def __contains__(self, row: object) -> bool:
        return tuple(row) in self._order if isinstance(row, (list, tuple)) else False

    def __bool__(self) -> bool:
        return bool(self._order)

    def __repr__(self) -> str:
        return (
            f"IncrementalResult({len(self._order)} rows, "
            f"watermark={self.watermark}, last={self.last_mode!r})"
        )

    def to_dicts(self) -> list[dict[str, object]]:
        """The rows as dictionaries keyed by the head variable names."""
        return [dict(zip(self.columns, row)) for row in self._order]

    @property
    def delta_bound(self) -> int | None:
        """The last refresh's a-priori bound on tuples accessed -- a
        function of its change slice and the access-rule bounds only
        (None before the first refresh, 0 for an empty slice).  Computed
        on demand; the refresh hot path only records the slice sizes."""
        if self._delta_sizes is None:
            return None
        return sum(
            delta_fanout_bound(plan, self._delta_sizes) for plan in self._plans
        )

    # -- maintenance -----------------------------------------------------

    def refresh(self, analyze: bool = False) -> "IncrementalResult":
        """Bring the answers up to date with the database's change log by
        running only the delta pipeline over the slice past the current
        watermark, then advance the watermark.  Returns ``self``.

        A no-op slice costs zero accesses.  With ``analyze=True`` the
        delta pipeline's per-operator row counts and accounting are
        recorded in :attr:`profiles` (rendered by
        :meth:`explain_analyze`); the default refresh skips that
        bookkeeping -- it is the hot path.  If the engine's access schema
        was replaced since the last pass, the compiled plans are stale:
        the result *rebases* (full recompute through the version-keyed
        plan cache) instead -- check :attr:`last_mode` (``"delta"`` vs
        ``"rebase"``) to see which path ran.
        """
        engine = self._engine
        version, _ = engine._access_state
        if (
            version != self._access_version
            or engine.views.version != self._views_version
        ):
            # The access schema or the view population changed under us:
            # the compiled plans are stale, so rebase onto fresh ones.
            self._materialize()
            self.last_mode = "rebase"
            return self
        db = engine.require_database()
        log = db.change_log
        now = log.watermark
        delta = log.net_since(self.watermark)
        # View-assisted plans: bring the views up to date first, then ride
        # their answer changes in the slice under the view names -- the
        # delta pipeline joins them exactly like base-relation changes.
        states = engine._prepare_views(self._plans)
        if states is not None:
            view_delta: dict[str, dict[Row, int]] = {}
            for name in sorted(
                {n for plan in self._plans for n in plan.view_relations}
            ):
                net = states[name].changes_since(self.watermark)
                if net is None:
                    # The view cannot replay its answer changes back to
                    # our watermark (re-materialized, or the span does not
                    # align); recompute rather than guess.
                    self._materialize()
                    self.last_mode = "rebase"
                    return self
                if net:
                    view_delta[name] = net
            if view_delta:
                delta = {**delta, **view_delta}
        ctx = ExecutionContext(
            db,
            watermark=self.watermark,
            delta=delta,
            caches=log.slice_caches(self.watermark) if delta else None,
            views=states,
        )
        profiles: list[PlanProfile] = []
        self._delta_sizes = {relation: len(rows) for relation, rows in delta.items()}
        if delta:
            measured: list[tuple[Plan, tuple[OperatorProfile, ...]]] = []
            touched = False
            for plan, seed, counts in zip(self._plans, self._seeds, self._counts):
                ops: list[OperatorProfile] | None = [] if analyze else None
                changes = execute_plan_delta(plan, ctx, profiles=ops, seed=seed)
                touched = touched or bool(changes)
                for row, change in changes.items():
                    count = counts.get(row, 0) + change
                    if count > 0:
                        counts[row] = count
                    else:
                        counts.pop(row, None)
                if ops is not None:
                    measured.append((plan, tuple(ops)))
            if touched:
                self._reorder()
            profiles = [PlanProfile(plan, self.rows, ops) for plan, ops in measured]
        self.watermark = now
        self.stats = ctx.stats
        self.profiles = tuple(profiles)
        self.last_mode = "delta"
        return self

    # -- internals -------------------------------------------------------

    def _materialize(self) -> None:
        """Full counting execution: the initial pass, also the rebase path
        when the access schema changed under us."""
        engine = self._engine
        db = engine.require_database()
        version, _ = engine._access_state
        views_version = engine.views.version
        plans: tuple[Plan, ...] = engine._plans_for(
            self._query, frozenset(self._values)
        )
        # Classify statically before materializing anything: unlike the
        # executor's per-plan check, the classifier's error carries every
        # blocker's causal trace.  Imported lazily -- repro.analysis sits
        # above repro.incremental in the layering.
        from repro.analysis.maintain import check_maintainable

        check_maintainable(plans)
        # Refresh any views the plans read *before* snapshotting the
        # watermark: the counting pass must see views that agree with the
        # base state at that watermark (mutations are single-writer, so
        # nothing moves in between).
        states = engine._prepare_views(plans)
        watermark = db.change_log.watermark
        ctx = ExecutionContext(db, watermark=watermark, views=states)
        # Like refresh(), the initial pass skips profile bookkeeping --
        # profiles come from refresh(analyze=True) on demand.
        counts: list[dict[Row, int]] = [
            execute_plan_counting(plan, ctx, self._values) for plan in plans
        ]
        self._delta_sizes = None
        self._plans = plans
        # Validated per-plan seed assignments, so refreshes skip per-call
        # parameter validation (the counting pass above already did it).
        self._seeds = [
            {variable: self._values[variable] for variable in plan.parameters}
            for plan in plans
        ]
        self._access_version = version
        self._views_version = views_version
        self._counts = counts
        self._order: dict[Row, None] = {}
        self._reorder()
        self.watermark = watermark
        self.stats = ctx.stats
        self.fanout_bound = sum(plan.fanout_bound for plan in plans)
        self.profiles = ()

    def _reorder(self) -> None:
        """Rebuild the ordered answer set from the per-plan counts:
        surviving rows keep their position, new rows are appended in
        plan/derivation order."""
        order: dict[Row, None] = {
            row: None
            for row in self._order
            if any(counts.get(row, 0) > 0 for counts in self._counts)
        }
        for counts in self._counts:
            for row, count in counts.items():
                if count > 0 and row not in order:
                    order[row] = None
        self._order = order

    def explain_analyze(self):
        """The current answers plus the profiles of the last
        ``refresh(analyze=True)`` as an
        :class:`~repro.api.engine.ExplainAnalyze`: per-operator row counts
        and access accounting for the delta pipeline's ``Δ[level]`` /
        ``new[level]`` / ``old[level]`` operators (profiles are empty
        unless the last pass was an analyzing refresh -- profiling is
        opt-in everywhere on the incremental path)."""
        from repro.api.engine import ExplainAnalyze, ResultSet

        result = ResultSet(self.rows, self.columns, self.stats, self.fanout_bound)
        return ExplainAnalyze(result, self.profiles)


def build_incremental(engine, query, values: Mapping, columns) -> IncrementalResult:
    """Construct an :class:`IncrementalResult` for ``query`` on ``engine``
    (the implementation behind ``PreparedQuery.execute_incremental``)."""
    return IncrementalResult(engine, query, values, columns)

"""Seeded churn streams over the social-network workload.

Incremental scale independence (:mod:`repro.incremental`) is only worth
measuring against realistic *change* traffic.  :func:`generate_churn`
derives a deterministic stream of :class:`ChurnBatch` objects -- mixed
inserts and deletes over the ``friend`` and ``visits`` edge relations --
from a generated instance, with two invariants the rest of the system
depends on:

* **the degree caps stay honored**: an insert is only generated for a
  source whose current out-degree is below the relation's cap, so the
  access schema of :func:`~repro.workloads.social.social_access_text`
  remains truthful after every batch (deletes free capacity that later
  inserts may reuse);
* **batches apply cleanly in bulk**: within one batch no tuple is both
  inserted and deleted, so ``deletes-then-inserts`` (what
  :meth:`ChurnBatch.apply` does) reproduces the sequential stream
  exactly, and every operation is *effective* -- deletes hit present
  tuples, inserts hit absent ones -- even under ``strict`` Section 5
  well-formedness.

Everything is driven by one :class:`random.Random` seed: the same
``(data, seed, ...)`` arguments always produce the identical stream,
which is what makes the differential refresh tests and
:mod:`repro.bench`'s refresh-vs-recompute measurements reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.workloads.social import DEFAULT_MAX_FRIENDS, DEFAULT_MAX_VISITS

Row = tuple[object, ...]

#: The relations churn applies to (edges only: mutating ``person`` would
#: change the key population, which the running queries parameterize over).
CHURN_RELATIONS = ("friend", "visits")


@dataclass(frozen=True)
class ChurnBatch:
    """One batch of effective mutations: ``{relation: rows}`` to delete
    and to insert, disjoint within the batch."""

    deletes: Mapping[str, tuple[Row, ...]]
    inserts: Mapping[str, tuple[Row, ...]]

    @property
    def size(self) -> int:
        """The number of mutations in the batch."""
        return sum(len(rows) for rows in self.deletes.values()) + sum(
            len(rows) for rows in self.inserts.values()
        )

    def apply(self, db, *, strict: bool = False) -> tuple[int, int]:
        """Apply the batch to ``db`` (deletes first, then inserts) through
        the logged mutation API; returns ``(deleted, inserted)`` counts.
        The generator guarantees every operation is effective, so
        ``strict=True`` (Section 5 well-formedness) also passes."""
        deleted = sum(
            db.delete_many(relation, rows, strict=strict)
            for relation, rows in self.deletes.items()
        )
        inserted = sum(
            db.insert_many(relation, rows, strict=strict)
            for relation, rows in self.inserts.items()
        )
        return deleted, inserted

    def __str__(self) -> str:
        parts = [f"-{len(rows)} {rel}" for rel, rows in self.deletes.items()]
        parts += [f"+{len(rows)} {rel}" for rel, rows in self.inserts.items()]
        return "churn(" + ", ".join(parts) + ")"


def generate_churn(
    data: Mapping[str, Sequence[Row]],
    *,
    batches: int,
    batch_size: int,
    seed: int = 0,
    max_friends: int = DEFAULT_MAX_FRIENDS,
    max_visits: int = DEFAULT_MAX_VISITS,
    delete_fraction: float = 0.5,
) -> tuple[ChurnBatch, ...]:
    """A deterministic stream of ``batches`` churn batches of
    ``batch_size`` mutations each, to be applied *in order* to a database
    loaded from ``data`` (a ``{relation: rows}`` instance, e.g. from
    :func:`~repro.workloads.social.generate_social_network`).

    Each mutation is a delete of a present edge with probability
    ``delete_fraction`` (else an insert of an absent one), over the
    ``friend`` and ``visits`` relations, tracking the evolving state so
    the per-source degree caps ``max_friends`` / ``max_visits`` hold
    after -- and at every point during -- every batch.
    ``delete_fraction=1.0`` gives a delete-only stream,
    ``delete_fraction=0.0`` insert-only (until capacity runs out, at
    which point deletes fill in, and vice versa).
    """
    if batches < 0 or batch_size < 1:
        raise ValueError(
            f"need batches >= 0 and batch_size >= 1, got {batches}, {batch_size}"
        )
    if not 0.0 <= delete_fraction <= 1.0:
        raise ValueError(f"delete_fraction must be in [0, 1], got {delete_fraction}")
    rng = random.Random(seed * 912367 + 41)
    persons = [row[0] for row in data["person"]]
    if not persons:
        raise ValueError("churn needs at least one person")
    caps = {"friend": max_friends, "visits": max_visits}
    # The page pool mirrors generate_social_network's, so inserted visits
    # look like generated ones.
    pages = max(8, len(persons) // 2)

    # Evolving state per relation: the live edge list (for O(1) seeded
    # sampling), its membership set, and per-source out-degrees.
    edges: dict[str, list[Row]] = {}
    present: dict[str, set[Row]] = {}
    degree: dict[str, dict[object, int]] = {}
    for relation in CHURN_RELATIONS:
        rows = [tuple(row) for row in data.get(relation, ())]
        edges[relation] = rows
        present[relation] = set(rows)
        by_source: dict[object, int] = {}
        for row in rows:
            by_source[row[0]] = by_source.get(row[0], 0) + 1
        degree[relation] = by_source

    def pick_insert(relation: str, gone: set[Row]) -> Row | None:
        cap = caps[relation]
        for _ in range(64):
            source = persons[rng.randrange(len(persons))]
            if degree[relation].get(source, 0) >= cap:
                continue
            if relation == "friend":
                target = persons[rng.randrange(len(persons))]
                if target == source:
                    continue
                row: Row = (source, target)
            else:
                row = (source, f"url{rng.randrange(pages)}")
            # Never reinsert a tuple deleted earlier in the same batch:
            # deletes and inserts stay disjoint, so a batch is usable as
            # a set-difference delta, not just an operation stream.
            if row not in present[relation] and row not in gone:
                return row
        return None

    def pick_delete(relation: str, fresh: set[Row]) -> Row | None:
        rows = edges[relation]
        for _ in range(64):
            if not rows:
                return None
            row = rows[rng.randrange(len(rows))]
            # Never delete a tuple inserted earlier in the same batch:
            # that keeps deletes-then-inserts equivalent to the
            # sequential stream.
            if row not in fresh:
                return row
        return None

    stream: list[ChurnBatch] = []
    for _ in range(batches):
        deletes: dict[str, list[Row]] = {}
        inserts: dict[str, list[Row]] = {}
        fresh: set[Row] = set()
        gone: set[Row] = set()
        for _ in range(batch_size):
            relation = CHURN_RELATIONS[rng.randrange(len(CHURN_RELATIONS))]
            deleting = rng.random() < delete_fraction
            row = None
            if deleting:
                row = pick_delete(relation, fresh)
            if row is None:
                row = pick_insert(relation, gone)
                deleting = False
            if row is None:
                row = pick_delete(relation, fresh)
                deleting = True
            if row is None:
                continue  # relation both empty and at capacity: skip
            if deleting:
                edges[relation].remove(row)
                present[relation].remove(row)
                degree[relation][row[0]] -= 1
                gone.add(row)
                deletes.setdefault(relation, []).append(row)
            else:
                edges[relation].append(row)
                present[relation].add(row)
                degree[relation][row[0]] = degree[relation].get(row[0], 0) + 1
                fresh.add(row)
                inserts.setdefault(relation, []).append(row)
        stream.append(
            ChurnBatch(
                deletes={rel: tuple(rows) for rel, rows in deletes.items()},
                inserts={rel: tuple(rows) for rel, rows in inserts.items()},
            )
        )
    return tuple(stream)

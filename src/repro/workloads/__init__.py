"""Synthetic workloads for exercising scale independence empirically.

The paper's running example is a social network; :mod:`repro.workloads.social`
provides a seeded generator for it (``person``/``friend``/``visits``
relations with configurable size and degree skew, degrees capped so the
declared access rules stay truthful) and the running queries Q1/Q2/Q3 as
ready-made :class:`QueryBundle` objects -- each a ``(schema, access,
query)`` triple that builds a ready-to-run
:class:`~repro.api.engine.Engine` in one call.

:mod:`repro.workloads.churn` adds the *change* dimension: seeded streams
of mixed edge inserts/deletes (:class:`ChurnBatch`) that keep the degree
caps honored, the traffic :mod:`repro.incremental` refreshes against.

:mod:`repro.bench` drives these workloads at increasing database sizes to
demonstrate the paper's central claim: tuples accessed stay flat while the
database grows -- and, under churn, that refreshing beats recomputing.
"""

from repro.workloads.churn import CHURN_RELATIONS, ChurnBatch, generate_churn
from repro.workloads.social import (
    CITIES,
    DEFAULT_BLOCK,
    DEFAULT_MAX_FRIENDS,
    DEFAULT_MAX_VISITS,
    DEFAULT_VIEW_BOUND,
    Q1,
    Q2,
    Q3,
    Q4,
    Q5,
    RUNNING_QUERIES,
    SOCIAL_ACCESS,
    SOCIAL_SCHEMA,
    VIEW_QUERIES,
    QueryBundle,
    audience_view,
    follower_view,
    generate_social_network,
    max_in_degree,
    register_workload_views,
    sample_pids,
    sample_urls,
    social_access_text,
    social_engine,
    stream_social_network,
    workload_views,
)

__all__ = [
    "QueryBundle",
    "Q1",
    "Q2",
    "Q3",
    "Q4",
    "Q5",
    "RUNNING_QUERIES",
    "VIEW_QUERIES",
    "SOCIAL_SCHEMA",
    "SOCIAL_ACCESS",
    "CITIES",
    "DEFAULT_MAX_FRIENDS",
    "DEFAULT_MAX_VISITS",
    "DEFAULT_VIEW_BOUND",
    "social_access_text",
    "generate_social_network",
    "stream_social_network",
    "DEFAULT_BLOCK",
    "social_engine",
    "sample_pids",
    "sample_urls",
    "max_in_degree",
    "follower_view",
    "audience_view",
    "workload_views",
    "register_workload_views",
    "ChurnBatch",
    "CHURN_RELATIONS",
    "generate_churn",
]

"""The paper's social-network workload: seeded data plus Q1/Q2/Q3.

The generator produces a ``person(pid, name, city)`` / ``friend(pid1,
pid2)`` / ``visits(pid, url)`` instance whose out-degrees follow a Pareto
(heavy-tailed) distribution -- some users have many friends and visit many
pages, most have few -- **capped at the access-rule bounds**, so the
declared access schema's cardinality promises are actually true of the
data.  Everything is driven by one :class:`random.Random` seed: the same
``(persons, seed, ...)`` arguments always produce the identical instance,
which is what makes differential tests and benchmarks reproducible.

The running queries, each parameterized by a person ``?p``:

* **Q1** -- ``?p``'s friends who live in NYC;
* **Q2** -- the pages ``?p``'s friends visit;
* **Q3** -- ``?p``'s friends-of-friends who live in NYC.

All three are controlled by ``{p}`` under the workload's access schema,
so their plans touch a bounded number of tuples at any database size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.api.engine import Engine, PreparedQuery

Row = tuple[object, ...]

SOCIAL_SCHEMA = "person(pid, name, city); friend(pid1, pid2); visits(pid, url)"

#: Default access-rule cardinality caps; the generator enforces them.
DEFAULT_MAX_FRIENDS = 32
DEFAULT_MAX_VISITS = 8

#: Cities, most common first (assignment is harmonically skewed).
CITIES = ("NYC", "SF", "LA", "CHI", "BOS", "SEA", "ATX", "DEN")


def social_access_text(
    max_friends: int = DEFAULT_MAX_FRIENDS, max_visits: int = DEFAULT_MAX_VISITS
) -> str:
    """The access schema a production social network would promise:
    ``pid`` is a key, and friend/visit fan-outs are bounded."""
    return (
        f"person(pid -> 1); "
        f"friend(pid1 -> {max_friends}); "
        f"visits(pid -> {max_visits})"
    )


SOCIAL_ACCESS = social_access_text()


@dataclass(frozen=True)
class QueryBundle:
    """A ready-made ``(schema, access, query)`` triple: one of the paper's
    running queries together with everything needed to run it."""

    name: str
    description: str
    schema: str
    access: str
    query: str
    parameters: tuple[str, ...]

    def engine(
        self,
        data: Mapping[str, Iterable[Sequence[object]]] | None = None,
        **engine_kwargs: object,
    ) -> Engine:
        """A fresh :class:`Engine` over the bundle's schema and access
        rules, optionally preloaded with ``data``."""
        return Engine(self.schema, self.access, data, **engine_kwargs)

    def prepare(self, engine: Engine) -> PreparedQuery:
        """The bundle's query parsed and validated against ``engine``."""
        return engine.query(self.query)

    def __str__(self) -> str:
        return f"{self.name}: {self.query}"


Q1 = QueryBundle(
    name="Q1",
    description="?p's friends who live in NYC",
    schema=SOCIAL_SCHEMA,
    access=SOCIAL_ACCESS,
    query="Q(y) :- friend(p, y), person(y, n, 'NYC')",
    parameters=("p",),
)

Q2 = QueryBundle(
    name="Q2",
    description="the pages ?p's friends visit",
    schema=SOCIAL_SCHEMA,
    access=SOCIAL_ACCESS,
    query="Q(u) :- friend(p, y), visits(y, u)",
    parameters=("p",),
)

Q3 = QueryBundle(
    name="Q3",
    description="?p's friends-of-friends who live in NYC",
    schema=SOCIAL_SCHEMA,
    access=SOCIAL_ACCESS,
    query="Q(z) :- friend(p, y), friend(y, z), person(z, n, 'NYC')",
    parameters=("p",),
)

RUNNING_QUERIES = (Q1, Q2, Q3)


def _degree(rng: random.Random, skew: float, cap: int) -> int:
    """A Pareto-distributed out-degree in ``[1, cap]``.  Smaller ``skew``
    means a heavier tail (more hubs)."""
    return min(cap, int(rng.paretovariate(skew)))


def generate_social_network(
    persons: int,
    *,
    seed: int = 0,
    max_friends: int = DEFAULT_MAX_FRIENDS,
    max_visits: int = DEFAULT_MAX_VISITS,
    skew: float = 1.5,
    cities: Sequence[str] = CITIES,
) -> dict[str, list[Row]]:
    """A seeded ``{relation: rows}`` social-network instance of ``persons``
    people.

    Out-degrees (friend edges per person, pages visited per person) are
    Pareto-skewed with exponent ``skew`` and capped at ``max_friends`` /
    ``max_visits``, so the access schema from :func:`social_access_text`
    with the same caps is truthful on the generated data.  Identical
    arguments produce the identical instance.
    """
    if persons < 1:
        raise ValueError(f"persons must be >= 1, got {persons}")
    if max_friends < 1 or max_visits < 1:
        raise ValueError("max_friends and max_visits must be >= 1")
    if skew <= 0:
        raise ValueError(f"skew must be positive, got {skew}")
    rng = random.Random(seed)

    weights = [1.0 / (i + 1) for i in range(len(cities))]
    person_rows: list[Row] = [
        (pid, f"u{pid}", rng.choices(cities, weights)[0])
        for pid in range(persons)
    ]

    friend_rows: list[Row] = []
    if persons > 1:
        for pid in range(persons):
            degree = min(_degree(rng, skew, max_friends), persons - 1)
            targets: set[int] = set()
            while len(targets) < degree:
                target = rng.randrange(persons)
                if target != pid:
                    targets.add(target)
            friend_rows.extend((pid, t) for t in sorted(targets))

    # Pages form a pool that grows with the network, so a bigger database
    # means more *distinct* pages, not denser per-person activity.
    pages = max(8, persons // 2)
    visits_rows: list[Row] = []
    for pid in range(persons):
        degree = _degree(rng, skew, max_visits)
        urls = {rng.randrange(pages) for _ in range(degree)}
        visits_rows.extend((pid, f"url{u}") for u in sorted(urls))

    return {"person": person_rows, "friend": friend_rows, "visits": visits_rows}


def social_engine(
    persons: int,
    *,
    seed: int = 0,
    max_friends: int = DEFAULT_MAX_FRIENDS,
    max_visits: int = DEFAULT_MAX_VISITS,
    skew: float = 1.5,
    **engine_kwargs: object,
) -> Engine:
    """An :class:`Engine` over the social schema, its access rules (with
    the given caps) and a freshly generated ``persons``-sized instance."""
    return Engine(
        SOCIAL_SCHEMA,
        social_access_text(max_friends, max_visits),
        generate_social_network(
            persons,
            seed=seed,
            max_friends=max_friends,
            max_visits=max_visits,
            skew=skew,
        ),
        **engine_kwargs,
    )


def sample_pids(persons: int, count: int, *, seed: int = 0) -> list[int]:
    """``count`` person ids sampled with replacement -- the parameter
    stream for a benchmark run.  Seeded on a stream derived from (but
    independent of) the data generator's, so parameter choice never
    perturbs the generated instance."""
    rng = random.Random(seed * 2654435761 + 97)
    return [rng.randrange(persons) for _ in range(count)]

"""The paper's social-network workload: seeded data plus Q1/Q2/Q3,
the Section 6 views V1/V2 and the queries they unlock (Q4/Q5).

The generator produces a ``person(pid, name, city)`` / ``friend(pid1,
pid2)`` / ``visits(pid, url)`` instance whose out-degrees follow a Pareto
(heavy-tailed) distribution -- some users have many friends and visit many
pages, most have few -- **capped at the access-rule bounds**, so the
declared access schema's cardinality promises are actually true of the
data.  Everything is driven by one :class:`random.Random` seed: the same
``(persons, seed, ...)`` arguments always produce the identical instance,
which is what makes differential tests and benchmarks reproducible.

The running queries, each parameterized by a person ``?p``:

* **Q1** -- ``?p``'s friends who live in NYC;
* **Q2** -- the pages ``?p``'s friends visit;
* **Q3** -- ``?p``'s friends-of-friends who live in NYC.

All three are controlled by ``{p}`` under the workload's access schema,
so their plans touch a bounded number of tuples at any database size.

Two natural queries are *not* controlled over the base rules, because
both edge relations only declare forward access paths:

* **Q4** -- ``?p``'s *followers* who live in NYC (``friend(f, p)`` keyed
  on the unknown first position);
* **Q5** -- who visited page ``?u`` (``visits(y, u)`` keyed on the
  unknown first position).

They become scale independent **using views** (Section 6) once the
workload's materialized views are registered:

* **V1** ``V1(pid, follower) <- friend(follower, pid)`` -- the inverted
  friend index, with rule ``V1(pid -> 64)``;
* **V2** ``V2(url, visitor) <- visits(visitor, url)`` -- the page
  audience index, with rule ``V2(url -> 64)``.

The ``64`` bounds are promises about in-degrees, just as the base access
rules promise out-degrees: the generator picks targets uniformly, so
in-degrees concentrate around the (constant) mean out-degree and stay
far below 64 at any size the suite exercises -- :func:`max_in_degree`
measures the actual maximum so tests and benchmarks can assert the
promise holds on the generated instance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.api.engine import Engine, PreparedQuery
from repro.views import ViewDef

Row = tuple[object, ...]

SOCIAL_SCHEMA = "person(pid, name, city); friend(pid1, pid2); visits(pid, url)"

#: Default access-rule cardinality caps; the generator enforces them.
DEFAULT_MAX_FRIENDS = 32
DEFAULT_MAX_VISITS = 8

#: Cities, most common first (assignment is harmonically skewed).
CITIES = ("NYC", "SF", "LA", "CHI", "BOS", "SEA", "ATX", "DEN")


def social_access_text(
    max_friends: int = DEFAULT_MAX_FRIENDS, max_visits: int = DEFAULT_MAX_VISITS
) -> str:
    """The access schema a production social network would promise:
    ``pid`` is a key, and friend/visit fan-outs are bounded."""
    return (
        f"person(pid -> 1); "
        f"friend(pid1 -> {max_friends}); "
        f"visits(pid -> {max_visits})"
    )


SOCIAL_ACCESS = social_access_text()


@dataclass(frozen=True)
class QueryBundle:
    """A ready-made ``(schema, access, query)`` triple: one of the paper's
    running queries together with everything needed to run it."""

    name: str
    description: str
    schema: str
    access: str
    query: str
    parameters: tuple[str, ...]

    def engine(
        self,
        data: Mapping[str, Iterable[Sequence[object]]] | None = None,
        **engine_kwargs: object,
    ) -> Engine:
        """A fresh :class:`Engine` over the bundle's schema and access
        rules, optionally preloaded with ``data``."""
        return Engine(self.schema, self.access, data, **engine_kwargs)

    def prepare(self, engine: Engine) -> PreparedQuery:
        """The bundle's query parsed and validated against ``engine``."""
        return engine.query(self.query)

    def __str__(self) -> str:
        return f"{self.name}: {self.query}"


Q1 = QueryBundle(
    name="Q1",
    description="?p's friends who live in NYC",
    schema=SOCIAL_SCHEMA,
    access=SOCIAL_ACCESS,
    query="Q(y) :- friend(p, y), person(y, n, 'NYC')",
    parameters=("p",),
)

Q2 = QueryBundle(
    name="Q2",
    description="the pages ?p's friends visit",
    schema=SOCIAL_SCHEMA,
    access=SOCIAL_ACCESS,
    query="Q(u) :- friend(p, y), visits(y, u)",
    parameters=("p",),
)

Q3 = QueryBundle(
    name="Q3",
    description="?p's friends-of-friends who live in NYC",
    schema=SOCIAL_SCHEMA,
    access=SOCIAL_ACCESS,
    query="Q(z) :- friend(p, y), friend(y, z), person(z, n, 'NYC')",
    parameters=("p",),
)

RUNNING_QUERIES = (Q1, Q2, Q3)

#: The declared in-degree promise of the workload views V1/V2 (see the
#: module docstring: actual in-degrees concentrate around the constant
#: mean out-degree, independent of the database size).
DEFAULT_VIEW_BOUND = 64


def follower_view(bound: int = DEFAULT_VIEW_BOUND) -> ViewDef:
    """**V1**: the inverted friend index ``V1(pid, follower)``, offering
    "who follows ``pid``" as a bounded access path."""
    return ViewDef(
        "V1",
        "V1(pid, follower) :- friend(follower, pid)",
        f"V1(pid -> {bound})",
    )


def audience_view(bound: int = DEFAULT_VIEW_BOUND) -> ViewDef:
    """**V2**: the page audience index ``V2(url, visitor)``, offering
    "who visited ``url``" as a bounded access path."""
    return ViewDef(
        "V2",
        "V2(url, visitor) :- visits(visitor, url)",
        f"V2(url -> {bound})",
    )


def workload_views(bound: int = DEFAULT_VIEW_BOUND) -> tuple[ViewDef, ViewDef]:
    """The workload's materialized views V1/V2, ready to register."""
    return (follower_view(bound), audience_view(bound))


def register_workload_views(
    engine: Engine, bound: int = DEFAULT_VIEW_BOUND
) -> tuple[ViewDef, ViewDef]:
    """Register V1/V2 on ``engine`` and return them: after this, Q4/Q5
    compile to view-assisted plans with bounded base access."""
    views = workload_views(bound)
    for view in views:
        engine.views.register(view)
    return views


Q4 = QueryBundle(
    name="Q4",
    description="?p's followers who live in NYC (needs V1)",
    schema=SOCIAL_SCHEMA,
    access=SOCIAL_ACCESS,
    query="Q(f) :- friend(f, p), person(f, n, 'NYC')",
    parameters=("p",),
)

Q5 = QueryBundle(
    name="Q5",
    description="who visited page ?u (needs V2)",
    schema=SOCIAL_SCHEMA,
    access=SOCIAL_ACCESS,
    query="Q(y) :- visits(y, u)",
    parameters=("u",),
)

#: Queries uncontrolled over the base access schema; scale independent
#: using the workload views (V1 for Q4, V2 for Q5).
VIEW_QUERIES = (Q4, Q5)


def _degree(rng: random.Random, skew: float, cap: int) -> int:
    """A Pareto-distributed out-degree in ``[1, cap]``.  Smaller ``skew``
    means a heavier tail (more hubs)."""
    return min(cap, int(rng.paretovariate(skew)))


def _check_generator_args(persons: int, max_friends: int, max_visits: int, skew: float) -> None:
    if persons < 1:
        raise ValueError(f"persons must be >= 1, got {persons}")
    if max_friends < 1 or max_visits < 1:
        raise ValueError("max_friends and max_visits must be >= 1")
    if skew <= 0:
        raise ValueError(f"skew must be positive, got {skew}")


def _block_rows(
    size: int,
    rng: random.Random,
    *,
    base: int,
    page_base: int,
    max_friends: int,
    max_visits: int,
    skew: float,
    cities: Sequence[str],
) -> dict[str, list[Row]]:
    """One self-contained community of ``size`` persons with ids
    ``base..base+size-1``: friend edges stay within the community and
    pages are drawn from a private pool offset at ``page_base``.  With
    ``base == page_base == 0`` this is exactly the classic single-block
    generator, consuming ``rng`` in the identical order."""
    weights = [1.0 / (i + 1) for i in range(len(cities))]
    person_rows: list[Row] = [
        (base + pid, f"u{base + pid}", rng.choices(cities, weights)[0])
        for pid in range(size)
    ]

    friend_rows: list[Row] = []
    if size > 1:
        for pid in range(size):
            degree = min(_degree(rng, skew, max_friends), size - 1)
            targets: set[int] = set()
            while len(targets) < degree:
                target = rng.randrange(size)
                if target != pid:
                    targets.add(target)
            friend_rows.extend((base + pid, base + t) for t in sorted(targets))

    # Pages form a pool that grows with the community, so a bigger block
    # means more *distinct* pages, not denser per-person activity.
    pages = max(8, size // 2)
    visits_rows: list[Row] = []
    for pid in range(size):
        degree = _degree(rng, skew, max_visits)
        urls = {rng.randrange(pages) for _ in range(degree)}
        visits_rows.extend((base + pid, f"url{page_base + u}") for u in sorted(urls))

    return {"person": person_rows, "friend": friend_rows, "visits": visits_rows}


def generate_social_network(
    persons: int,
    *,
    seed: int = 0,
    max_friends: int = DEFAULT_MAX_FRIENDS,
    max_visits: int = DEFAULT_MAX_VISITS,
    skew: float = 1.5,
    cities: Sequence[str] = CITIES,
) -> dict[str, list[Row]]:
    """A seeded ``{relation: rows}`` social-network instance of ``persons``
    people.

    Out-degrees (friend edges per person, pages visited per person) are
    Pareto-skewed with exponent ``skew`` and capped at ``max_friends`` /
    ``max_visits``, so the access schema from :func:`social_access_text`
    with the same caps is truthful on the generated data.  Identical
    arguments produce the identical instance.
    """
    _check_generator_args(persons, max_friends, max_visits, skew)
    return _block_rows(
        persons,
        random.Random(seed),
        base=0,
        page_base=0,
        max_friends=max_friends,
        max_visits=max_visits,
        skew=skew,
        cities=cities,
    )


#: Default community size for :func:`stream_social_network` -- also the
#: scale at which its first block coincides with the classic generator.
DEFAULT_BLOCK = 10_000


def stream_social_network(
    persons: int,
    *,
    seed: int = 0,
    block: int = DEFAULT_BLOCK,
    max_friends: int = DEFAULT_MAX_FRIENDS,
    max_visits: int = DEFAULT_MAX_VISITS,
    skew: float = 1.5,
    cities: Sequence[str] = CITIES,
) -> "Iterator[tuple[str, list[Row]]]":
    """Stream a ``persons``-sized instance as ``(relation, rows)`` chunks
    of at most ``block`` persons each, never materializing more than one
    block in memory -- the out-of-core loading path
    (:meth:`~repro.relational.instance.Database.bulk_load`).

    The instance is a union of independent ``block``-person communities:
    friend edges stay within a community and each community visits a
    private page pool, so every person's Q1--Q5 neighbourhood is fully
    contained in their own block.  That makes scale benchmarks exact:
    the **first block is byte-identical to**
    ``generate_social_network(min(block, persons), seed)``, so a query
    parameterized on a block-0 person touches the identical tuples
    whether the database holds one block or a hundred -- the flat
    tuples-accessed curve at 1M rows is measured against the same
    ground truth as the 10k run.  Identical arguments produce the
    identical stream.
    """
    _check_generator_args(persons, max_friends, max_visits, skew)
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    page_stride = max(8, block // 2)
    base = 0
    index = 0
    while base < persons:
        size = min(block, persons - base)
        # Block 0 replays the classic generator's stream; later blocks
        # decorrelate through a fixed odd multiplier (Knuth's).
        block_seed = seed if index == 0 else seed + index * 2654435761
        rows = _block_rows(
            size,
            random.Random(block_seed),
            base=base,
            page_base=index * page_stride,
            max_friends=max_friends,
            max_visits=max_visits,
            skew=skew,
            cities=cities,
        )
        for relation in ("person", "friend", "visits"):
            yield relation, rows[relation]
        base += size
        index += 1


def social_engine(
    persons: int,
    *,
    seed: int = 0,
    max_friends: int = DEFAULT_MAX_FRIENDS,
    max_visits: int = DEFAULT_MAX_VISITS,
    skew: float = 1.5,
    **engine_kwargs: object,
) -> Engine:
    """An :class:`Engine` over the social schema, its access rules (with
    the given caps) and a freshly generated ``persons``-sized instance."""
    return Engine(
        SOCIAL_SCHEMA,
        social_access_text(max_friends, max_visits),
        generate_social_network(
            persons,
            seed=seed,
            max_friends=max_friends,
            max_visits=max_visits,
            skew=skew,
        ),
        **engine_kwargs,
    )


def sample_pids(persons: int, count: int, *, seed: int = 0) -> list[int]:
    """``count`` person ids sampled with replacement -- the parameter
    stream for a benchmark run.  Seeded on a stream derived from (but
    independent of) the data generator's, so parameter choice never
    perturbs the generated instance."""
    rng = random.Random(seed * 2654435761 + 97)
    return [rng.randrange(persons) for _ in range(count)]


def sample_urls(
    data: Mapping[str, Sequence[Row]], count: int, *, seed: int = 0
) -> list[str]:
    """``count`` urls sampled with replacement from the instance's
    ``visits`` relation -- the parameter stream for Q5.  Seeded
    independently of the generator, like :func:`sample_pids`."""
    urls = sorted({row[1] for row in data.get("visits", ())})
    if not urls:
        raise ValueError("the instance has no visits to sample urls from")
    rng = random.Random(seed * 2654435761 + 193)
    return [urls[rng.randrange(len(urls))] for _ in range(count)]


def max_in_degree(
    data: Mapping[str, Sequence[Row]], relation: str, position: int = 1
) -> int:
    """The largest number of rows of ``relation`` sharing one value at
    ``position`` -- the measured in-degree ceiling the workload views'
    declared bounds must dominate for the promise to be truthful."""
    counts: dict[object, int] = {}
    for row in data.get(relation, ()):
        counts[row[position]] = counts.get(row[position], 0) + 1
    return max(counts.values(), default=0)

"""The high-level facade over the paper's workflow.

:class:`Engine` binds a database schema, an access schema and a database
and turns each step of the scale-independence pipeline -- parse, check
controllability, compile a bounded plan, execute with access accounting --
into a method call on a :class:`PreparedQuery`.  Compiled plans are
memoized in an LRU :class:`~repro.api.cache.PlanCache` keyed by
``(query, parameter set)``.

This is the documented front door; the constructors and free functions in
:mod:`repro.logic`, :mod:`repro.relational` and :mod:`repro.core` remain
the low-level API underneath.
"""

from repro.api.cache import CacheStats, PlanCache
from repro.api.engine import Engine, ExplainAnalyze, PreparedQuery, ResultSet

__all__ = [
    "Engine",
    "ExplainAnalyze",
    "PreparedQuery",
    "ResultSet",
    "CacheStats",
    "PlanCache",
]

"""The engine's LRU cache of compiled plans.

Compiling a scale-independent plan (:func:`repro.core.plans.compile_plan`)
walks the controllability fixpoint once per body atom; for the repeated
parameterized queries the Engine is built for, that work is identical on
every call.  The cache memoizes compiled plans keyed by ``(query,
parameter-name set)`` -- parameter *values* do not affect the plan -- and
is invalidated wholesale whenever the access schema changes, since every
plan embeds the rules it fetches through.

The cache is shared mutable state on the concurrent-traffic hot path, so
every operation (get/put/invalidate/stats) takes an internal lock: the
cache's own structure and hit/miss/eviction/invalidation counters stay
consistent under concurrent executes against one
:class:`~repro.api.engine.Engine`.  (Per-execution *database* access
deltas are isolated separately: each execution charges its own
:class:`~repro.core.executor.ExecutionContext` stats, so concurrent
``ResultSet.stats`` never contaminate each other.)

Compilation itself is *single-flight* (:meth:`PlanCache.get_or_compute`):
when N threads cold-start the same ``(query, parameter set)``
concurrently, exactly one of them runs the compile -- the controllability
fixpoint is pure CPU work that would otherwise burn N times over -- and
the rest wait on a per-key in-flight marker and are served the leader's
plans (counted as hits).  A leader that fails propagates its exception to
every waiter of that flight; the key is cleared, so a later probe retries
the compile from scratch.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of the plan cache's counters."""

    hits: int
    misses: int
    evictions: int
    invalidations: int
    size: int
    maxsize: int | None

    @property
    def compilations(self) -> int:
        """Plans are compiled exactly on cache misses (waiters served by a
        single-flight leader count as hits, not misses)."""
        return self.misses


class _InFlight:
    """The per-key marker of one in-progress compilation: waiters block on
    :attr:`done`; the leader publishes either :attr:`value` or
    :attr:`error` before setting it."""

    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: object = None
        self.error: BaseException | None = None


class PlanCache:
    """A small thread-safe LRU mapping with hit/miss/eviction/invalidation
    accounting and single-flight computation.

    ``maxsize=None`` means unbounded; ``maxsize=0`` disables caching
    (every probe misses and stores nothing).
    """

    __slots__ = (
        "maxsize",
        "_lock",
        "_entries",
        "_inflight",
        "_hits",
        "_misses",
        "_evictions",
        "_invalidations",
    )

    def __init__(self, maxsize: int | None = 128):
        if maxsize is not None and maxsize < 0:
            raise ValueError(f"maxsize must be None or >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._inflight: dict[Hashable, _InFlight] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable) -> object | None:
        """The cached value for ``key`` (refreshing its recency), or None."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: object) -> None:
        with self._lock:
            self._store(key, value)

    def _store(self, key: Hashable, value: object) -> None:
        """Insert ``value`` under ``key`` and evict LRU overflow.  The lock
        must already be held."""
        if self.maxsize == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while self.maxsize is not None and len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self._evictions += 1

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], object]
    ) -> object:
        """The cached value for ``key``, or ``compute()`` single-flight.

        On a miss, exactly one caller (the *leader*) runs ``compute`` --
        concurrent callers for the same key block until the leader
        finishes and are served its value, counted as hits, however many
        of them pile up during the compile.  If the leader raises, the
        exception propagates to every waiter of that flight (compilation
        is deterministic, so re-running it N times would reproduce N
        identical failures at N times the cost) and the key is cleared
        for a fresh attempt later.
        """
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    leader = True
                    self._misses += 1
                else:
                    leader = False
            else:
                self._entries.move_to_end(key)
                self._hits += 1
                return value
        if not leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            with self._lock:
                self._hits += 1
            return flight.value
        try:
            value = compute()
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                self._inflight.pop(key, None)
            flight.done.set()
            raise
        flight.value = value
        with self._lock:
            self._store(key, value)
            self._inflight.pop(key, None)
        flight.done.set()
        return value

    def invalidate(self) -> None:
        """Drop every entry (the schema underlying the plans changed)."""
        with self._lock:
            self._entries.clear()
            self._invalidations += 1

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                size=len(self._entries),
                maxsize=self.maxsize,
            )

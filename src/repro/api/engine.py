"""The Engine facade: the paper's workflow as one object.

An :class:`Engine` binds the three ingredients of scale independence --
a :class:`~repro.relational.schema.DatabaseSchema`, an
:class:`~repro.core.access_schema.AccessSchema` and a
:class:`~repro.relational.instance.Database` -- and exposes each step of
Fan, Geerts & Libkin's pipeline (parse, controllability check, plan
compilation, bounded execution) as a method call::

    engine = Engine(
        "Person(pid, name, city); Friend(pid1, pid2)",
        "Friend(pid1 -> 5000); Person(pid -> 1)",
        data={"Person": [...], "Friend": [...]},
    )
    q = engine.query("Q(y) :- Friend(p, y), Person(y, n, 'NYC')")
    q.is_controlled(["p"])        # fixpoint propagation
    print(q.explain(["p"]))       # the bounded fetch/join plan
    result = q.execute(p=42)      # ResultSet: rows + access statistics

Compiled plans are memoized in an LRU cache keyed by ``(query, parameter
set)`` (:mod:`repro.api.cache`), so a repeated ``execute`` with the same
parameter names -- the hot path of a parameterized workload -- skips
:func:`~repro.core.plans.compile_plan` entirely.  Replacing the access
schema invalidates the cache, since plans embed access rules.

Every execution runs in its own
:class:`~repro.core.executor.ExecutionContext`: the ``ResultSet.stats``
it returns are that execution's private counters, exact even when many
threads execute against one engine concurrently (the database's own
:attr:`~repro.relational.instance.Database.stats` stay the cumulative
engine-wide view).  For data that changes, ``execute_incremental``
returns an :class:`~repro.incremental.IncrementalResult` whose
``refresh()`` re-answers the query from the database's change log with
delta-bounded access instead of recomputing::

    live = q.execute_incremental(p=42)
    engine.database.insert_many("Friend", new_edges)
    live.refresh()                # touches O(|delta|) tuples, not O(answer)

Queries that no base access plan controls can still become executable
through materialized views (:mod:`repro.views`, Section 6)::

    engine.views.register("V1", "V1(pid, follower) :- Friend(follower, pid)",
                          "V1(pid -> 64)")
    engine.execute("Q(x) :- Friend(x, p)", p=42)   # bounded, via V1

The view registry is versioned into every plan-cache key, and views are
materialized lazily and refreshed incrementally from the change log
before each view-assisted execution.
"""

from __future__ import annotations

import os
import threading
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

from repro.api.cache import CacheStats, PlanCache
from repro.core.access_schema import AccessSchema
from repro.core.executor import (
    ExecutionContext,
    PlanProfile,
    _execute_merged,
    merge_parameter_values,
    profile_plan,
)
from repro.core.plans import Plan, compile_plan
from repro.core.qdsi import QDSIResult, decide_qdsi
from repro.core.qsi import QSIResult, decide_qsi
from repro.errors import NotControlledError, SchemaError
from repro.logic.ast import _as_variable
from repro.logic.cq import ConjunctiveQuery
from repro.logic.parser import parse_query
from repro.logic.terms import Variable
from repro.logic.ucq import UnionOfConjunctiveQueries
from repro.relational.backends.base import StorageBackend
from repro.relational.instance import AccessStats, Database
from repro.relational.schema import DatabaseSchema
from repro.views import ViewSet, compile_with_views

if TYPE_CHECKING:
    from repro.incremental import IncrementalResult
    from repro.views import ViewState

Row = tuple[object, ...]
Query = ConjunctiveQuery | UnionOfConjunctiveQueries


class ResultSet:
    """The rows of one execution together with its access accounting.

    Behaves like a read-only sequence of answer tuples; ``stats`` is this
    execution's private :class:`~repro.relational.instance.AccessStats`
    (charged through the execution's own
    :class:`~repro.core.executor.ExecutionContext`, so concurrent
    executions against one engine never contaminate each other's
    counters) and ``fanout_bound`` the plans' a-priori bound on tuples
    accessed (None when no plan was used).
    """

    __slots__ = ("rows", "columns", "stats", "fanout_bound")

    def __init__(
        self,
        rows: Iterable[Row],
        columns: tuple[str, ...],
        stats: AccessStats,
        fanout_bound: int | None = None,
    ):
        self.rows = tuple(rows)
        self.columns = columns
        self.stats = stats
        self.fanout_bound = fanout_bound

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __getitem__(self, index):
        return self.rows[index]

    def __contains__(self, row: object) -> bool:
        # Only list/tuple coerce: str is a Sequence but tuple("NYC") is
        # a character tuple, not a row.
        return tuple(row) in self.rows if isinstance(row, (list, tuple)) else False

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ResultSet):
            return self.rows == other.rows
        if isinstance(other, (list, tuple, set, frozenset)):
            try:
                coerced = [tuple(row) for row in other]
            except TypeError:
                return NotImplemented
            if isinstance(other, (set, frozenset)):
                return set(self.rows) == set(coerced)
            return self.rows == tuple(coerced)
        return NotImplemented

    # Equality against a set is order-insensitive, so hashing the ordered
    # rows would break the eq/hash contract; like a list, a ResultSet is
    # simply unhashable (use ``result.rows`` as a key instead).
    __hash__ = None

    def __repr__(self) -> str:
        return (
            f"ResultSet({len(self.rows)} rows, "
            f"{self.stats.tuples_accessed} tuples accessed)"
        )

    def to_dicts(self) -> list[dict[str, object]]:
        """The rows as dictionaries keyed by the head variable names."""
        return [dict(zip(self.columns, row)) for row in self.rows]


class ExplainAnalyze:
    """The payload of ``explain_analyze``: the executed :class:`ResultSet`
    plus one per-operator :class:`~repro.core.executor.PlanProfile` per
    disjunct, with measured row counts and access accounting.

    Also the payload of
    :meth:`~repro.incremental.IncrementalResult.explain_analyze`, where
    the profiled operators are the refresh path's delta pipeline
    (``Δ[level]`` slice joins, ``new[level]`` prefix fetches,
    ``old[level]`` snapshot fetches)."""

    __slots__ = ("result", "profiles")

    def __init__(self, result: ResultSet, profiles: tuple[PlanProfile, ...]):
        self.result = result
        self.profiles = profiles

    def __repr__(self) -> str:
        return (
            f"ExplainAnalyze({len(self.result)} rows, "
            f"{len(self.profiles)} plan(s), "
            f"{self.result.stats.tuples_accessed} tuples accessed)"
        )

    def __str__(self) -> str:
        if len(self.profiles) == 1:
            sections = [str(self.profiles[0])]
        else:
            sections = [
                f"disjunct {i}: {profile.plan.query}\n{profile}"
                for i, profile in enumerate(self.profiles, 1)
            ]
        sections.append(
            f"total: {len(self.result)} rows, "
            f"{self.result.stats.tuples_accessed} tuples accessed "
            f"(bound {self.result.fanout_bound})"
        )
        return "\n\n".join(sections)


class PreparedQuery:
    """A parsed, schema-validated query bound to an :class:`Engine`.

    All plan-producing methods go through the engine's plan cache; the
    parameter argument is an iterable of variable names (``"p"`` or
    ``"?p"``) or :class:`~repro.logic.terms.Variable` objects.
    """

    __slots__ = ("query", "text", "_engine", "_columns")

    def __init__(self, engine: "Engine", query: Query, text: str | None = None):
        self._engine = engine
        self.query = query
        self.text = text if text is not None else str(query)
        self._columns: tuple[str, ...] | None = None
        if isinstance(query, UnionOfConjunctiveQueries):
            # The answer columns are named after the head variables, so a
            # union whose disjunct heads disagree on names would silently
            # mislabel to_dicts(); reject it at prepare time.
            heads = {tuple(v.name for v in d.head) for d in query.disjuncts}
            if len(heads) > 1:
                raise ValueError(
                    "union disjuncts disagree on head variable names: "
                    + " vs ".join(
                        "(" + ", ".join(h) + ")" for h in sorted(heads)
                    )
                    + "; rename the heads consistently so answer columns "
                    "are well-defined"
                )

    def __str__(self) -> str:
        return str(self.query)

    def __repr__(self) -> str:
        return f"PreparedQuery({str(self.query)!r})"

    @property
    def arity(self) -> int:
        return self.query.arity

    @property
    def columns(self) -> tuple[str, ...]:
        """The names of the answer columns (the head variables; for a
        union, all disjunct heads agree -- enforced at prepare time)."""
        columns = self._columns
        if columns is None:
            if isinstance(self.query, ConjunctiveQuery):
                columns = tuple(v.name for v in self.query.head)
            else:
                columns = tuple(v.name for v in self.query.disjuncts[0].head)
            self._columns = columns
        return columns

    def is_controlled(self, parameters: Iterable[object] = ()) -> bool:
        """Whether fixing ``parameters`` bounds every variable through the
        engine's access rules (every disjunct, for a union).

        Like every other plan-facing method, ``parameters`` must occur in
        the query (in every disjunct, for a union) -- otherwise ValueError,
        so the verdict can never disagree with :meth:`plan`/:meth:`execute`.
        """
        return bool(self.decide_qsi(parameters))

    def decide_qsi(self, parameters: Iterable[object] = ()) -> QSIResult:
        """The QSI verdict for this query under the engine's access schema."""
        # Normalize once: ``parameters`` may be a one-shot iterable.
        params = _parameter_names(parameters)
        self._check_parameters(params)
        return decide_qsi(self.query, self._engine.access, params)

    def decide_qdsi(self, budget: int) -> QDSIResult:
        """The QDSI verdict on the engine's database within ``budget``
        tuple accesses."""
        return decide_qdsi(
            self.query, self._engine.require_database(), self._engine.access, budget
        )

    def plan(self, parameters: Iterable[object] = ()) -> Plan | tuple[Plan, ...]:
        """The compiled scale-independent plan (one per disjunct for a
        union), via the engine's plan cache.

        Raises :class:`repro.errors.NotControlledError` if the query is
        not controlled by ``parameters``.
        """
        plans = self._engine._plans_for(self.query, _parameter_names(parameters))
        return plans[0] if isinstance(self.query, ConjunctiveQuery) else plans

    def explain(self, parameters: Iterable[object] = ()) -> str:
        """A human-readable rendering of the plan(s) for ``parameters``."""
        plans = self._engine._plans_for(self.query, _parameter_names(parameters))
        if len(plans) == 1:
            return plans[0].explain()
        sections = [
            f"disjunct {i}: {plan.query}\n{plan.explain()}"
            for i, plan in enumerate(plans, 1)
        ]
        total = sum(plan.fanout_bound for plan in plans)
        return "\n\n".join(sections) + f"\n\ntotal access bound: {total} tuples"

    def execute(
        self,
        parameters: Mapping[object, object] | None = None,
        **kwargs: object,
    ) -> ResultSet:
        """Compile (or fetch from cache) the plan for the given parameter
        names, run it on the engine's database, and return a
        :class:`ResultSet` with the rows and the access-statistics delta.

        Parameter values may be passed as a mapping and/or as keyword
        arguments: ``q.execute(p=42)``.
        """
        values = merge_parameter_values(parameters, kwargs)
        database = self._engine.require_database()
        plans = self._engine._plans_for(self.query, frozenset(values))
        ctx = ExecutionContext(database, views=self._engine._prepare_views(plans))
        if len(plans) == 1:
            # Hot path of a parameterized workload: one plan, whose
            # pipeline already emits deduplicated rows in order.
            plan = plans[0]
            rows: dict[Row, None] = dict.fromkeys(
                _execute_merged(plan, ctx, values)
            )
            return ResultSet(rows, self.columns, ctx.stats, plan.fanout_bound)
        rows = {}
        for plan in plans:
            for row in _execute_merged(plan, ctx, values):
                rows.setdefault(row, None)
        fanout = sum(plan.fanout_bound for plan in plans)
        return ResultSet(rows, self.columns, ctx.stats, fanout)

    def execute_incremental(
        self,
        parameters: Mapping[object, object] | None = None,
        **kwargs: object,
    ) -> "IncrementalResult":
        """Execute like :meth:`execute`, but materialize the answers as an
        :class:`~repro.incremental.IncrementalResult`: after database
        mutations, ``result.refresh()`` re-answers the query from the
        change log with delta-bounded access instead of recomputing.

        Plans are compiled (or fetched) through the engine's plan cache,
        whose keys carry the access-schema version; a refresh that
        observes a newer version rebases onto freshly compiled plans.
        Raises :class:`~repro.errors.IncrementalError` for plans that
        fetch through embedded access rules.
        """
        from repro.incremental import build_incremental

        values = merge_parameter_values(parameters, kwargs)
        return build_incremental(self._engine, self.query, values, self.columns)

    def explain_analyze(
        self,
        parameters: Mapping[object, object] | None = None,
        **kwargs: object,
    ) -> ExplainAnalyze:
        """Execute like :meth:`execute`, but additionally record per-operator
        row counts and access accounting through the physical pipeline
        (:mod:`repro.core.executor`).  Returns an :class:`ExplainAnalyze`
        whose ``result`` is the :class:`ResultSet` and whose ``profiles``
        hold one :class:`~repro.core.executor.PlanProfile` per disjunct."""
        values = merge_parameter_values(parameters, kwargs)
        database = self._engine.require_database()
        plans = self._engine._plans_for(self.query, frozenset(values))
        ctx = ExecutionContext(database, views=self._engine._prepare_views(plans))
        rows: dict[Row, None] = {}
        profiles = []
        for plan in plans:
            profile = profile_plan(plan, ctx, values)
            profiles.append(profile)
            for row in profile.rows:
                rows.setdefault(row, None)
        fanout = sum(plan.fanout_bound for plan in plans)
        result = ResultSet(rows, self.columns, ctx.stats, fanout)
        return ExplainAnalyze(result, tuple(profiles))

    def diagnostics(self, parameters: Iterable[object] = ()):
        """Statically analyze this query under the engine's access schema
        (:mod:`repro.analysis`): the QRY query passes, the PLN plan
        passes when the query compiles (views included), and a VIW003
        covering-view proposal when it does not.  Returns a
        :class:`repro.analysis.Report`; nothing executes."""
        from repro.analysis import analyze_prepared

        return analyze_prepared(self, parameters)

    def _check_parameters(self, parameters: frozenset[Variable]) -> None:
        """Reject parameter variables that do not occur in the query (in
        every disjunct, for a union) -- the same check that
        :func:`compile_plan` applies, so the QSI verdict and the
        plan-producing methods always agree on which parameter sets are
        valid."""
        if isinstance(self.query, ConjunctiveQuery):
            disjuncts: tuple[ConjunctiveQuery, ...] = (self.query,)
        else:
            disjuncts = self.query.disjuncts
        for disjunct in disjuncts:
            missing = parameters - set(disjunct.variables())
            if missing:
                raise ValueError(
                    "parameters not occurring in the query: "
                    + ", ".join(sorted(f"?{v}" for v in missing))
                )


class Engine:
    """The front door: a schema, an access schema and a database, with
    textual queries, plan caching and bounded execution on top.

    ``schema`` and ``access`` may be given as objects or as DSL text
    (parsed with :meth:`DatabaseSchema.parse` / :meth:`AccessSchema.parse`);
    ``data`` may be a :class:`Database` or a ``{relation: rows}`` mapping.
    Omitting ``access`` means "no access rules" (nothing is controlled);
    omitting ``data`` leaves the engine planning-only until one is bound.

    ``backend`` selects the storage engine
    (:mod:`repro.relational.backends`) for the database the engine
    constructs -- from a ``{relation: rows}`` mapping, from ``data=None``
    (the empty database created on first :meth:`load` / :meth:`add`), or
    empty at construction when only ``backend`` is given.  It cannot be
    combined with a ready-made :class:`Database`, which already owns its
    backend.

    ``certify=True`` runs the independent plan certifier
    (:mod:`repro.analysis.certify`) over every plan this engine compiles
    -- base, view-augmented and incremental-rebase plans alike -- inside
    the plan cache's single-flight compute, so each cached plan is
    certified exactly once; a plan that fails certification raises
    :class:`~repro.errors.CertificationError` instead of entering the
    cache.  The default (``certify=None``) follows the ``REPRO_CERTIFY``
    environment variable (any value other than empty or ``0`` enables
    it; the test suite sets it suite-wide via a conftest fixture).
    """

    __slots__ = (
        "_schema",
        "_access_state",
        "_access_lock",
        "_database",
        "_cache",
        "_views",
        "_certify",
        "_cost_state",
    )

    def __init__(
        self,
        schema: DatabaseSchema | str,
        access: AccessSchema | str | None = None,
        data: Database | Mapping[str, Iterable[Sequence[object]]] | None = None,
        *,
        backend: "StorageBackend | None" = None,
        plan_cache_size: int | None = 128,
        certify: bool | None = None,
    ):
        if isinstance(schema, str):
            schema = DatabaseSchema.parse(schema)
        elif not isinstance(schema, DatabaseSchema):
            raise SchemaError(f"{schema!r} is not a DatabaseSchema or schema text")
        self._schema = schema
        self._cache = PlanCache(plan_cache_size)
        # (version, schema) in one slot so concurrent readers always see a
        # matching pair; the version is part of every plan-cache key.
        # Writers serialize on _access_lock so versions are never reused.
        self._access_lock = threading.Lock()
        self._access_state = (0, self._coerce_access(access))
        # (version, CostStats | None), same pairing discipline as
        # _access_state: the version is part of every plan-cache key, so
        # refreshing statistics strands plan choices made under old stats.
        self._cost_state: tuple = (0, None)
        self._views = ViewSet(schema)
        self._views._owner = self  # back-reference for views.advise()
        if certify is None:
            certify = os.environ.get("REPRO_CERTIFY", "") not in ("", "0")
        self._certify = bool(certify)
        self._database: Database | None = None
        if isinstance(data, Database):
            if backend is not None:
                raise SchemaError(
                    "backend= cannot be combined with a ready-made Database: "
                    "the database already owns its storage backend"
                )
            self.database = data
        elif data is not None or backend is not None:
            self.database = Database(schema, data, backend=backend)

    # -- bound components ------------------------------------------------

    @property
    def schema(self) -> DatabaseSchema:
        return self._schema

    @property
    def access(self) -> AccessSchema:
        return self._access_state[1]

    @access.setter
    def access(self, access: AccessSchema | str | None) -> None:
        """Replace the access schema.  Every cached plan embeds access
        rules, so the plan cache is invalidated; bumping the version also
        strands any compilation already in flight under the old schema on
        a cache key that can never be served again."""
        coerced = self._coerce_access(access)
        with self._access_lock:  # no lost version bumps between setters
            version, _ = self._access_state
            self._access_state = (version + 1, coerced)
        self._cache.invalidate()

    @property
    def certify(self) -> bool:
        """Whether this engine certifies every plan it compiles
        (:mod:`repro.analysis.certify`)."""
        return self._certify

    @property
    def views(self) -> ViewSet:
        """The engine's materialized-view registry (:mod:`repro.views`):
        ``engine.views.register(name, query, access)`` /
        ``engine.views.drop(name)``.  Registering or dropping a view
        bumps the registry version, which is part of every plan-cache
        key -- a plan compiled against a different view population can
        never be served.  Queries that are not controlled over the base
        access schema are automatically rewritten over the registered
        views at compile time; views are materialized lazily and kept
        fresh from the change log before every view-assisted execution.
        """
        return self._views

    @property
    def database(self) -> Database | None:
        return self._database

    @database.setter
    def database(self, database: Database | None) -> None:
        if database is not None:
            if not isinstance(database, Database):
                raise SchemaError(f"{database!r} is not a Database")
            if database.schema != self._schema:
                raise SchemaError(
                    "database schema does not match the engine's schema"
                )
        self._database = database

    def _coerce_access(self, access: AccessSchema | str | None) -> AccessSchema:
        if access is None:
            return AccessSchema(self._schema, ())
        if isinstance(access, str):
            return AccessSchema.parse(self._schema, access)
        if not isinstance(access, AccessSchema):
            raise SchemaError(f"{access!r} is not an AccessSchema or access-rule text")
        if access.schema != self._schema:
            raise SchemaError("access schema is over a different database schema")
        return access

    def require_database(self) -> Database:
        """The bound database, or a SchemaError telling the caller to bind
        one."""
        if self._database is None:
            raise SchemaError(
                "no database is bound to the engine; pass data= or set "
                "engine.database before executing"
            )
        return self._database

    # -- data loading ----------------------------------------------------

    def load(self, data: Mapping[str, Iterable[Sequence[object]]]) -> "Engine":
        """Insert ``{relation: rows}`` into the bound database (creating an
        empty one first if none is bound).  Returns the engine, so loading
        chains off the constructor."""
        if self._database is None:
            self._database = Database(self._schema)
        for relation, rows in data.items():
            self._database.insert_many(relation, rows)
        return self

    def add(self, relation: str, row: Sequence[object]) -> bool:
        """Insert one tuple (creating an empty database if none is bound)."""
        if self._database is None:
            self._database = Database(self._schema)
        return self._database.add(relation, row)

    # -- the workflow ----------------------------------------------------

    def query(self, query: str | Query) -> PreparedQuery:
        """Parse (if textual) and schema-validate ``query``, returning a
        :class:`PreparedQuery` bound to this engine."""
        if isinstance(query, str):
            parsed = parse_query(query, schema=self._schema)
            return PreparedQuery(self, parsed, query)
        if not isinstance(query, (ConjunctiveQuery, UnionOfConjunctiveQueries)):
            raise TypeError(
                f"expected query text, a ConjunctiveQuery or a "
                f"UnionOfConjunctiveQueries, got {type(query).__name__}"
            )
        self._schema.validate_query(query)
        return PreparedQuery(self, query)

    def execute(
        self,
        query: str | Query,
        parameters: Mapping[object, object] | None = None,
        **kwargs: object,
    ) -> ResultSet:
        """One-shot convenience: ``engine.query(q).execute(...)``."""
        return self.query(query).execute(parameters, **kwargs)

    def execute_incremental(
        self,
        query: str | Query,
        parameters: Mapping[object, object] | None = None,
        **kwargs: object,
    ) -> "IncrementalResult":
        """One-shot convenience: ``engine.query(q).execute_incremental(...)``
        -- materialized answers that ``refresh()`` from the change log."""
        return self.query(query).execute_incremental(parameters, **kwargs)

    def refresh(self, result: "IncrementalResult") -> "IncrementalResult":
        """Refresh an :class:`~repro.incremental.IncrementalResult`
        obtained from this engine (sugar for ``result.refresh()``)."""
        return result.refresh()

    def explain(self, query: str | Query, parameters: Iterable[object] = ()) -> str:
        """One-shot convenience: ``engine.query(q).explain(...)``."""
        return self.query(query).explain(parameters)

    def explain_analyze(
        self,
        query: str | Query,
        parameters: Mapping[object, object] | None = None,
        **kwargs: object,
    ) -> ExplainAnalyze:
        """One-shot convenience: ``engine.query(q).explain_analyze(...)`` --
        execute and return per-operator row counts plus the result set."""
        return self.query(query).explain_analyze(parameters, **kwargs)

    def analyze(self, queries: Iterable[object] = (), *, source: str | None = None):
        """Statically analyze the engine (:mod:`repro.analysis`): the ACC
        passes over the access schema, the VIW passes over the
        registered views, and every query/plan pass per entry of
        ``queries`` (query text, query objects, ``PreparedQuery`` objects
        or ``(query, parameters)`` pairs).  Returns a
        :class:`repro.analysis.Report`; nothing executes."""
        from repro.analysis import analyze_engine

        return analyze_engine(self, queries, source=source)

    # -- cost statistics -------------------------------------------------

    @property
    def cost_stats(self):
        """The observed :class:`~repro.analysis.cost.CostStats` refining
        cost-based plan selection, or None (purely static costs)."""
        return self._cost_state[1]

    def refresh_cost_stats(self, stats=None):
        """Collect observed statistics from the bound database (or
        install a ready-made :class:`~repro.analysis.cost.CostStats`) for
        profile-guided plan selection, and return them.

        Collection reads only unaccounted backend primitives -- no query
        executes and no access is charged.  The stats version is part of
        every plan-cache key, so plan choices made under the previous
        statistics are stranded, never served."""
        from repro.analysis.cost import CostStats

        if stats is None:
            stats = CostStats.from_database(self.require_database())
        elif not isinstance(stats, CostStats):
            raise SchemaError(f"{stats!r} is not a CostStats")
        with self._access_lock:  # no lost version bumps
            version, _ = self._cost_state
            self._cost_state = (version + 1, stats)
        return stats

    def clear_cost_stats(self) -> None:
        """Drop observed statistics: selection reverts to the purely
        static (declared-bound) cost model."""
        with self._access_lock:
            version, _ = self._cost_state
            self._cost_state = (version + 1, None)

    # -- plan cache ------------------------------------------------------

    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters and current size of the plan cache."""
        return self._cache.stats()

    def clear_plan_cache(self) -> None:
        self._cache.invalidate()

    def _plans_for(
        self, query: Query, parameters: frozenset[Variable]
    ) -> tuple[Plan, ...]:
        # Capture the access schema and its version in one atomic read:
        # the version is part of the cache key, so a compile racing a
        # concurrent ``engine.access = ...`` can only populate a key
        # belonging to the schema it compiled against -- it can never be
        # served after the replacement.  The view-registry version rides
        # in the key for the same reason: registering or dropping a view
        # changes what a query may compile to, so stale view plans are
        # stranded on unreachable keys.
        version, access = self._access_state
        # One immutable catalog for the whole compile: a register/drop
        # racing us bumps the version (stranding this key) but can never
        # make the rewrite and the extended schema disagree.
        catalog = self._views.snapshot()
        # Observed statistics steer plan choice, so their version rides
        # in the key too: refreshed stats strand previous choices.
        cost_version, cost_stats = self._cost_state
        key = (version, catalog.version, cost_version, query, parameters)

        def compile_all() -> tuple[Plan, ...]:
            def compile_one(disjunct: ConjunctiveQuery, params) -> Plan:
                try:
                    base = compile_plan(disjunct, access, params)
                except NotControlledError as exc:
                    if not len(catalog):
                        raise
                    # Not controlled over base data alone: try rewriting
                    # over the registered views (Section 6).  Raises a
                    # combined NotControlledError -- carrying the base
                    # failure's diagnostic -- if the views do not help
                    # either.
                    return compile_with_views(
                        disjunct, access, catalog, params, base_error=exc
                    )
                if not len(catalog):
                    return base
                # Controlled over base data: selection is cost-based, not
                # augmentation-only.  Price the view-augmented candidate
                # too and keep the cheaper plan (ties keep the base plan:
                # it needs no view freshness pass before executing).
                try:
                    augmented = compile_with_views(
                        disjunct, access, catalog, params
                    )
                except NotControlledError:
                    return base
                from repro.analysis.cost import check_selection, estimate_plan

                estimates = [
                    estimate_plan(candidate, cost_stats)
                    for candidate in (base, augmented)
                ]
                chosen, rejected = (
                    (0, 1) if estimates[0].total <= estimates[1].total else (1, 0)
                )
                # The optimizer's own must-fail check (CST001): the
                # chosen estimate can never exceed the rejected one.
                check_selection(estimates[chosen], (estimates[rejected],))
                return (base, augmented)[chosen]

            # Compile with a deterministic parameter order; values are
            # matched by name at execution time, so order is cosmetic.
            params = tuple(sorted(parameters, key=lambda v: v.name))
            if isinstance(query, ConjunctiveQuery):
                plans = (compile_one(query, params),)
            else:
                plans = tuple(
                    compile_one(disjunct, params) for disjunct in query.disjuncts
                )
            if self._certify:
                # Inside the single-flight compute: each cached plan is
                # certified exactly once, and a failing plan never enters
                # the cache (the CertificationError propagates to every
                # waiter and the key is cleared).
                from repro.analysis.certify import check_plan

                for plan in plans:
                    check_plan(plan, access, catalog.definitions())
            return plans

        # Single-flight: N concurrent cold starts of the same key run the
        # controllability fixpoint once; the others wait and share.
        return self._cache.get_or_compute(key, compile_all)

    def _prepare_views(
        self, plans: Sequence[Plan]
    ) -> "dict[str, ViewState] | None":
        """Materialized-and-fresh view states for every view any of
        ``plans`` reads, or None when they read none.  Called right
        before execution, so view-assisted plans always run against
        views that reflect the current change-log watermark."""
        if len(plans) == 1:
            names: frozenset[str] = plans[0].view_relations
        else:
            names = frozenset().union(*(plan.view_relations for plan in plans))
        if not names:
            return None
        return self._views.prepare(self.require_database(), names)


def _parameter_names(parameters: Iterable[object]) -> frozenset[Variable]:
    return frozenset(_as_variable(p) for p in parameters)

"""Homomorphism-based reasoning for conjunctive queries.

Containment of CQs is characterised by homomorphisms (Chandra & Merlin's
classic theorem): ``Q1`` is contained in ``Q2`` iff there is a homomorphism
from ``Q2`` into the canonical database of ``Q1`` mapping head to head.
This module implements the backtracking homomorphism search and the derived
notions: containment, equivalence and minimisation (the core of a CQ).

:func:`body_homomorphisms` exposes the body-to-body search on its own
(no head constraint): it enumerates every way one atom list maps into
another.  That is the engine of view rewriting (:mod:`repro.views`) --
a homomorphism from a view's body into a query's body witnesses that the
view's head projection is *implied* by the query, so the corresponding
view atom may soundly be added to the query.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.logic.ast import Atom
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Constant, Term, Variable

Homomorphism = dict[Variable, Term]


def _normalized(query: ConjunctiveQuery) -> tuple[tuple[Term, ...], tuple[Atom, ...]] | None:
    """Head terms and body atoms after resolving equalities, or None if the
    query is unsatisfiable."""
    subst = query.equality_substitution()
    if subst is None:
        return None
    head = tuple(subst.get(v, v) for v in query.head)
    body = tuple(a.substitute(subst) for a in query.body)
    return head, body


def _unify(pattern: Term, target: Term, h: Homomorphism) -> Homomorphism | None:
    """Extend ``h`` so that ``pattern`` maps to ``target``, or None.

    Constants match on their underlying values (as the evaluators do),
    not on the typed-literal identity used for sorting."""
    if isinstance(pattern, Constant):
        return (
            h
            if isinstance(target, Constant) and pattern.value == target.value
            else None
        )
    bound = h.get(pattern)
    if bound is not None:
        if isinstance(bound, Constant) and isinstance(target, Constant):
            # Re-binding consistency also uses value semantics (1 == 1.0).
            return h if bound.value == target.value else None
        return h if bound == target else None
    return {**h, pattern: target}


def find_homomorphism(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Homomorphism | None:
    """A homomorphism from ``source`` into ``target``: a mapping of source
    variables to target terms that sends every source atom to a target atom
    and the source head to the target head, position by position.

    Returns the mapping, or None if no homomorphism exists.
    """
    if source.arity != target.arity:
        return None
    src = _normalized(source)
    tgt = _normalized(target)
    if src is None or tgt is None:
        # An unsatisfiable source maps vacuously only if the target is also
        # unsatisfiable in the containment direction; signal "no mapping"
        # here and let the containment wrapper handle unsatisfiability.
        return None
    src_head, src_body = src
    tgt_head, tgt_body = tgt

    h: Homomorphism | None = {}
    for s, t in zip(src_head, tgt_head):
        h = _unify(s, t, h)
        if h is None:
            return None

    by_relation: dict[str, list[Atom]] = {}
    for atom in tgt_body:
        by_relation.setdefault(atom.relation, []).append(atom)

    def recurse(i: int, h: Homomorphism) -> Homomorphism | None:
        if i == len(src_body):
            return h
        atom = src_body[i]
        for candidate in by_relation.get(atom.relation, ()):
            if candidate.arity != atom.arity:
                continue
            extended: Homomorphism | None = h
            for s, t in zip(atom.terms, candidate.terms):
                extended = _unify(s, t, extended)
                if extended is None:
                    break
            if extended is not None:
                result = recurse(i + 1, extended)
                if result is not None:
                    return result
        return None

    return recurse(0, h)


def body_homomorphisms(
    source: Sequence[Atom],
    target: Sequence[Atom],
    *,
    seed: Mapping[Variable, Term] | None = None,
) -> Iterator[Homomorphism]:
    """Every homomorphism from the atom list ``source`` into the atom list
    ``target``: each mapping sends every source atom onto some target atom
    of the same relation, position by position (constants match on their
    underlying values, as everywhere in evaluation).

    Unlike :func:`find_homomorphism` there is no head constraint and all
    solutions are enumerated lazily, deduplicated (two different
    atom-to-atom assignments can induce the same variable mapping).
    ``seed`` optionally pre-binds source variables.
    """
    by_relation: dict[str, list[Atom]] = {}
    for atom in target:
        by_relation.setdefault(atom.relation, []).append(atom)

    emitted: set[tuple[tuple[Variable, Term], ...]] = set()

    def recurse(i: int, h: Homomorphism) -> Iterator[Homomorphism]:
        if i == len(source):
            key = tuple(sorted(h.items(), key=lambda item: item[0].name))
            if key not in emitted:
                emitted.add(key)
                yield h
            return
        atom = source[i]
        for candidate in by_relation.get(atom.relation, ()):
            if candidate.arity != atom.arity:
                continue
            extended: Homomorphism | None = h
            for s, t in zip(atom.terms, candidate.terms):
                extended = _unify(s, t, extended)
                if extended is None:
                    break
            if extended is not None:
                yield from recurse(i + 1, extended)

    yield from recurse(0, dict(seed) if seed else {})


def is_contained_in(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """True iff ``q1``'s answers are a subset of ``q2``'s on every database."""
    if q1.equality_substitution() is None:
        return True  # unsatisfiable query is contained in everything
    return find_homomorphism(q2, q1) is not None


def are_equivalent(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """True iff the two queries have the same answers on every database."""
    return is_contained_in(q1, q2) and is_contained_in(q2, q1)


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """An equivalent query with a minimal body (the core), obtained by
    greedily dropping redundant atoms."""
    body = list(query.body)
    changed = True
    while changed and len(body) > 1:
        changed = False
        for i in range(len(body)):
            candidate_body = body[:i] + body[i + 1 :]
            try:
                candidate = ConjunctiveQuery(query.head, candidate_body, query.equalities)
            except ValueError:
                continue  # dropping this atom would make the head unsafe
            if are_equivalent(candidate, query):
                body = candidate_body
                changed = True
                break
    return ConjunctiveQuery(query.head, body, query.equalities)

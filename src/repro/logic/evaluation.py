"""Evaluation of formulas with active-domain semantics.

Two evaluators live here:

* :func:`join_atoms` -- an index-aware backtracking join over a set of
  relational atoms.  At every step it greedily picks the atom with the most
  bound positions, so lookups go through the database's hash indexes
  whenever possible.  This is the engine behind
  :meth:`repro.logic.cq.ConjunctiveQuery.evaluate`; the batched operator
  pipeline for scale-independent plans (:mod:`repro.core.executor`) shares
  this module's join helpers (:func:`row_matches`, the pattern/extension
  utilities) rather than reimplementing them.
* :func:`holds` / :func:`satisfying_assignments` -- the textbook
  active-domain semantics for arbitrary first-order formulas.  Quantifiers
  range over the active domain: every value occurring in the database or in
  the formula.  This is exponential in general and exists as the reference
  semantics, not as a production evaluator.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, Mapping, Sequence

from repro.logic.ast import (
    And,
    Atom,
    Equality,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
)
from repro.logic.terms import Constant, Variable

Assignment = dict[Variable, object]


def _term_value(term, assignment: Mapping[Variable, object]):
    """The value of ``term`` under ``assignment``, or a KeyError if it is an
    unassigned variable."""
    if isinstance(term, Constant):
        return term.value
    return assignment[term]


def _bound_pattern(atom: Atom, assignment: Mapping[Variable, object]) -> dict[int, object]:
    """The positions of ``atom`` whose value is already determined, mapped to
    that value."""
    pattern: dict[int, object] = {}
    for i, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            pattern[i] = term.value
        elif term in assignment:
            pattern[i] = assignment[term]
    return pattern


def row_matches(
    atom: Atom, row: Sequence[object], assignment: Mapping[Variable, object]
) -> bool:
    """Whether ``row`` agrees with ``atom`` at every position whose value is
    already determined (a constant, or a variable bound in ``assignment``).
    Positions held by unbound variables are unconstrained."""
    for i, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            if term.value != row[i]:
                return False
        elif term in assignment and assignment[term] != row[i]:
            return False
    return True


def _extend(atom: Atom, row: Sequence[object], assignment: Assignment) -> Assignment | None:
    """Extend ``assignment`` with the bindings ``atom`` takes from ``row``,
    or return None if a repeated variable binds inconsistently."""
    new = dict(assignment)
    for i, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            if term.value != row[i]:
                return None
        elif term in new:
            if new[term] != row[i]:
                return None
        else:
            new[term] = row[i]
    return new


def join_atoms(db, atoms: Sequence[Atom], assignment: Mapping[Variable, object] | None = None) -> Iterator[Assignment]:
    """Yield every assignment of the atoms' variables that makes all of
    ``atoms`` hold in ``db``, extending the initial ``assignment``.

    Atom order is chosen greedily: the next atom evaluated is always one
    with the largest number of bound positions, so each lookup is as
    selective (and as index-friendly) as possible.
    """
    initial: Assignment = dict(assignment or {})

    def recurse(remaining: list[Atom], current: Assignment) -> Iterator[Assignment]:
        if not remaining:
            yield current
            return
        atom = max(remaining, key=lambda a: len(_bound_pattern(a, current)))
        rest = [a for a in remaining if a is not atom]
        pattern = _bound_pattern(atom, current)
        for row in db.lookup(atom.relation, pattern):
            extended = _extend(atom, row, current)
            if extended is not None:
                yield from recurse(rest, extended)

    return recurse(list(atoms), initial)


def active_domain(db, formula: Formula | None = None) -> tuple[object, ...]:
    """The active domain: every value in ``db`` plus every constant in
    ``formula``, in first-occurrence order."""
    values = dict.fromkeys(db.active_domain())
    if formula is not None:
        for c in formula.constants():
            values.setdefault(c.value, None)
    return tuple(values)


def holds(formula: Formula, db, assignment: Mapping[Variable, object] | None = None, *, domain: Sequence[object] | None = None) -> bool:
    """Decide whether ``formula`` holds in ``db`` under ``assignment``
    (which must cover all free variables), with quantifiers ranging over
    the active domain."""
    asg: Assignment = dict(assignment or {})
    missing = [v for v in formula.free_variables() if v not in asg]
    if missing:
        raise ValueError(f"unassigned free variables: {', '.join(map(str, missing))}")
    dom = tuple(domain) if domain is not None else active_domain(db, formula)
    return _holds(formula, db, asg, dom)


def _holds(formula: Formula, db, asg: Assignment, dom: tuple[object, ...]) -> bool:
    if isinstance(formula, Atom):
        row = tuple(_term_value(t, asg) for t in formula.terms)
        return db.contains(formula.relation, row)
    if isinstance(formula, Equality):
        return _term_value(formula.left, asg) == _term_value(formula.right, asg)
    if isinstance(formula, And):
        return all(_holds(op, db, asg, dom) for op in formula.operands)
    if isinstance(formula, Or):
        return any(_holds(op, db, asg, dom) for op in formula.operands)
    if isinstance(formula, Not):
        return not _holds(formula.operand, db, asg, dom)
    if isinstance(formula, Implies):
        return (not _holds(formula.antecedent, db, asg, dom)) or _holds(
            formula.consequent, db, asg, dom
        )
    if isinstance(formula, (Exists, Forall)):
        quantifier = any if isinstance(formula, Exists) else all
        return quantifier(
            _holds(formula.body, db, {**asg, **dict(zip(formula.variables, values))}, dom)
            for values in product(dom, repeat=len(formula.variables))
        )
    raise TypeError(f"cannot evaluate {type(formula).__name__}")


def satisfying_assignments(formula: Formula, db, variables: Sequence[Variable], assignment: Mapping[Variable, object] | None = None) -> Iterator[Assignment]:
    """Yield every extension of ``assignment`` to ``variables`` (over the
    active domain) under which ``formula`` holds."""
    dom = active_domain(db, formula)
    base: Assignment = dict(assignment or {})
    todo = [v for v in variables if v not in base]
    for values in product(dom, repeat=len(todo)):
        candidate = {**base, **dict(zip(todo, values))}
        if holds(formula, db, candidate, domain=dom):
            yield candidate

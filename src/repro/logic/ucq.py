"""Unions of conjunctive queries.

A UCQ is a finite union of conjunctive queries of the same arity; its
answers are the union of the answers of its disjuncts.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.logic.ast import Formula, Or
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Variable


class UnionOfConjunctiveQueries:
    """A union ``Q1 UNION ... UNION Qn`` of same-arity conjunctive queries."""

    __slots__ = ("disjuncts", "_hash")

    def __init__(self, disjuncts: Iterable[ConjunctiveQuery]):
        self.disjuncts = tuple(disjuncts)
        if not self.disjuncts:
            raise ValueError("a UCQ needs at least one disjunct")
        for q in self.disjuncts:
            if not isinstance(q, ConjunctiveQuery):
                raise TypeError(f"{q!r} is not a ConjunctiveQuery")
        arities = {q.arity for q in self.disjuncts}
        if len(arities) > 1:
            raise ValueError(f"disjuncts have different arities: {sorted(arities)}")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, UnionOfConjunctiveQueries)
            and self.disjuncts == other.disjuncts
        )

    def __hash__(self) -> int:
        # Cached like ConjunctiveQuery.__hash__: unions key plan caches
        # too, and the disjunct tuple is immutable after construction.
        try:
            return self._hash
        except AttributeError:
            value = hash(self.disjuncts)
            self._hash = value
            return value

    def __repr__(self) -> str:
        return f"UnionOfConjunctiveQueries({self.disjuncts!r})"

    def __str__(self) -> str:
        return " UNION ".join(str(q) for q in self.disjuncts)

    def __iter__(self):
        return iter(self.disjuncts)

    @property
    def arity(self) -> int:
        return self.disjuncts[0].arity

    def variables(self) -> tuple[Variable, ...]:
        return tuple(
            dict.fromkeys(v for q in self.disjuncts for v in q.variables())
        )

    def to_formula(self) -> Formula:
        formulas = [q.to_formula() for q in self.disjuncts]
        return formulas[0] if len(formulas) == 1 else Or(*formulas)

    def evaluate(
        self, db, parameters: Mapping[object, object] | None = None
    ) -> tuple[tuple[object, ...], ...]:
        """The union of the disjuncts' answers, deduplicated in order.

        Every parameter variable must occur in every disjunct: silently
        leaving a disjunct unconstrained would let unfiltered rows flow
        into the union, so a missing variable raises ValueError (rename
        the disjuncts' variables consistently instead).
        """
        if parameters:
            from repro.logic.ast import _as_variable

            for key in parameters:
                var = _as_variable(key)
                missing = [
                    q for q in self.disjuncts if var not in set(q.variables())
                ]
                if missing:
                    raise ValueError(
                        f"parameter ?{var} does not occur in disjunct {missing[0]}"
                    )
        answers: dict[tuple[object, ...], None] = {}
        for q in self.disjuncts:
            for row in q.evaluate(db, parameters):
                answers.setdefault(row, None)
        return tuple(answers)

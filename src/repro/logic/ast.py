"""Abstract syntax for first-order formulas over a relational vocabulary.

Formulas are immutable, hashable trees built from relational atoms,
equalities and the usual connectives and quantifiers.  Every node supports

* :meth:`Formula.free_variables` -- the free variables, in first-occurrence
  order and without duplicates;
* :meth:`Formula.substitute` -- capture-avoiding substitution of terms for
  free variables;
* :meth:`Formula.atoms` -- iteration over the relational atoms; and
* :meth:`Formula.constants` -- the constants occurring in the formula.

The operators ``&``, ``|`` and ``~`` build conjunctions, disjunctions and
negations, e.g. ``Atom("p", ["?x"]) & ~Atom("q", ["?x"])``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import chain
from typing import Iterable, Iterator, Mapping

from repro.logic.terms import (
    Constant,
    Term,
    Variable,
    constants_of,
    make_term,
    variables_of,
)


@dataclass(frozen=True)
class Span:
    """A 1-based source range: where a parsed node came from.

    ``line``/``column`` address the first character and ``end_line``/
    ``end_column`` the last, so a single-token node has ``line ==
    end_line`` and ``column <= end_column``.  Spans are carried by parsed
    :class:`Atom` and :class:`Equality` nodes (``None`` on
    programmatically built ASTs) and deliberately excluded from equality
    and hashing: two atoms written at different source positions are
    still the same atom.  :mod:`repro.analysis` threads them into
    diagnostics so a finding points at real source text.
    """

    line: int
    column: int
    end_line: int
    end_column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}-{self.end_line}:{self.end_column}"


def _as_variable(value: object) -> Variable:
    """Coerce ``value`` (a :class:`Variable` or a string, optionally with the
    ``?`` marker) into a :class:`Variable`."""
    if isinstance(value, Variable):
        return value
    if isinstance(value, str):
        return _variable_from_name(value)
    raise TypeError(f"cannot interpret {value!r} as a variable")


@lru_cache(maxsize=4096)
def _variable_from_name(value: str) -> Variable:
    # Parameter names recur on every execution (the facade coerces each
    # key per call); memoize so the hot path reuses one Variable per name.
    return Variable(value[1:] if value.startswith("?") else value)


def _as_variables(value: object) -> tuple[Variable, ...]:
    if isinstance(value, (Variable, str)):
        return (_as_variable(value),)
    if isinstance(value, Iterable):
        return tuple(_as_variable(v) for v in value)
    raise TypeError(f"cannot interpret {value!r} as variables")


def _render_term(term: Term) -> str:
    return f"?{term}" if isinstance(term, Variable) else str(term)


class Formula:
    """Base class for all formula nodes."""

    __slots__ = ()
    _fields: tuple[str, ...] = ()

    def _key(self) -> tuple:
        return (type(self).__name__,) + tuple(getattr(self, f) for f in self._fields)

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and self._key() == other._key()  # type: ignore[union-attr]

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        args = ", ".join(repr(getattr(self, f)) for f in self._fields)
        return f"{type(self).__name__}({args})"

    def free_variables(self) -> tuple[Variable, ...]:
        """The free variables of the formula, in first-occurrence order."""
        raise NotImplementedError

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Formula":
        """Replace free occurrences of variables according to ``mapping``.

        Mapping values may be :class:`Variable` or :class:`Constant` (other
        values are coerced with :func:`make_term`).  Substituting under a
        quantifier that binds one of the *replacement* variables raises
        :class:`ValueError` (variable capture).
        """
        raise NotImplementedError

    def atoms(self) -> Iterator["Atom"]:
        """Yield every relational atom occurring in the formula."""
        return iter(())

    def constants(self) -> tuple[Constant, ...]:
        """The constants occurring in the formula, without duplicates."""
        raise NotImplementedError

    def __and__(self, other: "Formula") -> "And":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


def _coerce_mapping(mapping: Mapping[Variable, object]) -> dict[Variable, Term]:
    return {_as_variable(k): make_term(v) for k, v in mapping.items()}


class Atom(Formula):
    """A relational atom ``R(t1, ..., tk)``.

    ``span`` optionally records where the atom was parsed from
    (:class:`Span`; ``None`` for programmatically built atoms).  It is
    not part of ``_fields``, so equality, hashing and ``repr`` are
    unaffected; :meth:`substitute` preserves it.
    """

    __slots__ = ("relation", "terms", "span")
    _fields = ("relation", "terms")

    def __init__(
        self, relation: str, terms: Iterable[object], *, span: Span | None = None
    ):
        if not relation:
            raise ValueError("relation name must be non-empty")
        self.relation = relation
        self.terms = tuple(make_term(t) for t in terms)
        self.span = span

    @property
    def arity(self) -> int:
        return len(self.terms)

    def free_variables(self) -> tuple[Variable, ...]:
        return variables_of(self.terms)

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Atom":
        mapping = _coerce_mapping(mapping)
        return Atom(
            self.relation,
            [mapping.get(t, t) if isinstance(t, Variable) else t for t in self.terms],
            span=self.span,
        )

    def atoms(self) -> Iterator["Atom"]:
        yield self

    def constants(self) -> tuple[Constant, ...]:
        return constants_of(self.terms)

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(_render_term(t) for t in self.terms)})"


class Equality(Formula):
    """An equality ``t1 = t2`` between two terms.

    Like :class:`Atom`, carries an optional source :class:`Span` that does
    not participate in equality or hashing.
    """

    __slots__ = ("left", "right", "span")
    _fields = ("left", "right")

    def __init__(self, left: object, right: object, *, span: Span | None = None):
        self.left = make_term(left)
        self.right = make_term(right)
        self.span = span

    def free_variables(self) -> tuple[Variable, ...]:
        return variables_of((self.left, self.right))

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Equality":
        mapping = _coerce_mapping(mapping)
        left = mapping.get(self.left, self.left) if isinstance(self.left, Variable) else self.left
        right = (
            mapping.get(self.right, self.right) if isinstance(self.right, Variable) else self.right
        )
        return Equality(left, right, span=self.span)

    def constants(self) -> tuple[Constant, ...]:
        return constants_of((self.left, self.right))

    def __str__(self) -> str:
        return f"{_render_term(self.left)} = {_render_term(self.right)}"


class _NaryConnective(Formula):
    """Shared implementation for ``And`` and ``Or``."""

    __slots__ = ("operands",)
    _fields = ("operands",)
    _symbol = "?"

    def __init__(self, *operands: Formula):
        if not operands:
            raise ValueError(f"{type(self).__name__} needs at least one operand")
        for op in operands:
            if not isinstance(op, Formula):
                raise TypeError(f"{op!r} is not a Formula")
        self.operands = tuple(operands)

    def free_variables(self) -> tuple[Variable, ...]:
        return tuple(dict.fromkeys(chain.from_iterable(op.free_variables() for op in self.operands)))

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Formula":
        return type(self)(*(op.substitute(mapping) for op in self.operands))

    def atoms(self) -> Iterator[Atom]:
        for op in self.operands:
            yield from op.atoms()

    def constants(self) -> tuple[Constant, ...]:
        return tuple(dict.fromkeys(chain.from_iterable(op.constants() for op in self.operands)))

    def __str__(self) -> str:
        return "(" + f" {self._symbol} ".join(str(op) for op in self.operands) + ")"


class And(_NaryConnective):
    """Conjunction of one or more formulas."""

    __slots__ = ()
    _symbol = "AND"


class Or(_NaryConnective):
    """Disjunction of one or more formulas."""

    __slots__ = ()
    _symbol = "OR"


class Not(Formula):
    """Negation."""

    __slots__ = ("operand",)
    _fields = ("operand",)

    def __init__(self, operand: Formula):
        if not isinstance(operand, Formula):
            raise TypeError(f"{operand!r} is not a Formula")
        self.operand = operand

    def free_variables(self) -> tuple[Variable, ...]:
        return self.operand.free_variables()

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Not":
        return Not(self.operand.substitute(mapping))

    def atoms(self) -> Iterator[Atom]:
        yield from self.operand.atoms()

    def constants(self) -> tuple[Constant, ...]:
        return self.operand.constants()

    def __str__(self) -> str:
        return f"NOT {self.operand}"


class Implies(Formula):
    """Implication ``antecedent -> consequent``."""

    __slots__ = ("antecedent", "consequent")
    _fields = ("antecedent", "consequent")

    def __init__(self, antecedent: Formula, consequent: Formula):
        for op in (antecedent, consequent):
            if not isinstance(op, Formula):
                raise TypeError(f"{op!r} is not a Formula")
        self.antecedent = antecedent
        self.consequent = consequent

    def free_variables(self) -> tuple[Variable, ...]:
        return tuple(
            dict.fromkeys(
                chain(self.antecedent.free_variables(), self.consequent.free_variables())
            )
        )

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Implies":
        return Implies(self.antecedent.substitute(mapping), self.consequent.substitute(mapping))

    def atoms(self) -> Iterator[Atom]:
        yield from self.antecedent.atoms()
        yield from self.consequent.atoms()

    def constants(self) -> tuple[Constant, ...]:
        return tuple(dict.fromkeys(chain(self.antecedent.constants(), self.consequent.constants())))

    def __str__(self) -> str:
        return f"({self.antecedent} -> {self.consequent})"


class _Quantifier(Formula):
    """Shared implementation for ``Exists`` and ``Forall``."""

    __slots__ = ("variables", "body")
    _fields = ("variables", "body")
    _symbol = "?"

    def __init__(self, variables: object, body: Formula):
        if not isinstance(body, Formula):
            raise TypeError(f"{body!r} is not a Formula")
        self.variables = _as_variables(variables)
        if not self.variables:
            raise ValueError(f"{type(self).__name__} needs at least one variable")
        self.body = body

    def free_variables(self) -> tuple[Variable, ...]:
        bound = set(self.variables)
        return tuple(v for v in self.body.free_variables() if v not in bound)

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Formula":
        mapping = _coerce_mapping(mapping)
        bound = set(self.variables)
        inner = {k: v for k, v in mapping.items() if k not in bound}
        free = set(self.free_variables())
        for k, v in inner.items():
            if k in free and isinstance(v, Variable) and v in bound:
                raise ValueError(
                    f"substituting {v!r} for {k!r} would be captured by {type(self).__name__}"
                )
        if not inner:
            return self
        return type(self)(self.variables, self.body.substitute(inner))

    def atoms(self) -> Iterator[Atom]:
        yield from self.body.atoms()

    def constants(self) -> tuple[Constant, ...]:
        return self.body.constants()

    def __str__(self) -> str:
        vs = ", ".join(f"?{v}" for v in self.variables)
        return f"{self._symbol} {vs}. {self.body}"


class Exists(_Quantifier):
    """Existential quantification ``EXISTS x1, ..., xk . body``."""

    __slots__ = ()
    _symbol = "EXISTS"


class Forall(_Quantifier):
    """Universal quantification ``FORALL x1, ..., xk . body``."""

    __slots__ = ()
    _symbol = "FORALL"

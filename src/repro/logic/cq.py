"""Conjunctive queries.

A conjunctive query ``Q(x1, ..., xk) <- A1, ..., An, e1, ..., em`` has a
head of answer variables, a body of relational atoms and an optional set of
equalities.  Logically it is ``EXISTS y. (A1 AND ... AND An AND e1 AND ...)``
where ``y`` are the body variables not in the head.

Equalities are resolved up front by a union-find pass
(:func:`resolve_equalities`) that either produces a substitution collapsing
each equivalence class to a single representative term, or detects that the
query is unsatisfiable (two distinct constants equated).
"""

from __future__ import annotations

from itertools import chain
from typing import Iterable, Mapping, Sequence

from repro.logic.ast import And, Atom, Equality, Exists, Formula, _as_variable
from repro.logic.terms import Constant, Term, Variable

Substitution = dict[Variable, Term]


def resolve_equalities(equalities: Sequence[Equality]) -> Substitution | None:
    """Collapse ``equalities`` into a substitution, or None if inconsistent.

    Every variable mentioned in the equalities is mapped to the
    representative of its equivalence class: a constant if the class
    contains one (two *distinct* constants make the system inconsistent),
    otherwise the first variable seen in the class.
    """
    parent: dict[Term, Term] = {}

    def find(t: Term) -> Term:
        root = t
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(t, t) != t:
            parent[t], t = root, parent[t]
        return root

    for eq in equalities:
        left, right = find(eq.left), find(eq.right)
        if left == right:
            continue
        if isinstance(left, Constant) and isinstance(right, Constant):
            # Constants are typed literals, but the database matches raw
            # values (1 == 1.0): equalities are satisfiable iff the
            # underlying values agree.
            if left.value != right.value:
                return None
        # Keep constants as class representatives.
        if isinstance(right, Constant):
            left, right = right, left
        parent[right] = left

    return {
        t: find(t)
        for eq in equalities
        for t in (eq.left, eq.right)
        if isinstance(t, Variable)
    }


class ConjunctiveQuery:
    """A conjunctive query with head variables, body atoms and equalities."""

    __slots__ = ("head", "body", "equalities", "_hash")

    def __init__(
        self,
        head: Iterable[object],
        body: Iterable[Atom],
        equalities: Iterable[Equality] = (),
    ):
        self.head = tuple(_as_variable(v) for v in head)
        self.body = tuple(body)
        self.equalities = tuple(equalities)
        for atom in self.body:
            if not isinstance(atom, Atom):
                raise TypeError(f"body element {atom!r} is not an Atom")
        for eq in self.equalities:
            if not isinstance(eq, Equality):
                raise TypeError(f"{eq!r} is not an Equality")
        # Safety: every head variable's equality class must contain a
        # constant or a variable that occurs in some body atom -- a head
        # variable grounded only by other equalities has no binding source.
        subst = resolve_equalities(self.equalities)
        if subst is not None:  # unsatisfiable queries are vacuously safe
            body_vars = set(
                chain.from_iterable(
                    a.substitute(subst).free_variables() for a in self.body
                )
            )
            unsafe = [
                v
                for v in self.head
                if not isinstance(subst.get(v, v), Constant)
                and subst.get(v, v) not in body_vars
            ]
            if unsafe:
                raise ValueError(
                    f"unsafe head variables (not in body): {', '.join(map(str, unsafe))}"
                )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConjunctiveQuery)
            and self.head == other.head
            and self.body == other.body
            and self.equalities == other.equalities
        )

    def __hash__(self) -> int:
        # Queries key plan caches, so a hot parameterized workload hashes
        # the same query on every execute: compute the (deep, atom-by-atom)
        # hash once and reuse it.  The instance is immutable after
        # __init__, so the cached value can never go stale.
        try:
            return self._hash
        except AttributeError:
            value = hash((self.head, self.body, self.equalities))
            self._hash = value
            return value

    def __repr__(self) -> str:
        return (
            f"ConjunctiveQuery({self.head!r}, {self.body!r}"
            + (f", {self.equalities!r}" if self.equalities else "")
            + ")"
        )

    def __str__(self) -> str:
        head = ", ".join(f"?{v}" for v in self.head)
        parts = [str(a) for a in self.body] + [str(e) for e in self.equalities]
        if not parts:
            # A body-less query renders without the arrow so that the
            # rendering stays parseable (see repro.logic.parser).
            return f"Q({head})"
        return f"Q({head}) <- {', '.join(parts)}"

    @property
    def arity(self) -> int:
        return len(self.head)

    def variables(self) -> tuple[Variable, ...]:
        """All variables of the query: head first, then body order."""
        return tuple(
            dict.fromkeys(
                chain(
                    self.head,
                    chain.from_iterable(a.free_variables() for a in self.body),
                    chain.from_iterable(e.free_variables() for e in self.equalities),
                )
            )
        )

    def existential_variables(self) -> tuple[Variable, ...]:
        head = set(self.head)
        return tuple(v for v in self.variables() if v not in head)

    def to_formula(self) -> Formula:
        """The query body as a first-order formula with the existential
        variables quantified."""
        conjuncts: tuple[Formula, ...] = self.body + self.equalities
        matrix: Formula = conjuncts[0] if len(conjuncts) == 1 else And(*conjuncts)
        existential = self.existential_variables()
        return Exists(existential, matrix) if existential else matrix

    def equality_substitution(self) -> Substitution | None:
        """The substitution induced by the query's equalities (see
        :func:`resolve_equalities`), or None if they are unsatisfiable."""
        return resolve_equalities(self.equalities)

    def normalized_body(self) -> tuple[Atom, ...] | None:
        """The body atoms with the equality substitution applied, or None if
        the equalities are unsatisfiable."""
        subst = self.equality_substitution()
        if subst is None:
            return None
        return tuple(a.substitute(subst) for a in self.body) if subst else self.body

    def evaluate(
        self, db, parameters: Mapping[object, object] | None = None
    ) -> tuple[tuple[object, ...], ...]:
        """All answer tuples of the query on ``db``, deduplicated and in
        first-derivation order.

        ``parameters`` optionally binds some of the query's variables to
        values before evaluation (the paper's "given ?x0, find ..." usage).
        """
        from repro.logic import evaluation

        subst = self.equality_substitution()
        if subst is None:
            return ()
        params = _normalize_parameters(parameters, self.variables())

        assignment: dict[Variable, object] = {}
        for var, value in params.items():
            rep = subst.get(var, var)
            if isinstance(rep, Constant):
                if rep.value != value:
                    return ()
            elif rep in assignment:
                if assignment[rep] != value:
                    return ()
            else:
                assignment[rep] = value

        atoms = [a.substitute(subst) for a in self.body]
        answers: dict[tuple[object, ...], None] = {}
        for asg in evaluation.join_atoms(db, atoms, assignment):
            answers.setdefault(self._project(asg, subst), None)
        return tuple(answers)

    def _project(
        self, assignment: Mapping[Variable, object], subst: Substitution
    ) -> tuple[object, ...]:
        row = []
        for var in self.head:
            rep = subst.get(var, var)
            if isinstance(rep, Constant):
                row.append(rep.value)
            elif rep in assignment:
                row.append(assignment[rep])
            else:
                raise ValueError(f"head variable ?{var} is not bound by the body")
        return tuple(row)


def _normalize_parameters(
    parameters: Mapping[object, object] | None, known: Sequence[Variable]
) -> dict[Variable, object]:
    if not parameters:
        return {}
    known_set = set(known)
    result: dict[Variable, object] = {}
    for key, value in parameters.items():
        var = _as_variable(key)
        if var not in known_set:
            raise ValueError(f"unknown parameter variable ?{var}")
        result[var] = value
    return result

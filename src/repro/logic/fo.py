"""First-order queries.

A first-order query pairs a tuple of answer variables with an arbitrary
formula whose free variables are exactly (a subset of) those answer
variables plus any externally supplied parameters.  Evaluation uses the
active-domain semantics of :mod:`repro.logic.evaluation` and is the
reference implementation, not a scalable one: QSI for full first-order
logic is undecidable (Fan, Geerts & Libkin 2014, Section 3), so FO queries
never get scale-independent plans.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.logic.ast import Formula, _as_variable
from repro.logic.terms import Variable


class FirstOrderQuery:
    """An FO query ``Q(x1, ..., xk) = phi``."""

    __slots__ = ("head", "formula")

    def __init__(self, head: Iterable[object], formula: Formula):
        if not isinstance(formula, Formula):
            raise TypeError(f"{formula!r} is not a Formula")
        self.head = tuple(_as_variable(v) for v in head)
        self.formula = formula

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FirstOrderQuery)
            and self.head == other.head
            and self.formula == other.formula
        )

    def __hash__(self) -> int:
        return hash((self.head, self.formula))

    def __repr__(self) -> str:
        return f"FirstOrderQuery({self.head!r}, {self.formula!r})"

    def __str__(self) -> str:
        head = ", ".join(f"?{v}" for v in self.head)
        return f"Q({head}) = {self.formula}"

    @property
    def arity(self) -> int:
        return len(self.head)

    def free_variables(self) -> tuple[Variable, ...]:
        return self.formula.free_variables()

    def evaluate(
        self, db, parameters: Mapping[object, object] | None = None
    ) -> tuple[tuple[object, ...], ...]:
        """All answer tuples over the active domain, deduplicated in order.

        Every free variable of the formula must be a head variable or bound
        by ``parameters``.
        """
        from repro.logic import evaluation

        params = {_as_variable(k): v for k, v in (parameters or {}).items()}
        uncovered = [
            v
            for v in self.formula.free_variables()
            if v not in set(self.head) and v not in params
        ]
        if uncovered:
            raise ValueError(
                "free variables not covered by head or parameters: "
                + ", ".join(f"?{v}" for v in uncovered)
            )
        answers: dict[tuple[object, ...], None] = {}
        for asg in evaluation.satisfying_assignments(
            self.formula, db, self.head, params
        ):
            answers.setdefault(tuple(asg[v] for v in self.head), None)
        return tuple(answers)

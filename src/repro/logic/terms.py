"""Terms: variables and constants.

Queries are built from *terms*.  A :class:`Variable` is a named placeholder
ranging over the active domain of a database; a :class:`Constant` wraps a
Python value (string, int, ...) appearing literally in the query.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable, identified by its name."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")
        object.__setattr__(self, "_hash", hash(self.name))

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


def _variable_hash(self: Variable) -> int:
    return self._hash


# Variables key every assignment, slot table and dedup set in the
# executor; the dataclass-generated __hash__ builds a (name,) tuple per
# call.  Hash once at construction instead (equality is unchanged, and
# hash(name) agrees with it exactly as the generated hash did).
Variable.__hash__ = _variable_hash  # type: ignore[method-assign]


@functools.total_ordering
@dataclass(frozen=True, eq=False)
class Constant:
    """A constant value appearing in a query.

    Constants are *typed* literals: ``Constant(1)``, ``Constant(1.0)`` and
    ``Constant(True)`` are three distinct terms even though Python's value
    equality would conflate them -- otherwise ordering by (type name,
    value) could not be a total order consistent with ``==``.  Values must
    be hashable, since terms are used as dictionary keys throughout the
    package.
    """

    value: object

    def __post_init__(self) -> None:
        try:
            hash(self.value)
        except TypeError:
            raise TypeError(
                f"constant values must be hashable, got {self.value!r}"
            ) from None

    def __str__(self) -> str:
        return repr(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constant):
            return NotImplemented
        # Identity-or-equality, like containers: keeps Constant(nan) equal
        # to itself even though nan != nan.
        return type(self.value) is type(other.value) and (
            self.value is other.value or self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((type(self.value).__name__, self.value))

    def __lt__(self, other: "Constant") -> bool:
        # Order by (type name, value): mixed-type comparisons are decided
        # by the type name alone, so with type-sensitive equality sorting
        # is a total order.  Within a type, the native order is used only
        # for types known to be totally ordered -- mixing a partial order
        # (e.g. frozenset's subset test) with a per-pair fallback would be
        # intransitive -- and every other type orders uniformly by
        # (string rendering, identity).
        if not isinstance(other, Constant):
            return NotImplemented
        if self == other:
            return False
        lhs_type = type(self.value).__name__
        rhs_type = type(other.value).__name__
        if lhs_type != rhs_type:
            return lhs_type < rhs_type
        if (
            type(self.value) is type(other.value)
            and type(self.value) in _TOTALLY_ORDERED_TYPES
        ):
            if self.value < other.value:
                return True
            if other.value < self.value:
                return False
            # fall through: unequal yet unordered (NaN)
        lhs_str, rhs_str = str(self.value), str(other.value)
        if lhs_str != rhs_str:
            return lhs_str < rhs_str
        # Last resort for unequal values that also render identically
        # (e.g. two NaN objects): order by object identity, which keeps
        # the order total and antisymmetric within a process.
        return id(self.value) < id(other.value)


# Builtin types whose native ``<`` is a total order (modulo NaN, which the
# comparison handles separately).  Values of other types sort by their
# string rendering.
_TOTALLY_ORDERED_TYPES = frozenset({bool, int, float, str, bytes})

Term = Union[Variable, Constant]


def is_variable(term: Term) -> bool:
    """Return True if ``term`` is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Return True if ``term`` is a :class:`Constant`."""
    return isinstance(term, Constant)


def make_term(value: object) -> Term:
    """Coerce ``value`` into a term.

    Strings starting with ``?`` become variables named without the marker;
    :class:`Variable` and :class:`Constant` instances pass through; everything
    else becomes a :class:`Constant`.

    This is a convenience for writing queries compactly, e.g.
    ``Atom("friend", [make_term("?p"), make_term("?id")])``.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str) and value.startswith("?"):
        name = value[1:]
        if not name:
            raise ValueError('"?" is not a valid term: variable names must be non-empty')
        return Variable(name)
    return Constant(value)


def variables_of(terms) -> tuple[Variable, ...]:
    """Return the variables occurring in ``terms``, in order, without
    duplicates."""
    return tuple(dict.fromkeys(t for t in terms if isinstance(t, Variable)))


def constants_of(terms) -> tuple[Constant, ...]:
    """Return the constants occurring in ``terms``, in order, without
    duplicates."""
    return tuple(dict.fromkeys(t for t in terms if isinstance(t, Constant)))

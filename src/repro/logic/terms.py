"""Terms: variables and constants.

Queries are built from *terms*.  A :class:`Variable` is a named placeholder
ranging over the active domain of a database; a :class:`Constant` wraps a
Python value (string, int, ...) appearing literally in the query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable, identified by its name."""

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


@dataclass(frozen=True)
class Constant:
    """A constant value appearing in a query."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __lt__(self, other: "Constant") -> bool:
        # A total order is convenient for deterministic output; fall back to
        # comparing string renderings when the values are not comparable.
        if not isinstance(other, Constant):
            return NotImplemented
        try:
            return self.value < other.value
        except TypeError:
            return str(self.value) < str(other.value)


Term = Union[Variable, Constant]


def is_variable(term: Term) -> bool:
    """Return True if ``term`` is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Return True if ``term`` is a :class:`Constant`."""
    return isinstance(term, Constant)


def make_term(value: object) -> Term:
    """Coerce ``value`` into a term.

    Strings starting with ``?`` become variables named without the marker;
    :class:`Variable` and :class:`Constant` instances pass through; everything
    else becomes a :class:`Constant`.

    This is a convenience for writing queries compactly, e.g.
    ``Atom("friend", [make_term("?p"), make_term("?id")])``.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str) and value.startswith("?"):
        return Variable(value[1:])
    return Constant(value)


def variables_of(terms) -> tuple[Variable, ...]:
    """Return the variables occurring in ``terms``, in order, without
    duplicates."""
    seen: list[Variable] = []
    for term in terms:
        if isinstance(term, Variable) and term not in seen:
            seen.append(term)
    return tuple(seen)


def constants_of(terms) -> tuple[Constant, ...]:
    """Return the constants occurring in ``terms``, in order, without
    duplicates."""
    seen: list[Constant] = []
    for term in terms:
        if isinstance(term, Constant) and term not in seen:
            seen.append(term)
    return tuple(seen)

"""Datalog-style concrete syntax for the paper's queries.

This module is the textual front door to :mod:`repro.logic`: a hand-written
tokenizer and recursive-descent parser for conjunctive queries and unions
thereof, in the rule syntax used throughout the literature::

    Q(x, y) :- Person(x, 'NYC'), Friend(x, y)
    Q(x) :- Employee(x, _) ; Q(x) :- Contractor(x)

* A rule is ``Head :- Body`` (``<-`` is accepted as a synonym, so the
  renderings produced by :meth:`ConjunctiveQuery.__str__` parse back).
* The body is a comma-separated list of relational atoms and equalities
  (``x = 'NYC'``).
* ``;`` separates the disjuncts of a union (the keyword ``UNION`` is
  accepted as a synonym, matching :meth:`UnionOfConjunctiveQueries.__str__`).
* Variables are bare identifiers (``x``) or ``?``-prefixed ones (``?x``);
  a lone ``_`` is a wildcard that becomes a fresh variable per occurrence.
* Constants are quoted strings (``'NYC'``, ``"O'Hare"``, with Python
  escape sequences), numbers (``42``, ``-1``, ``2.5``, ``1e-3``, ``inf``,
  ``-inf``, ``nan``) and the keywords ``True``, ``False`` and ``None``.
* ``#`` starts a comment running to the end of the line.

Every syntax error raises :class:`repro.errors.ParseError` carrying the
1-based line and column of the offending token.  Parsed atoms and
equalities additionally retain their source range as
:class:`repro.logic.ast.Span` (``Atom.span`` / ``Equality.span``;
``None`` on programmatically built ASTs), which
:mod:`repro.analysis` threads into diagnostics -- spans never
participate in equality, hashing or rendering.  Parsing is the inverse of
rendering: for every :class:`ConjunctiveQuery` ``q`` whose variable names
are identifiers and whose constants are strings, numbers, booleans or
``None``, ``parse_query(str(q)) == q``; the same holds for every such
:class:`UnionOfConjunctiveQueries` with two or more disjuncts (a
one-disjunct union renders, and hence parses back, as its single CQ).
The one numeric exception is NaN: ``'nan'`` parses to a *fresh*
``Constant(float('nan'))``, which compares unequal to every other NaN
constant because :class:`~repro.logic.terms.Constant` equality is
identity-or-equality.

The token stream (:func:`tokenize` / :class:`TokenStream`) is shared with
the schema DSL of :meth:`repro.relational.schema.DatabaseSchema.parse` and
the access-schema DSL of :meth:`repro.core.access_schema.AccessSchema.parse`.
"""

from __future__ import annotations

import ast as _pyast
import re
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ParseError
from repro.logic.ast import Atom, Equality, Span
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Constant, Term, Variable
from repro.logic.ucq import UnionOfConjunctiveQueries

# -- tokens ----------------------------------------------------------------

IDENT = "identifier"
VARIABLE = "variable"
STRING = "string"
NUMBER = "number"
LPAREN = "("
RPAREN = ")"
LBRACE = "{"
RBRACE = "}"
COMMA = ","
SEMICOLON = ";"
EQUALS = "="
COLON = ":"
STAR = "*"
RULE_ARROW = ":-"
ARROW = "->"
END = "end of input"

_PUNCT = {
    "(": LPAREN,
    ")": RPAREN,
    "{": LBRACE,
    "}": RBRACE,
    ",": COMMA,
    ";": SEMICOLON,
    "=": EQUALS,
    ":": COLON,
    "*": STAR,
}

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUMBER_RE = re.compile(
    r"-?(?:\d+\.\d*(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+|\.\d+(?:[eE][+-]?\d+)?|\d+)"
)
# repr() of non-finite floats: 'inf' and 'nan' are keyword constants (below),
# but their negative forms need the tokenizer's help since a lone '-' is not
# part of any other token.
_NEGATIVE_NONFINITE_RE = re.compile(r"-(?:inf|nan)(?![A-Za-z0-9_])")

# Keyword constants, rendered by ``repr`` and so by ``Constant.__str__``.
_KEYWORD_CONSTANTS = {
    "True": True,
    "False": False,
    "None": None,
    "inf": float("inf"),
    "nan": float("nan"),
}


@dataclass(frozen=True)
class Token:
    """One lexeme: its kind, source text, position and (for literals) value."""

    kind: str
    text: str
    line: int
    column: int
    value: object = field(default=None, compare=False)

    def describe(self) -> str:
        if self.kind is END:
            return END
        if self.kind in (IDENT, VARIABLE, STRING, NUMBER):
            return f"{self.kind} {self.text!r}"
        return f"'{self.text}'"


def _span(start: Token, end: Token) -> Span:
    """The source range from ``start``'s first character to ``end``'s last.

    Multi-line string literals keep their start position, so the end
    column is computed on the token's final line.
    """
    text = end.text
    if "\n" in text:
        tail = text.rsplit("\n", 1)[1]
        return Span(start.line, start.column, end.line + text.count("\n"), len(tail))
    return Span(start.line, start.column, end.line, end.column + max(len(text), 1) - 1)


def tokenize(text: str) -> tuple[Token, ...]:
    """Split ``text`` into tokens, ending with a single END token.

    Raises :class:`ParseError` on characters outside the language and on
    unterminated string literals.
    """
    tokens: list[Token] = []
    i, n = 0, len(text)
    line, line_start = 1, 0
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "#":
            while i < n and text[i] != "\n":
                i += 1
            continue
        column = i - line_start + 1
        two = text[i : i + 2]
        if two in (":-", "<-"):
            tokens.append(Token(RULE_ARROW, two, line, column))
            i += 2
            continue
        if two == "->":
            tokens.append(Token(ARROW, two, line, column))
            i += 2
            continue
        if ch == "?":
            m = _IDENT_RE.match(text, i + 1)
            if m is None:
                raise ParseError("expected a variable name after '?'", line, column)
            tokens.append(Token(VARIABLE, text[i : m.end()], line, column))
            i = m.end()
            continue
        if ch in "'\"":
            j = i + 1
            while j < n and text[j] != ch:
                j += 2 if text[j] == "\\" else 1
            if j >= n:
                raise ParseError("unterminated string literal", line, column)
            literal = text[i : j + 1]
            try:
                value = _pyast.literal_eval(literal)
            except (ValueError, SyntaxError):
                raise ParseError(
                    f"malformed string literal {literal}", line, column
                ) from None
            tokens.append(Token(STRING, literal, line, column, value))
            # Backslash line-continuations let a literal span source lines;
            # keep the line accounting right for every later token.
            if "\n" in literal:
                line += literal.count("\n")
                line_start = i + literal.rfind("\n") + 1
            i = j + 1
            continue
        m = _NUMBER_RE.match(text, i)
        if m is not None:
            literal = m.group()
            is_float = any(c in literal for c in ".eE")
            tokens.append(
                Token(NUMBER, literal, line, column, float(literal) if is_float else int(literal))
            )
            i = m.end()
            continue
        m = _NEGATIVE_NONFINITE_RE.match(text, i)
        if m is not None:
            tokens.append(Token(NUMBER, m.group(), line, column, float(m.group())))
            i = m.end()
            continue
        m = _IDENT_RE.match(text, i)
        if m is not None:
            tokens.append(Token(IDENT, m.group(), line, column))
            i = m.end()
            continue
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, line, column))
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token(END, "", line, (n - line_start) + 1))
    return tuple(tokens)


class TokenStream:
    """A cursor over a token tuple with the usual peek/take/expect helpers."""

    __slots__ = ("tokens", "_pos")

    def __init__(self, tokens: Iterable[Token]):
        self.tokens = tuple(tokens)
        self._pos = 0

    def peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def at(self, kind: str, ahead: int = 0) -> bool:
        return self.peek(ahead).kind == kind

    def at_end(self) -> bool:
        return self.at(END)

    def take(self) -> Token:
        token = self.peek()
        if token.kind is not END:
            self._pos += 1
        return token

    def expect(self, kind: str, what: str | None = None) -> Token:
        token = self.peek()
        if token.kind != kind:
            if what is None:
                what = kind if kind in (IDENT, VARIABLE, STRING, NUMBER, END) else f"'{kind}'"
            raise ParseError(
                f"expected {what}, got {token.describe()}", token.line, token.column
            )
        return self.take()

    def error(self, message: str, token: Token | None = None) -> ParseError:
        token = token or self.peek()
        return ParseError(message, token.line, token.column)


# -- query parsing ---------------------------------------------------------


class _QueryParser:
    def __init__(self, stream: TokenStream, schema=None):
        self.stream = stream
        self.schema = schema
        # Wildcards become fresh variables named _1, _2, ...; pre-collect
        # every name in the input so a fresh name never collides with one
        # the user wrote explicitly.
        self._used_names = {
            t.text[1:] if t.kind is VARIABLE else t.text
            for t in stream.tokens
            if t.kind in (VARIABLE, IDENT)
        }
        self._wildcards = 0

    def _fresh_wildcard(self) -> Variable:
        while True:
            self._wildcards += 1
            name = f"_{self._wildcards}"
            if name not in self._used_names:
                self._used_names.add(name)
                return Variable(name)

    def parse(self) -> ConjunctiveQuery | UnionOfConjunctiveQueries:
        stream = self.stream
        first_token = stream.peek()
        disjuncts = [self._rule()]
        while self._at_union_separator():
            stream.take()
            disjuncts.append(self._rule())
        if not stream.at_end():
            raise stream.error(
                f"expected ';', 'UNION' or end of input, got {stream.peek().describe()}"
            )
        if len(disjuncts) == 1:
            return disjuncts[0]
        try:
            return UnionOfConjunctiveQueries(disjuncts)
        except ValueError as exc:
            raise ParseError(str(exc), first_token.line, first_token.column) from None

    def _at_union_separator(self) -> bool:
        token = self.stream.peek()
        return token.kind is SEMICOLON or (token.kind is IDENT and token.text == "UNION")

    def _rule(self) -> ConjunctiveQuery:
        stream = self.stream
        start = stream.expect(IDENT, "a rule head")
        head = self._head_terms()
        body: list[Atom] = []
        equalities: list[Equality] = []
        if stream.at(RULE_ARROW):
            stream.take()
            self._conjunct(body, equalities)
            while stream.at(COMMA):
                stream.take()
                self._conjunct(body, equalities)
        try:
            return ConjunctiveQuery(head, body, equalities)
        except ValueError as exc:
            raise ParseError(str(exc), start.line, start.column) from None

    def _head_terms(self) -> list[Variable]:
        stream = self.stream
        stream.expect(LPAREN)
        head: list[Variable] = []
        if not stream.at(RPAREN):
            while True:
                token = stream.peek()
                term = self._term()
                if not isinstance(term, Variable) or token.text == "_":
                    raise stream.error(
                        f"head terms must be named variables, got {token.describe()}",
                        token,
                    )
                head.append(term)
                if not stream.at(COMMA):
                    break
                stream.take()
        stream.expect(RPAREN)
        return head

    def _conjunct(self, body: list[Atom], equalities: list[Equality]) -> None:
        stream = self.stream
        if stream.at(IDENT) and stream.at(LPAREN, ahead=1):
            body.append(self._atom())
            return
        start = stream.peek()
        left = self._term()
        stream.expect(EQUALS, "'=' (or a relational atom)")
        end = stream.peek()
        right = self._term()
        equalities.append(Equality(left, right, span=_span(start, end)))

    def _atom(self) -> Atom:
        stream = self.stream
        name = stream.expect(IDENT, "a relation name")
        stream.expect(LPAREN)
        terms: list[Term] = []
        if not stream.at(RPAREN):
            terms.append(self._term())
            while stream.at(COMMA):
                stream.take()
                terms.append(self._term())
        rparen = stream.expect(RPAREN)
        atom = Atom(name.text, terms, span=_span(name, rparen))
        if self.schema is not None:
            if name.text not in self.schema:
                raise ParseError(f"unknown relation {name.text!r}", name.line, name.column)
            rel = self.schema.relation(name.text)
            if atom.arity != rel.arity:
                raise ParseError(
                    f"relation {name.text!r} has arity {rel.arity}, "
                    f"but the atom {atom} has arity {atom.arity}",
                    name.line,
                    name.column,
                )
        return atom

    def _term(self) -> Term:
        stream = self.stream
        token = stream.peek()
        if token.kind is VARIABLE:
            stream.take()
            return Variable(token.text[1:])
        if token.kind in (STRING, NUMBER):
            stream.take()
            return Constant(token.value)
        if token.kind is IDENT:
            stream.take()
            if token.text == "_":
                return self._fresh_wildcard()
            if token.text in _KEYWORD_CONSTANTS:
                return Constant(_KEYWORD_CONSTANTS[token.text])
            return Variable(token.text)
        raise stream.error(f"expected a term, got {token.describe()}", token)


def parse_query(text: str, schema=None) -> ConjunctiveQuery | UnionOfConjunctiveQueries:
    """Parse Datalog-style ``text`` into a CQ (one rule) or a UCQ (several
    rules separated by ``;`` or ``UNION``).

    With a :class:`repro.relational.schema.DatabaseSchema` as ``schema``,
    every atom is checked against it during the parse, so an unknown
    relation or a wrong arity is reported with the exact source position.
    """
    return _QueryParser(TokenStream(tokenize(text)), schema).parse()


def parse_cq(text: str, schema=None) -> ConjunctiveQuery:
    """Parse ``text`` as a single conjunctive query (no union)."""
    query = parse_query(text, schema)
    if not isinstance(query, ConjunctiveQuery):
        raise ParseError(
            f"expected a single conjunctive query, got a union of "
            f"{len(query.disjuncts)} disjuncts"
        )
    return query

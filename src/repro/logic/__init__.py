"""Logical query languages used in the paper: CQ, UCQ and FO.

The abstract syntax lives in :mod:`repro.logic.ast`, conjunctive queries in
:mod:`repro.logic.cq`, and evaluation with active-domain semantics in
:mod:`repro.logic.evaluation`.  Homomorphism-based reasoning (containment,
equivalence, minimisation, witnesses) is in :mod:`repro.logic.homomorphism`.
The Datalog-style concrete syntax (``Q(x) :- Person(x, 'NYC')``) is parsed
by :mod:`repro.logic.parser`.
"""

from repro.logic.terms import Constant, Term, Variable
from repro.logic.ast import And, Atom, Equality, Exists, Forall, Formula, Implies, Not, Or
from repro.logic.cq import ConjunctiveQuery
from repro.logic.ucq import UnionOfConjunctiveQueries
from repro.logic.fo import FirstOrderQuery
from repro.logic.parser import parse_cq, parse_query

__all__ = [
    "parse_query",
    "parse_cq",
    "Term",
    "Variable",
    "Constant",
    "Formula",
    "Atom",
    "Equality",
    "And",
    "Or",
    "Not",
    "Exists",
    "Forall",
    "Implies",
    "ConjunctiveQuery",
    "UnionOfConjunctiveQueries",
    "FirstOrderQuery",
]

"""Static analysis and diagnostics for the scale-independence pipeline.

The paper's premise (Sections 3-4, 6) is that query cost and
controllability are *statically* decidable from the query, the access
rules and the view definitions.  This package turns that theory into
compiler-style tooling: a diagnostic framework
(:mod:`repro.analysis.diagnostics` -- stable codes, severities, 1-based
source spans threaded from the tokenizer through the AST) plus one pass
family per analyzable object:

* :func:`analyze_query` (QRY001-QRY007) -- single-use variables,
  cartesian products, parameters equated away, duplicate atoms,
  mismatched union selectivity, unsatisfiability, and the
  binding-pattern uncontrollability trace;
* :func:`analyze_access` (ACC001-ACC005) -- ruleless relations,
  shadowed rules, absurd bounds, duplicates, plus the ACC005
  missing-rule proposal riding along with QRY007;
* :func:`analyze_plan` (PLN001-PLN003) -- fanout-bound blowups with the
  multiplicative per-level breakdown, probe-after-embedded-fetch fusion
  opportunities, dominant steps;
* :func:`analyze_views` / :func:`advise_covering_view`
  (VIW001-VIW003) -- unmatched and overlapping views, and concrete
  covering-view proposals for uncontrolled queries;
* :func:`advise_views` / ``engine.views.advise(queries)``
  (VIW004-VIW005, :mod:`repro.analysis.advisor`) -- the multi-atom view
  advisor: MiniCon-style bucket search over connected body subsets,
  stats-derived bounds, and adopted-vs-base pricing through the cost
  model;
* :func:`estimate_plan` / :func:`certify_selection` (CST001-CST003,
  :mod:`repro.analysis.cost`) -- the static cost model behind the
  engine's cost-based plan selection, optionally refined by observed
  ``CostStats``, with a must-never-fire self-check that the chosen plan
  is no costlier than any rejected candidate (CST002, in the certifier,
  catches plans whose ``cost_estimate`` annotation disagrees with an
  independent re-derivation);
* :func:`classify_incremental` (INC001-INC002,
  :mod:`repro.analysis.maintain`) -- static
  incremental-maintainability classification: which plans the Section 5
  delta pipeline can refresh, with causal traces for embedded-rule
  fetches, decided at prepare/register time instead of failing at
  ``execute_incremental`` time;
* :func:`certify_plan` / :func:`check_plan` (CRT001-CRT007,
  :mod:`repro.analysis.certify`) -- translation validation: re-derive a
  compiled plan's binding coverage, rule membership, head projection and
  fanout arithmetic independently of the planner (``Engine(certify=True)``
  / ``REPRO_CERTIFY=1`` gates every compilation on it);
* :mod:`repro.analysis.dataflow` -- the Datalog-adornment pass behind
  QRY007/ACC005 and the trace ``NotControlledError`` carries;
* :mod:`repro.analysis.fixes` -- certified ``--fix`` rewrites for
  QRY003/QRY004, each verified by homomorphic equivalence before
  anything is written.

Three surfaces:

* the API -- ``engine.analyze(queries)`` /
  ``prepared.diagnostics(parameters)`` (thin wrappers over
  :func:`analyze_engine` / :func:`analyze_prepared`);
* the CLI -- ``python -m repro.analysis`` lints query files against an
  optional schema/access pair and exits nonzero at the chosen severity
  floor (``--strict`` fails on warnings);
* CI -- the workflow runs ``python -m repro.analysis --workload
  --strict`` so the Q1-Q5 bundles (:func:`workload_report`) stay
  diagnostic-clean at warning level.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.analysis.access import ABSURD_BOUND, analyze_access
from repro.analysis.advisor import (
    EXPENSIVE_COST,
    MAX_VIEW_ATOMS,
    ViewAdvice,
    advice_report,
    advise_views,
)
from repro.analysis.certify import certify_plan, certify_plans, check_plan
from repro.analysis.cost import (
    CostEstimate,
    CostStats,
    certify_selection,
    check_selection,
    estimate_plan,
)
from repro.analysis.dataflow import (
    ADVISED_RULE_BOUND,
    AtomAdornment,
    BindingFlow,
    advise_missing_rule,
    binding_flow,
    explain_uncontrolled,
)
from repro.analysis.diagnostics import (
    CODES,
    CodeInfo,
    Diagnostic,
    Report,
    Severity,
    diagnostic,
    register_code,
)
from repro.analysis.maintain import (
    IncrementalSupport,
    MaintainBlocker,
    check_maintainable,
    classify_incremental,
)
from repro.analysis.plans import (
    BLOWUP_THRESHOLD,
    DOMINANCE_RATIO,
    analyze_plan,
)
from repro.analysis.fixes import FixResult, fix_query
from repro.analysis.queries import SELECTIVITY_RATIO, analyze_query
from repro.analysis.views import (
    DEFAULT_ADVISED_BOUND,
    advise_covering_view,
    analyze_views,
)
from repro.errors import NotControlledError
from repro.logic.cq import ConjunctiveQuery

if TYPE_CHECKING:
    from repro.api.engine import Engine, PreparedQuery

__all__ = [
    "Severity",
    "Diagnostic",
    "Report",
    "CodeInfo",
    "CODES",
    "register_code",
    "diagnostic",
    "analyze_query",
    "analyze_access",
    "analyze_plan",
    "analyze_views",
    "advise_covering_view",
    "advise_views",
    "advice_report",
    "ViewAdvice",
    "analyze_prepared",
    "analyze_engine",
    "workload_report",
    "workload_advice",
    "certify_plan",
    "certify_plans",
    "check_plan",
    "estimate_plan",
    "certify_selection",
    "check_selection",
    "CostEstimate",
    "CostStats",
    "classify_incremental",
    "check_maintainable",
    "IncrementalSupport",
    "MaintainBlocker",
    "binding_flow",
    "explain_uncontrolled",
    "advise_missing_rule",
    "BindingFlow",
    "AtomAdornment",
    "fix_query",
    "FixResult",
    "ABSURD_BOUND",
    "BLOWUP_THRESHOLD",
    "DOMINANCE_RATIO",
    "SELECTIVITY_RATIO",
    "DEFAULT_ADVISED_BOUND",
    "ADVISED_RULE_BOUND",
    "EXPENSIVE_COST",
    "MAX_VIEW_ATOMS",
]


def analyze_prepared(
    prepared: "PreparedQuery",
    parameters: Iterable[object] = (),
    *,
    source: str | None = None,
) -> Report:
    """Every applicable pass for one prepared query: the QRY passes, then
    -- when the query compiles under the engine's access schema (views
    included) -- the PLN passes on each plan, the INC
    incremental-maintainability classification, and a CST003 note for
    each plan the cost-based selector steered onto a view; when the
    query does not compile, the VIW003 covering-view advisor instead."""
    engine = prepared._engine
    parameters = tuple(parameters)
    report = analyze_query(
        prepared.query, engine.access, parameters, source=source
    )
    if isinstance(prepared.query, ConjunctiveQuery):
        disjuncts: tuple[ConjunctiveQuery, ...] = (prepared.query,)
    else:
        disjuncts = prepared.query.disjuncts
    try:
        plans = prepared.plan(parameters)
    except NotControlledError:
        for disjunct in disjuncts:
            report.extend(
                advise_covering_view(
                    disjunct, engine.access, parameters, source=source
                )
            )
        return report
    if not isinstance(plans, tuple):
        plans = (plans,)
    for plan in plans:
        report.extend(analyze_plan(plan, source=source))
    report.extend(classify_incremental(plans).report(source=source))
    # CST003: the selector picked a view-augmented plan although a base
    # plan exists -- worth a note (with the price comparison) because the
    # answers now depend on view freshness.
    from repro.core.plans import compile_plan

    for disjunct, plan in zip(disjuncts, plans):
        if not plan.view_relations:
            continue
        try:
            base = compile_plan(disjunct, engine.access, parameters)
        except NotControlledError:
            continue  # view-only: augmentation is the only plan
        stats = engine.cost_stats
        chosen = estimate_plan(plan, stats)
        rejected = estimate_plan(base, stats)
        views = ", ".join(sorted(plan.view_relations))
        report.add(
            diagnostic(
                "CST003",
                f"cost-based selection reads view(s) {views}: estimated "
                f"cost {chosen.total:g} beats the base plan's "
                f"{rejected.total:g}; answers now track view freshness",
                source=source,
            )
        )
    return report


def analyze_engine(
    engine: "Engine",
    queries: Iterable[object] = (),
    *,
    source: str | None = None,
) -> Report:
    """The whole-engine report: the ACC passes over the access schema,
    the VIW passes over the registered views (VIW001 only when
    ``queries`` describe the workload), and :func:`analyze_prepared` per
    query.

    Each element of ``queries`` is query text, a query object, a
    ``PreparedQuery``, or a ``(query, parameters)`` pair.
    """
    report = analyze_access(engine.access, source=source)
    prepared_queries: list[tuple["PreparedQuery", tuple]] = []
    for entry in queries:
        params: tuple = ()
        if isinstance(entry, tuple):
            entry, params = entry
            params = tuple(params)
        prepared = entry if hasattr(entry, "diagnostics") else engine.query(entry)
        prepared_queries.append((prepared, params))
    report.extend(
        analyze_views(
            engine.views.definitions(),
            tuple(p.query for p, _ in prepared_queries),
            source=source,
        )
    )
    for prepared, params in prepared_queries:
        report.extend(analyze_prepared(prepared, params, source=source))
    return report


def workload_report(*, certify: bool | None = None) -> Report:
    """The repo's own gate: analyze the Q1-Q5 workload bundles (views
    V1/V2 registered, so Q4/Q5 compile) plus the social access schema
    and the view registry.  CI runs this via ``python -m repro.analysis
    --workload --strict --certify`` and fails on any warning; with
    ``certify`` the engine additionally gates every compiled plan (base
    and view-augmented) on the :mod:`repro.analysis.certify` certifier."""
    from repro.workloads import (
        RUNNING_QUERIES,
        VIEW_QUERIES,
        register_workload_views,
    )

    report = Report()
    bundles = RUNNING_QUERIES + VIEW_QUERIES
    engine = bundles[0].engine(certify=certify)
    register_workload_views(engine)
    report.extend(analyze_access(engine.access, source="social"))
    prepared = {b.name: b.prepare(engine) for b in bundles}
    report.extend(
        analyze_views(
            engine.views.definitions(),
            tuple(p.query for p in prepared.values()),
            source="views",
        )
    )
    for bundle in bundles:
        report.extend(
            analyze_prepared(
                prepared[bundle.name], bundle.parameters, source=bundle.name
            )
        )
    return report


def workload_advice(
    *, persons: int = 400, seed: int = 0
) -> tuple[tuple[ViewAdvice, ...], Report]:
    """The advisor's run over the Q1-Q5 bundles: seed a social instance,
    refresh cost statistics from it, and advise with *no* workload views
    registered -- so Q4/Q5 are uncontrolled and yield multi-atom
    proposals, and any expensive controlled bundle yields cost cuts.
    Returns the ranked advice plus its VIW004/VIW005 report (the
    ``python -m repro.analysis --workload --advise`` payload)."""
    from repro.workloads import (
        RUNNING_QUERIES,
        VIEW_QUERIES,
        generate_social_network,
    )

    bundles = RUNNING_QUERIES + VIEW_QUERIES
    engine = bundles[0].engine(generate_social_network(persons, seed=seed))
    engine.refresh_cost_stats()
    entries = [(b.query, b.parameters, b.name) for b in bundles]
    advices = advise_views(engine, entries)
    return advices, advice_report(advices)

"""Static analysis and diagnostics for the scale-independence pipeline.

The paper's premise (Sections 3-4, 6) is that query cost and
controllability are *statically* decidable from the query, the access
rules and the view definitions.  This package turns that theory into
compiler-style tooling: a diagnostic framework
(:mod:`repro.analysis.diagnostics` -- stable codes, severities, 1-based
source spans threaded from the tokenizer through the AST) plus one pass
family per analyzable object:

* :func:`analyze_query` (QRY001-QRY007) -- single-use variables,
  cartesian products, parameters equated away, duplicate atoms,
  mismatched union selectivity, unsatisfiability, and the
  binding-pattern uncontrollability trace;
* :func:`analyze_access` (ACC001-ACC005) -- ruleless relations,
  shadowed rules, absurd bounds, duplicates, plus the ACC005
  missing-rule proposal riding along with QRY007;
* :func:`analyze_plan` (PLN001-PLN003) -- fanout-bound blowups with the
  multiplicative per-level breakdown, probe-after-embedded-fetch fusion
  opportunities, dominant steps;
* :func:`analyze_views` / :func:`advise_covering_view`
  (VIW001-VIW003) -- unmatched and overlapping views, and concrete
  covering-view proposals for uncontrolled queries;
* :func:`certify_plan` / :func:`check_plan` (CRT001-CRT007,
  :mod:`repro.analysis.certify`) -- translation validation: re-derive a
  compiled plan's binding coverage, rule membership, head projection and
  fanout arithmetic independently of the planner (``Engine(certify=True)``
  / ``REPRO_CERTIFY=1`` gates every compilation on it);
* :mod:`repro.analysis.dataflow` -- the Datalog-adornment pass behind
  QRY007/ACC005 and the trace ``NotControlledError`` carries;
* :mod:`repro.analysis.fixes` -- certified ``--fix`` rewrites for
  QRY003/QRY004, each verified by homomorphic equivalence before
  anything is written.

Three surfaces:

* the API -- ``engine.analyze(queries)`` /
  ``prepared.diagnostics(parameters)`` (thin wrappers over
  :func:`analyze_engine` / :func:`analyze_prepared`);
* the CLI -- ``python -m repro.analysis`` lints query files against an
  optional schema/access pair and exits nonzero at the chosen severity
  floor (``--strict`` fails on warnings);
* CI -- the workflow runs ``python -m repro.analysis --workload
  --strict`` so the Q1-Q5 bundles (:func:`workload_report`) stay
  diagnostic-clean at warning level.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.analysis.access import ABSURD_BOUND, analyze_access
from repro.analysis.certify import certify_plan, certify_plans, check_plan
from repro.analysis.dataflow import (
    ADVISED_RULE_BOUND,
    AtomAdornment,
    BindingFlow,
    advise_missing_rule,
    binding_flow,
    explain_uncontrolled,
)
from repro.analysis.diagnostics import (
    CODES,
    CodeInfo,
    Diagnostic,
    Report,
    Severity,
    diagnostic,
    register_code,
)
from repro.analysis.plans import (
    BLOWUP_THRESHOLD,
    DOMINANCE_RATIO,
    analyze_plan,
)
from repro.analysis.fixes import FixResult, fix_query
from repro.analysis.queries import SELECTIVITY_RATIO, analyze_query
from repro.analysis.views import (
    DEFAULT_ADVISED_BOUND,
    advise_covering_view,
    analyze_views,
)
from repro.errors import NotControlledError
from repro.logic.cq import ConjunctiveQuery

if TYPE_CHECKING:
    from repro.api.engine import Engine, PreparedQuery

__all__ = [
    "Severity",
    "Diagnostic",
    "Report",
    "CodeInfo",
    "CODES",
    "register_code",
    "diagnostic",
    "analyze_query",
    "analyze_access",
    "analyze_plan",
    "analyze_views",
    "advise_covering_view",
    "analyze_prepared",
    "analyze_engine",
    "workload_report",
    "certify_plan",
    "certify_plans",
    "check_plan",
    "binding_flow",
    "explain_uncontrolled",
    "advise_missing_rule",
    "BindingFlow",
    "AtomAdornment",
    "fix_query",
    "FixResult",
    "ABSURD_BOUND",
    "BLOWUP_THRESHOLD",
    "DOMINANCE_RATIO",
    "SELECTIVITY_RATIO",
    "DEFAULT_ADVISED_BOUND",
    "ADVISED_RULE_BOUND",
]


def analyze_prepared(
    prepared: "PreparedQuery",
    parameters: Iterable[object] = (),
    *,
    source: str | None = None,
) -> Report:
    """Every applicable pass for one prepared query: the QRY passes, then
    -- when the query compiles under the engine's access schema (views
    included) -- the PLN passes on each plan; when it does not compile,
    the VIW003 covering-view advisor instead."""
    engine = prepared._engine
    parameters = tuple(parameters)
    report = analyze_query(
        prepared.query, engine.access, parameters, source=source
    )
    try:
        plans = prepared.plan(parameters)
    except NotControlledError:
        if isinstance(prepared.query, ConjunctiveQuery):
            disjuncts: tuple[ConjunctiveQuery, ...] = (prepared.query,)
        else:
            disjuncts = prepared.query.disjuncts
        for disjunct in disjuncts:
            report.extend(
                advise_covering_view(
                    disjunct, engine.access, parameters, source=source
                )
            )
        return report
    if not isinstance(plans, tuple):
        plans = (plans,)
    for plan in plans:
        report.extend(analyze_plan(plan, source=source))
    return report


def analyze_engine(
    engine: "Engine",
    queries: Iterable[object] = (),
    *,
    source: str | None = None,
) -> Report:
    """The whole-engine report: the ACC passes over the access schema,
    the VIW passes over the registered views (VIW001 only when
    ``queries`` describe the workload), and :func:`analyze_prepared` per
    query.

    Each element of ``queries`` is query text, a query object, a
    ``PreparedQuery``, or a ``(query, parameters)`` pair.
    """
    report = analyze_access(engine.access, source=source)
    prepared_queries: list[tuple["PreparedQuery", tuple]] = []
    for entry in queries:
        params: tuple = ()
        if isinstance(entry, tuple):
            entry, params = entry
            params = tuple(params)
        prepared = entry if hasattr(entry, "diagnostics") else engine.query(entry)
        prepared_queries.append((prepared, params))
    report.extend(
        analyze_views(
            engine.views.definitions(),
            tuple(p.query for p, _ in prepared_queries),
            source=source,
        )
    )
    for prepared, params in prepared_queries:
        report.extend(analyze_prepared(prepared, params, source=source))
    return report


def workload_report(*, certify: bool | None = None) -> Report:
    """The repo's own gate: analyze the Q1-Q5 workload bundles (views
    V1/V2 registered, so Q4/Q5 compile) plus the social access schema
    and the view registry.  CI runs this via ``python -m repro.analysis
    --workload --strict --certify`` and fails on any warning; with
    ``certify`` the engine additionally gates every compiled plan (base
    and view-augmented) on the :mod:`repro.analysis.certify` certifier."""
    from repro.workloads import (
        RUNNING_QUERIES,
        VIEW_QUERIES,
        register_workload_views,
    )

    report = Report()
    bundles = RUNNING_QUERIES + VIEW_QUERIES
    engine = bundles[0].engine(certify=certify)
    register_workload_views(engine)
    report.extend(analyze_access(engine.access, source="social"))
    prepared = {b.name: b.prepare(engine) for b in bundles}
    report.extend(
        analyze_views(
            engine.views.definitions(),
            tuple(p.query for p in prepared.values()),
            source="views",
        )
    )
    for bundle in bundles:
        report.extend(
            analyze_prepared(
                prepared[bundle.name], bundle.parameters, source=bundle.name
            )
        )
    return report

"""Static analysis of access schemas: the ACC pass family.

The access schema is the paper's contract with the deployment -- every
scale-independent plan is built from its rules, so a dead, shadowed or
untruthful rule silently changes what is answerable.  :func:`analyze_access`
checks:

* **ACC001** (hint) -- a relation with no access rules at all: no plan
  can ever fetch it, so every query over it needs the relation fully
  bound by other atoms or is simply not controlled.
* **ACC002** (warning) -- a rule *shadowed* by a strictly cheaper one:
  whenever the shadowed rule is applicable the other rule is too, binds
  at least as much, verifies at least as much, and touches no more
  tuples -- the planner (which scores by ``(bound, -inputs)``) never has
  a reason to prefer the shadowed rule.
* **ACC003** (warning) -- a cardinality bound of
  :data:`ABSURD_BOUND` or more: technically still "bounded", but a
  promise that large certifies nothing a deployment would call scale
  independent.
* **ACC004** (warning) -- the same rule declared twice (the registry
  keeps both; the duplicate is dead weight).
"""

from __future__ import annotations

from repro.analysis.diagnostics import Report, diagnostic
from repro.core.access_schema import AccessRule, AccessSchema

#: ACC003 fires at this bound: a rule promising a million tuples per
#: access is indistinguishable from an unbounded scan in practice.
ABSURD_BOUND = 1_000_000


def analyze_access(access: AccessSchema, *, source: str | None = None) -> Report:
    """Run the ACC passes over ``access`` and return the :class:`Report`."""
    report = Report()
    for name in access.schema.names:
        rules = access.rules_for(name)
        if not rules:
            report.add(
                diagnostic(
                    "ACC001",
                    f"relation {name!r} has no access rules: no plan can "
                    f"fetch it, so queries over it are only controlled "
                    f"when every position is bound elsewhere",
                    source=source,
                )
            )
            continue
        rel = access.schema.relation(name)
        for i, rule in enumerate(rules):
            if rule.bound >= ABSURD_BOUND:
                report.add(
                    diagnostic(
                        "ACC003",
                        f"rule {rule} promises up to {rule.bound} tuples "
                        f"per access: a bound that large certifies no "
                        f"practical scale independence -- tighten it or "
                        f"drop the rule",
                        source=source,
                    )
                )
            for other in rules[i + 1 :]:
                if other == rule:
                    report.add(
                        diagnostic(
                            "ACC004",
                            f"rule {rule} is declared more than once; the "
                            f"duplicate is dead weight",
                            source=source,
                        )
                    )
        for rule in rules:
            shadow = next(
                (
                    other
                    for other in rules
                    if other != rule and _shadows(other, rule, rel)
                ),
                None,
            )
            if shadow is not None:
                report.add(
                    diagnostic(
                        "ACC002",
                        f"rule {rule} is shadowed by {shadow}: whenever it "
                        f"applies, {shadow} applies too, binds at least as "
                        f"much and touches no more tuples, so no plan "
                        f"prefers the shadowed rule -- remove it",
                        source=source,
                    )
                )
    return report


def _shadows(better: AccessRule, worse: AccessRule, rel) -> bool:
    """Whether ``better`` makes ``worse`` dead: applicable whenever
    ``worse`` is (inputs are a subset), binding at least as much (bound
    attributes are a superset), verifying at least as much, for no more
    accesses.  Ties in every dimension are ACC004's business, not ours
    (rule inequality is checked by the caller)."""
    return (
        set(better.inputs) <= set(worse.inputs)
        and set(better.bound_attributes(rel)) >= set(worse.bound_attributes(rel))
        and (better.verifies_atom or not worse.verifies_atom)
        and better.bound <= worse.bound
    )

"""Plan certification: translation validation for the planner.

The paper's guarantee -- a compiled plan touches at most
:attr:`~repro.core.plans.Plan.fanout_bound` tuples regardless of database
size -- is only as good as the planner that produced the plan.
:func:`certify_plan` removes the planner from the trusted base: given the
``(plan, access schema, views)`` triple it re-derives, step by step and
without consulting the planner's own bookkeeping,

* that every :class:`~repro.core.plans.FetchStep` keys only on positions
  already bound by the parameters, query constants or earlier steps, and
  that its claimed ``binds`` are exactly what its rule can deliver
  (**CRT001**);
* that every :class:`~repro.core.plans.ProbeStep` atom is fully bound at
  its position in the sequence (**CRT002**);
* that every fetch rule is actually declared by the access schema (or the
  view definition) for its relation, with matching input and output
  attribute positions (**CRT003**);
* that the plan's ``head_terms`` agree with the query head under its
  equalities and end up bound (**CRT004**);
* that relations marked as views are registered views (**CRT005**);
* that the fanout arithmetic -- recomputed from scratch -- equals
  ``plan.fanout_bound`` and ``plan.step_costs()`` exactly (**CRT006**),
  and that the weighted ``plan.cost_estimate`` the optimizer selects on
  equals the re-derived figure (**CST002**);
* that the steps witness every body atom, and nothing else, and that the
  plan's satisfiability marker agrees with the query's equalities
  (**CRT007**).

All CRT codes are errors: a finding means the plan is not a faithful
compilation of its query.  :func:`check_plan` is the gating form -- it
raises :class:`~repro.errors.CertificationError` carrying the report.
The engine runs it after every compilation when constructed with
``Engine(certify=True)`` or under ``REPRO_CERTIFY=1`` (the test suite
turns this on for every engine via a conftest fixture), inside the plan
cache's single-flight compute so each cached plan is certified exactly
once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.analysis.cost import COST_TOLERANCE, PROBE_COST
from repro.analysis.diagnostics import Report, Severity, diagnostic
from repro.core.access_schema import AccessRule, AccessSchema
from repro.core.controllability import _is_bound
from repro.core.plans import FetchStep, Plan, ProbeStep
from repro.errors import CertificationError
from repro.logic.terms import Constant, Variable
from repro.relational.schema import RelationSchema

if TYPE_CHECKING:
    from repro.views import ViewDef


def _view_defs(views: object) -> "tuple[ViewDef, ...]":
    """Normalize ``views``: an iterable of ``ViewDef``, a ``ViewCatalog``
    or a ``ViewSet`` (anything with ``definitions()``), or None."""
    if views is None:
        return ()
    definitions = getattr(views, "definitions", None)
    if callable(definitions):
        return tuple(definitions())
    return tuple(views)  # type: ignore[arg-type]


def certify_plan(
    plan: Plan,
    access: AccessSchema,
    views: object = (),
    *,
    source: str | None = None,
) -> Report:
    """Independently re-check ``plan`` against ``access`` and the
    registered ``views`` and return the :class:`Report` of CRT findings
    (empty when the plan certifies clean)."""
    report = Report()
    defs = {v.name: v for v in _view_defs(views)}
    query = plan.query

    def emit(code: str, message: str) -> None:
        report.add(diagnostic(code, message, source=source))

    for name in sorted(plan.view_relations):
        if name not in defs:
            registered = ", ".join(sorted(defs)) or "none"
            emit(
                "CRT005",
                f"plan reads view relation {name!r}, which is not a "
                f"registered view (registered: {registered})",
            )

    def rel_schema(relation: str) -> RelationSchema | None:
        if relation in plan.view_relations and relation in defs:
            return defs[relation].relation
        if relation in access.schema:
            return access.schema.relation(relation)
        return None

    def rules_for(relation: str) -> tuple[AccessRule, ...]:
        if relation in plan.view_relations and relation in defs:
            return tuple(defs[relation].rules)
        if relation in access.schema:
            return access.rules_for(relation)
        return ()

    subst = query.equality_substitution()
    if len(plan.head_terms) != query.arity:
        emit(
            "CRT004",
            f"plan projects {len(plan.head_terms)} head terms but the "
            f"query head has arity {query.arity}",
        )

    if subst is None:
        # The equalities are contradictory: the only faithful plan is the
        # empty unsatisfiable one with a zero bound.
        if plan.satisfiable or plan.steps:
            emit(
                "CRT007",
                f"query {query} is unsatisfiable (contradictory "
                f"equalities) but the plan claims satisfiable="
                f"{plan.satisfiable} with {len(plan.steps)} steps",
            )
        if plan.fanout_bound != 0:
            emit(
                "CRT006",
                f"unsatisfiable plan must have fanout bound 0, plan "
                f"claims {plan.fanout_bound}",
            )
        if plan.cost_estimate != 0.0:
            emit(
                "CST002",
                f"unsatisfiable plan must have cost estimate 0, plan "
                f"claims {plan.cost_estimate:g}",
            )
        return report
    if not plan.satisfiable:
        emit(
            "CRT007",
            f"plan claims the query is unsatisfiable, but the equalities "
            f"of {query} are satisfiable",
        )
        return report

    expected_atoms = {a.substitute(subst) for a in query.body}
    query_vars = set(query.variables())

    bound: set[Variable] = set()
    for v in plan.parameters:
        if v not in query_vars:
            emit(
                "CRT001",
                f"plan parameter ?{v} does not occur in the query, so it "
                f"cannot legitimately seed any binding",
            )
            continue
        rep = subst.get(v, v)
        if isinstance(rep, Variable):
            bound.add(rep)

    witnessed = set()
    branches = 1
    accesses = 0
    weighted = 0.0
    expected_costs: list[tuple[int, int, int]] = []
    for idx, step in enumerate(plan.steps, 1):
        atom = step.atom
        rel = rel_schema(atom.relation)
        if rel is None:
            emit(
                "CRT005",
                f"step {idx} reads relation {atom.relation!r}, which is "
                f"neither a base relation nor a registered view",
            )
            if isinstance(step, FetchStep):
                bound.update(step.binds)
            continue
        if atom not in expected_atoms:
            emit(
                "CRT007",
                f"step {idx} accesses {atom}, which is not a body atom "
                f"of the query (after resolving equalities)",
            )
        if isinstance(step, ProbeStep):
            free = [t for t in atom.terms if not _is_bound(t, bound)]
            if free:
                names = ", ".join(f"?{t}" for t in free)
                emit(
                    "CRT002",
                    f"step {idx} probes {atom} before {names} "
                    f"{'is' if len(free) == 1 else 'are'} bound: a probe "
                    f"needs every position bound",
                )
            witnessed.add(atom)
            expected_costs.append((branches, branches, branches))
            accesses += branches
            weighted += branches * PROBE_COST
            continue
        rule = step.rule
        declared = rules_for(atom.relation)
        if rule.relation != atom.relation or rule not in declared:
            emit(
                "CRT003",
                f"step {idx} fetches {atom} via {rule}, which is not an "
                f"access rule declared for {atom.relation!r}",
            )
        else:
            in_pos = rel.positions(rule.inputs)
            out_pos = rel.positions(rule.bound_attributes(rel))
            if (
                tuple(step.input_positions) != tuple(in_pos)
                or tuple(step.output_positions) != tuple(out_pos)
            ):
                emit(
                    "CRT003",
                    f"step {idx} claims input positions "
                    f"{tuple(step.input_positions)} and output positions "
                    f"{tuple(step.output_positions)} for {rule}, but the "
                    f"rule's attributes sit at {tuple(in_pos)} -> "
                    f"{tuple(out_pos)}",
                )
        unbound_inputs = [
            atom.terms[p]
            for p in step.input_positions
            if p < len(atom.terms) and not _is_bound(atom.terms[p], bound)
        ]
        if unbound_inputs:
            names = ", ".join(f"?{t}" for t in unbound_inputs)
            emit(
                "CRT001",
                f"step {idx} fetches {atom} keyed on unbound "
                f"{'variable' if len(unbound_inputs) == 1 else 'variables'} "
                f"{names}: inputs must be parameters, constants or bound "
                f"by earlier steps",
            )
        derivable = tuple(
            dict.fromkeys(
                atom.terms[p]
                for p in step.output_positions
                if p < len(atom.terms)
                and isinstance(atom.terms[p], Variable)
                and atom.terms[p] not in bound
            )
        )
        if set(step.binds) != set(derivable):
            claimed = ", ".join(f"?{v}" for v in step.binds) or "nothing"
            can = ", ".join(f"?{v}" for v in derivable) or "nothing"
            emit(
                "CRT001",
                f"step {idx} claims to bind {claimed} but fetching {atom} "
                f"via {rule} at this point can only bind {can}",
            )
        # Continue with the union of claim and re-derivation so one bad
        # step does not cascade into spurious findings downstream.
        bound.update(step.binds)
        bound.update(v for v in derivable if isinstance(v, Variable))
        if rule.verifies_atom:
            witnessed.add(atom)
        fanned = branches * rule.bound
        expected_costs.append((branches, fanned, fanned))
        accesses += fanned
        weighted += fanned * rule.cost
        branches = fanned

    for atom in sorted(expected_atoms - witnessed, key=str):
        emit(
            "CRT007",
            f"body atom {atom} is never witnessed: no verifying fetch or "
            f"probe covers it, so the plan can return rows the query "
            f"does not",
        )

    expected_head = tuple(subst.get(v, v) for v in query.head)
    if plan.head_terms != expected_head:
        emit(
            "CRT004",
            f"plan head terms ({', '.join(map(str, plan.head_terms))}) "
            f"disagree with the query head under its equalities "
            f"({', '.join(map(str, expected_head))})",
        )
    for term in plan.head_terms:
        if isinstance(term, Variable) and term not in bound:
            emit(
                "CRT004",
                f"head term ?{term} is never bound by the plan's steps, "
                f"so the projection is undefined",
            )

    if plan.fanout_bound != accesses:
        emit(
            "CRT006",
            f"plan claims fanout bound {plan.fanout_bound} but re-deriving "
            f"the arithmetic from its steps and rule bounds gives "
            f"{accesses}",
        )
    actual_costs = tuple(
        (c.branches_in, c.accesses, c.branches_out) for c in plan.step_costs()
    )
    if actual_costs != tuple(expected_costs):
        emit(
            "CRT006",
            f"plan.step_costs() reports {actual_costs} but re-deriving "
            f"the per-step arithmetic gives {tuple(expected_costs)}",
        )
    claimed_cost = plan.cost_estimate
    if abs(claimed_cost - weighted) > COST_TOLERANCE * max(
        1.0, abs(weighted)
    ):
        emit(
            "CST002",
            f"plan claims cost estimate {claimed_cost:g} but re-deriving "
            f"the weighted step costs from its rules gives {weighted:g}",
        )
    return report


def certify_plans(
    plans: Iterable[Plan],
    access: AccessSchema,
    views: object = (),
    *,
    source: str | None = None,
) -> Report:
    """:func:`certify_plan` over several plans (e.g. a union's disjunct
    plans), merged into one report."""
    report = Report()
    for plan in plans:
        report.extend(certify_plan(plan, access, views, source=source))
    return report


def check_plan(
    plan: Plan,
    access: AccessSchema,
    views: object = (),
    *,
    source: str | None = None,
) -> Plan:
    """The gating form of :func:`certify_plan`: return ``plan`` unchanged
    when it certifies clean, raise
    :class:`~repro.errors.CertificationError` (carrying the report)
    otherwise."""
    report = certify_plan(plan, access, views, source=source)
    if not report.ok(Severity.ERROR):
        raise CertificationError(
            f"plan for {plan.query} failed certification:\n"
            + report.render(),
            report,
        )
    return plan

"""The static cost model behind cost-based plan selection (CST codes).

:func:`estimate_plan` prices a compiled plan from the same fanout
arithmetic the certifier re-derives: walking the left-deep steps, every
fetch multiplies the open branches by its per-branch fanout and charges
that many accesses weighted by the rule's per-lookup ``cost``; every
probe charges one unit per branch.  With no statistics the per-branch
fanout is the rule's declared bound, so the total over unit-cost rules
is exactly :attr:`~repro.core.plans.Plan.fanout_bound` -- the figure
:attr:`~repro.core.plans.Plan.cost_estimate` memoizes.

:class:`CostStats` adds the profile-guided refinement, still with zero
query execution: observed per-relation cardinalities and per-position
group fanouts (collected through the backend's *unaccounted* iteration
primitives, so collection never perturbs the scale-independence
accounting) tighten each fetch's fanout to
``min(declared bound, observed max group, |R|)``.  Statistics never
*raise* an estimate -- the declared bound stays the ceiling -- so a
refined estimate is a valid lower envelope of the static one and plans
remain certified against their declared bounds.

:func:`check_selection` is the optimizer's own must-fail check: after
:class:`~repro.api.engine.Engine` picks the cheapest of {base plan,
view-augmented plan}, the chosen estimate must not exceed the best
rejected one (CST001).  Like the CRT codes, a CST001 firing means the
selection logic and an independent comparison disagree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.analysis.diagnostics import Report, diagnostic
from repro.core.plans import FetchStep, Plan, Step
from repro.errors import CertificationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.instance import Database

#: Per-branch unit charge of a probe step.
PROBE_COST = 1.0

#: Relative tolerance for comparing re-derived against annotated costs
#: (floating-point weighted sums).
COST_TOLERANCE = 1e-9

#: Relations larger than this are priced by cardinality only --
#: :meth:`CostStats.from_database` skips the per-position fanout
#: measurement to keep stats collection cheap on out-of-core stores.
MAX_PROFILED_ROWS = 250_000


@dataclass(frozen=True)
class StepEstimate:
    """One step's contribution to a :class:`CostEstimate`.

    Mirrors :class:`~repro.core.plans.StepCost` but carries the weighted
    ``cost`` and whether observed statistics tightened the fanout below
    the rule's declared bound (``refined``).
    """

    step: Step
    branches_in: int
    accesses: int
    branches_out: int
    cost: float
    refined: bool = False


@dataclass(frozen=True)
class CostEstimate:
    """The priced plan: per-step estimates and their weighted ``total``."""

    plan: Plan
    total: float
    accesses: int
    steps: tuple[StepEstimate, ...] = ()
    refined: bool = False

    def explain(self) -> str:
        """A per-step rendering of where the cost goes."""
        lines = []
        for i, est in enumerate(self.steps, 1):
            mark = " (refined)" if est.refined else ""
            lines.append(
                f"{i}. {est.step}  [<= {est.accesses} tuples, "
                f"cost {est.cost:g}{mark}]"
            )
        lines.append(f"total cost: {self.total:g} ({self.accesses} accesses)")
        return "\n".join(lines)


@dataclass(frozen=True)
class CostStats:
    """Observed database statistics for profile-guided cost refinement.

    ``relation_sizes`` maps relation name to cardinality;  ``fanouts``
    maps ``(relation, (position,))`` to the largest group of tuples
    sharing a value at that position -- the tightest data-dependent bound
    on what a single-key fetch can return.  Both are snapshots: the
    engine versions them into its plan-cache key, so refreshing stats
    invalidates cached plan choices rather than silently drifting.
    """

    relation_sizes: Mapping[str, int] = field(default_factory=dict)
    fanouts: Mapping[tuple[str, tuple[int, ...]], int] = field(
        default_factory=dict
    )

    @classmethod
    def from_database(
        cls, db: "Database", *, max_profiled_rows: int = MAX_PROFILED_ROWS
    ) -> "CostStats":
        """Collect statistics from ``db`` through unaccounted backend
        primitives (``count`` / ``iter_rows``): relation cardinalities
        always, per-position max group fanouts for relations up to
        ``max_profiled_rows`` tuples."""
        sizes: dict[str, int] = {}
        fanouts: dict[tuple[str, tuple[int, ...]], int] = {}
        backend = db.backend
        for name in db.schema.names:
            size = backend.count(name)
            sizes[name] = size
            arity = db.schema.relation(name).arity
            if size == 0 or size > max_profiled_rows:
                continue
            groups: list[dict[object, int]] = [{} for _ in range(arity)]
            for row in backend.iter_rows(name):
                for position, value in enumerate(row):
                    counts = groups[position]
                    counts[value] = counts.get(value, 0) + 1
            for position, counts in enumerate(groups):
                fanouts[(name, (position,))] = max(counts.values(), default=0)
        return cls(sizes, fanouts)

    def size(self, relation: str) -> int | None:
        return self.relation_sizes.get(relation)

    def fanout(self, relation: str, positions: tuple[int, ...]) -> int | None:
        """The observed max group size for a lookup keyed on
        ``positions`` -- the minimum over the measured single-position
        fanouts (keying on more positions only shrinks groups), falling
        back to the relation's cardinality for keyless (full) access."""
        candidates = [
            self.fanouts[(relation, (p,))]
            for p in positions
            if (relation, (p,)) in self.fanouts
        ]
        size = self.relation_sizes.get(relation)
        if size is not None:
            candidates.append(size)
        return min(candidates) if candidates else None


def estimate_plan(plan: Plan, stats: CostStats | None = None) -> CostEstimate:
    """Price ``plan`` by re-deriving its step arithmetic independently of
    the plan's own memoized annotations.

    Without ``stats`` the result's ``total`` equals
    :attr:`Plan.cost_estimate` and its ``accesses`` equals
    :attr:`Plan.fanout_bound` -- the property CST002 certifies.  With
    ``stats``, fetch fanouts against *base* relations are tightened by
    the observed figures (view relations keep their declared bounds:
    view stores are maintained to those bounds, not profiled)."""
    if not plan.satisfiable:
        return CostEstimate(plan, 0.0, 0, (), refined=False)
    steps: list[StepEstimate] = []
    branches = 1
    accesses = 0
    total = 0.0
    any_refined = False
    for step in plan.steps:
        if not isinstance(step, FetchStep):
            cost = branches * PROBE_COST
            steps.append(StepEstimate(step, branches, branches, branches, cost))
            accesses += branches
            total += cost
            continue
        fanout = step.rule.bound
        refined = False
        if stats is not None and step.atom.relation not in plan.view_relations:
            observed = stats.fanout(step.atom.relation, step.input_positions)
            if observed is not None and observed < fanout:
                fanout = observed
                refined = True
        fanned = branches * fanout
        cost = fanned * step.rule.cost
        steps.append(
            StepEstimate(step, branches, fanned, fanned, cost, refined)
        )
        accesses += fanned
        total += cost
        branches = fanned
        any_refined = any_refined or refined
    return CostEstimate(plan, total, accesses, tuple(steps), refined=any_refined)


def certify_selection(
    chosen: CostEstimate,
    rejected: Iterable[CostEstimate],
    *,
    source: str | None = None,
) -> Report:
    """The CST001 self-check: the chosen plan's estimate must not exceed
    any rejected candidate's (beyond floating-point tolerance).  The
    engine runs this after every cost-based choice; a finding means the
    selection logic and this independent comparison disagree."""
    report = Report()
    best = min((est.total for est in rejected), default=None)
    if best is None:
        return report
    if chosen.total > best * (1.0 + COST_TOLERANCE) + COST_TOLERANCE:
        kind = "view-augmented" if chosen.plan.view_relations else "base"
        report.add(
            diagnostic(
                "CST001",
                f"cost-based selection kept the {kind} plan at cost "
                f"{chosen.total:g} although a rejected candidate costs "
                f"{best:g}",
                source=source,
            )
        )
    return report


def check_selection(
    chosen: CostEstimate,
    rejected: Iterable[CostEstimate],
    *,
    source: str | None = None,
) -> CostEstimate:
    """The gating form: return ``chosen``, or raise
    :class:`CertificationError` if :func:`certify_selection` finds a
    CST001 violation."""
    report = certify_selection(chosen, rejected, source=source)
    if not report.ok():
        raise CertificationError(
            "cost-based plan selection failed its self-check:\n"
            + report.render(),
            report,
        )
    return chosen


__all__ = [
    "PROBE_COST",
    "COST_TOLERANCE",
    "MAX_PROFILED_ROWS",
    "StepEstimate",
    "CostEstimate",
    "CostStats",
    "estimate_plan",
    "certify_selection",
    "check_selection",
]

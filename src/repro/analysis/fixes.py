"""Certified lint autofixes: the ``--fix`` rewrites.

Two of the QRY findings have rewrites that provably preserve the query's
meaning, and :func:`fix_query` applies them:

* **QRY004** (duplicate body atom) -- drop every repeated copy, keeping
  the first occurrence;
* **QRY003** (parameter equated to a constant) -- inline the constant
  into the body and drop the now-trivial equality, so the phantom
  parameter disappears (skipped when the parameter is a head variable,
  since heads must stay variables).

Every rewrite is *certified* before anything is written: the fixed query
is rendered, re-parsed (:func:`repro.logic.parser.parse_query`) and
checked homomorphically equivalent to the original, disjunct by disjunct
(:func:`repro.logic.homomorphism.are_equivalent`, Chandra--Merlin).  A
rewrite that fails any of those checks is discarded --
``FixResult.verified`` stays False and the CLI leaves the file alone.

``python -m repro.analysis FILE --fix`` applies verified rewrites in
place, printing a unified diff; ``--fix --dry-run`` prints the diff
only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ReproError
from repro.logic.ast import Atom, Equality, _as_variable
from repro.logic.cq import ConjunctiveQuery
from repro.logic.homomorphism import are_equivalent
from repro.logic.parser import parse_query
from repro.logic.terms import Constant, Variable
from repro.logic.ucq import UnionOfConjunctiveQueries
from repro.relational.schema import DatabaseSchema

Query = ConjunctiveQuery | UnionOfConjunctiveQueries


@dataclass(frozen=True)
class AppliedFix:
    """One applied rewrite: the diagnostic code it fixes and what it did."""

    code: str
    description: str

    def __str__(self) -> str:
        return f"{self.code}: {self.description}"


@dataclass(frozen=True)
class FixResult:
    """The outcome of :func:`fix_query`.

    ``fixed`` is the rewritten query (identical to ``original`` when no
    fix applied); ``verified`` is True iff the rewrite re-parsed and
    checked homomorphically equivalent to the original.  ``changed`` --
    the CLI's write condition -- requires both.
    """

    original: Query
    fixed: Query
    fixes: tuple[AppliedFix, ...]
    verified: bool

    @property
    def changed(self) -> bool:
        return bool(self.fixes) and self.verified


def _disjuncts(query: Query) -> tuple[ConjunctiveQuery, ...]:
    if isinstance(query, ConjunctiveQuery):
        return (query,)
    return query.disjuncts


def _fix_disjunct(
    cq: ConjunctiveQuery, params: tuple[Variable, ...]
) -> tuple[ConjunctiveQuery, tuple[AppliedFix, ...]]:
    fixes: list[AppliedFix] = []

    # QRY004: drop duplicate body atoms (the first copy stays, so head
    # safety cannot regress).
    body: list[Atom] = []
    seen: set[Atom] = set()
    for atom in cq.body:
        if atom in seen:
            fixes.append(
                AppliedFix("QRY004", f"dropped duplicate body atom {atom}")
            )
            continue
        seen.add(atom)
        body.append(atom)

    # QRY003: inline parameters the equalities pin to a constant.  Head
    # parameters are skipped: a constant cannot appear in a CQ head.
    equalities: list[Equality] = list(cq.equalities)
    subst = cq.equality_substitution()
    mapping: dict[Variable, Constant] = {}
    if subst:
        head = set(cq.head)
        for param in params:
            rep = subst.get(param)
            if isinstance(rep, Constant) and param not in head:
                mapping[param] = rep
                fixes.append(
                    AppliedFix(
                        "QRY003",
                        f"inlined parameter ?{param} as the constant {rep} "
                        f"its equalities pin it to",
                    )
                )
    if mapping:
        body = [a.substitute(mapping) for a in body]
        kept: list[Equality] = []
        for eq in equalities:
            eq = eq.substitute(mapping)
            if (
                isinstance(eq.left, Constant)
                and isinstance(eq.right, Constant)
                and eq.left == eq.right
            ):
                continue  # `7 = 7` after inlining: trivially true
            kept.append(eq)
        equalities = kept

    if not fixes:
        return cq, ()
    return ConjunctiveQuery(cq.head, body, equalities), tuple(fixes)


def verify_fix(
    original: Query,
    fixed: Query,
    *,
    schema: DatabaseSchema | None = None,
) -> bool:
    """Certify a rewrite: render ``fixed``, re-parse it (validating
    against ``schema`` when given), and check disjunct-wise homomorphic
    equivalence with ``original``."""
    try:
        reparsed = parse_query(str(fixed), schema=schema)
    except ReproError:
        return False
    first = _disjuncts(original)
    second = _disjuncts(reparsed)
    if len(first) != len(second):
        return False
    return all(are_equivalent(a, b) for a, b in zip(first, second))


def fix_query(
    query: Query,
    parameters: Iterable[object] = (),
    *,
    schema: DatabaseSchema | None = None,
) -> FixResult:
    """Apply the safe QRY003/QRY004 rewrites to ``query`` and certify the
    result (see the module docstring).  ``parameters`` are the declared
    execution-time parameters (QRY003 only fires for those)."""
    params = tuple(dict.fromkeys(_as_variable(p) for p in parameters))
    fixed_disjuncts: list[ConjunctiveQuery] = []
    fixes: list[AppliedFix] = []
    for disjunct in _disjuncts(query):
        usable = tuple(p for p in params if p in set(disjunct.variables()))
        fixed, applied = _fix_disjunct(disjunct, usable)
        fixed_disjuncts.append(fixed)
        fixes.extend(applied)
    if not fixes:
        return FixResult(query, query, (), True)
    if isinstance(query, ConjunctiveQuery):
        fixed_query: Query = fixed_disjuncts[0]
    else:
        fixed_query = UnionOfConjunctiveQueries(fixed_disjuncts)
    verified = verify_fix(query, fixed_query, schema=schema)
    return FixResult(query, fixed_query, tuple(fixes), verified)

"""Static analysis of registered views: the VIW pass family.

Views are the paper's Section 6 escape hatch -- and an easy place to
accumulate dead weight.  :func:`analyze_views` checks a registry against
a workload:

* **VIW001** (warning) -- a view whose body maps into no workload
  query's body (via :func:`~repro.logic.homomorphism.body_homomorphisms`,
  the exact matching test the rewriter uses): the view is materialized
  and maintained but can never contribute an implied atom to any of the
  given queries.
* **VIW002** (hint) -- two views with homomorphically equivalent bodies:
  they materialize overlapping answers; one registry entry, one
  maintenance stream and one set of access rules would do.

:func:`advise_covering_view` is the advisor seed (ROADMAP item 5): given
a query that is *not* controlled, it reruns the controllability fixpoint
(:func:`~repro.core.controllability.coverage`), finds a body atom with
bound inputs but unreachable variables, and proposes a concrete covering
view -- definition text plus access rule, modeled on the workload views
V1/V2 -- as a **VIW003** hint.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.diagnostics import Report, diagnostic
from repro.core.access_schema import AccessSchema
from repro.core.controllability import coverage
from repro.logic.ast import Atom, _as_variable
from repro.logic.cq import ConjunctiveQuery
from repro.logic.homomorphism import body_homomorphisms
from repro.logic.terms import Variable
from repro.logic.ucq import UnionOfConjunctiveQueries
from repro.views import ViewDef

Query = ConjunctiveQuery | UnionOfConjunctiveQueries

#: The cardinality bound VIW003 proposes for an advised view's access
#: rule -- the same in-degree promise the workload views V1/V2 declare.
DEFAULT_ADVISED_BOUND = 64


def _bodies(query: Query) -> tuple[tuple[Atom, ...], ...]:
    if isinstance(query, UnionOfConjunctiveQueries):
        return tuple(
            d.normalized_body() or d.body for d in query.disjuncts
        )
    return (query.normalized_body() or query.body,)


def analyze_views(
    views: Iterable[ViewDef],
    queries: Iterable[Query] = (),
    *,
    source: str | None = None,
) -> Report:
    """Run VIW001/VIW002 over ``views`` (against the workload ``queries``
    for VIW001; with no queries given, only the overlap check runs)."""
    report = Report()
    views = tuple(views)
    query_bodies = [body for q in queries for body in _bodies(q)]
    if query_bodies:
        for view in views:
            body = view.query.normalized_body() or view.query.body
            matched = any(
                next(body_homomorphisms(body, target), None) is not None
                for target in query_bodies
            )
            if not matched:
                report.add(
                    diagnostic(
                        "VIW001",
                        f"view {view.name!r} ({view}) matches none of the "
                        f"{len(query_bodies)} workload quer"
                        f"{'y' if len(query_bodies) == 1 else 'ies'}: its "
                        f"body maps into no query body, so the rewriter "
                        f"can never use it -- drop the view or revisit "
                        f"the workload",
                        source=source,
                    )
                )
    for i, view in enumerate(views):
        vbody = view.query.normalized_body() or view.query.body
        for other in views[i + 1 :]:
            obody = other.query.normalized_body() or other.query.body
            forward = next(body_homomorphisms(vbody, obody), None)
            backward = next(body_homomorphisms(obody, vbody), None)
            if forward is not None and backward is not None:
                report.add(
                    diagnostic(
                        "VIW002",
                        f"views {view.name!r} and {other.name!r} have "
                        f"homomorphically equivalent bodies: they "
                        f"materialize overlapping answers and pay double "
                        f"maintenance -- consider keeping one",
                        source=source,
                    )
                )
    return report


def advise_covering_view(
    query: ConjunctiveQuery,
    access: AccessSchema,
    parameters: Iterable[object] = (),
    *,
    source: str | None = None,
) -> Report:
    """Propose a covering view (VIW003) for an uncontrolled query.

    Reruns the controllability fixpoint; if the query is already
    controlled the report is empty.  Otherwise the first body atom that
    has at least one reachable variable (a join key the view can be
    accessed by) and at least one unreachable variable yields a concrete
    proposal: an inverted-index view over that atom, keyed on the
    reachable variables, with a
    :data:`DEFAULT_ADVISED_BOUND`-tuple access rule.
    """
    report = Report()
    params = tuple(dict.fromkeys(_as_variable(p) for p in parameters))
    cov = coverage(query, access, params)
    if cov.controlled:
        return report
    body = query.normalized_body() or query.body
    for atom in body:
        key_vars = _distinct(
            t for t in atom.terms if isinstance(t, Variable) and t in cov.bound
        )
        missing = _distinct(
            t
            for t in atom.terms
            if isinstance(t, Variable) and t not in cov.bound
        )
        if not key_vars or not missing:
            continue
        name = f"V_{atom.relation}"
        head = key_vars + missing
        definition = (
            f"{name}({', '.join(f'?{v}' for v in head)}) :- {atom}"
        )
        rule = f"{name}({', '.join(v.name for v in key_vars)} -> {DEFAULT_ADVISED_BOUND})"
        unreachable = ", ".join(f"?{v}" for v in cov.uncovered) or "none"
        given = ", ".join(f"?{v}" for v in params) or "no parameters"
        report.add(
            diagnostic(
                "VIW003",
                f"query is not controlled by ({given}); unreachable "
                f"variables: {unreachable}.  A covering view would make "
                f"it scale independent (Section 6): register "
                f"\"{definition}\" with access rule \"{rule}\" and adjust "
                f"the bound to the true in-degree promise",
                span=atom.span,
                source=source,
            )
        )
        return report
    # No atom offers a usable join key: naming the uncovered variables is
    # NotControlledError's job, so stay silent here.
    return report


def _distinct(items) -> tuple[Variable, ...]:
    return tuple(dict.fromkeys(items))

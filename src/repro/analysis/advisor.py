"""The multi-atom covering-view advisor (VIW004/VIW005).

PR 6's :func:`~repro.analysis.views.advise_covering_view` seeds a
single-atom inverted index with a fixed bound of 64.  This module grows
that seed into the optimizer ROADMAP item 4 asks for: given a workload,
mine the queries that are *uncontrolled* (no bounded plan exists) or
*expensive* (the cost model prices their plan above a threshold), and
propose concrete **multi-atom** covering views that fix them.

The enumeration is a MiniCon-style bucket search specialized to the
augmentation rewriter: instead of assembling full rewritings from view
buckets, it enumerates *connected subsets* of the query's
(equality-normalized) body atoms -- each subset is a candidate view body
whose implied atom :func:`~repro.logic.homomorphism.body_homomorphisms`
is guaranteed to find (the identity mapping embeds the subset into the
query).  For each subset:

* the **key** is the subset's variables the controllability fixpoint can
  already reach -- what the materialized view will be accessed by;
* the **outputs** are the subset's variables the rest of the query still
  needs (head variables and join variables of atoms outside the subset);
  for an uncontrolled target at least one output must be a variable the
  fixpoint could not reach, else the view cannot help;
* the access-rule **bound** is sized from observed statistics
  (:class:`~repro.analysis.cost.CostStats`) by compiling the candidate's
  defining query under an access schema built from the measured fanouts
  and taking the final branch count -- the data-derived ceiling on
  answer rows per key -- falling back to
  :data:`~repro.analysis.views.DEFAULT_ADVISED_BOUND` without stats;
* **adoption is priced, never executed**: the candidate joins the
  registered views in a trial catalog, the query is recompiled through
  the rewriter, and :func:`~repro.analysis.cost.estimate_plan` prices
  the result against the base plan -- both at *declared* bounds, the
  currency of certifiable scale independence.  The statistics feed the
  proposed bound (where the tightening lives); the pricing itself stays
  worst-case, so a projected saving is a guaranteed-bound saving, not a
  data-lucky one.

Survivors become ranked :class:`ViewAdvice` values -- definition text,
access rule and projected cost delta -- surfaced as VIW004 (adoption
makes an uncontrolled query controlled) / VIW005 (adoption cuts a
controlled query's estimated cost) hints, through
``engine.views.advise(queries)`` and ``python -m repro.analysis
--advise``.  Feed a proposal to ``engine.views.adopt(advice)`` to
register it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

from repro.analysis.cost import CostEstimate, CostStats, estimate_plan
from repro.analysis.diagnostics import Report, diagnostic
from repro.analysis.views import DEFAULT_ADVISED_BOUND
from repro.core.access_schema import AccessRule, AccessSchema, FullAccessRule
from repro.core.controllability import coverage
from repro.core.plans import compile_plan
from repro.errors import NotControlledError, ReproError
from repro.logic.ast import Atom, Span, _as_variable
from repro.logic.cq import ConjunctiveQuery
from repro.logic.homomorphism import body_homomorphisms
from repro.logic.terms import Variable
from repro.logic.ucq import UnionOfConjunctiveQueries
from repro.views.definition import ViewCatalog, ViewDef
from repro.views.rewrite import compile_with_views

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.engine import Engine

#: Largest candidate view body the bucket search enumerates.
MAX_VIEW_ATOMS = 3

#: Candidate subsets considered per query disjunct (connected subsets of
#: real query bodies number a handful; the cap guards self-join blowups).
MAX_CANDIDATES = 32

#: A controlled query whose estimated cost reaches this floor is mined
#: for cost-cutting views (VIW005) even though it already has a plan.
EXPENSIVE_COST = 256.0

#: Full-scan stand-in bound for relations with no observed cardinality.
_UNKNOWN_SIZE_BOUND = 1 << 30


@dataclass(frozen=True)
class ViewAdvice:
    """One ranked proposal: register ``definition`` with access rule
    ``rule`` to fix ``query``.

    ``base_cost`` is the estimated cost of the query's current plan, or
    None when the query is uncontrolled (no plan exists);
    ``projected_cost`` prices the plan the rewriter compiles once the
    view is adopted.  ``stats_derived`` records whether ``bound`` came
    from observed statistics or the fixed default."""

    name: str
    definition: str
    rule: str
    bound: int
    key: tuple[str, ...]
    atoms: int
    query: str
    base_cost: float | None
    projected_cost: float
    stats_derived: bool
    source: str | None = None
    span: Span | None = None

    @property
    def controlled_after(self) -> bool:
        """True when adoption turns an uncontrolled query controlled."""
        return self.base_cost is None

    @property
    def cost_delta(self) -> float | None:
        """Projected saving (positive is better); None when the base
        plan does not exist to compare against."""
        if self.base_cost is None:
            return None
        return self.base_cost - self.projected_cost

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "definition": self.definition,
            "rule": self.rule,
            "bound": self.bound,
            "key": list(self.key),
            "atoms": self.atoms,
            "query": self.query,
            "base_cost": self.base_cost,
            "projected_cost": self.projected_cost,
            "cost_delta": self.cost_delta,
            "controlled_after": self.controlled_after,
            "stats_derived": self.stats_derived,
            "source": self.source,
        }


def advise_views(
    engine: "Engine",
    queries: Iterable[object] = (),
    *,
    stats: CostStats | None = None,
    expensive: float | None = None,
    source: str | None = None,
) -> tuple[ViewAdvice, ...]:
    """Mine ``queries`` on ``engine`` for covering-view opportunities.

    Each entry of ``queries`` is query text, a query object, a
    ``PreparedQuery``, a ``(query, parameters)`` pair or a
    ``(query, parameters, source)`` triple (the source labels that
    entry's advice).  ``stats`` defaults to the engine's refreshed cost
    statistics (if any); ``expensive`` to :data:`EXPENSIVE_COST`.
    Returns ranked advice: controllability fixes first (cheapest
    projected plan leading), then cost cuts by descending saving."""
    if stats is None:
        stats = engine.cost_stats
    if expensive is None:
        expensive = EXPENSIVE_COST
    access = engine.access
    registered = engine.views.definitions()
    advices: list[ViewAdvice] = []
    seen_bodies: set[tuple[frozenset, tuple[str, ...]]] = set()
    taken_names = {d.name for d in registered}
    for entry in queries:
        params: tuple = ()
        entry_source = source
        if isinstance(entry, tuple):
            if len(entry) == 3:
                entry, params, entry_source = entry
            else:
                entry, params = entry
        prepared = entry if hasattr(entry, "diagnostics") else engine.query(entry)
        query = prepared.query
        if isinstance(query, UnionOfConjunctiveQueries):
            disjuncts: tuple[ConjunctiveQuery, ...] = query.disjuncts
        else:
            disjuncts = (query,)
        param_vars = tuple(dict.fromkeys(_as_variable(p) for p in params))
        for disjunct in disjuncts:
            for advice in _advise_disjunct(
                disjunct,
                access,
                param_vars,
                registered,
                stats,
                expensive,
                entry_source,
                engine,
            ):
                fingerprint = (
                    advice.definition.split(" :- ", 1)[1],
                    advice.key,
                )
                if fingerprint in seen_bodies:
                    continue
                seen_bodies.add(fingerprint)
                advice = _uniquely_named(advice, taken_names)
                taken_names.add(advice.name)
                advices.append(advice)
    advices.sort(key=_rank)
    return tuple(advices)


def advice_report(
    advices: Iterable[ViewAdvice], *, source: str | None = None
) -> Report:
    """The proposals as diagnostics: VIW004 per controllability fix,
    VIW005 per cost cut."""
    report = Report()
    for advice in advices:
        anchor = advice.source if advice.source is not None else source
        sizing = (
            "bound sized from observed stats"
            if advice.stats_derived
            else "default bound"
        )
        if advice.controlled_after:
            report.add(
                diagnostic(
                    "VIW004",
                    f"query {advice.query} is not controlled; adopting "
                    f"\"{advice.definition}\" with access rule "
                    f"\"{advice.rule}\" ({sizing}) makes it controlled at "
                    f"estimated cost {advice.projected_cost:g}",
                    span=advice.span,
                    source=anchor,
                )
            )
        else:
            report.add(
                diagnostic(
                    "VIW005",
                    f"adopting \"{advice.definition}\" with access rule "
                    f"\"{advice.rule}\" ({sizing}) would cut query "
                    f"{advice.query}'s estimated cost "
                    f"{advice.base_cost:g} -> {advice.projected_cost:g}",
                    span=advice.span,
                    source=anchor,
                )
            )
    return report


def _rank(advice: ViewAdvice) -> tuple:
    if advice.controlled_after:
        return (0, advice.projected_cost, advice.name)
    delta = advice.cost_delta or 0.0
    return (1, -delta, advice.name)


def _uniquely_named(advice: ViewAdvice, taken: set[str]) -> ViewAdvice:
    if advice.name not in taken:
        return advice
    suffix = 2
    while f"{advice.name}_{suffix}" in taken:
        suffix += 1
    renamed = f"{advice.name}_{suffix}"
    return ViewAdvice(
        renamed,
        advice.definition.replace(f"{advice.name}(", f"{renamed}(", 1),
        advice.rule.replace(f"{advice.name}(", f"{renamed}(", 1),
        advice.bound,
        advice.key,
        advice.atoms,
        advice.query,
        advice.base_cost,
        advice.projected_cost,
        advice.stats_derived,
        advice.source,
        advice.span,
    )


def _advise_disjunct(
    query: ConjunctiveQuery,
    access: AccessSchema,
    params: tuple[Variable, ...],
    registered: tuple[ViewDef, ...],
    stats: CostStats | None,
    expensive: float,
    source: str | None,
    engine: "Engine",
) -> list[ViewAdvice]:
    subst = query.equality_substitution()
    if subst is None:
        return []  # unsatisfiable: nothing to speed up
    body = query.normalized_body() or query.body
    cov = coverage(query, access, params)
    base_cost: float | None = None
    if cov.controlled:
        try:
            base = engine._plans_for(query, frozenset(params))
        except ReproError:
            return []
        # Declared-bound pricing: the advisor trades in certifiable
        # bounds (stats only size the proposed view's rule).
        base_est = min(
            (estimate_plan(p) for p in base), key=lambda e: e.total
        )
        if base_est.total < expensive:
            return []  # controlled and cheap: leave it alone
        base_cost = base_est.total
    advices: list[ViewAdvice] = []
    for subset in _connected_subsets(body):
        candidate = _candidate(subset, body, cov, query, params, stats, access)
        if candidate is None:
            continue
        view, key_vars, bound, stats_derived = candidate
        if _equivalent_to_registered(view, registered):
            continue
        projected = _price_adoption(query, access, params, view, registered)
        if projected is None:
            continue
        if base_cost is not None and projected.total >= base_cost:
            continue  # a cost cut must actually cut
        advices.append(
            ViewAdvice(
                view.name,
                _definition_text(view.name, view.query),
                _rule_text(view.name, key_vars, bound),
                bound,
                tuple(v.name for v in key_vars),
                len(subset),
                str(query),
                base_cost,
                projected.total,
                stats_derived,
                source,
                subset[0].span,
            )
        )
    return advices


def _connected_subsets(body: tuple[Atom, ...]) -> list[tuple[Atom, ...]]:
    """Connected subsets of ``body`` (by shared variables), smallest
    first, at most :data:`MAX_VIEW_ATOMS` atoms and
    :data:`MAX_CANDIDATES` subsets.  A single-atom subset counts as
    connected."""
    atom_vars = [set(a.free_variables()) for a in body]
    found: list[frozenset[int]] = []
    seen: set[frozenset[int]] = set()
    frontier = [frozenset((i,)) for i in range(len(body))]
    while frontier and len(found) < MAX_CANDIDATES:
        subset = frontier.pop(0)
        if subset in seen:
            continue
        seen.add(subset)
        found.append(subset)
        if len(subset) >= MAX_VIEW_ATOMS:
            continue
        connected_vars = set().union(*(atom_vars[i] for i in subset))
        for j in range(len(body)):
            if j in subset or not (atom_vars[j] & connected_vars):
                continue
            grown = subset | {j}
            if grown not in seen:
                frontier.append(grown)
    found.sort(key=lambda s: (len(s), tuple(sorted(s))))
    return [tuple(body[i] for i in sorted(subset)) for subset in found]


def _candidate(
    subset: tuple[Atom, ...],
    body: tuple[Atom, ...],
    cov,
    query: ConjunctiveQuery,
    params: tuple[Variable, ...],
    stats: CostStats | None,
    access: AccessSchema,
) -> tuple[ViewDef, tuple[Variable, ...], int, bool] | None:
    """Shape one candidate view from a body subset, or None when the
    subset offers no usable key or no needed output."""
    subset_vars = tuple(
        dict.fromkeys(v for a in subset for v in a.free_variables())
    )
    in_subset = set(subset)
    outside_vars: set[Variable] = set()
    for atom in body:
        if atom not in in_subset:
            outside_vars.update(atom.free_variables())
    # The augmentation rewriter keeps the original atoms, so a useful
    # view must also bind the subset's own join variables -- that turns
    # the re-verification of the subset atoms into probes.
    subset_join = {
        v
        for v in subset_vars
        if sum(1 for a in subset if v in a.free_variables()) > 1
    }
    needed = set(query.head) | outside_vars | subset_join
    if cov.controlled:
        # Cost cut: every variable is reachable, so key the view on the
        # execution-time parameters (what scale independence is
        # relative to) and let everything else be an output.
        anchors = set(params)
    else:
        # Controllability fix: the view must be keyed on what the
        # fixpoint can reach and bind something it cannot.
        anchors = set(cov.bound)
    key_vars = tuple(v for v in subset_vars if v in anchors)
    if not key_vars:
        return None  # nothing to access the materialized view by
    out_vars = tuple(
        v for v in subset_vars if v not in anchors and v in needed
    )
    if not out_vars:
        return None  # the view would bind nothing the query still needs
    if cov.uncovered and not any(v in set(cov.uncovered) for v in out_vars):
        return None  # an uncontrolled query needs an unreachable var bound
    head = key_vars + out_vars
    name = "V_" + "_".join(dict.fromkeys(a.relation for a in subset))
    bound, stats_derived = _advised_bound(
        subset, head, key_vars, access, stats
    )
    try:
        view = ViewDef(
            name,
            ConjunctiveQuery(head, subset),
            _rule_text(name, key_vars, bound),
        )
        view.validate(access.schema)
    except ReproError:
        return None  # e.g. the name collides with a base relation
    return view, key_vars, bound, stats_derived


def _advised_bound(
    subset: tuple[Atom, ...],
    head: tuple[Variable, ...],
    key_vars: tuple[Variable, ...],
    access: AccessSchema,
    stats: CostStats | None,
) -> tuple[int, bool]:
    """Size the proposed access rule's bound from observed statistics:
    compile the candidate's defining query, keyed on ``key_vars``, under
    an access schema whose rule bounds are the *measured* fanouts, and
    take the final branch count -- the data-derived ceiling on answer
    rows per key.  Falls back to :data:`DEFAULT_ADVISED_BOUND` when no
    statistics are available (or the observed schema cannot bind the
    candidate, e.g. a relation too large to profile)."""
    if stats is None:
        return DEFAULT_ADVISED_BOUND, False
    observed = _observed_access(
        access, tuple(dict.fromkeys(a.relation for a in subset)), stats
    )
    try:
        plan = compile_plan(ConjunctiveQuery(head, subset), observed, key_vars)
    except (NotControlledError, ValueError):
        return DEFAULT_ADVISED_BOUND, False
    costs = plan.step_costs()
    if not costs:
        return DEFAULT_ADVISED_BOUND, False
    return max(1, costs[-1].branches_out), True


def _observed_access(
    access: AccessSchema, relations: tuple[str, ...], stats: CostStats
) -> AccessSchema:
    """An access schema over the base schema whose bounds are the
    observed statistics: one full rule per relation at its cardinality,
    one single-attribute rule per measured position fanout."""
    rules: list[AccessRule] = []
    for name in relations:
        rel = access.schema.relation(name)
        size = stats.size(name)
        rules.append(
            FullAccessRule(
                name, max(1, size if size is not None else _UNKNOWN_SIZE_BOUND)
            )
        )
        for position, attribute in enumerate(rel.attributes):
            fanout = stats.fanouts.get((name, (position,)))
            if fanout is not None:
                rules.append(AccessRule(name, (attribute,), max(1, fanout)))
    return AccessSchema(access.schema, rules)


def _equivalent_to_registered(
    view: ViewDef, registered: tuple[ViewDef, ...]
) -> bool:
    """True when a registered view already has a homomorphically
    equivalent body: proposing it again is noise (VIW002 territory)."""
    body = view.query.normalized_body() or view.query.body
    for other in registered:
        obody = other.query.normalized_body() or other.query.body
        if (
            next(body_homomorphisms(body, obody), None) is not None
            and next(body_homomorphisms(obody, body), None) is not None
        ):
            return True
    return False


def _price_adoption(
    query: ConjunctiveQuery,
    access: AccessSchema,
    params: tuple[Variable, ...],
    view: ViewDef,
    registered: tuple[ViewDef, ...],
) -> CostEstimate | None:
    """Price (at declared bounds) the plan the rewriter would compile
    once ``view`` joins the registered catalog -- zero execution -- or
    None when adoption still leaves the query uncompilable (or the
    trial catalog is malformed)."""
    try:
        catalog = ViewCatalog(
            access.schema, -1, tuple(registered) + (view,)
        )
        plan = compile_with_views(query, access, catalog, params)
    except ReproError:
        return None
    if view.name not in plan.view_relations:
        return None  # the rewriter found no use for the candidate
    return estimate_plan(plan)


def _definition_text(name: str, query: ConjunctiveQuery) -> str:
    head = ", ".join(f"?{v}" for v in query.head)
    body = ", ".join(str(a) for a in query.body)
    return f"{name}({head}) :- {body}"


def _rule_text(
    name: str, key_vars: tuple[Variable, ...], bound: int
) -> str:
    return f"{name}({', '.join(v.name for v in key_vars)} -> {bound})"


__all__ = [
    "MAX_VIEW_ATOMS",
    "MAX_CANDIDATES",
    "EXPENSIVE_COST",
    "ViewAdvice",
    "advise_views",
    "advice_report",
]

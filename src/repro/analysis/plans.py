"""Static analysis of compiled plans: the PLN pass family.

A compiled :class:`~repro.core.plans.Plan` carries everything the
analyzer needs in :meth:`~repro.core.plans.Plan.step_costs`: per-step
worst-case access estimates whose sum is the plan's ``fanout_bound``.
:func:`analyze_plan` turns those numbers into findings:

* **PLN001** (warning) -- the fanout bound exceeds
  :data:`BLOWUP_THRESHOLD`: the plan is still scale independent, but the
  multiplicative fan-out of its fetch chain (rendered level by level in
  the message) makes "bounded" an empty promise.
* **PLN002** (hint) -- a probe that re-checks an atom already fetched
  through an embedded access rule: fusing the membership check into the
  fetch (or declaring a plain rule) would remove one pass per branch
  (ROADMAP item 3, Filter-after-Fetch fusion).
* **PLN003** (hint) -- one step accounts for :data:`DOMINANCE_RATIO` or
  more of the whole bound: the place to spend tuning effort.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Report, diagnostic
from repro.core.plans import FetchStep, Plan, ProbeStep

#: PLN001 fires when a plan's fanout bound exceeds this many tuples.
BLOWUP_THRESHOLD = 100_000

#: PLN003 fires when one step's accesses reach this share of the bound.
DOMINANCE_RATIO = 0.9


def analyze_plan(plan: Plan, *, source: str | None = None) -> Report:
    """Run the PLN passes over ``plan`` and return the :class:`Report`."""
    report = Report()
    costs = plan.step_costs()
    if not costs:
        return report
    total = plan.fanout_bound

    if total > BLOWUP_THRESHOLD:
        factors = ["1"]
        for cost in costs:
            if isinstance(cost.step, FetchStep):
                factors.append(
                    f"{cost.step.rule.bound} ({cost.step.atom.relation})"
                )
        report.add(
            diagnostic(
                "PLN001",
                f"plan may access up to {total} tuples (threshold "
                f"{BLOWUP_THRESHOLD}): branch fan-out multiplies as "
                f"{' x '.join(factors)} -- tighten a rule bound, add a "
                f"more selective access path, or parameterize another "
                f"variable",
                span=costs[0].step.atom.span,
                source=source,
            )
        )

    embedded_fetched: dict = {}
    for cost in costs:
        step = cost.step
        if isinstance(step, FetchStep) and not step.rule.verifies_atom:
            embedded_fetched[step.atom] = step
    for i, cost in enumerate(costs, 1):
        step = cost.step
        if isinstance(step, ProbeStep) and step.atom in embedded_fetched:
            fetch = embedded_fetched[step.atom]
            report.add(
                diagnostic(
                    "PLN002",
                    f"step {i} probes {step.atom} although the atom was "
                    f"already fetched through the embedded rule "
                    f"{fetch.rule}: fusing the membership check into the "
                    f"fetch -- or declaring a plain rule on "
                    f"{step.atom.relation!r} -- would save "
                    f"{cost.accesses} probe accesses per execution",
                    span=step.atom.span,
                    source=source,
                )
            )

    if len(costs) > 1 and total > 0:
        worst = max(costs, key=lambda c: c.accesses)
        if worst.accesses >= DOMINANCE_RATIO * total:
            index = costs.index(worst) + 1
            report.add(
                diagnostic(
                    "PLN003",
                    f"step {index} ({worst.step}) accounts for "
                    f"{worst.accesses} of the {total}-tuple access bound "
                    f"({worst.accesses * 100 // total}%): a tighter rule "
                    f"on {worst.step.atom.relation!r} would shrink the "
                    f"whole plan",
                    span=worst.step.atom.span,
                    source=source,
                )
            )
    return report

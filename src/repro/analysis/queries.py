"""Static analysis of queries: the QRY pass family.

:func:`analyze_query` inspects a :class:`~repro.logic.cq.ConjunctiveQuery`
or a union before any plan is compiled:

* **QRY001** (hint) -- a variable that occurs exactly once: it is never
  joined, never returned and never bound by the caller, so it is either a
  deliberate projection placeholder or a typo for a variable that should
  join.
* **QRY002** (warning) -- body atoms that share no variables (after
  resolving equalities) with the rest of the body: the join degenerates
  to a cartesian product and every branch's fan-out multiplies.
* **QRY003** (warning) -- a declared parameter the query's equalities
  collapse to a constant: the value supplied at execution time either
  repeats the constant or empties the answer.
* **QRY004** (warning) -- the same atom written twice: the second copy
  adds accesses but never changes the answer.
* **QRY005** (warning) -- union branches whose compiled access bounds
  differ by :data:`SELECTIVITY_RATIO` or more: one disjunct dominates the
  whole union's cost (needs an access schema to quantify).
* **QRY006** (warning) -- equalities that equate distinct constants: the
  query is unsatisfiable and the answer is always empty.
* **QRY007** (hint) -- a variable the binding-pattern fixpoint can never
  reach under the given access schema and parameters, with the causal
  trace from :mod:`repro.analysis.dataflow` (needs an access schema;
  a hint because views may still make the query executable).
* **ACC005** (hint) -- rides along with QRY007 when a single added
  access rule would make the query controlled: the proposed minimal
  rule, keyed on the attributes the fixpoint already binds.

Spans ride along from the parser (:class:`~repro.logic.ast.Span` on
parsed atoms and equalities), so findings on textual queries point at the
offending source range.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.dataflow import advise_missing_rule, binding_flow
from repro.analysis.diagnostics import Report, diagnostic
from repro.core.access_schema import AccessSchema
from repro.errors import NotControlledError, ReproError
from repro.logic.ast import Atom, _as_variable
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Constant, Variable
from repro.logic.ucq import UnionOfConjunctiveQueries

Query = ConjunctiveQuery | UnionOfConjunctiveQueries

#: QRY005 fires when the cheapest and the most expensive union branch
#: differ in compiled access bound by at least this factor.
SELECTIVITY_RATIO = 100


def analyze_query(
    query: Query,
    access: AccessSchema | None = None,
    parameters: Iterable[object] = (),
    *,
    source: str | None = None,
) -> Report:
    """Run the QRY passes over ``query`` and return the :class:`Report`.

    ``parameters`` are the variables supplied at execution time (QRY001
    never flags them; QRY003 checks them against the equalities).
    ``access`` is only needed for QRY005, which compares the compiled
    access bounds of union branches; without it the check is skipped.
    """
    report = Report()
    params = tuple(dict.fromkeys(_as_variable(p) for p in parameters))
    if isinstance(query, UnionOfConjunctiveQueries):
        disjuncts: tuple[ConjunctiveQuery, ...] = query.disjuncts
    else:
        disjuncts = (query,)
    for disjunct in disjuncts:
        _check_unsatisfiable(disjunct, report, source)
        _check_single_use(disjunct, params, report, source)
        _check_cartesian(disjunct, report, source)
        _check_parameter_equated(disjunct, params, report, source)
        _check_duplicate_atoms(disjunct, report, source)
        if access is not None:
            _check_uncontrolled(disjunct, access, params, report, source)
    if isinstance(query, UnionOfConjunctiveQueries) and access is not None:
        _check_union_selectivity(query, access, params, report, source)
    return report


def _check_unsatisfiable(
    query: ConjunctiveQuery, report: Report, source: str | None
) -> None:
    if query.equality_substitution() is not None:
        return
    span = next((eq.span for eq in query.equalities if eq.span), None)
    report.add(
        diagnostic(
            "QRY006",
            f"query {query} is unsatisfiable: its equalities equate "
            f"distinct constants, so the answer is always empty",
            span=span,
            source=source,
        )
    )


def _check_single_use(
    query: ConjunctiveQuery,
    params: tuple[Variable, ...],
    report: Report,
    source: str | None,
) -> None:
    counts: dict[Variable, int] = {}
    first_atom: dict[Variable, Atom] = {}
    for atom in query.body:
        for term in atom.terms:
            if isinstance(term, Variable):
                counts[term] = counts.get(term, 0) + 1
                first_atom.setdefault(term, atom)
    for eq in query.equalities:
        for term in (eq.left, eq.right):
            if isinstance(term, Variable):
                counts[term] = counts.get(term, 0) + 1
    head = set(query.head)
    for variable, count in counts.items():
        if count != 1 or variable in head or variable in params:
            continue
        atom = first_atom.get(variable)
        report.add(
            diagnostic(
                "QRY001",
                f"variable ?{variable} occurs only once (in {atom}): it is "
                f"never joined or returned -- a projection placeholder, or "
                f"a typo for a joining variable",
                span=atom.span if atom is not None else None,
                source=source,
            )
        )


def _check_cartesian(
    query: ConjunctiveQuery, report: Report, source: str | None
) -> None:
    body = query.normalized_body()
    if body is None or len(body) < 2:
        return
    # Union-find over atoms, linking atoms that share a variable (after
    # equality resolution, so `x = y` connects through the merged class).
    parent = list(range(len(body)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    seen: dict[Variable, int] = {}
    for i, atom in enumerate(body):
        for term in atom.terms:
            if not isinstance(term, Variable):
                continue
            if term in seen:
                parent[find(i)] = find(seen[term])
            else:
                seen[term] = i
    roots: dict[int, list[Atom]] = {}
    for i, atom in enumerate(body):
        roots.setdefault(find(i), []).append(atom)
    if len(roots) < 2:
        return
    components = sorted(roots.values(), key=len, reverse=True)
    offending = components[1][0]
    rendered = "; ".join(
        "{" + ", ".join(str(a) for a in comp) + "}" for comp in components
    )
    report.add(
        diagnostic(
            "QRY002",
            f"body atoms form {len(components)} disconnected join "
            f"components ({rendered}): the result is their cartesian "
            f"product and every branch's fan-out multiplies",
            span=offending.span,
            source=source,
        )
    )


def _check_parameter_equated(
    query: ConjunctiveQuery,
    params: tuple[Variable, ...],
    report: Report,
    source: str | None,
) -> None:
    subst = query.equality_substitution()
    if not subst:
        return
    for param in params:
        rep = subst.get(param, param)
        if not isinstance(rep, Constant):
            continue
        span = next(
            (
                eq.span
                for eq in query.equalities
                if param in (eq.left, eq.right) and eq.span is not None
            ),
            None,
        )
        report.add(
            diagnostic(
                "QRY003",
                f"parameter ?{param} is equated to the constant {rep} by "
                f"the query: any other value supplied at execution time "
                f"empties the answer -- drop the equality or the parameter",
                span=span,
                source=source,
            )
        )


def _check_duplicate_atoms(
    query: ConjunctiveQuery, report: Report, source: str | None
) -> None:
    seen: set[Atom] = set()
    for atom in query.body:
        if atom in seen:
            report.add(
                diagnostic(
                    "QRY004",
                    f"duplicate body atom {atom}: the repeated copy "
                    f"costs extra accesses but never changes the answer",
                    span=atom.span,
                    source=source,
                )
            )
        else:
            seen.add(atom)


def _check_uncontrolled(
    query: ConjunctiveQuery,
    access: AccessSchema,
    params: tuple[Variable, ...],
    report: Report,
    source: str | None,
) -> None:
    usable = tuple(p for p in params if p in set(query.variables()))
    try:
        flow = binding_flow(query, access, usable)
    except ReproError:
        return  # schema mismatch etc.; reported elsewhere
    if flow.controlled:
        return
    unreached = set(flow.uncovered)
    span = next(
        (
            atom.span
            for atom in query.body
            if atom.span is not None
            and any(t in unreached for t in atom.terms if isinstance(t, Variable))
        ),
        None,
    )
    # One diagnostic per query: the trace's per-variable lines fold into
    # one compiler-style line.
    report.add(
        diagnostic(
            "QRY007",
            "; ".join(flow.explain().splitlines()),
            span=span,
            source=source,
        )
    )
    rule = advise_missing_rule(query, access, usable)
    if rule is not None:
        given = ", ".join(f"?{p}" for p in usable) or "no parameters"
        report.add(
            diagnostic(
                "ACC005",
                f"adding access rule {rule} would make the query "
                f"controlled by {given} -- the minimal missing promise, "
                f"keyed on the attributes the fixpoint already binds",
                span=span,
                source=source,
            )
        )


def _check_union_selectivity(
    query: UnionOfConjunctiveQueries,
    access: AccessSchema,
    params: tuple[Variable, ...],
    report: Report,
    source: str | None,
) -> None:
    from repro.core.plans import compile_plan

    bounds: list[tuple[int, int]] = []  # (bound, disjunct index)
    for i, disjunct in enumerate(query.disjuncts):
        usable = tuple(p for p in params if p in set(disjunct.variables()))
        try:
            plan = compile_plan(disjunct, access, usable)
        except (NotControlledError, ReproError):
            return  # cannot compare costs across uncompilable branches
        bounds.append((plan.fanout_bound, i))
    cheap = min(bounds)
    costly = max(bounds)
    if cheap[0] >= 1 and costly[0] / cheap[0] >= SELECTIVITY_RATIO:
        report.add(
            diagnostic(
                "QRY005",
                f"union branches have mismatched access cost: disjunct "
                f"{costly[1] + 1} ({query.disjuncts[costly[1]]}) is bounded "
                f"by {costly[0]} tuples vs {cheap[0]} for disjunct "
                f"{cheap[1] + 1} -- the expensive branch dominates the "
                f"whole union",
                source=source,
            )
        )

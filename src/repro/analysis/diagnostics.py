"""The diagnostic framework: stable codes, severities, spanned messages.

A :class:`Diagnostic` is one finding of a static-analysis pass: a stable
``code`` (``QRY001``, ``ACC002``, ...), a :class:`Severity`, a
human-readable message and -- when the analyzed object was parsed from
text -- the 1-based source :class:`~repro.logic.ast.Span` the finding
points at.  Passes collect diagnostics into a :class:`Report`, which
renders compiler-style lines (``source:line:col: CODE severity:
message``) and decides pass/fail for a chosen severity floor
(:meth:`Report.ok`), which is what ``python -m repro.analysis --strict``
exits on.

Every shipped code is registered in :data:`CODES` via
:func:`register_code`, carrying its default severity and a one-line
title; :func:`diagnostic` builds a :class:`Diagnostic` from a registered
code so passes cannot emit unregistered or misspelled codes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from enum import IntEnum
from typing import Any, Iterable, Iterator

from repro.logic.ast import Span


class Severity(IntEnum):
    """How bad a finding is; ordered so severity floors compare with >=."""

    HINT = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                + ", ".join(s.name.lower() for s in cls)
            ) from None


@dataclass(frozen=True)
class CodeInfo:
    """One registered diagnostic code: its default severity and title."""

    code: str
    severity: Severity
    title: str


#: Every registered diagnostic code, keyed by the code string.
CODES: dict[str, CodeInfo] = {}


def register_code(code: str, severity: Severity, title: str) -> CodeInfo:
    """Register a diagnostic code (``AAA000`` shape) with its default
    severity and one-line title.  Re-registering an existing code raises:
    codes are stable identifiers users grep changelogs for."""
    if len(code) != 6 or not code[:3].isalpha() or not code[:3].isupper() or not code[3:].isdigit():
        raise ValueError(
            f"diagnostic code must be three uppercase letters followed by "
            f"three digits, got {code!r}"
        )
    if code in CODES:
        raise ValueError(f"diagnostic code {code!r} is already registered")
    info = CodeInfo(code, Severity(severity), title)
    CODES[code] = info
    return info


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a registered code, a message, a severity and -- for
    parsed sources -- the :class:`~repro.logic.ast.Span` and a ``source``
    label (file name, bundle name, ...) to anchor it."""

    code: str
    message: str
    severity: Severity
    span: Span | None = None
    source: str | None = None

    def __str__(self) -> str:
        prefix = ""
        if self.source is not None and self.span is not None:
            prefix = f"{self.source}:{self.span.line}:{self.span.column}: "
        elif self.source is not None:
            prefix = f"{self.source}: "
        elif self.span is not None:
            prefix = f"{self.span.line}:{self.span.column}: "
        return f"{prefix}{self.code} {self.severity}: {self.message}"

    def shifted(self, lines: int) -> "Diagnostic":
        """The same diagnostic with its span moved down ``lines`` lines --
        how the CLI maps spans of individually parsed lines back to file
        coordinates."""
        if self.span is None or not lines:
            return self
        span = Span(
            self.span.line + lines,
            self.span.column,
            self.span.end_line + lines,
            self.span.end_column,
        )
        return replace(self, span=span)


def diagnostic(
    code: str,
    message: str,
    *,
    span: Span | None = None,
    source: str | None = None,
    severity: Severity | None = None,
) -> Diagnostic:
    """A :class:`Diagnostic` for a registered ``code``; the severity
    defaults to the code's registered one."""
    info = CODES.get(code)
    if info is None:
        raise ValueError(f"unregistered diagnostic code {code!r}")
    return Diagnostic(
        code, message, info.severity if severity is None else Severity(severity),
        span, source,
    )


class Report:
    """An ordered collection of diagnostics with severity roll-ups."""

    __slots__ = ("_diagnostics",)

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()):
        self._diagnostics: list[Diagnostic] = list(diagnostics)

    @property
    def diagnostics(self) -> tuple[Diagnostic, ...]:
        return tuple(self._diagnostics)

    def add(self, diag: Diagnostic) -> None:
        if not isinstance(diag, Diagnostic):
            raise TypeError(f"{diag!r} is not a Diagnostic")
        self._diagnostics.append(diag)

    def extend(self, diagnostics: "Iterable[Diagnostic] | Report") -> "Report":
        for diag in diagnostics:
            self.add(diag)
        return self

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._diagnostics)

    def __len__(self) -> int:
        return len(self._diagnostics)

    def __bool__(self) -> bool:
        return bool(self._diagnostics)

    def __repr__(self) -> str:
        return f"Report({self.summary()})"

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.code == code)

    def at_least(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.severity >= severity)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self.at_least(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(
            d for d in self._diagnostics if d.severity == Severity.WARNING
        )

    @property
    def hints(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.severity == Severity.HINT)

    @property
    def max_severity(self) -> Severity | None:
        return max((d.severity for d in self._diagnostics), default=None)

    def ok(self, fail_on: Severity = Severity.ERROR) -> bool:
        """True iff no diagnostic reaches the ``fail_on`` severity floor."""
        return not self.at_least(fail_on)

    def sorted_diagnostics(self) -> tuple[Diagnostic, ...]:
        """The diagnostics sorted by ``(source, line, column, code)`` --
        the deterministic order :meth:`render` and :meth:`to_json` emit,
        stable across pass-registration and dict-iteration order (ties
        keep emission order: Python's sort is stable)."""
        return tuple(sorted(self._diagnostics, key=_sort_key))

    def render(self) -> str:
        """One compiler-style line per diagnostic, sorted by
        ``(source, line, column, code)`` (see
        :meth:`sorted_diagnostics`)."""
        return "\n".join(str(d) for d in self.sorted_diagnostics())

    def to_dict(self) -> dict[str, Any]:
        """The report as JSON-ready data: a severity ``summary`` plus one
        entry per diagnostic, in :meth:`sorted_diagnostics` order."""
        return {
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "hints": len(self.hints),
                "total": len(self),
            },
            "diagnostics": [
                {
                    "code": d.code,
                    "severity": str(d.severity),
                    "message": d.message,
                    "source": d.source,
                    "span": None
                    if d.span is None
                    else {
                        "line": d.span.line,
                        "column": d.span.column,
                        "end_line": d.span.end_line,
                        "end_column": d.span.end_column,
                    },
                }
                for d in self.sorted_diagnostics()
            ],
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        """:meth:`to_dict` serialized -- what ``python -m repro.analysis
        --format json`` prints and CI uploads as an artifact."""
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        """``"2 errors, 1 warning, 3 hints"`` (zero buckets omitted)."""
        counts = [
            (len(self.errors), "error"),
            (len(self.warnings), "warning"),
            (len(self.hints), "hint"),
        ]
        parts = [f"{n} {word}{'s' if n != 1 else ''}" for n, word in counts if n]
        return ", ".join(parts) if parts else "no diagnostics"


def _sort_key(d: Diagnostic) -> tuple[str, int, int, str]:
    return (
        d.source or "",
        d.span.line if d.span is not None else 0,
        d.span.column if d.span is not None else 0,
        d.code,
    )


# -- the shipped codes ----------------------------------------------------

# Queries (repro.analysis.queries)
register_code("QRY001", Severity.HINT, "variable used only once")
register_code("QRY002", Severity.WARNING, "cartesian product between body atoms")
register_code("QRY003", Severity.WARNING, "parameter equated away by the query")
register_code("QRY004", Severity.WARNING, "duplicate body atom")
register_code("QRY005", Severity.WARNING, "union branches with mismatched access cost")
register_code("QRY006", Severity.WARNING, "query is unsatisfiable")
register_code("QRY007", Severity.HINT, "variable can never become bound")

# Access schemas (repro.analysis.access)
register_code("ACC001", Severity.HINT, "relation has no access rules")
register_code("ACC002", Severity.WARNING, "access rule shadowed by a cheaper rule")
register_code("ACC003", Severity.WARNING, "absurdly large cardinality bound")
register_code("ACC004", Severity.WARNING, "duplicate access rule")
register_code("ACC005", Severity.HINT, "missing access rule would control the query")

# Plans (repro.analysis.plans)
register_code("PLN001", Severity.WARNING, "fanout bound blowup")
register_code("PLN002", Severity.HINT, "probe after embedded fetch is fusable")
register_code("PLN003", Severity.HINT, "one step dominates the access bound")

# Views (repro.analysis.views / repro.analysis.advisor)
register_code("VIW001", Severity.WARNING, "view matches no workload query")
register_code("VIW002", Severity.HINT, "views with equivalent bodies overlap")
register_code("VIW003", Severity.HINT, "covering view would control the query")
register_code("VIW004", Severity.HINT, "advised view would make the query controlled")
register_code("VIW005", Severity.HINT, "advised view would cut the plan's access cost")

# Cost model (repro.analysis.cost) -- CST001/CST002 are errors: either
# means the optimizer and an independent re-derivation disagree.
register_code("CST001", Severity.ERROR, "cost-based selection kept a costlier plan")
register_code("CST002", Severity.ERROR, "plan cost estimate disagrees with re-derivation")
register_code("CST003", Severity.HINT, "cost-based selection chose a view-augmented plan")

# Incremental maintainability (repro.analysis.maintain)
register_code("INC001", Severity.HINT, "plan cannot be refreshed incrementally")
register_code("INC002", Severity.HINT, "union disjunct blocks incremental refresh")

# Plan certification (repro.analysis.certify) -- all errors: a CRT
# finding means the planner and an independent re-derivation disagree.
register_code("CRT001", Severity.ERROR, "fetch step inputs not bound")
register_code("CRT002", Severity.ERROR, "probe step atom not fully bound")
register_code("CRT003", Severity.ERROR, "step rule not declared by the access schema")
register_code("CRT004", Severity.ERROR, "plan head terms not bound")
register_code("CRT005", Severity.ERROR, "plan references an unregistered view relation")
register_code("CRT006", Severity.ERROR, "plan cost accounting mismatch")
register_code("CRT007", Severity.ERROR, "plan steps do not witness the query body")

# Syntax (the CLI front end)
register_code("SYN001", Severity.ERROR, "syntax or validation error")

"""The ``python -m repro.analysis`` linter.

Lints query files (one query per non-comment line; ``#`` comments and
blank lines are skipped) against an optional schema / access-rule pair,
plus the access rules themselves and the repo's own workload bundles::

    # every query in queries.dl, schema-validated and analyzed
    python -m repro.analysis queries.dl --schema schema.dl

    # plan-level passes too: compile under the access rules, advise
    # covering views for uncontrolled queries
    python -m repro.analysis queries.dl --schema schema.dl \\
        --access "friend(pid1 -> 32)" --params p

    # the CI gate: the Q1-Q5 workload bundles must be warning-clean and
    # every compiled plan must pass independent certification
    python -m repro.analysis --workload --strict --certify

    # machine-readable output (what CI uploads as an artifact)
    python -m repro.analysis --workload --format json

    # the multi-atom view advisor: seed a social instance, refresh cost
    # stats, and propose covering views for the uncontrolled/expensive
    # bundles (JSON output gains an "advice" key)
    python -m repro.analysis --workload --advise --format json

    # apply the certified QRY003/QRY004 rewrites in place (--dry-run:
    # print the unified diff without writing)
    python -m repro.analysis queries.dl --fix --params p

    # the code table
    python -m repro.analysis --codes

Exit status is 0 when the report stays below the failure floor --
errors by default, warnings under ``--strict`` -- and 1 otherwise.
Unparseable input surfaces as **SYN001** (error), so syntax problems
fail even without ``--strict``.
"""

from __future__ import annotations

import argparse
import difflib
import json
import re
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis import (
    CODES,
    Report,
    Severity,
    advice_report,
    advise_covering_view,
    analyze_access,
    analyze_plan,
    analyze_query,
    certify_plan,
    diagnostic,
    fix_query,
    workload_advice,
    workload_report,
)
from repro.core.access_schema import AccessSchema
from repro.core.plans import compile_plan
from repro.errors import NotControlledError, ParseError, ReproError
from repro.logic.ast import Span, _as_variable
from repro.logic.cq import ConjunctiveQuery
from repro.logic.parser import parse_query
from repro.relational.schema import DatabaseSchema


def _text_or_path(value: str) -> str:
    """DSL text, or the contents of the file it names."""
    try:
        path = Path(value)
        if path.is_file():
            return path.read_text()
    except OSError:
        pass
    return value


def _lint_file(
    filename: str,
    schema: DatabaseSchema | None,
    access: AccessSchema | None,
    params: Sequence[str],
    report: Report,
    *,
    certify: bool = False,
) -> None:
    try:
        text = Path(filename).read_text()
    except OSError as exc:
        report.add(
            diagnostic("SYN001", f"cannot read file: {exc}", source=filename)
        )
        return
    for lineno, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        shift = lineno - 1
        try:
            query = parse_query(line, schema=schema)
        except ParseError as exc:
            column = exc.column if exc.column is not None else 1
            span = Span(lineno, column, lineno, column)
            # The span carries the (shifted) coordinates; drop the
            # parser's own one-line-relative "(line 1, column C)" tail.
            message = re.sub(r" \(line \d+(?:, column \d+)?\)$", "", str(exc))
            report.add(
                diagnostic("SYN001", message, span=span, source=filename)
            )
            continue
        except ReproError as exc:  # schema validation (SchemaError, ...)
            span = Span(lineno, 1, lineno, max(len(line.rstrip()), 1))
            report.add(
                diagnostic("SYN001", str(exc), span=span, source=filename)
            )
            continue
        for diag in analyze_query(query, access, _usable(params, query), source=filename):
            report.add(diag.shifted(shift))
        if access is None:
            continue
        disjuncts = (
            (query,) if isinstance(query, ConjunctiveQuery) else query.disjuncts
        )
        for disjunct in disjuncts:
            usable = _usable(params, disjunct)
            try:
                plan = compile_plan(disjunct, access, usable)
            except NotControlledError:
                for diag in advise_covering_view(
                    disjunct, access, usable, source=filename
                ):
                    report.add(diag.shifted(shift))
            except ReproError:
                continue  # already reported (or out of scope) above
            else:
                for diag in analyze_plan(plan, source=filename):
                    report.add(diag.shifted(shift))
                if certify:
                    for diag in certify_plan(plan, access, source=filename):
                        report.add(diag.shifted(shift))


def _usable(params: Sequence[str], query) -> tuple[str, ...]:
    """The declared parameters that actually occur in ``query`` -- a file
    of heterogeneous queries shares one ``--params`` list, so missing
    occurrences are normal, not an error."""
    if isinstance(query, ConjunctiveQuery):
        variables = set(query.variables())
    else:
        variables = {v for d in query.disjuncts for v in d.variables()}
    return tuple(p for p in params if _as_variable(p) in variables)


def _fix_file(
    filename: str,
    schema: DatabaseSchema | None,
    params: Sequence[str],
    *,
    dry_run: bool,
) -> bool:
    """Apply the certified QRY003/QRY004 rewrites to ``filename``.

    Each query line is rewritten only when :func:`fix_query` both
    changed it and verified the rewrite by re-parse + homomorphic
    equivalence.  Prints a unified diff of any changes; writes the file
    unless ``dry_run``.  Returns True when anything changed."""
    try:
        text = Path(filename).read_text()
    except OSError:
        return False  # already reported as SYN001 by the lint pass
    old_lines = text.splitlines()
    new_lines = list(old_lines)
    notes: list[str] = []
    for lineno, line in enumerate(old_lines, 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            query = parse_query(line, schema=schema)
        except ReproError:
            continue  # unparseable lines are lint findings, not fixable
        result = fix_query(query, _usable(params, query), schema=schema)
        if not result.fixes:
            continue
        if not result.verified:
            notes.append(
                f"{filename}:{lineno}: fix not applied -- the rewrite "
                f"failed equivalence verification"
            )
            continue
        indent = line[: len(line) - len(line.lstrip())]
        new_lines[lineno - 1] = indent + str(result.fixed)
        for fix in result.fixes:
            notes.append(f"{filename}:{lineno}: {fix}")
    if new_lines == old_lines:
        for note in notes:
            print(note)
        return False
    trailer = "\n" if text.endswith("\n") else ""
    new_text = "\n".join(new_lines) + trailer
    diff = difflib.unified_diff(
        text.splitlines(keepends=True),
        new_text.splitlines(keepends=True),
        fromfile=filename,
        tofile=f"{filename} (fixed)",
    )
    sys.stdout.write("".join(diff))
    for note in notes:
        print(note)
    if dry_run:
        print(f"{filename}: dry run -- no changes written")
    else:
        Path(filename).write_text(new_text)
        print(f"{filename}: fixes written")
    return True


def _advise_files(
    filenames: Sequence[str],
    schema: DatabaseSchema,
    access: AccessSchema,
    params: Sequence[str],
    report: Report,
) -> list:
    """Run the multi-atom advisor over every parseable query in
    ``filenames`` on a data-less engine (no stats, so bounds fall back to
    the default).  Merges the VIW004/VIW005 diagnostics into ``report``
    and returns the advice list."""
    from repro.analysis import advise_views
    from repro.api.engine import Engine

    engine = Engine(schema, access)
    entries: list[tuple] = []
    for filename in filenames:
        try:
            text = Path(filename).read_text()
        except OSError:
            continue  # already reported as SYN001 by the lint pass
        for line in text.splitlines():
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                query = parse_query(line, schema=schema)
            except ReproError:
                continue  # unparseable lines are lint findings
            entries.append((query, _usable(params, query), filename))
    advices = list(advise_views(engine, entries))
    report.extend(advice_report(advices))
    return advices


def _print_codes() -> None:
    width = max(len(info.title) for info in CODES.values())
    for code in sorted(CODES):
        info = CODES[code]
        print(f"{info.code}  {str(info.severity):<7}  {info.title.ljust(width)}")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically analyze queries, access schemas and the "
        "built-in workload bundles.",
    )
    parser.add_argument(
        "files",
        nargs="*",
        help="query files to lint (one query per non-comment line)",
    )
    parser.add_argument(
        "--schema",
        help="database schema: DSL text or a file containing it",
    )
    parser.add_argument(
        "--access",
        help="access rules (requires --schema): DSL text or a file",
    )
    parser.add_argument(
        "--params",
        default="",
        help="comma-separated parameter names supplied at execution time",
    )
    parser.add_argument(
        "--workload",
        action="store_true",
        help="analyze the built-in Q1-Q5 workload bundles (the CI gate)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings, not just errors",
    )
    parser.add_argument(
        "--certify",
        action="store_true",
        help="independently certify every compiled plan (CRT codes); "
        "with --workload, gate the bundles' engine on certification",
    )
    parser.add_argument(
        "--advise",
        action="store_true",
        help="run the multi-atom view advisor: with --workload, seed a "
        "social instance and propose covering views for the "
        "uncontrolled/expensive bundles; with files, advise each query "
        "against --schema/--access (no stats, default bounds)",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply the certified QRY003/QRY004 rewrites to the given "
        "files (each verified by re-parse + homomorphic equivalence)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="with --fix: print the unified diff without writing",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json prints Report.to_json())",
    )
    parser.add_argument(
        "--codes",
        action="store_true",
        help="print the diagnostic code table and exit",
    )
    args = parser.parse_args(argv)

    if args.codes:
        _print_codes()
        return 0
    if args.access and not args.schema:
        parser.error("--access requires --schema")
    if not args.files and not args.workload:
        parser.error("nothing to analyze: pass query files or --workload")
    if args.fix and not args.files:
        parser.error("--fix needs query files to rewrite")
    if args.dry_run and not args.fix:
        parser.error("--dry-run only makes sense with --fix")
    if args.advise and args.files and not args.access:
        parser.error("--advise on files needs --schema and --access")

    report = Report()
    schema: DatabaseSchema | None = None
    access: AccessSchema | None = None
    if args.schema:
        try:
            schema = DatabaseSchema.parse(_text_or_path(args.schema))
        except ReproError as exc:
            report.add(diagnostic("SYN001", str(exc), source="--schema"))
    if args.access and schema is not None:
        try:
            access = AccessSchema.parse(schema, _text_or_path(args.access))
        except ReproError as exc:
            report.add(diagnostic("SYN001", str(exc), source="--access"))
        else:
            report.extend(analyze_access(access, source="--access"))

    if args.workload:
        try:
            report.extend(workload_report(certify=args.certify or None))
        except ReproError as exc:  # a CertificationError fails the gate
            report.add(diagnostic("SYN001", str(exc), source="--workload"))

    params = tuple(p.strip() for p in args.params.split(",") if p.strip())
    for filename in args.files:
        _lint_file(
            filename, schema, access, params, report, certify=args.certify
        )
    if args.fix:
        for filename in args.files:
            _fix_file(filename, schema, params, dry_run=args.dry_run)

    advices: list = []
    if args.advise:
        if args.workload:
            try:
                workload_advices, advice_diags = workload_advice()
            except ReproError as exc:
                report.add(
                    diagnostic("SYN001", str(exc), source="--workload")
                )
            else:
                advices.extend(workload_advices)
                report.extend(advice_diags)
        if args.files and schema is not None and access is not None:
            advices.extend(
                _advise_files(args.files, schema, access, params, report)
            )

    if args.format == "json":
        payload = report.to_dict()
        if args.advise:
            payload["advice"] = [advice.to_dict() for advice in advices]
        print(json.dumps(payload, indent=2))
    else:
        if report:
            print(report.render())
        print(report.summary())
    fail_on = Severity.WARNING if args.strict else Severity.ERROR
    return 0 if report.ok(fail_on) else 1


if __name__ == "__main__":
    sys.exit(main())

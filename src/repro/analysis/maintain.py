"""Static incremental-maintainability classification (INC codes).

The Section 5 delta pipeline maintains per-tuple derivation counts so
deletions can decrement exactly what their insertions contributed.  That
scheme assumes every fetch goes through a *plain* or *full* access rule:
an :class:`~repro.core.access_schema.EmbeddedAccessRule` verifies and
binds in one access, so the delta rule cannot attribute derivations to
individual tuples without a dedup-aware counting scheme the executor does
not (yet) implement.  Today that surfaces only when
``execute_incremental`` is called, as an
:class:`~repro.errors.IncrementalError` raised mid-materialization.

:func:`classify_incremental` decides the same question *statically*, per
compiled plan, at ``prepare``/``register`` time: walk the steps, collect
every embedded-rule fetch as a :class:`MaintainBlocker` with a causal
trace in the QRY007 style (which rule, which relation, which source span,
and what is missing), and report the verdict as INC001 diagnostics --
plus INC002 when one disjunct of a union blocks refresh of the whole
union.  :func:`check_maintainable` is the gating form the incremental
pipeline now calls before materializing anything, so the error carries
the full trace instead of naming only the first offending step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.diagnostics import Report, diagnostic
from repro.core.access_schema import EmbeddedAccessRule
from repro.core.plans import FetchStep, Plan
from repro.errors import IncrementalError


@dataclass(frozen=True)
class MaintainBlocker:
    """One reason a plan cannot be refreshed incrementally: step
    ``index`` (1-based) of ``plan`` fetches through an embedded rule."""

    plan: Plan
    index: int
    step: FetchStep

    @property
    def relation(self) -> str:
        return self.step.atom.relation

    def explain(self) -> str:
        """The causal trace: offending rule, relation, source span, and
        the missing counting scheme."""
        atom = self.step.atom
        where = ""
        if atom.span is not None:
            where = f" (at {atom.span.line}:{atom.span.column})"
        return (
            f"step {self.index} fetches relation {self.relation!r} through "
            f"the embedded access rule '{self.step.rule}'{where}; an "
            f"embedded fetch verifies the atom and binds its outputs in "
            f"one access, so the delta rule cannot attribute derivation "
            f"counts to individual tuples without a dedup-aware counting "
            f"scheme -- declare a plain rule on {self.relation!r} to "
            f"refresh this query incrementally"
        )


@dataclass(frozen=True)
class IncrementalSupport:
    """The classifier's verdict for one query's plans (one per union
    disjunct): ``supported`` iff no plan carries a blocker."""

    plans: tuple[Plan, ...]
    blockers: tuple[MaintainBlocker, ...]

    @property
    def supported(self) -> bool:
        return not self.blockers

    @property
    def blocked_plans(self) -> tuple[Plan, ...]:
        seen: dict[int, Plan] = {}
        for blocker in self.blockers:
            seen.setdefault(id(blocker.plan), blocker.plan)
        return tuple(seen.values())

    def explain(self) -> str:
        """One line per blocker; empty string when supported."""
        return "\n".join(b.explain() for b in self.blockers)

    def report(self, *, source: str | None = None) -> Report:
        """The verdict as diagnostics: INC001 per blocker (anchored at
        the offending atom's span), and INC002 once when only *some*
        disjuncts of a union are blocked -- the supported disjuncts are
        held hostage by the blocked ones."""
        report = Report()
        for blocker in self.blockers:
            query = blocker.plan.query
            report.add(
                diagnostic(
                    "INC001",
                    f"query {query} cannot be refreshed incrementally: "
                    + blocker.explain(),
                    span=blocker.step.atom.span,
                    source=source,
                )
            )
        blocked = self.blocked_plans
        if blocked and len(self.plans) > len(blocked):
            relations = ", ".join(
                sorted({b.relation for b in self.blockers})
            )
            report.add(
                diagnostic(
                    "INC002",
                    f"{len(blocked)} of {len(self.plans)} union disjuncts "
                    f"fetch through embedded rules (on {relations}), "
                    f"blocking incremental refresh of the whole union: "
                    f"the delta pipeline refreshes all disjunct counts or "
                    f"none",
                    span=self.blockers[0].step.atom.span,
                    source=source,
                )
            )
        return report


def classify_incremental(plans: Plan | Iterable[Plan]) -> IncrementalSupport:
    """Statically classify whether the Section 5 delta pipeline supports
    ``plans`` (a single plan or one per union disjunct)."""
    if isinstance(plans, Plan):
        plans = (plans,)
    plans = tuple(plans)
    blockers = tuple(
        MaintainBlocker(plan, index, step)
        for plan in plans
        for index, step in enumerate(plan.steps, 1)
        if isinstance(step, FetchStep)
        and isinstance(step.rule, EmbeddedAccessRule)
    )
    return IncrementalSupport(plans, blockers)


def check_maintainable(plans: Plan | Iterable[Plan]) -> IncrementalSupport:
    """The gating form: return the (supported) classification, or raise
    :class:`IncrementalError` carrying every blocker's causal trace."""
    support = classify_incremental(plans)
    if not support.supported:
        raise IncrementalError(
            "incremental (delta) execution supports only plain and full "
            "access rules:\n" + support.explain()
        )
    return support


__all__ = [
    "MaintainBlocker",
    "IncrementalSupport",
    "classify_incremental",
    "check_maintainable",
]

"""Binding-pattern dataflow: *why* a query is (un)controllable.

The controllability fixpoint (:func:`repro.core.controllability.coverage`)
answers yes/no; this pass turns its result into Datalog-style
*adornments* -- one ``b``/``f`` letter per atom argument, recording which
positions end up bound once the fixpoint saturates -- and, for every
variable the fixpoint never reaches, a *causal trace*: which atoms
contain it, which access rules could in principle bind its position, and
exactly which missing binding blocks each of them.

Three consumers:

* :func:`repro.analysis.queries.analyze_query` emits the trace as
  **QRY007** (hint) and, when a single added access rule would make the
  query controlled, the rule as **ACC005**;
* :class:`~repro.errors.NotControlledError` appends the trace to its
  message, so a failed ``compile_plan`` explains itself;
* :meth:`BindingFlow.explain` is the API form.

The proposal in :func:`advise_missing_rule` is minimal in the sense that
it keys on exactly the attributes the fixpoint can already bind -- the
cheapest promise a deployment could add (an index over the reachable
attributes with a cardinality bound) that provably controls the query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.access_schema import AccessRule, AccessSchema, FullAccessRule
from repro.core.controllability import _is_bound, coverage
from repro.logic.ast import Atom, _as_variable
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Variable

#: The cardinality bound ACC005 proposals carry -- like the view
#: advisor's default, a placeholder for a measured bound.
ADVISED_RULE_BOUND = 64


@dataclass(frozen=True)
class AtomAdornment:
    """One body atom with its binding pattern at the fixpoint: ``'b'``
    per position whose term is a constant or a reachable variable,
    ``'f'`` per position that stays free."""

    atom: Atom
    pattern: str

    def __str__(self) -> str:
        return f"{self.atom.relation}^{self.pattern} {self.atom}"


@dataclass(frozen=True)
class BindingFlow:
    """The dataflow result for one query under one parameter set."""

    query: ConjunctiveQuery
    parameters: tuple[Variable, ...]
    bound: frozenset[Variable]
    adornments: tuple[AtomAdornment, ...]
    uncovered: tuple[Variable, ...]
    _access: AccessSchema

    @property
    def controlled(self) -> bool:
        return not self.uncovered

    def explain(self) -> str:
        """The causal trace: one line per unreachable variable naming the
        atoms that contain it and why no access rule can bind it there.
        Empty string when the query is controlled."""
        if self.controlled:
            return ""
        subst = self.query.equality_substitution() or {}
        rep_bound = {
            subst.get(v, v)
            for v in self.bound
            if isinstance(subst.get(v, v), Variable)
        }
        lines = []
        for variable in self.uncovered:
            rep = subst.get(variable, variable)
            reasons = []
            for adorned in self.adornments:
                atom = adorned.atom
                for pos, term in enumerate(atom.terms):
                    if term != rep:
                        continue
                    reasons.append(
                        _blocked_reason(
                            self._access, atom, pos, rep_bound
                        )
                    )
            reachable = ", ".join(
                f"?{v}" for v in sorted(self.bound, key=lambda v: v.name)
            ) or "none"
            lines.append(
                f"variable ?{variable} can never become bound: "
                + "; ".join(dict.fromkeys(reasons))
                + f"; reachable bindings: {reachable}"
            )
        return "\n".join(lines)


def _blocked_reason(
    access: AccessSchema,
    atom: Atom,
    pos: int,
    bound: set[Variable] | frozenset[Variable],
) -> str:
    """Why no rule of ``access`` can bind position ``pos`` of ``atom``
    given the ``bound`` representatives."""
    rel = access.schema.relation(atom.relation)
    rules = access.rules_for(atom.relation)
    if not rules:
        return f"relation '{atom.relation}' has no access rules"
    attr = rel.attributes[pos]
    could = []
    for rule in rules:
        out_pos = rel.positions(rule.bound_attributes(rel))
        if pos not in out_pos:
            continue
        missing = [
            atom.terms[p]
            for p in rel.positions(rule.inputs)
            if not _is_bound(atom.terms[p], bound)
        ]
        if not missing:
            # The fixpoint saturated, so a firable rule binding this
            # position cannot exist; defensive fallback only.
            continue
        names = ", ".join(f"?{t}" for t in dict.fromkeys(missing))
        could.append(f"{rule} needs {names} bound first (in {atom})")
    if not could:
        bound_positions = [
            p for p, t in enumerate(atom.terms) if _is_bound(t, bound)
        ]
        at = (
            "position " + ", ".join(str(p) for p in bound_positions)
            + f" ({', '.join(rel.attributes[p] for p in bound_positions)})"
            if bound_positions
            else "any bound position"
        )
        return (
            f"no rule on '{atom.relation}' accepts input at {at} while "
            f"binding position {pos} ({attr})"
        )
    return "; ".join(could)


def binding_flow(
    query: ConjunctiveQuery,
    access: AccessSchema,
    parameters: Iterable[object] = (),
) -> BindingFlow:
    """Run the fixpoint for ``query`` under ``access`` with ``parameters``
    initially bound and return the :class:`BindingFlow` with per-atom
    adornments and the uncovered variables."""
    params = tuple(dict.fromkeys(_as_variable(p) for p in parameters))
    cov = coverage(query, access, params)
    subst = query.equality_substitution()
    if subst is None:
        # Unsatisfiable: vacuously controlled, everything trivially bound.
        adornments = tuple(
            AtomAdornment(a, "b" * len(a.terms)) for a in query.body
        )
        return BindingFlow(
            query, params, cov.bound, adornments, (), access
        )
    rep_bound = {
        subst.get(v, v)
        for v in cov.bound
        if isinstance(subst.get(v, v), Variable)
    }
    adornments = tuple(
        AtomAdornment(
            atom,
            "".join(
                "b" if _is_bound(t, rep_bound) else "f" for t in atom.terms
            ),
        )
        for atom in (a.substitute(subst) for a in query.body)
    )
    return BindingFlow(
        query, params, cov.bound, adornments, cov.uncovered, access
    )


def explain_uncontrolled(
    query: ConjunctiveQuery,
    access: AccessSchema,
    parameters: Iterable[object] = (),
) -> str | None:
    """The causal uncontrollability trace for ``query``, or None when the
    query is controlled by ``parameters``."""
    flow = binding_flow(query, access, parameters)
    return None if flow.controlled else flow.explain()


def advise_missing_rule(
    query: ConjunctiveQuery,
    access: AccessSchema,
    parameters: Iterable[object] = (),
) -> AccessRule | None:
    """The minimal single access rule whose addition would make ``query``
    controlled by ``parameters``, or None when no single rule suffices.

    Candidates key each under-bound atom on exactly the attributes the
    fixpoint can already bind there; among the candidates that provably
    control the query (re-running the fixpoint over the extended schema),
    the one leaving the fewest attributes to promise -- the most selective
    key -- wins.
    """
    flow = binding_flow(query, access, parameters)
    if flow.controlled:
        return None
    candidates: dict[tuple[str, tuple[str, ...]], AccessRule] = {}
    for adorned in flow.adornments:
        if "f" not in adorned.pattern:
            continue
        atom = adorned.atom
        if atom.relation not in access.schema:
            continue
        rel = access.schema.relation(atom.relation)
        inputs = tuple(
            rel.attributes[p]
            for p, flag in enumerate(adorned.pattern)
            if flag == "b"
        )
        rule: AccessRule = (
            AccessRule(atom.relation, inputs, ADVISED_RULE_BOUND)
            if inputs
            else FullAccessRule(atom.relation, ADVISED_RULE_BOUND)
        )
        candidates.setdefault((atom.relation, inputs), rule)
    ordered = sorted(
        candidates.values(),
        key=lambda r: (
            access.schema.relation(r.relation).arity - len(r.inputs),
            -len(r.inputs),
            r.relation,
        ),
    )
    for rule in ordered:
        if rule in tuple(access):
            continue
        extended = AccessSchema(access.schema, tuple(access) + (rule,))
        if coverage(query, extended, flow.parameters).controlled:
            return rule
    return None

"""View-aware plan compilation: rewriting queries over materialized views.

Section 6 of the paper makes queries scale independent that bounded
access plans over base data alone cannot: answer the query from a set of
materialized views plus boundedly many base-table accesses.  The
rewriting step here is the sound *augmentation* form of view-based
answering:

    if there is a homomorphism from a view's body into the query's body,
    then every query answer satisfies the view's head projection under
    that mapping -- so the corresponding view atom is *implied* and may
    be added to the query without changing its answers.

Added view atoms do not change the query's semantics (on a database
whose views are fresh), but they hand the planner new bounded access
paths: a query that raises
:class:`~repro.errors.NotControlledError` over the base access schema
may become controlled once a view atom -- fetchable through the view's
declared rules, probe-able for free -- joins the fixpoint.  The classic
example is an inverted edge index: ``friend(x, p)`` with only
``friend(pid1 -> N)`` declared is uncontrolled given ``p``, but with
``V1(pid, follower) <- friend(follower, pid)`` registered the augmented
query fetches ``V1(p, x)`` through ``V1(pid -> K)`` and verifies
``friend(x, p)`` with one membership probe per candidate: at most
``K`` view rows plus ``K`` base probes, independent of the database
size.

This is deliberately not a complete rewriting procedure (no MiniCon-style
bucket search, no view-only equivalence rewritings): it finds every
*implied* view atom via :func:`repro.logic.homomorphism.body_homomorphisms`
and lets the ordinary planner decide whether they help.  Sound always;
complete for the "view as bounded access path" usage the workload
exercises.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.access_schema import AccessSchema
from repro.core.plans import Plan, compile_plan
from repro.errors import NotControlledError
from repro.logic.ast import Atom
from repro.logic.cq import ConjunctiveQuery
from repro.logic.homomorphism import body_homomorphisms
from repro.logic.terms import Variable
from repro.views.definition import ViewCatalog, ViewDef, ViewSet

#: How many homomorphisms per view the rewriter considers; each distinct
#: mapping contributes at most one implied atom, and real queries admit
#: a handful at most -- the cap only guards against adversarial
#: self-join blowups.
MAX_HOMOMORPHISMS_PER_VIEW = 16


def implied_view_atoms(
    query: ConjunctiveQuery, views: Sequence[ViewDef]
) -> tuple[tuple[Atom, str], ...]:
    """Every view atom implied by ``query``: for each registered view and
    each homomorphism from the view's (equality-normalized) body into the
    query's, the view's head mapped through the homomorphism.  Returns
    ``(atom, view name)`` pairs, deduplicated, in view registration
    order."""
    subst = query.equality_substitution()
    if subst is None:
        return ()
    body = tuple(a.substitute(subst) for a in query.body)
    existing = set(body)
    found: list[tuple[Atom, str]] = []
    seen: set[Atom] = set()
    for view in views:
        vsubst = view.query.equality_substitution()
        if vsubst is None:
            continue  # an unsatisfiable view is always empty: useless
        vbody = tuple(a.substitute(vsubst) for a in view.query.body)
        vhead = tuple(vsubst.get(v, v) for v in view.query.head)
        count = 0
        for hom in body_homomorphisms(vbody, body):
            terms = tuple(
                hom.get(t, t) if isinstance(t, Variable) else t for t in vhead
            )
            atom = Atom(view.name, terms)
            if atom not in seen and atom not in existing:
                seen.add(atom)
                found.append((atom, view.name))
            count += 1
            if count >= MAX_HOMOMORPHISMS_PER_VIEW:
                break
    return tuple(found)


def rewrite_with_views(
    query: ConjunctiveQuery, views: Sequence[ViewDef]
) -> tuple[ConjunctiveQuery, frozenset[str]] | None:
    """The query augmented with every implied view atom, plus the names
    of the views used -- or None when no view maps into the query.

    The augmented query is equivalent to the original on any database
    whose materialized views are fresh (the Engine refreshes them before
    every view-assisted execution), so answering it answers the original.
    """
    implied = implied_view_atoms(query, views)
    if not implied:
        return None
    augmented = ConjunctiveQuery(
        query.head,
        tuple(query.body) + tuple(atom for atom, _ in implied),
        query.equalities,
    )
    return augmented, frozenset(name for _, name in implied)


def compile_with_views(
    query: ConjunctiveQuery,
    access: AccessSchema,
    views: ViewSet | ViewCatalog,
    parameters: Iterable[object] = (),
    base_error: NotControlledError | None = None,
) -> Plan:
    """Compile ``query`` using the registered views: augment it with the
    implied view atoms and compile against the extended schema (base
    relations + one per view) and extended access schema (base rules +
    view rules), marking the view relations so the executor lowers their
    steps to view-store operators.

    ``views`` is a :class:`~repro.views.definition.ViewSet` or -- for a
    race-free read under concurrent register/drop -- the immutable
    :class:`~repro.views.definition.ViewCatalog` from ``ViewSet.snapshot()``
    (what the Engine passes).  Called when the base-only compile raised
    ``base_error``; raises :class:`~repro.errors.NotControlledError`
    again -- naming both failures -- when the views do not help either.
    """
    if isinstance(views, ViewSet):
        views = views.snapshot()
    rewritten = rewrite_with_views(query, views.definitions())
    if rewritten is None:
        detail = f" ({base_error})" if base_error is not None else ""
        raise NotControlledError(
            f"query {query} is not controlled over the base access "
            f"schema{detail}, and no registered view maps into it "
            f"(views: {', '.join(views.names()) or 'none'})"
        )
    augmented, names = rewritten
    try:
        return compile_plan(
            augmented,
            views.extended_access(access),
            parameters,
            view_relations=names,
        )
    except NotControlledError as exc:
        raise NotControlledError(
            f"query {query} is not controlled over the base access schema, "
            f"and the registered views ({', '.join(sorted(names))}) do not "
            f"make it controlled either: {exc}"
        ) from exc
